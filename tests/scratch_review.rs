//! scratch review test — delete after review
use ojv::prelude::*;
use ojv_core::fixtures;

#[test]
fn pin_at_with_untouched_view() {
    let mut c = fixtures::example1_catalog();
    fixtures::populate_example1(&mut c, 6, 9);
    let mut db = Database::new(c);
    // Two views over lineitem.
    db.create_view(fixtures::oj_view_def()).unwrap();
    db.create_view(fixtures::oj_view_def().with_name("oj_view2")).unwrap();

    // Hold a pin at lsn 0 so history should be retained.
    let held = db.snapshot().unwrap();
    assert_eq!(held.lsn(), 0);

    // A noop update: a lineitem row whose orderkey matches no order is
    // dropped by the left-outer join — empty delta for both views.
    db.insert("lineitem", vec![fixtures::lineitem_row(9999, 1, 9999, 1, 1.0)])
        .unwrap();
    let stats = db.snapshots().stats();
    eprintln!("stats after noop commit: {stats:?}");
    assert_eq!(db.commit_lsn(), 1);

    // Re-pin the version the held pin is keeping alive.
    let r = db.snapshot_at(0);
    eprintln!("pin_at(0) while a pin at 0 is held: {:?}", r.as_ref().map(|s| s.lsn()).map_err(|e| e.to_string()));
    assert!(r.is_ok(), "version 0 is pinned (held) and tips are unchanged, yet pin_at(0) failed");
}
