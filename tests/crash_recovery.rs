//! Crash-point matrix over the durable maintenance log.
//!
//! A scripted three-table workload (inserts, deletes, SQL-style updates,
//! deferred-view refreshes) runs once against a [`MemVfs`]; the resulting WAL
//! segment is then cut at every record boundary — and, in the full matrix,
//! at torn offsets *inside* every record — and recovery is opened on each
//! truncated filesystem. Recovered state must be **byte-identical** (via
//! `DurableDatabase::state_bytes`) to an uncrashed twin that ran exactly the
//! surviving prefix of the workload.
//!
//! When a cut lands between the two halves of an `update()` (which logs a
//! delete record and an insert record), no step-granular twin exists; those
//! points are checked record-granularly instead: the recovered catalog must
//! equal a catalog that applied exactly the surviving record operations, the
//! eager view must pass the full-recompute oracle, and recovery must be
//! idempotent (a second open over the recovered filesystem is a byte-level
//! no-op).
//!
//! The fast subset runs in plain `cargo test -q`; the exhaustive matrix and
//! the ~200-case seeded fault-injection sweep are `#[ignore]`d and run in CI
//! via `--ignored` (see `ci/check.sh`).

use ojv::durability::wal::{scan_segment, SEGMENT_HEADER_LEN};
use ojv::prelude::*;
use ojv::storage::encode_catalog;
use ojv_core::fixtures;
use ojv_testkit::{fault_spec, FaultFile, Rng, Strategy};

const EAGER: &str = "oj_view";
const DEFERRED: &str = "oj_dv";
const N_PARTS: i64 = 6;
const N_ORDERS: i64 = 9;

fn policy() -> MaintenancePolicy {
    MaintenancePolicy::default() // FsyncPolicy::Always
}

fn populated_catalog() -> Catalog {
    let mut c = fixtures::example1_catalog();
    fixtures::populate_example1(&mut c, N_PARTS, N_ORDERS);
    c
}

/// Fresh durable database with one eager and one deferred view over the
/// paper's Example 1 join, checkpointed at LSN 0 (DDL time) so every
/// workload record stays in the live WAL segment.
fn build<V: Vfs>(vfs: V) -> DurableDatabase<V> {
    let mut d = DurableDatabase::create(vfs, populated_catalog(), policy()).unwrap();
    d.create_view(fixtures::oj_view_def()).unwrap();
    d.create_deferred_view(ViewDef::new(
        DEFERRED,
        fixtures::oj_view_def().expr().clone(),
    ))
    .unwrap();
    d
}

/// One workload step. `Update` logs two WAL records (delete + insert with
/// the decomposition flag); everything else logs exactly one.
#[derive(Debug, Clone)]
enum Step {
    Insert(&'static str, Row),
    Delete(&'static str, Row),
    Update(&'static str, Row, Row),
    Refresh,
}

impl Step {
    fn records(&self) -> u64 {
        match self {
            Step::Update(..) => 2,
            _ => 1,
        }
    }
}

/// The scripted workload: touches all three base tables, exercises both
/// deferred refresh markers, and keeps every prefix FK-consistent (orders
/// divisible by 3 have no lineitems, so order 9 can be updated via
/// delete+insert; part 50 is inserted before it is deleted).
fn steps() -> Vec<Step> {
    let i = Datum::Int;
    vec![
        Step::Insert("lineitem", fixtures::lineitem_row(3, 1, 2, 4, 42.0)),
        Step::Insert("orders", fixtures::order_row(100, 7)),
        Step::Insert("lineitem", fixtures::lineitem_row(100, 1, 5, 2, 9.5)),
        Step::Refresh,
        Step::Update(
            "lineitem",
            vec![i(2), i(1)],
            fixtures::lineitem_row(2, 1, 3, 99, 1.0),
        ),
        Step::Delete("lineitem", vec![i(3), i(1)]),
        Step::Insert("part", fixtures::part_row(50, "crash-part", 3.25)),
        Step::Refresh,
        Step::Update("orders", vec![i(9)], fixtures::order_row(9, 4242)),
        Step::Delete("part", vec![i(50)]),
    ]
}

fn total_records() -> u64 {
    steps().iter().map(Step::records).sum()
}

fn apply<V: Vfs>(d: &mut DurableDatabase<V>, step: &Step) {
    match step {
        Step::Insert(t, row) => {
            d.insert(t, vec![row.clone()]).unwrap();
        }
        Step::Delete(t, key) => {
            d.delete(t, std::slice::from_ref(key)).unwrap();
        }
        Step::Update(t, key, row) => {
            d.update(t, std::slice::from_ref(key), vec![row.clone()])
                .unwrap();
        }
        Step::Refresh => {
            d.refresh(DEFERRED).unwrap();
        }
    }
}

/// Uncrashed twin reflecting exactly the first `m` WAL records, or `None`
/// when `m` falls between the two records of an `Update` step.
fn twin_at(m: u64) -> Option<DurableDatabase<MemVfs>> {
    let mut d = build(MemVfs::new());
    let mut logged = 0u64;
    for step in steps() {
        let n = step.records();
        if logged + n > m {
            break;
        }
        apply(&mut d, &step);
        logged += n;
    }
    (logged == m).then_some(d)
}

/// The catalog-level operation each WAL record performs (refresh markers
/// perform none) — the record-granular oracle for mid-update crash points.
enum CatOp {
    Ins(&'static str, Row),
    Del(&'static str, Row),
    None,
}

fn record_ops() -> Vec<CatOp> {
    let mut ops = Vec::new();
    for step in steps() {
        match step {
            Step::Insert(t, row) => ops.push(CatOp::Ins(t, row)),
            Step::Delete(t, key) => ops.push(CatOp::Del(t, key)),
            Step::Update(t, key, row) => {
                ops.push(CatOp::Del(t, key));
                ops.push(CatOp::Ins(t, row));
            }
            Step::Refresh => ops.push(CatOp::None),
        }
    }
    ops
}

/// Catalog after applying exactly the first `m` record operations.
fn catalog_at(m: u64) -> Catalog {
    let mut c = populated_catalog();
    for op in record_ops().into_iter().take(usize::try_from(m).unwrap()) {
        match op {
            CatOp::Ins(t, row) => {
                c.insert(t, vec![row]).unwrap();
            }
            CatOp::Del(t, key) => {
                c.delete(t, std::slice::from_ref(&key)).unwrap();
            }
            CatOp::None => {}
        }
    }
    c
}

/// Run the whole workload and return the crash image (durable bytes only —
/// under `FsyncPolicy::Always` that is everything).
fn full_run_vfs() -> MemVfs {
    let mut d = build(MemVfs::new());
    for step in steps() {
        apply(&mut d, &step);
    }
    d.into_vfs().crash()
}

fn newest_segment(vfs: &MemVfs) -> String {
    vfs.list()
        .unwrap()
        .into_iter()
        .filter(|n| n.starts_with("wal-") && n.ends_with(".log"))
        .max()
        .expect("workload leaves a live WAL segment")
}

/// `(end_offset, lsn)` of every record in the live segment, in order.
fn boundaries(vfs: &MemVfs, segment: &str) -> Vec<(u64, u64)> {
    let scan = scan_segment(segment, &vfs.read(segment).unwrap(), Some(1));
    assert!(
        scan.torn.is_none(),
        "clean run must scan clean: {:?}",
        scan.torn
    );
    scan.records
        .iter()
        .map(|r| (r.end_offset, r.record.lsn))
        .collect()
}

/// Crash the workload at byte offset `cut` of the live segment, recover,
/// and check the recovered state against the appropriate oracle.
fn check_cut(full: &MemVfs, segment: &str, cut: u64, ends: &[(u64, u64)]) {
    let mut crashed = full.clone();
    crashed.truncate(segment, cut).unwrap();
    crashed.sync(segment).unwrap();
    let (rec, report) = DurableDatabase::open(crashed, policy())
        .unwrap_or_else(|e| panic!("recovery failed at cut {cut}: {e}"));

    // Surviving record count: LSNs are dense from 1 and DDL logs nothing,
    // so the highest replayed LSN *is* the count of whole surviving records.
    let m = u64::try_from(ends.iter().filter(|(end, _)| *end <= cut).count()).unwrap();
    assert_eq!(
        report.last_lsn, m,
        "cut {cut}: wrong surviving-record count"
    );

    let header = u64::try_from(SEGMENT_HEADER_LEN).unwrap();
    let at_boundary = cut == header || ends.iter().any(|(end, _)| *end == cut);
    if at_boundary {
        assert!(
            report.wal_truncated.is_none(),
            "cut {cut} is a record boundary, nothing to truncate: {:?}",
            report.wal_truncated
        );
    } else {
        assert!(
            report.wal_truncated.is_some(),
            "cut {cut} tears a record; recovery must report the truncation"
        );
    }

    match twin_at(m) {
        Some(twin) => {
            assert_eq!(
                rec.state_bytes().unwrap(),
                twin.state_bytes().unwrap(),
                "cut {cut} (lsn {m}): recovered state differs from uncrashed twin"
            );
        }
        None => {
            // The cut split an update's delete/insert pair: no step-granular
            // twin exists, so check record-granularly.
            let oracle = catalog_at(m);
            assert_eq!(
                encode_catalog(rec.database().catalog()).unwrap(),
                encode_catalog(&oracle).unwrap(),
                "cut {cut} (lsn {m}): recovered catalog differs from record oracle"
            );
            assert!(
                verify_against_recompute(rec.view(EAGER).unwrap(), rec.database().catalog()),
                "cut {cut} (lsn {m}): eager view fails the recompute oracle"
            );
            let bytes = rec.state_bytes().unwrap();
            let (again, _) = DurableDatabase::open(rec.into_vfs(), policy()).unwrap();
            assert_eq!(
                again.state_bytes().unwrap(),
                bytes,
                "cut {cut} (lsn {m}): recovery is not idempotent"
            );
        }
    }
}

/// Sanity-check the assumptions the matrix leans on: one live segment
/// starting at LSN 1, densely numbered records, and a workload whose final
/// state passes the recompute oracle.
#[test]
fn workload_emits_the_expected_log() {
    let mut d = build(MemVfs::new());
    for step in steps() {
        apply(&mut d, &step);
    }
    assert_eq!(d.last_lsn(), total_records());
    assert!(verify_against_recompute(
        d.view(EAGER).unwrap(),
        d.database().catalog()
    ));
    let vfs = d.into_vfs();
    let segment = newest_segment(&vfs);
    assert_eq!(segment, "wal-0000000000000001.log");
    let lsns: Vec<u64> = boundaries(&vfs, &segment).iter().map(|&(_, l)| l).collect();
    assert_eq!(lsns, (1..=total_records()).collect::<Vec<u64>>());
}

/// Fast subset: every record boundary, plus the empty-log boundary at the
/// end of the segment header.
#[test]
fn recovery_at_every_record_boundary_is_byte_identical() {
    let full = full_run_vfs();
    let segment = newest_segment(&full);
    let ends = boundaries(&full, &segment);
    check_cut(
        &full,
        &segment,
        u64::try_from(SEGMENT_HEADER_LEN).unwrap(),
        &ends,
    );
    for &(end, _) in &ends {
        check_cut(&full, &segment, end, &ends);
    }
}

/// Fast subset: a few torn (mid-record) cuts, including one inside each
/// half of an update pair, must be detected and cleanly truncated.
#[test]
fn torn_tails_are_detected_and_truncated() {
    let full = full_run_vfs();
    let segment = newest_segment(&full);
    let ends = boundaries(&full, &segment);
    let header = u64::try_from(SEGMENT_HEADER_LEN).unwrap();
    // One byte into the first record, the middle of the update's delete
    // record (lsn 5), and one byte shy of the final record's end.
    let starts: Vec<u64> = std::iter::once(header)
        .chain(ends.iter().map(|&(end, _)| end))
        .collect();
    let cuts = [
        starts[0] + 1,
        (starts[4] + ends[4].0) / 2,
        ends[ends.len() - 1].0 - 1,
    ];
    for cut in cuts {
        check_cut(&full, &segment, cut, &ends);
    }
}

/// Exhaustive matrix: every record boundary plus three torn offsets inside
/// every record, and cuts inside the segment header itself.
#[test]
#[ignore = "exhaustive crash matrix; run via --ignored in CI"]
fn crash_matrix_full() {
    let full = full_run_vfs();
    let segment = newest_segment(&full);
    let ends = boundaries(&full, &segment);
    let header = u64::try_from(SEGMENT_HEADER_LEN).unwrap();

    // Cuts inside the segment header invalidate the whole file; recovery
    // must still come up, with an empty log.
    for cut in [0, 1, header / 2, header - 1] {
        check_cut(&full, &segment, cut, &ends);
    }

    let mut prev = header;
    for &(end, lsn) in &ends {
        check_cut(&full, &segment, end, &ends);
        for cut in [prev + 1, (prev + end) / 2, end - 1] {
            if cut > prev && cut < end {
                check_cut(&full, &segment, cut, &ends);
            } else {
                panic!("record {lsn} shorter than 2 bytes?");
            }
        }
        prev = end;
    }
}

/// Seeded fault-injection sweep: run the workload through a [`FaultFile`]
/// that drops fsyncs, tears the tail, and flips bits, then recover and hold
/// the recovered state to the same oracles as the deterministic matrix.
fn fuzz_sweep(cases: usize, seed: u64) {
    let clean = full_run_vfs();
    let segment = newest_segment(&clean);
    let wal_len = clean.len(&segment).unwrap();
    let strat = fault_spec(wal_len + 32);
    let mut rng = Rng::seed_from_u64(seed);

    for case in 0..cases {
        let spec = strat.generate(&mut rng);
        let mut d = build(FaultFile::new(MemVfs::new(), spec));
        for step in steps() {
            apply(&mut d, &step);
        }
        let crashed = d.into_vfs().crash();
        let (rec, report) = DurableDatabase::open(crashed, policy())
            .unwrap_or_else(|e| panic!("case {case} {spec:?}: recovery failed: {e}"));
        let m = report.last_lsn;
        assert!(
            m <= total_records(),
            "case {case} {spec:?}: impossible LSN {m}"
        );
        match twin_at(m) {
            Some(twin) => assert_eq!(
                rec.state_bytes().unwrap(),
                twin.state_bytes().unwrap(),
                "case {case} {spec:?} (lsn {m}): state differs from twin"
            ),
            None => {
                let oracle = catalog_at(m);
                assert_eq!(
                    encode_catalog(rec.database().catalog()).unwrap(),
                    encode_catalog(&oracle).unwrap(),
                    "case {case} {spec:?} (lsn {m}): catalog differs from record oracle"
                );
                assert!(
                    verify_against_recompute(rec.view(EAGER).unwrap(), rec.database().catalog()),
                    "case {case} {spec:?} (lsn {m}): eager view fails recompute"
                );
                let bytes = rec.state_bytes().unwrap();
                let (again, _) = DurableDatabase::open(rec.into_vfs(), policy()).unwrap();
                assert_eq!(
                    again.state_bytes().unwrap(),
                    bytes,
                    "case {case} {spec:?} (lsn {m}): recovery not idempotent"
                );
            }
        }
    }
}

#[test]
fn recovery_fuzz_smoke() {
    fuzz_sweep(32, 0xC4A5_11E5);
}

#[test]
#[ignore = "200-case recovery fuzz sweep; run via --ignored in CI"]
fn recovery_fuzz_sweep() {
    fuzz_sweep(200, 0xC4A5_11E5);
}
