//! Property-based tests: randomized SPOJ views over randomized databases,
//! maintained through randomized update sequences, must always equal a full
//! recompute — under every maintenance policy and for the GK baseline.

use ojv_testkit::{property, strategy, vec_of, Rng, Strategy};

use ojv::core::baseline::{maintain_gk, maintain_recompute};
use ojv::core::maintain::{maintain, verify_against_recompute};
use ojv::core::materialize::MaterializedView;
use ojv::prelude::*;
use ojv::rel::{Column, DataType};

const TABLES: [&str; 4] = ["ta", "tb", "tc", "td"];

/// Build a catalog of `n_tables` generic tables `(id PK, jc, payload)`.
fn catalog(n_tables: usize) -> Catalog {
    let mut c = Catalog::new();
    for name in TABLES.iter().take(n_tables) {
        c.create_table(
            name,
            vec![
                Column::new(name, "id", DataType::Int, false),
                Column::new(name, "jc", DataType::Int, false),
                Column::new(name, "payload", DataType::Int, true),
            ],
            &["id"],
        )
        .unwrap();
    }
    c
}

/// Build a random SPOJ tree over the first `n_tables` tables, seeded.
///
/// The tree is a random-shaped binary join over a random permutation of the
/// tables; each join's predicate connects one table from the left subtree
/// with one from the right on `jc = jc`, optionally adding a constant
/// conjunct; join kinds are uniformly random SPOJ kinds; a top-level
/// selection is added sometimes.
fn random_view(seed: u64, n_tables: usize) -> ViewDef {
    let mut rng = Rng::seed_from_u64(seed);
    let mut names: Vec<&str> = TABLES[..n_tables].to_vec();
    // Random permutation.
    for i in (1..names.len()).rev() {
        names.swap(i, rng.gen_range(0..=i));
    }
    // Each entry carries (expr, tables inside).
    let mut forest: Vec<(ViewExpr, Vec<&str>)> = names
        .iter()
        .map(|n| (ViewExpr::table(n), vec![*n]))
        .collect();
    while forest.len() > 1 {
        let right = forest.pop().expect("len > 1");
        let left = forest.pop().expect("len > 1");
        let lt = left.1[rng.gen_range(0..left.1.len())];
        let rt = right.1[rng.gen_range(0..right.1.len())];
        let mut on = vec![col_eq(lt, "jc", rt, "jc")];
        if rng.gen_bool(0.3) {
            on.push(col_cmp(rt, "jc", CmpOp::Le, rng.gen_range(0i64..4)));
        }
        let kind = match rng.gen_range(0..4) {
            0 => JoinKind::Inner,
            1 => JoinKind::LeftOuter,
            2 => JoinKind::RightOuter,
            _ => JoinKind::FullOuter,
        };
        let mut tables = left.1;
        tables.extend(right.1);
        forest.push((ViewExpr::join(kind, on, left.0, right.0), tables));
    }
    let (mut expr, tables) = forest.pop().expect("one tree left");
    if rng.gen_bool(0.25) {
        let t = tables[rng.gen_range(0..tables.len())];
        expr = ViewExpr::select(
            vec![col_cmp(t, "jc", CmpOp::Ge, rng.gen_range(0i64..2))],
            expr,
        );
    }
    ViewDef::new("rand_view", expr)
}

/// Populate each table with `rows_per_table` rows (ids 1.., jc in 0..4).
fn populate(c: &mut Catalog, n_tables: usize, rows_per_table: usize, seed: u64) {
    let mut rng = Rng::seed_from_u64(seed ^ 0xfeed);
    for name in TABLES.iter().take(n_tables) {
        let rows: Vec<Row> = (1..=rows_per_table as i64)
            .map(|i| {
                vec![
                    Datum::Int(i),
                    Datum::Int(rng.gen_range(0..4)),
                    Datum::Int(rng.gen_range(0..100)),
                ]
            })
            .collect();
        c.insert(name, rows).unwrap();
    }
}

/// One randomized operation against a random table.
#[derive(Debug, Clone)]
enum Op {
    Insert { table: usize, jc: i64 },
    Delete { table: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    strategy(
        |rng: &mut Rng| {
            if rng.gen_bool(0.5) {
                Op::Insert {
                    table: rng.gen_range(0usize..4),
                    jc: rng.gen_range(0i64..4),
                }
            } else {
                Op::Delete {
                    table: rng.gen_range(0usize..4),
                }
            }
        },
        |op: &Op| match op {
            Op::Insert { table, jc } => {
                let mut out = Vec::new();
                if *table > 0 {
                    out.push(Op::Insert {
                        table: table - 1,
                        jc: *jc,
                    });
                }
                if *jc > 0 {
                    out.push(Op::Insert {
                        table: *table,
                        jc: jc - 1,
                    });
                }
                out
            }
            Op::Delete { table } if *table > 0 => vec![Op::Delete { table: table - 1 }],
            Op::Delete { .. } => Vec::new(),
        },
    )
}

fn policies() -> Vec<MaintenancePolicy> {
    vec![
        MaintenancePolicy::paper(),
        MaintenancePolicy::naive(),
        MaintenancePolicy {
            secondary: SecondaryStrategy::FromView,
            left_deep: false,
            ..Default::default()
        },
        MaintenancePolicy {
            secondary: SecondaryStrategy::FromBase,
            use_fk: false,
            ..Default::default()
        },
        MaintenancePolicy {
            combine_secondary: true,
            ..Default::default()
        },
        // Morsel-parallel executor, forced past the cutoff: results must be
        // bit-identical to the serial policies above.
        MaintenancePolicy {
            parallel: ParallelSpec::threads(2).with_morsel_rows(7).with_cutoff(0),
            ..Default::default()
        },
    ]
}

property! {
    /// Incremental maintenance ≡ recompute for random views, random data,
    /// random update sequences, every policy, and the GK baseline.
    #[cases = 48]
    fn maintenance_equals_recompute(
        view_seed in 0u64..500,
        data_seed in 0u64..500,
        n_tables in 2usize..=4,
        ops in vec_of(op_strategy(), 1..8),
    ) {
        let mut base = catalog(n_tables);
        populate(&mut base, n_tables, 6, data_seed);
        let def = random_view(view_seed, n_tables);

        let mut variants: Vec<(String, Catalog, MaterializedView, Option<MaintenancePolicy>)> =
            Vec::new();
        for (i, p) in policies().into_iter().enumerate() {
            let c = base.clone();
            let v = MaterializedView::create(&c, def.clone()).unwrap();
            variants.push((format!("policy{i}"), c, v, Some(p)));
        }
        {
            let c = base.clone();
            let v = MaterializedView::create(&c, def.clone()).unwrap();
            variants.push(("gk".into(), c, v, None));
        }

        let mut next_id = 1000i64;
        let mut rng = Rng::seed_from_u64(view_seed ^ data_seed);
        for op in &ops {
            // Resolve the op into a concrete update (same for all variants).
            let (table, is_insert, row, key) = match op {
                Op::Insert { table, jc } => {
                    let t = TABLES[*table % n_tables];
                    next_id += 1;
                    (
                        t,
                        true,
                        Some(vec![Datum::Int(next_id), Datum::Int(*jc), Datum::Int(7)]),
                        None,
                    )
                }
                Op::Delete { table } => {
                    let t = TABLES[*table % n_tables];
                    let tbl = base.table(t).unwrap();
                    if tbl.is_empty() {
                        continue;
                    }
                    let victim = tbl.row_ref(rng.gen_range(0..tbl.len())).datum(0);
                    (t, false, None, Some(vec![victim]))
                }
            };
            // Apply to the reference catalog first to keep `base` in sync.
            if is_insert {
                base.insert(table, vec![row.clone().unwrap()]).unwrap();
            } else {
                base.delete(table, &[key.clone().unwrap()]).unwrap();
            }
            for (label, c, v, policy) in variants.iter_mut() {
                let update = if is_insert {
                    c.insert(table, vec![row.clone().unwrap()]).unwrap()
                } else {
                    c.delete(table, &[key.clone().unwrap()]).unwrap()
                };
                match policy {
                    Some(p) => {
                        maintain(v, c, &update, p).unwrap();
                    }
                    None => {
                        maintain_gk(v, c, &update, &MaintenancePolicy::paper()).unwrap();
                    }
                }
                assert!(
                    verify_against_recompute(v, c),
                    "{label} diverged on view_seed={view_seed} data_seed={data_seed} op={op:?}"
                );
            }
        }
    }

    /// The recompute "baseline" maintains correctly too (it is the oracle
    /// used elsewhere, so make sure it converges on random input).
    #[cases = 48]
    fn recompute_baseline_self_consistent(
        view_seed in 0u64..200,
        data_seed in 0u64..200,
    ) {
        let mut c = catalog(3);
        populate(&mut c, 3, 5, data_seed);
        let def = random_view(view_seed, 3);
        let mut v = MaterializedView::create(&c, def).unwrap();
        let up = c
            .insert("ta", vec![vec![Datum::Int(999), Datum::Int(1), Datum::Null]])
            .unwrap();
        maintain_recompute(&mut v, &c, &up, &MaintenancePolicy::paper()).unwrap();
        assert!(verify_against_recompute(&v, &c));
    }

    /// Term cardinalities always partition the view, for any random view.
    #[cases = 48]
    fn terms_partition_random_views(
        view_seed in 0u64..300,
        data_seed in 0u64..300,
    ) {
        let mut c = catalog(4);
        populate(&mut c, 4, 6, data_seed);
        let def = random_view(view_seed, 4);
        let v = MaterializedView::create(&c, def).unwrap();
        let total: usize = v.term_cardinalities().iter().map(|(_, n)| n).sum();
        assert_eq!(total, v.len());
    }
}
