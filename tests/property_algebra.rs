//! Property-based tests for the algebraic core over *evaluated* semantics:
//! Theorem 1 (normal form ≡ direct evaluation), term disjointness, and
//! plan-transformation equivalences (derivation, left-deep conversion,
//! SimplifyTree) on random views and data.

use ojv_testkit::{property, Rng};

use ojv::algebra::{derive_primary_delta, normalize_unpruned, to_left_deep, Expr, TableSet};
use ojv::core::analyze::analyze;
use ojv::exec::{eval_expr, ops, DeltaInput, ExecCtx};
use ojv::prelude::*;
use ojv::rel::{Column, DataType, Relation};

const TABLES: [&str; 4] = ["ta", "tb", "tc", "td"];

fn catalog(n: usize) -> Catalog {
    let mut c = Catalog::new();
    for name in TABLES.iter().take(n) {
        c.create_table(
            name,
            vec![
                Column::new(name, "id", DataType::Int, false),
                Column::new(name, "jc", DataType::Int, false),
            ],
            &["id"],
        )
        .unwrap();
    }
    c
}

fn populate(c: &mut Catalog, n: usize, seed: u64) {
    let mut rng = Rng::seed_from_u64(seed);
    for name in TABLES.iter().take(n) {
        let rows: Vec<Row> = (1..=6i64)
            .map(|i| vec![Datum::Int(i), Datum::Int(rng.gen_range(0..3))])
            .collect();
        c.insert(name, rows).unwrap();
    }
}

fn random_view(seed: u64, n: usize) -> ViewDef {
    let mut rng = Rng::seed_from_u64(seed);
    let mut forest: Vec<(ViewExpr, Vec<&str>)> = TABLES[..n]
        .iter()
        .map(|t| (ViewExpr::table(t), vec![*t]))
        .collect();
    while forest.len() > 1 {
        let right = forest.pop().expect("len > 1");
        let left = forest.pop().expect("len > 1");
        let lt = left.1[rng.gen_range(0..left.1.len())];
        let rt = right.1[rng.gen_range(0..right.1.len())];
        let kind = match rng.gen_range(0..4) {
            0 => JoinKind::Inner,
            1 => JoinKind::LeftOuter,
            2 => JoinKind::RightOuter,
            _ => JoinKind::FullOuter,
        };
        let mut tables = left.1;
        tables.extend(right.1);
        forest.push((
            ViewExpr::join(kind, vec![col_eq(lt, "jc", rt, "jc")], left.0, right.0),
            tables,
        ));
    }
    ViewDef::new("v", forest.pop().expect("single tree").0)
}

/// Evaluate a term (σ over a cross join) naively.
fn eval_term(
    ctx: &ExecCtx<'_>,
    layout: &ojv::exec::ViewLayout,
    term: &ojv::algebra::Term,
) -> Vec<Row> {
    let mut rows: Vec<Row> = vec![vec![Datum::Null; layout.width()]];
    for t in term.tables.iter() {
        let table_rows = eval_expr(ctx, &Expr::Table(t)).unwrap();
        let mut next = Vec::new();
        for r in &rows {
            for tr in &table_rows {
                next.push(ops::merge_rows(layout, r, tr, TableSet::singleton(t)));
            }
        }
        rows = next;
    }
    ops::filter(layout, &term.pred, rows)
}

property! {
    /// Theorem 1: `E = E_1 ⊕ … ⊕ E_n` — evaluating the normal form's terms
    /// and gluing with subsumption cleanup equals direct evaluation.
    #[cases = 40]
    fn normal_form_evaluates_to_the_view(
        view_seed in 0u64..400,
        data_seed in 0u64..400,
        n in 2usize..=4,
    ) {
        let mut c = catalog(n);
        populate(&mut c, n, data_seed);
        let def = random_view(view_seed, n);
        let a = analyze(&c, &def).unwrap();
        let ctx = ExecCtx::new(&c, &a.layout);

        let direct = eval_expr(&ctx, &a.expr).unwrap();

        let terms = normalize_unpruned(&a.expr);
        let mut all: Vec<Row> = Vec::new();
        for term in &terms {
            all.extend(eval_term(&ctx, &a.layout, term));
        }
        let glued = ops::clean_dup(&a.layout, all);

        let s = a.layout.wide_schema().clone();
        let ra = Relation::new(s.clone(), direct);
        let rb = Relation::new(s, glued);
        assert!(ra.bag_eq(&rb), "JDNF evaluation diverged from direct evaluation");
    }

    /// Net contributions are disjoint: every view row matches exactly one
    /// term's source-set pattern.
    #[cases = 40]
    fn each_view_row_matches_exactly_one_term(
        view_seed in 0u64..300,
        data_seed in 0u64..300,
    ) {
        let mut c = catalog(3);
        populate(&mut c, 3, data_seed);
        let def = random_view(view_seed, 3);
        let a = analyze(&c, &def).unwrap();
        let ctx = ExecCtx::new(&c, &a.layout);
        let rows = eval_expr(&ctx, &a.expr).unwrap();
        for row in &rows {
            let matching = a
                .terms
                .iter()
                .filter(|t| a.layout.row_matches_term(t.tables, row))
                .count();
            assert_eq!(matching, 1);
        }
    }

    /// The ΔV^D plan transformations preserve results: bushy derivation vs
    /// left-deep conversion give identical delta rows for a fresh insert.
    #[cases = 40]
    fn left_deep_conversion_preserves_delta(
        view_seed in 0u64..400,
        data_seed in 0u64..400,
        t_idx in 0usize..3,
    ) {
        let mut c = catalog(3);
        populate(&mut c, 3, data_seed);
        let def = random_view(view_seed, 3);
        let a = analyze(&c, &def).unwrap();
        let table = TABLES[t_idx];
        let tid = a.layout.table_id(table).unwrap();

        let delta_rel = Relation::new(
            c.table(table).unwrap().schema().clone(),
            vec![
                vec![Datum::Int(100), Datum::Int(1)],
                vec![Datum::Int(101), Datum::Int(2)],
            ],
        );
        // The delta expression references other tables' current state plus
        // ΔT; insert the rows so FK-free state is consistent either way.
        c.insert(table, delta_rel.rows().to_vec()).unwrap();

        let ctx = ExecCtx::with_delta(
            &c,
            &a.layout,
            DeltaInput { table: tid, rows: &delta_rel },
        );
        let bushy = derive_primary_delta(&a.expr, tid);
        let left_deep = to_left_deep(bushy.clone());
        let r1 = eval_expr(&ctx, &bushy).unwrap();
        let r2 = eval_expr(&ctx, &left_deep).unwrap();
        let s = a.layout.wide_schema().clone();
        assert!(
            Relation::new(s.clone(), r1).bag_eq(&Relation::new(s, r2)),
            "left-deep plan diverged from bushy plan\nbushy: {bushy:?}"
        );
    }

    /// The primary delta contains exactly the directly-affected terms' rows:
    /// every ΔV^D row's source set includes the updated table.
    #[cases = 40]
    fn primary_delta_rows_contain_updated_table(
        view_seed in 0u64..200,
        data_seed in 0u64..200,
    ) {
        let mut c = catalog(3);
        populate(&mut c, 3, data_seed);
        let def = random_view(view_seed, 3);
        let a = analyze(&c, &def).unwrap();
        let tid = a.layout.table_id("tb").unwrap();
        let delta_rel = Relation::new(
            c.table("tb").unwrap().schema().clone(),
            vec![vec![Datum::Int(55), Datum::Int(0)]],
        );
        c.insert("tb", delta_rel.rows().to_vec()).unwrap();
        let ctx = ExecCtx::with_delta(&c, &a.layout, DeltaInput { table: tid, rows: &delta_rel });
        let plan = to_left_deep(derive_primary_delta(&a.expr, tid));
        for row in eval_expr(&ctx, &plan).unwrap() {
            assert!(!a.layout.is_null_on(tid, &row));
            // And the row really is the delta row, not an existing one.
            assert_eq!(row[a.layout.slot(tid).offset].clone(), Datum::Int(55));
        }
    }
}
