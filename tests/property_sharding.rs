//! Property suite for the sharded engine.
//!
//! Two claims, both differential:
//!
//! 1. **Shard-count transparency** — the same random insert/delete/UPDATE
//!    sequence driven through [`ShardedDatabase`] at shard counts 1, 2, 3,
//!    and 8 ends in byte-identical [`ShardedDatabase::state_bytes`], every
//!    shard's view verifies against its own recompute, and constraint
//!    rejections (duplicate keys, FK restricts) are identical at every
//!    shard count. Failing sequences shrink toward shorter, simpler ones.
//!
//! 2. **Group-commit floor convergence** — for every subset of shards whose
//!    WALs made it to stable storage before a crash (the coordinator's
//!    group record did not), recovery converges on the durable group-commit
//!    floor: the torn commit disappears completely, whichever shards kept
//!    fragments of it, and the reopened database keeps committing.

use ojv::prelude::*;
use ojv_testkit::{property, strategy, vec_of, FaultFile, FaultSpec, Rng, Strategy};

use ojv::rel::{Column, DataType};

/// Parent/child schema where the child's key *starts with* the parent key,
/// so routing both tables by `pid` is key-aligned and the join
/// `child.pid = parent.pid` is shard-local.
fn schema() -> Catalog {
    let mut c = Catalog::new();
    c.create_table(
        "parent",
        vec![
            Column::new("parent", "pid", DataType::Int, false),
            Column::new("parent", "pdata", DataType::Int, true),
        ],
        &["pid"],
    )
    .unwrap();
    c.create_table(
        "child",
        vec![
            Column::new("child", "pid", DataType::Int, false),
            Column::new("child", "cid", DataType::Int, false),
            Column::new("child", "cdata", DataType::Int, true),
        ],
        &["pid", "cid"],
    )
    .unwrap();
    c.add_foreign_key("fk_child_parent", "child", &["pid"], "parent")
        .unwrap();
    c
}

fn routing() -> RoutingSpec {
    RoutingSpec::new()
        .table("parent", &["pid"])
        .table("child", &["pid"])
}

/// The maintained views: a left-outer and a full-outer join over the
/// aligned key, the second with a non-key filter (predicates don't affect
/// alignment; only the equality atoms do).
fn views() -> Vec<ViewDef> {
    vec![
        ViewDef::new(
            "pc_lo",
            ViewExpr::left_outer(
                vec![col_eq("parent", "pid", "child", "pid")],
                ViewExpr::table("parent"),
                ViewExpr::table("child"),
            ),
        ),
        ViewDef::new(
            "pc_fo",
            ViewExpr::full_outer(
                vec![
                    col_eq("parent", "pid", "child", "pid"),
                    col_cmp("child", "cdata", CmpOp::Ge, 10i64),
                ],
                ViewExpr::table("parent"),
                ViewExpr::table("child"),
            ),
        ),
    ]
}

fn sharded(n: usize) -> ShardedDatabase {
    let mut db = ShardedDatabase::new(&schema(), n, routing()).unwrap();
    for def in views() {
        db.create_view(def).unwrap();
    }
    db
}

/// One randomized facade operation. Indices pick from the driver's mirror
/// of live rows (modulo its size), so every generated op is meaningful for
/// any database state and shrinks toward index 0.
#[derive(Debug, Clone)]
enum Op {
    InsertParent {
        pdata: i64,
    },
    InsertChild {
        parent: usize,
        cdata: i64,
    },
    DeleteChild {
        child: usize,
    },
    /// Attempted on an *arbitrary* parent: with children it must be
    /// rejected (FK restrict) identically at every shard count, without it
    /// must succeed everywhere.
    DeleteParent {
        parent: usize,
    },
    UpdateChild {
        child: usize,
        cdata: i64,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    strategy(
        |rng: &mut Rng| match rng.gen_range(0..5) {
            0 => Op::InsertParent {
                pdata: rng.gen_range(0i64..40),
            },
            1 => Op::InsertChild {
                parent: rng.gen_range(0usize..8),
                cdata: rng.gen_range(0i64..40),
            },
            2 => Op::DeleteChild {
                child: rng.gen_range(0usize..8),
            },
            3 => Op::DeleteParent {
                parent: rng.gen_range(0usize..8),
            },
            _ => Op::UpdateChild {
                child: rng.gen_range(0usize..8),
                cdata: rng.gen_range(0i64..40),
            },
        },
        |op: &Op| match op {
            Op::InsertParent { pdata } if *pdata > 0 => {
                vec![Op::InsertParent { pdata: pdata / 2 }]
            }
            Op::InsertChild { parent, cdata } => {
                let mut out = Vec::new();
                if *parent > 0 {
                    out.push(Op::InsertChild {
                        parent: parent - 1,
                        cdata: *cdata,
                    });
                }
                if *cdata > 0 {
                    out.push(Op::InsertChild {
                        parent: *parent,
                        cdata: cdata / 2,
                    });
                }
                out
            }
            Op::DeleteChild { child } if *child > 0 => {
                vec![Op::DeleteChild { child: child - 1 }]
            }
            Op::DeleteParent { parent } if *parent > 0 => {
                vec![Op::DeleteParent { parent: parent - 1 }]
            }
            Op::UpdateChild { child, cdata } => {
                let mut out = Vec::new();
                if *child > 0 {
                    out.push(Op::UpdateChild {
                        child: child - 1,
                        cdata: *cdata,
                    });
                }
                if *cdata > 0 {
                    out.push(Op::UpdateChild {
                        child: *child,
                        cdata: cdata / 2,
                    });
                }
                out
            }
            _ => Vec::new(),
        },
    )
}

/// Shard counts every differential assertion runs at. 1 is the serial
/// twin; 3 exercises non-power-of-two routing; 8 leaves most shards nearly
/// empty on small sequences.
const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 8];

property! {
    /// Random op sequences end byte-identical at every shard count, with
    /// every shard's views verified against recompute and constraint
    /// rejections agreeing across shard counts.
    #[cases = 32]
    fn shard_count_is_transparent(
        seed in 0u64..10_000,
        ops in vec_of(op_strategy(), 1..14),
    ) {
        let mut dbs: Vec<ShardedDatabase> = SHARD_COUNTS.iter().map(|&n| sharded(n)).collect();
        dbs[3].parallel_shards = true; // the 8-shard twin uses scoped threads

        // Driver-side mirror of live rows, advanced only when ops succeed.
        let mut parents: Vec<i64> = Vec::new();
        let mut children: Vec<(i64, i64)> = Vec::new();
        let (mut next_pid, mut next_cid) = (1i64, 1i64);

        for op in &ops {
            // Resolve the op against the mirror into one concrete call made
            // identically on every twin.
            enum Call {
                Insert(&'static str, Row),
                Delete(&'static str, Vec<Datum>),
                Update(&'static str, Vec<Datum>, Row),
            }
            let call = match op {
                Op::InsertParent { pdata } => {
                    next_pid += 1;
                    Call::Insert("parent", vec![Datum::Int(next_pid), Datum::Int(*pdata)])
                }
                Op::InsertChild { parent, cdata } => {
                    if parents.is_empty() {
                        continue;
                    }
                    let pid = parents[parent % parents.len()];
                    next_cid += 1;
                    Call::Insert(
                        "child",
                        vec![Datum::Int(pid), Datum::Int(next_cid), Datum::Int(*cdata)],
                    )
                }
                Op::DeleteChild { child } => {
                    if children.is_empty() {
                        continue;
                    }
                    let (pid, cid) = children[child % children.len()];
                    Call::Delete("child", vec![Datum::Int(pid), Datum::Int(cid)])
                }
                Op::DeleteParent { parent } => {
                    if parents.is_empty() {
                        continue;
                    }
                    let pid = parents[parent % parents.len()];
                    Call::Delete("parent", vec![Datum::Int(pid)])
                }
                Op::UpdateChild { child, cdata } => {
                    if children.is_empty() {
                        continue;
                    }
                    let (pid, cid) = children[child % children.len()];
                    Call::Update(
                        "child",
                        vec![Datum::Int(pid), Datum::Int(cid)],
                        vec![Datum::Int(pid), Datum::Int(cid), Datum::Int(*cdata)],
                    )
                }
            };

            // Apply to every twin; all must agree on success vs rejection.
            let mut verdicts: Vec<bool> = Vec::new();
            for db in dbs.iter_mut() {
                let ok = match &call {
                    Call::Insert(t, row) => db.insert(t, vec![row.clone()]).is_ok(),
                    Call::Delete(t, key) => db.delete(t, std::slice::from_ref(key)).is_ok(),
                    Call::Update(t, key, row) => {
                        db.update(t, std::slice::from_ref(key), vec![row.clone()]).is_ok()
                    }
                };
                verdicts.push(ok);
            }
            assert!(
                verdicts.iter().all(|&v| v == verdicts[0]),
                "twins disagree on op outcome: {verdicts:?} for {op:?} (seed={seed})"
            );

            // Advance the mirror only on success.
            if verdicts[0] {
                match (&call, op) {
                    (Call::Insert(_, _), Op::InsertParent { .. }) => parents.push(next_pid),
                    (Call::Insert(_, row), Op::InsertChild { .. }) => {
                        let (Datum::Int(pid), Datum::Int(cid)) = (&row[0], &row[1]) else {
                            unreachable!()
                        };
                        children.push((*pid, *cid));
                    }
                    (Call::Delete(_, key), Op::DeleteChild { .. }) => {
                        let (Datum::Int(pid), Datum::Int(cid)) = (&key[0], &key[1]) else {
                            unreachable!()
                        };
                        children.retain(|c| *c != (*pid, *cid));
                    }
                    (Call::Delete(_, key), Op::DeleteParent { .. }) => {
                        let Datum::Int(pid) = &key[0] else { unreachable!() };
                        parents.retain(|p| p != pid);
                    }
                    _ => {}
                }
            }
        }

        // Final differential check: byte-identical state at every shard
        // count, and every shard's views verify against recompute.
        let reference = dbs[0].state_bytes().unwrap();
        for (db, &n) in dbs.iter().zip(&SHARD_COUNTS) {
            assert_eq!(
                db.state_bytes().unwrap(),
                reference,
                "{n}-shard state diverged from the 1-shard twin (seed={seed}, ops={ops:?})"
            );
            for shard in db.shards() {
                for def in views() {
                    let v = shard.view(def.name()).unwrap();
                    assert!(
                        ojv::core::maintain::verify_against_recompute(v, shard.catalog()),
                        "{n}-shard view {} diverged from recompute (seed={seed})",
                        def.name()
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Crash-point matrix: partial shard-WAL durability.
// ---------------------------------------------------------------------------

/// Build a durable sharded database over `n` plain in-memory filesystems,
/// commit a couple of batches, and return its durable file sets plus the
/// committed floor state.
fn committed_floor(n: usize) -> (Vec<MemVfs>, MemVfs, Vec<u8>, u64) {
    let shard_vfs: Vec<MemVfs> = (0..n).map(|_| MemVfs::new()).collect();
    let policy = MaintenancePolicy {
        fsync: FsyncPolicy::Always,
        ..Default::default()
    };
    let mut db =
        ShardedDurableDatabase::create(shard_vfs, MemVfs::new(), &schema(), routing(), policy)
            .unwrap();
    for def in views() {
        db.create_view(def).unwrap();
    }
    let mut rows = Vec::new();
    for pid in 1..=12i64 {
        rows.push(vec![Datum::Int(pid), Datum::Int(pid * 3)]);
    }
    db.insert("parent", rows).unwrap();
    let mut kids = Vec::new();
    for cid in 1..=18i64 {
        kids.push(vec![
            Datum::Int(cid % 12 + 1),
            Datum::Int(cid),
            Datum::Int(cid * 2),
        ]);
    }
    db.insert("child", kids).unwrap();
    db.sync().unwrap();
    let floor_state = db.state_bytes().unwrap();
    let lsn = db.commit_lsn();
    let (shards, coord) = db.into_vfs();
    (shards, coord, floor_state, lsn)
}

/// For every subset of shards whose WAL syncs survive, tear one commit in
/// half: the surviving shards keep their slice of the batch, the others
/// lose theirs, and the coordinator's group record never becomes durable.
/// Recovery must converge on the pre-crash floor in every case.
#[test]
fn torn_group_commit_converges_on_the_floor_for_every_sync_subset() {
    const N: usize = 3;
    for subset in 0u32..(1 << N) {
        let (shards, coord, floor_state, floor_lsn) = committed_floor(N);

        // Wrap each durable file set in a fault injector: shards outside
        // the subset drop their syncs for the torn commit, and the
        // coordinator always does (its group record is the commit point —
        // if it survived, the commit would too).
        let drop = |dropped: bool| FaultSpec {
            drop_syncs: dropped,
            truncate_back: 0,
            flip: None,
        };
        let shard_vfs: Vec<FaultFile> = shards
            .into_iter()
            .enumerate()
            .map(|(s, vfs)| FaultFile::new(vfs, drop(subset & (1 << s) == 0)))
            .collect();
        let coord_vfs = FaultFile::new(coord, drop(true));
        let policy = MaintenancePolicy {
            fsync: FsyncPolicy::Always,
            ..Default::default()
        };
        let (mut db, report) = ShardedDurableDatabase::open(shard_vfs, coord_vfs, policy).unwrap();
        assert_eq!(
            report.group_lsn, floor_lsn,
            "clean reopen, subset={subset:#b}"
        );
        assert_eq!(db.state_bytes().unwrap(), floor_state);

        // The torn commit: touches every shard (pids 101.. spread by hash).
        let rows: Vec<Row> = (101..=112i64)
            .map(|pid| vec![Datum::Int(pid), Datum::Int(pid)])
            .collect();
        db.insert("parent", rows).unwrap();

        // Crash. Shards in the subset keep their slice of the commit as a
        // junk tail; the rest lose it; the group record is gone either way.
        let (shard_ff, coord_ff) = db.into_vfs();
        let crashed_shards: Vec<MemVfs> = shard_ff.into_iter().map(FaultFile::crash).collect();
        let crashed_coord = coord_ff.crash();

        let (mut db, report) =
            ShardedDurableDatabase::open(crashed_shards, crashed_coord, policy).unwrap();
        assert_eq!(
            report.group_lsn, floor_lsn,
            "recovery must land on the durable group floor, subset={subset:#b}"
        );
        assert_eq!(
            db.state_bytes().unwrap(),
            floor_state,
            "torn commit must vanish whichever shard WALs survived, subset={subset:#b}"
        );
        // Shards that synced their slice had tail records above the floor
        // to discard; shards that lost theirs did not.
        assert_eq!(
            report.discarded_records > 0,
            subset != 0,
            "discards come exactly from the surviving sync subset {subset:#b}"
        );

        // The survivor keeps committing: the same batch now commits fully
        // and durably, and survives a clean crash/reopen cycle.
        let rows: Vec<Row> = (101..=112i64)
            .map(|pid| vec![Datum::Int(pid), Datum::Int(pid)])
            .collect();
        db.insert("parent", rows).unwrap();
        db.sync().unwrap();
        let committed = db.state_bytes().unwrap();
        let lsn = db.commit_lsn();
        let (shards, coord) = db.into_vfs();
        let (db, report) = ShardedDurableDatabase::open(
            shards.iter().map(MemVfs::crash).collect(),
            coord.crash(),
            MaintenancePolicy {
                fsync: FsyncPolicy::Always,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.group_lsn, lsn, "subset={subset:#b}");
        assert_eq!(db.state_bytes().unwrap(), committed, "subset={subset:#b}");
    }
}

/// The recovered N-shard database is byte-identical to a 1-shard in-memory
/// twin that replayed only the committed prefix — recovery is exactly "the
/// group floor happened, nothing else did".
#[test]
fn recovery_matches_the_serial_twin_at_the_floor() {
    let (shards, coord, _, _) = committed_floor(4);
    let policy = MaintenancePolicy {
        fsync: FsyncPolicy::Always,
        ..Default::default()
    };
    let (db, _) = ShardedDurableDatabase::open(shards, coord, policy).unwrap();

    let mut twin = sharded(1);
    let mut rows = Vec::new();
    for pid in 1..=12i64 {
        rows.push(vec![Datum::Int(pid), Datum::Int(pid * 3)]);
    }
    twin.insert("parent", rows).unwrap();
    let mut kids = Vec::new();
    for cid in 1..=18i64 {
        kids.push(vec![
            Datum::Int(cid % 12 + 1),
            Datum::Int(cid),
            Datum::Int(cid * 2),
        ]);
    }
    twin.insert("child", kids).unwrap();

    assert_eq!(
        db.state_bytes().unwrap(),
        twin.state_bytes().unwrap(),
        "4-shard recovery must equal the 1-shard in-memory twin"
    );
}

/// Race-detector pass over the shard-merge path: eight parallel shard
/// workers maintain both views across several commits while the
/// vector-clock detector watches the fan-out, join, and coordinator-merge
/// happens-before edges. Under `--features concheck` the trace shim inside
/// the engine is live, so the assertion additionally requires recorded
/// events — proof the detector observed the run rather than an empty log.
#[test]
fn parallel_shard_merge_is_race_free() {
    use ojv_testkit::race;

    let detector = race::install("parallel_shard_merge");
    let mut db = sharded(8);
    db.parallel_shards = true;
    for round in 0..4i64 {
        let parents: Vec<Row> = (0..8)
            .map(|i| vec![Datum::Int(round * 8 + i), Datum::Int(i)])
            .collect();
        db.insert("parent", parents).unwrap();
        let children: Vec<Row> = (0..16)
            .map(|i| {
                vec![
                    Datum::Int(round * 8 + i % 8),
                    Datum::Int(round * 16 + i),
                    Datum::Int(i * 3),
                ]
            })
            .collect();
        db.insert("child", children).unwrap();
        let keys: Vec<Vec<Datum>> = (0..4)
            .map(|i| vec![Datum::Int(round * 8 + i % 8), Datum::Int(round * 16 + i)])
            .collect();
        db.delete("child", &keys).unwrap();
    }
    for shard in db.shards() {
        for def in views() {
            let v = shard.view(def.name()).unwrap();
            assert!(ojv::core::maintain::verify_against_recompute(
                v,
                shard.catalog()
            ));
        }
    }

    let report = detector.finish();
    report.assert_no_races();
    assert!(
        report.witness_cycle().is_none(),
        "lock order inverted on the shard-merge path: {:?}",
        report.witness_cycle()
    );
    if cfg!(feature = "concheck") {
        assert!(
            report.events > 0,
            "concheck feature is on but no trace events were recorded"
        );
    }
}
