//! Property tests for the snapshot registry's epoch-based reclamation:
//! arbitrary pin / release / commit sequences must never reclaim a pinned
//! version, must always reclaim unpinned dead versions, and must retain
//! nothing at all under a pin-free workload.

use ojv::prelude::*;
use ojv_core::fixtures;
use ojv_testkit::{property, strategy, vec_of, Rng, Strategy};

/// One abstract command; numeric arguments are resolved against the live
/// state inside the property body (so every generated sequence is valid).
#[derive(Debug, Clone, PartialEq)]
enum Cmd {
    /// Apply one maintenance batch (advances the LSN by one).
    Commit,
    /// Pin the newest version and remember its bytes.
    Pin,
    /// Pin a historical version chosen by `pick` among the reachable LSNs.
    PinAt { pick: u8 },
    /// Drop the pin chosen by `pick` among the held pins.
    Release { pick: u8 },
}

fn cmd_strategy() -> impl Strategy<Value = Cmd> {
    strategy(
        |rng: &mut Rng| match rng.gen_range(0u8..4) {
            0 => Cmd::Commit,
            1 => Cmd::Pin,
            2 => Cmd::PinAt {
                pick: rng.gen_range(0u8..8),
            },
            _ => Cmd::Release {
                pick: rng.gen_range(0u8..8),
            },
        },
        // Shrinking: drop parameters toward zero and commands toward Commit.
        |cmd: &Cmd| match cmd {
            Cmd::Commit => vec![],
            Cmd::Pin => vec![Cmd::Commit],
            Cmd::PinAt { pick } if *pick > 0 => vec![Cmd::PinAt { pick: pick - 1 }, Cmd::Pin],
            Cmd::PinAt { .. } => vec![Cmd::Pin],
            Cmd::Release { pick } if *pick > 0 => vec![Cmd::Release { pick: pick - 1 }],
            Cmd::Release { .. } => vec![Cmd::Commit],
        },
    )
}

fn build_db() -> Database {
    let mut c = fixtures::example1_catalog();
    fixtures::populate_example1(&mut c, 6, 9);
    let mut db = Database::new(c);
    db.create_view(fixtures::oj_view_def()).unwrap();
    db
}

property! {
    /// Pinned versions stay byte-stable through arbitrary command
    /// sequences; with no pins outstanding the registry retains nothing.
    #[cases = 64]
    fn reclamation_respects_pins(
        cmds in vec_of(cmd_strategy(), 1..24),
        data_seed in 0u64..1000,
    ) {
        let mut db = build_db();
        let mut rng = Rng::seed_from_u64(data_seed);
        let mut next_ln = 500i64;
        // Reference bytes per LSN, recorded at commit time.
        let mut refs = vec![db.snapshot().unwrap().state_bytes().unwrap()];
        // Held pins with the bytes they returned when taken.
        let mut pins: Vec<(u64, ojv_core::snapshot::Snapshot, Vec<u8>)> = Vec::new();

        for cmd in &cmds {
            match cmd {
                Cmd::Commit => {
                    let ok = 1 + rng.gen_range(0..9i64);
                    let pk = 1 + rng.gen_range(0..6i64);
                    next_ln += 1;
                    db.insert(
                        "lineitem",
                        vec![fixtures::lineitem_row(ok, next_ln, pk, 3, 9.0)],
                    )
                    .unwrap();
                    refs.push(db.snapshot().unwrap().state_bytes().unwrap());
                    assert_eq!(refs.len() as u64, db.commit_lsn() + 1);
                }
                Cmd::Pin => {
                    let snap = db.snapshot().unwrap();
                    let bytes = snap.state_bytes().unwrap();
                    assert_eq!(bytes, refs[snap.lsn() as usize]);
                    pins.push((snap.lsn(), snap, bytes));
                }
                Cmd::PinAt { pick } => {
                    let floor = db.snapshots().stats().floor_lsn;
                    let current = db.commit_lsn();
                    let lsn = floor + u64::from(*pick) % (current - floor + 1);
                    let snap = db.snapshot_at(lsn).unwrap();
                    let bytes = snap.state_bytes().unwrap();
                    assert_eq!(
                        bytes, refs[lsn as usize],
                        "historical pin at lsn {lsn} differs from its commit-time bytes"
                    );
                    pins.push((lsn, snap, bytes));
                }
                Cmd::Release { pick } => {
                    if !pins.is_empty() {
                        let i = usize::from(*pick) % pins.len();
                        pins.swap_remove(i);
                    }
                }
            }

            // A pinned version is never reclaimed: every held snapshot's
            // bytes re-encode identically after every command.
            for (lsn, snap, bytes) in &pins {
                assert_eq!(
                    &snap.state_bytes().unwrap(),
                    bytes,
                    "held pin at lsn {lsn} changed bytes"
                );
            }
            let stats = db.snapshots().stats();
            assert_eq!(stats.active_pins, pins.len());
            if pins.is_empty() {
                // An unpinned dead version is always reclaimed immediately.
                assert_eq!(stats.retained_ops, 0);
                assert_eq!(stats.retained_versions, 0);
                assert_eq!(stats.floor_lsn, stats.current_lsn);
            } else {
                let min_pin = pins.iter().map(|&(l, _, _)| l).min().unwrap();
                assert!(
                    stats.floor_lsn <= min_pin,
                    "floor {} climbed above the oldest pin {min_pin}",
                    stats.floor_lsn
                );
            }
        }

        // Dropping the last pin reclaims all history.
        pins.clear();
        let stats = db.snapshots().stats();
        assert_eq!(stats.active_pins, 0);
        assert_eq!(stats.retained_ops, 0);
        assert_eq!(stats.retained_versions, 0);
    }
}

property! {
    /// Memory high-water is bounded under a pin-free workload: no history
    /// is ever built, however many batches commit.
    #[cases = 16]
    fn pin_free_workload_builds_no_history(
        batches in 1usize..40,
        data_seed in 0u64..1000,
    ) {
        let mut db = build_db();
        let mut rng = Rng::seed_from_u64(data_seed ^ 0x9e37);
        for i in 0..batches {
            let ok = 1 + rng.gen_range(0..9i64);
            let pk = 1 + rng.gen_range(0..6i64);
            db.insert(
                "lineitem",
                vec![fixtures::lineitem_row(ok, 2000 + i as i64, pk, 2, 4.0)],
            )
            .unwrap();
        }
        let stats = db.snapshots().stats();
        assert_eq!(stats.current_lsn, batches as u64);
        assert_eq!(stats.retained_ops, 0);
        assert_eq!(stats.retained_versions, 0);
        assert_eq!(
            stats.high_water_ops, 0,
            "pin-free maintenance must never materialize history"
        );
    }
}
