//! Differential tests for the morsel-parallel delta executor.
//!
//! The parallel executor must be *bit-identical* to the serial path: for the
//! same catalog, view, and update stream, the maintained view's stored rows
//! must match row for row — same rows, same order — at every thread count
//! and morsel size, and both must equal a from-scratch recompute.
//!
//! Each SPOJ join shape gets ≥100 randomized cases (random data, random
//! insert/delete batches); every case runs the full cross product of
//! thread counts {1, 2, 8} × morsel sizes {1, 7, 4096} with the parallel
//! cutover forced to zero so even tiny inputs take the parallel path.

use ojv_testkit::Rng;

use ojv::core::maintain::{maintain, verify_against_recompute};
use ojv::core::materialize::MaterializedView;
use ojv::prelude::*;
use ojv::rel::{Column, DataType};

const TABLES: [&str; 3] = ["ta", "tb", "tc"];
const THREADS: [usize; 3] = [1, 2, 8];
const MORSELS: [usize; 3] = [1, 7, 4096];
const CASES: u64 = 100;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    for name in TABLES {
        c.create_table(
            name,
            vec![
                Column::new(name, "id", DataType::Int, false),
                Column::new(name, "jc", DataType::Int, false),
                Column::new(name, "payload", DataType::Float, true),
            ],
            &["id"],
        )
        .unwrap();
    }
    c
}

fn populate(c: &mut Catalog, rng: &mut Rng) {
    for name in TABLES {
        let n = rng.gen_range(4i64..10);
        let rows: Vec<Row> = (1..=n)
            .map(|i| {
                vec![
                    Datum::Int(i),
                    Datum::Int(rng.gen_range(0..4)),
                    Datum::Float(rng.gen_range(0..10_000) as f64 / 100.0),
                ]
            })
            .collect();
        c.insert(name, rows).unwrap();
    }
}

/// A three-table chain `ta ∘ tb ∘ tc` where every join uses `kind`.
fn chain_view(kind: JoinKind) -> ViewDef {
    ViewDef::new(
        "chain",
        ViewExpr::join(
            kind,
            vec![col_eq("tb", "jc", "tc", "jc")],
            ViewExpr::join(
                kind,
                vec![col_eq("ta", "jc", "tb", "jc")],
                ViewExpr::table("ta"),
                ViewExpr::table("tb"),
            ),
            ViewExpr::table("tc"),
        ),
    )
}

fn parallel_policies() -> Vec<(String, MaintenancePolicy)> {
    let mut out = Vec::new();
    for threads in THREADS {
        for morsel in MORSELS {
            out.push((
                format!("threads={threads} morsel={morsel}"),
                MaintenancePolicy {
                    parallel: ParallelSpec::threads(threads)
                        .with_morsel_rows(morsel)
                        .with_cutoff(0),
                    ..Default::default()
                },
            ));
        }
    }
    out
}

fn run_shape(kind: JoinKind) {
    let def = chain_view(kind);
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(case * 4 + kind as u64);
        let mut base = catalog();
        populate(&mut base, &mut rng);

        let serial = MaintenancePolicy::default();
        assert!(
            !serial.parallel.is_parallel_for(1 << 20),
            "default stays serial"
        );
        let mut serial_cat = base.clone();
        let mut serial_view = MaterializedView::create(&serial_cat, def.clone()).unwrap();
        let mut variants: Vec<(String, Catalog, MaterializedView, MaintenancePolicy)> =
            parallel_policies()
                .into_iter()
                .map(|(label, p)| {
                    let c = base.clone();
                    let v = MaterializedView::create(&c, def.clone()).unwrap();
                    (label, c, v, p)
                })
                .collect();

        // One insert batch and one delete batch against a random table each.
        let mut next_id = 500i64;
        for op in 0..2 {
            let table = TABLES[rng.gen_range(0..TABLES.len())];
            let (is_insert, rows, keys): (bool, Vec<Row>, Vec<Vec<Datum>>) = if op == 0 {
                let n = rng.gen_range(1usize..5);
                let rows = (0..n)
                    .map(|_| {
                        next_id += 1;
                        vec![
                            Datum::Int(next_id),
                            Datum::Int(rng.gen_range(0..4)),
                            Datum::Float(rng.gen_range(0..10_000) as f64 / 100.0),
                        ]
                    })
                    .collect();
                (true, rows, Vec::new())
            } else {
                let tbl = serial_cat.table(table).unwrap();
                let n = rng.gen_range(1usize..3).min(tbl.len());
                if n == 0 {
                    continue;
                }
                let mut keys = Vec::new();
                for _ in 0..n {
                    let tbl = serial_cat.table(table).unwrap();
                    let victim = tbl.row_ref(rng.gen_range(0..tbl.len())).datum(0);
                    if !keys.contains(&vec![victim.clone()]) {
                        keys.push(vec![victim]);
                    }
                }
                (false, Vec::new(), keys)
            };

            let update = if is_insert {
                serial_cat.insert(table, rows.clone()).unwrap()
            } else {
                serial_cat.delete(table, &keys).unwrap()
            };
            maintain(&mut serial_view, &serial_cat, &update, &serial).unwrap();

            for (label, c, v, p) in variants.iter_mut() {
                let update = if is_insert {
                    c.insert(table, rows.clone()).unwrap()
                } else {
                    c.delete(table, &keys).unwrap()
                };
                maintain(v, c, &update, p).unwrap();
                assert_eq!(
                    v.wide_rows(),
                    serial_view.wide_rows(),
                    "{kind:?} case {case} op {op}: {label} diverged from serial \
                     (not just contents — order must match too)"
                );
            }
        }

        // The serial view and one representative parallel view both agree
        // with a from-scratch recompute.
        assert!(
            verify_against_recompute(&serial_view, &serial_cat),
            "{kind:?} case {case}: serial maintenance diverged from recompute"
        );
        let (label, c, v, _) = &variants[4]; // threads=2, morsel=7
        assert!(
            verify_against_recompute(v, c),
            "{kind:?} case {case}: {label} diverged from recompute"
        );
    }
}

#[test]
fn inner_chain_parallel_identical() {
    run_shape(JoinKind::Inner);
}

#[test]
fn left_outer_chain_parallel_identical() {
    run_shape(JoinKind::LeftOuter);
}

#[test]
fn right_outer_chain_parallel_identical() {
    run_shape(JoinKind::RightOuter);
}

#[test]
fn full_outer_chain_parallel_identical() {
    run_shape(JoinKind::FullOuter);
}

/// Mixed-shape views: a random SPOJ tree per case, same differential check.
#[test]
fn mixed_shape_parallel_identical() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xD1FF ^ case);
        let mut base = catalog();
        populate(&mut base, &mut rng);
        let kinds = [
            JoinKind::Inner,
            JoinKind::LeftOuter,
            JoinKind::RightOuter,
            JoinKind::FullOuter,
        ];
        let k1 = kinds[rng.gen_range(0..4usize)];
        let k2 = kinds[rng.gen_range(0..4usize)];
        let def = ViewDef::new(
            "mixed",
            ViewExpr::join(
                k2,
                vec![col_eq("tb", "jc", "tc", "jc")],
                ViewExpr::join(
                    k1,
                    vec![col_eq("ta", "jc", "tb", "jc")],
                    ViewExpr::table("ta"),
                    ViewExpr::table("tb"),
                ),
                ViewExpr::table("tc"),
            ),
        );

        let serial = MaintenancePolicy::default();
        let parallel = MaintenancePolicy {
            parallel: ParallelSpec::threads(8).with_morsel_rows(1).with_cutoff(0),
            ..Default::default()
        };
        let mut cs = base.clone();
        let mut vs = MaterializedView::create(&cs, def.clone()).unwrap();
        let mut cp = base;
        let mut vp = MaterializedView::create(&cp, def).unwrap();

        let rows: Vec<Row> = (0..3)
            .map(|i| {
                vec![
                    Datum::Int(900 + i),
                    Datum::Int(rng.gen_range(0..4)),
                    Datum::Float(rng.gen_range(0..10_000) as f64 / 100.0),
                ]
            })
            .collect();
        let table = TABLES[rng.gen_range(0..TABLES.len())];
        let up = cs.insert(table, rows.clone()).unwrap();
        maintain(&mut vs, &cs, &up, &serial).unwrap();
        let up = cp.insert(table, rows).unwrap();
        maintain(&mut vp, &cp, &up, &parallel).unwrap();
        assert_eq!(
            vp.wide_rows(),
            vs.wide_rows(),
            "{k1:?}/{k2:?} case {case} diverged"
        );
        assert!(verify_against_recompute(&vp, &cp));
    }
}
