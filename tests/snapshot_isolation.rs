//! Concurrency stress: reader threads pin snapshots while maintenance
//! streams batches.
//!
//! A deterministic workload of insert/delete batches is generated up front
//! and applied twice: once serially against a *twin* database, recording
//! `Snapshot::state_bytes()` after every commit (the per-LSN reference),
//! and once on the live database while N reader threads continuously pin
//! snapshots through a cloned [`SnapshotRegistry`] handle. Every pinned
//! snapshot must byte-equal the twin's bytes at the same LSN — any torn
//! read (a batch half-applied) or LSN skew (view A at LSN n, view B at
//! n−1 in one snapshot) changes the bytes and fails the comparison.
//!
//! One dedicated reader additionally pins an early LSN and *holds* the pin
//! across the whole maintenance stream, re-verifying its bytes at the end —
//! the epoch-reclamation protocol must keep that version intact while
//! unpinned versions are freed.
//!
//! The default test runs 8 readers on one seed; the `--ignored` sweep runs
//! the full threads × seeds matrix (see `ci/check.sh`).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

use ojv::prelude::*;
use ojv_core::fixtures;
use ojv_testkit::{race, Rng};

const N_PARTS: i64 = 8;
const N_ORDERS: i64 = 9;

/// One pre-validated update batch.
#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<Row>),
    Delete(Vec<Vec<Datum>>),
}

/// A deterministic stream of valid batches: inserts use fresh
/// `(orderkey, linenumber)` keys against existing orders/parts, deletes
/// pick a previously inserted live key. No batch violates a constraint,
/// so twin and live runs apply identically.
fn workload(seed: u64, batches: usize) -> Vec<Op> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut next_ln = 1000i64;
    let mut live_keys: Vec<(i64, i64)> = Vec::new();
    let mut ops = Vec::with_capacity(batches);
    for _ in 0..batches {
        let delete = !live_keys.is_empty() && rng.gen_bool(0.35);
        if delete {
            let pick = rng.gen_range(0..live_keys.len());
            let (ok, ln) = live_keys.swap_remove(pick);
            ops.push(Op::Delete(vec![vec![Datum::Int(ok), Datum::Int(ln)]]));
        } else {
            let n = rng.gen_range(1..4usize);
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                let ok = 1 + rng.gen_range(0..N_ORDERS);
                let pk = 1 + rng.gen_range(0..N_PARTS);
                let ln = next_ln;
                next_ln += 1;
                live_keys.push((ok, ln));
                rows.push(fixtures::lineitem_row(ok, ln, pk, 5, 1.5 * ln as f64));
            }
            ops.push(Op::Insert(rows));
        }
    }
    ops
}

fn apply(db: &mut Database, op: &Op) {
    match op {
        Op::Insert(rows) => db.insert("lineitem", rows.clone()).unwrap(),
        Op::Delete(keys) => db.delete("lineitem", keys).unwrap(),
    };
}

/// Two views (the Example 1 view plus a predicate variant) so LSN-skew
/// *across* views inside one snapshot is observable.
fn build_db() -> Database {
    let mut c = fixtures::example1_catalog();
    fixtures::populate_example1(&mut c, N_PARTS, N_ORDERS);
    let mut db = Database::new(c);
    db.create_view(fixtures::oj_view_def()).unwrap();
    db.create_view(fixtures::oj_view_variant("oj_narrow", 6))
        .unwrap();
    db
}

/// Serially replay the workload on a twin, returning the reference bytes
/// for every LSN 0..=batches.
fn reference_bytes(twin: &mut Database, ops: &[Op]) -> Vec<Vec<u8>> {
    let mut refs = vec![twin.snapshot().unwrap().state_bytes().unwrap()];
    for op in ops {
        apply(twin, op);
        let snap = twin.snapshot().unwrap();
        assert_eq!(snap.lsn() as usize, refs.len(), "twin LSNs are dense");
        refs.push(snap.state_bytes().unwrap());
    }
    refs
}

/// The stress harness: `readers` threads pin-and-verify against the serial
/// reference while the main thread streams `ops`.
fn run_stress(seed: u64, readers: usize, batches: usize) {
    // Happens-before race detector session: with the `concheck` feature the
    // registry's lock and chain accesses feed it; without, the hooks are
    // no-ops in core and the report is trivially empty either way.
    let detector = race::install(&format!("stress seed {seed}, {readers} readers"));
    let ops = workload(seed, batches);
    let mut db = build_db();
    let mut twin = db.clone();
    let refs = Arc::new(reference_bytes(&mut twin, &ops));

    let registry = db.snapshots().clone();
    let done = AtomicBool::new(false);
    let overlapped = AtomicUsize::new(0);
    let total_reads = AtomicUsize::new(0);
    // Writer waits for every reader to be running before the first batch, so
    // the readers genuinely overlap the maintenance stream.
    let start = Barrier::new(readers + 1);

    std::thread::scope(|scope| {
        for r in 0..readers {
            let registry = registry.clone();
            let refs = Arc::clone(&refs);
            let (done, overlapped, total_reads, start) = (&done, &overlapped, &total_reads, &start);
            scope.spawn(move || {
                race::register_thread(&format!("reader-{r}"));
                let mut rng = Rng::seed_from_u64(seed ^ (r as u64) << 32);
                start.wait();
                loop {
                    let during = !done.load(Ordering::Acquire);
                    let snap = registry.pin().unwrap();
                    let lsn = snap.lsn() as usize;
                    assert!(lsn < refs.len(), "snapshot LSN {lsn} out of range");
                    assert_eq!(
                        snap.state_bytes().unwrap(),
                        refs[lsn],
                        "snapshot at lsn {lsn} differs from the serial twin"
                    );
                    // While this pin holds the floor down, older LSNs up to
                    // the tip stay materializable: spot-check one.
                    let current = registry.current_lsn() as usize;
                    if current > lsn {
                        // Racy by design; a commit may slip in, so only the
                        // lower bound is guaranteed.
                        let probe = lsn + rng.gen_range(0..(current - lsn));
                        let old = registry.pin_at(probe as u64).unwrap();
                        assert_eq!(
                            old.state_bytes().unwrap(),
                            refs[probe],
                            "re-pinned lsn {probe} differs from the serial twin"
                        );
                    }
                    drop(snap);
                    total_reads.fetch_add(1, Ordering::Relaxed);
                    if during {
                        overlapped.fetch_add(1, Ordering::Relaxed);
                    } else {
                        break;
                    }
                }
            });
        }

        // One long-lived pin taken at LSN 0, held across the entire stream.
        let held = registry.pin().unwrap();
        let held_bytes = held.state_bytes().unwrap();
        assert_eq!(held_bytes, refs[held.lsn() as usize]);

        start.wait();
        for op in &ops {
            apply(&mut db, op);
        }
        // A release-mode writer can stream every batch before a lone reader
        // finishes its first verification; hold `done` down until one read
        // has landed so the overlap assertion below is deterministic. Any
        // read counted here loaded `during` before this store, so it also
        // increments `overlapped`.
        while total_reads.load(Ordering::Relaxed) == 0 {
            std::thread::yield_now();
        }
        done.store(true, Ordering::Release);

        // The held pin survived every commit and reclamation pass untouched.
        assert_eq!(held.state_bytes().unwrap(), held_bytes);
        drop(held);
    });

    assert_eq!(db.commit_lsn() as usize, batches);
    assert!(
        total_reads.load(Ordering::Relaxed) >= readers,
        "every reader verified at least one snapshot"
    );
    assert!(
        overlapped.load(Ordering::Relaxed) > 0,
        "no read overlapped the maintenance stream"
    );
    // Last unpin dropped: the registry must be back to tip-only storage.
    let stats = registry.stats();
    assert_eq!(stats.active_pins, 0);
    assert_eq!(stats.retained_ops, 0, "history reclaimed after last unpin");

    // Final state cross-check against the serially maintained twin.
    assert_eq!(
        db.snapshot().unwrap().state_bytes().unwrap(),
        *refs.last().unwrap()
    );

    // Zero races across every pin/commit/unpin the detector observed, and a
    // consistent runtime lock order. Under `--features concheck` the weave
    // is live, so an empty event log would mean the detector silently
    // disengaged — fail loudly instead.
    let report = detector.finish();
    report.assert_no_races();
    assert!(
        report.witness_cycle().is_none(),
        "registry lock order inverted under seed {seed}: {:?}",
        report.witness_cycle()
    );
    if cfg!(feature = "concheck") {
        assert!(
            report.events > 0,
            "concheck feature is on but no trace events were recorded (seed {seed})"
        );
    }
}

/// Default stress: 8 readers overlapping a 300-batch stream.
#[test]
fn eight_readers_see_serial_twin_bytes() {
    run_stress(42, 8, 300);
}

/// Full threads × seeds matrix (CI runs this via `--ignored`).
#[test]
#[ignore = "full sweep; run via ci/check.sh or --ignored"]
fn reader_matrix_full_sweep() {
    for &threads in &[1usize, 8, 32] {
        for seed in [11u64, 12, 13] {
            run_stress(seed, threads, 150);
        }
    }
}
