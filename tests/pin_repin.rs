//! Regression: re-pinning an LSN that a live pin already holds must keep
//! working across commits — including for a view the commit never touched.
//!
//! Replaces a PR-6 review scratch test whose setup was invalid (its
//! "no-op" insert violated the fixture's `fk_lineitem_orders` constraint
//! and never reached the scenario): the interesting case is a commit that
//! updates one view while another registered view's delta is empty. Both
//! chains must advance to the same LSN (no cross-view skew), and version
//! 0 must stay materializable through the held pin's floor.

use ojv::prelude::*;
use ojv_core::fixtures;
use ojv_core::view_def::ViewDef;

#[test]
fn pin_at_held_floor_survives_commit_with_untouched_view() {
    let mut c = fixtures::example1_catalog();
    fixtures::populate_example1(&mut c, 6, 9);
    let mut db = Database::new(c);
    // One view over lineitem, one over part only: a lineitem insert
    // updates the first and publishes an empty delta for the second.
    db.create_view(fixtures::oj_view_def()).unwrap();
    db.create_view(ViewDef::new("parts_only", ViewExpr::table("part")))
        .unwrap();

    // Hold a pin at LSN 0 so history is retained across the commit.
    let held = db.snapshot().unwrap();
    assert_eq!(held.lsn(), 0);
    let held_bytes = held.state_bytes().unwrap();

    // A valid insert: fresh (orderkey, linenumber) against an existing
    // order and part. It lands in oj_view; parts_only is untouched.
    db.insert("lineitem", vec![fixtures::lineitem_row(1, 900, 1, 5, 1.0)])
        .unwrap();
    assert_eq!(db.commit_lsn(), 1);

    // Re-pin the version the held pin keeps alive: same LSN, same bytes.
    let repinned = db
        .snapshot_at(0)
        .expect("version 0 is pinned (held), so pin_at(0) must succeed");
    assert_eq!(repinned.lsn(), 0);
    assert_eq!(repinned.state_bytes().unwrap(), held_bytes);

    // The tip snapshot sees both views at LSN 1 — the untouched view's
    // chain advanced with the batch (no cross-view skew).
    let tip = db.snapshot().unwrap();
    assert_eq!(tip.lsn(), 1);
    assert_ne!(tip.state_bytes().unwrap(), held_bytes);

    // Dropping every pin reclaims all history.
    drop((held, repinned, tip));
    let stats = db.snapshots().stats();
    assert_eq!(stats.active_pins, 0);
    assert_eq!(stats.retained_ops, 0, "history reclaimed after last unpin");
}
