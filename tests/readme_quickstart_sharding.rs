//! Compiles and runs the README's `ShardedDatabase` quickstart verbatim, so
//! the snippet can't drift from the real API.

use ojv::core::fixtures;
use ojv::prelude::*;

#[test]
fn readme_sharding_quickstart_runs() -> std::result::Result<(), ojv::core::error::CoreError> {
    let mut catalog = fixtures::example1_catalog();
    fixtures::populate_example1(&mut catalog, 10, 12);

    // Route each table by (a prefix of) its unique key.
    let routing = RoutingSpec::new()
        .table("part", &["p_partkey"])
        .table("orders", &["o_orderkey"])
        .table("lineitem", &["l_orderkey"]);
    let mut db = ShardedDatabase::new(&catalog, 4, routing)?;
    db.create_view_sql(
        "order_lines",
        "select * from orders left outer join lineitem on l_orderkey = o_orderkey",
    )?;

    // The batch is split by owner shard; every shard maintains its views and
    // publishes at the same commit LSN.
    let reports = db.insert("lineitem", vec![fixtures::lineitem_row(3, 1, 2, 4, 42.0)])?;
    assert!(reports.iter().any(|r| r.primary_rows > 0));

    // The sharded facade is state-identical to a 1-shard twin.
    let mut twin_catalog = fixtures::example1_catalog();
    fixtures::populate_example1(&mut twin_catalog, 10, 12);
    let routing = RoutingSpec::new()
        .table("part", &["p_partkey"])
        .table("orders", &["o_orderkey"])
        .table("lineitem", &["l_orderkey"]);
    let mut twin = ShardedDatabase::new(&twin_catalog, 1, routing)?;
    twin.create_view_sql(
        "order_lines",
        "select * from orders left outer join lineitem on l_orderkey = o_orderkey",
    )?;
    twin.insert("lineitem", vec![fixtures::lineitem_row(3, 1, 2, 4, 42.0)])?;
    assert_eq!(db.state_bytes()?, twin.state_bytes()?);
    Ok(())
}
