//! Round-trip property tests for the SQL layer: rendering a random view
//! definition to SQL and parsing it back must produce a semantically
//! identical view (same normal form, same materialized contents).

use ojv_testkit::{property, Rng};

use ojv::core::analyze::analyze;
use ojv::core::parser::parse_view;
use ojv::prelude::*;
use ojv::rel::{Column, DataType};

const TABLES: [&str; 4] = ["ta", "tb", "tc", "td"];

fn catalog(n: usize) -> Catalog {
    let mut c = Catalog::new();
    for name in TABLES.iter().take(n) {
        c.create_table(
            name,
            vec![
                Column::new(name, "id", DataType::Int, false),
                Column::new(name, "jc", DataType::Int, false),
                Column::new(name, "d", DataType::Date, true),
            ],
            &["id"],
        )
        .unwrap();
    }
    c
}

fn populate(c: &mut Catalog, n: usize, seed: u64) {
    let mut rng = Rng::seed_from_u64(seed);
    for name in TABLES.iter().take(n) {
        let rows: Vec<Row> = (1..=6i64)
            .map(|i| {
                vec![
                    Datum::Int(i),
                    Datum::Int(rng.gen_range(0..3)),
                    Datum::Date(rng.gen_range(9000..9100)),
                ]
            })
            .collect();
        c.insert(name, rows).unwrap();
    }
}

/// Random SPOJ tree with a mix of atom shapes (equijoins, constants,
/// BETWEEN over dates) and occasional selections over scans.
fn random_view(seed: u64, n: usize) -> ViewDef {
    let mut rng = Rng::seed_from_u64(seed);
    let mut forest: Vec<(ViewExpr, Vec<&str>)> = TABLES[..n]
        .iter()
        .map(|t| {
            let mut leaf = ViewExpr::table(t);
            if rng.gen_bool(0.3) {
                // Selection over the scan — renders as a derived table.
                leaf = ViewExpr::select(
                    vec![col_cmp(t, "jc", CmpOp::Le, rng.gen_range(0i64..4))],
                    leaf,
                );
            }
            (leaf, vec![*t])
        })
        .collect();
    while forest.len() > 1 {
        let right = forest.pop().expect("len > 1");
        let left = forest.pop().expect("len > 1");
        let lt = left.1[rng.gen_range(0..left.1.len())];
        let rt = right.1[rng.gen_range(0..right.1.len())];
        let mut on = vec![col_eq(lt, "jc", rt, "jc")];
        match rng.gen_range(0..3) {
            0 => on.push(col_cmp(rt, "id", CmpOp::Ge, rng.gen_range(0i64..3))),
            1 => on.push(col_between(
                rt,
                "d",
                Datum::Date(9000),
                Datum::Date(9000 + rng.gen_range(10..100)),
            )),
            _ => {}
        }
        let kind = match rng.gen_range(0..4) {
            0 => JoinKind::Inner,
            1 => JoinKind::LeftOuter,
            2 => JoinKind::RightOuter,
            _ => JoinKind::FullOuter,
        };
        let mut tables = left.1;
        tables.extend(right.1);
        forest.push((ViewExpr::join(kind, on, left.0, right.0), tables));
    }
    let (mut expr, tables) = forest.pop().expect("single tree");
    if rng.gen_bool(0.3) {
        let t = tables[rng.gen_range(0..tables.len())];
        expr = ViewExpr::select(vec![col_cmp(t, "jc", CmpOp::Ge, 1i64)], expr);
    }
    ViewDef::new("rt_view", expr)
}

property! {
    #[cases = 60]
    fn sql_roundtrip_preserves_semantics(
        view_seed in 0u64..1000,
        data_seed in 0u64..1000,
        n in 2usize..=4,
    ) {
        let mut c = catalog(n);
        populate(&mut c, n, data_seed);
        let original = random_view(view_seed, n);
        let sql = original.to_sql();
        let reparsed = parse_view(&c, "rt_view", &sql)
            .unwrap_or_else(|e| panic!("generated SQL failed to parse: {e}\nsql: {sql}"));

        // Same normal form.
        let a = analyze(&c, &original).unwrap();
        let b = analyze(&c, &reparsed).unwrap();
        assert_eq!(a.terms.len(), b.terms.len(), "sql: {}", sql);
        for (x, y) in a.terms.iter().zip(&b.terms) {
            assert_eq!(x.tables, y.tables);
        }

        // Same materialized contents.
        let va = ojv::core::materialize::MaterializedView::create(&c, original).unwrap();
        let vb = ojv::core::materialize::MaterializedView::create(&c, reparsed).unwrap();
        let mut ra: Vec<Row> = va.wide_rows().to_vec();
        let mut rb: Vec<Row> = vb.wide_rows().to_vec();
        ra.sort();
        rb.sort();
        assert_eq!(ra, rb, "sql: {}", sql);
    }

    /// The rendered SQL for a projected view keeps the projection.
    #[cases = 60]
    fn projection_roundtrip(view_seed in 0u64..300) {
        let c = catalog(2);
        let def = random_view(view_seed, 2).with_projection(vec![("ta", "id"), ("tb", "jc")]);
        let sql = def.to_sql();
        let reparsed = parse_view(&c, "rt_view", &sql).unwrap();
        assert_eq!(
            reparsed.projection().map(<[(String, String)]>::len),
            Some(2),
            "sql: {}",
            sql
        );
    }
}

#[test]
fn paper_views_roundtrip() {
    // V3 exercises derived tables (the date selection on orders is part of
    // the join predicate here, but V2 has real scan selections).
    let mut c = ojv::tpch::create_tpch_catalog().unwrap();
    ojv::tpch::TpchGen::new(0.001, 1).populate(&mut c).unwrap();
    let def = ViewDef::new(
        "v2",
        ViewExpr::full_outer(
            vec![col_eq("customer", "c_custkey", "orders", "o_custkey")],
            ViewExpr::select(
                vec![col_cmp("customer", "c_acctbal", CmpOp::Ge, 0.0)],
                ViewExpr::table("customer"),
            ),
            ViewExpr::full_outer(
                vec![col_eq("orders", "o_orderkey", "lineitem", "l_orderkey")],
                ViewExpr::select(
                    vec![col_cmp("orders", "o_totalprice", CmpOp::Ge, 1000.0)],
                    ViewExpr::table("orders"),
                ),
                ViewExpr::table("lineitem"),
            ),
        ),
    );
    let sql = def.to_sql();
    let reparsed = parse_view(&c, def.name(), &sql).expect("paper view parses back");
    let a = analyze(&c, &def).unwrap();
    let b = analyze(&c, &reparsed).unwrap();
    assert_eq!(a.terms.len(), b.terms.len(), "sql: {sql}");
}
