//! Integration tests that replay the paper's worked examples end-to-end
//! through the public facade crate.

use ojv::core::analyze::analyze;
use ojv::core::fixtures;
use ojv::core::maintain::verify_against_recompute;
use ojv::prelude::*;
use ojv::rel::datum::date;

/// The evaluation's view V3 (§8): `(lineitem ⋈ orders) ⟖ customer ⟗ part`
/// with the paper's date and retail-price predicates.
fn v3_def() -> ViewDef {
    ViewDef::new(
        "v3",
        ViewExpr::full_outer(
            vec![
                col_eq("lineitem", "l_partkey", "part", "p_partkey"),
                col_cmp("part", "p_retailprice", CmpOp::Lt, 2000.0),
            ],
            ViewExpr::right_outer(
                vec![col_eq("customer", "c_custkey", "orders", "o_custkey")],
                ViewExpr::inner(
                    vec![
                        col_eq("lineitem", "l_orderkey", "orders", "o_orderkey"),
                        col_between(
                            "orders",
                            "o_orderdate",
                            date("1994-06-01"),
                            date("1994-12-31"),
                        ),
                    ],
                    ViewExpr::table("lineitem"),
                    ViewExpr::table("orders"),
                ),
                ViewExpr::table("customer"),
            ),
            ViewExpr::table("part"),
        ),
    )
}

/// Example 1, step by step: the oj_view over part/orders/lineitem contains
/// three tuple types, and the maintenance statements behave as the paper
/// describes.
#[test]
fn example_1_walkthrough() {
    let mut catalog = fixtures::example1_catalog();
    // part 1 and 2; order 10 with a lineitem for part 1; order 11 empty.
    catalog
        .insert(
            "part",
            vec![
                fixtures::part_row(1, "bolt", 100.0),
                fixtures::part_row(2, "nut", 150.0),
            ],
        )
        .unwrap();
    catalog
        .insert(
            "orders",
            vec![fixtures::order_row(10, 7), fixtures::order_row(11, 8)],
        )
        .unwrap();
    catalog
        .insert("lineitem", vec![fixtures::lineitem_row(10, 1, 1, 5, 10.0)])
        .unwrap();

    let mut db = Database::new(catalog);
    db.create_view(fixtures::oj_view_def()).unwrap();
    // "the view may contain tuples of three types: {part, orders, lineitem},
    // {orders}, and {part}": full row for (1,10), orphan order 11, orphan
    // part 2.
    assert_eq!(db.view("oj_view").unwrap().len(), 3);

    // "Suppose we insert new tuples into the part table. The view can then
    // be brought up to date simply by inserting the new tuples".
    let reports = db
        .insert("part", vec![fixtures::part_row(3, "washer", 10.0)])
        .unwrap();
    assert_eq!(reports[0].primary_rows, 1);
    assert_eq!(reports[0].secondary_rows, 0);
    assert_eq!(db.view("oj_view").unwrap().len(), 4);

    // "Insertions into the orders table can be handled in the same way."
    let reports = db
        .insert("orders", vec![fixtures::order_row(12, 9)])
        .unwrap();
    assert_eq!(reports[0].primary_rows, 1);
    assert_eq!(reports[0].secondary_rows, 0);

    // "The new lineitem tuples may cause some orphaned part or orders tuples
    // to be eliminated from the view": insert order 11's first lineitem for
    // part 2 — both orphans must disappear, one full row appears.
    let before = db.view("oj_view").unwrap().len();
    let reports = db
        .insert("lineitem", vec![fixtures::lineitem_row(11, 1, 2, 3, 4.5)])
        .unwrap();
    assert_eq!(reports[0].primary_rows, 1);
    assert_eq!(
        reports[0].secondary_rows, 2,
        "exactly the orphaned order 11 and orphaned part 2 are deleted"
    );
    assert_eq!(db.view("oj_view").unwrap().len(), before + 1 - 2);
    assert!(verify_against_recompute(
        db.view("oj_view").unwrap(),
        db.catalog()
    ));

    // Deleting that lineitem re-orphans both.
    let reports = db
        .delete("lineitem", &[vec![Datum::Int(11), Datum::Int(1)]])
        .unwrap();
    assert_eq!(reports[0].primary_rows, 1);
    assert_eq!(reports[0].secondary_rows, 2);
    assert!(verify_against_recompute(
        db.view("oj_view").unwrap(),
        db.catalog()
    ));
}

/// The Gupta–Mumick counterexample from §8: a single lineitem insertion must
/// remove BOTH an orphaned part and an orphaned orders tuple ("Gupta's and
/// Mumick's algorithm would modify one of the tuples but not delete the
/// other one").
#[test]
fn gupta_mumick_counterexample() {
    let mut catalog = fixtures::example1_catalog();
    catalog
        .insert("part", vec![fixtures::part_row(1, "p", 1.0)])
        .unwrap();
    catalog
        .insert("orders", vec![fixtures::order_row(1, 1)])
        .unwrap();
    let mut db = Database::new(catalog);
    db.create_view(fixtures::oj_view_def()).unwrap();
    assert_eq!(db.view("oj_view").unwrap().len(), 2); // two orphans

    // "the new lineitem tuple is the first line item of the order and nobody
    // has ordered this particular part before".
    db.insert("lineitem", vec![fixtures::lineitem_row(1, 1, 1, 1, 1.0)])
        .unwrap();
    let view = db.view("oj_view").unwrap();
    assert_eq!(view.len(), 1, "both orphans removed, one full row added");
    assert!(verify_against_recompute(view, db.catalog()));
}

/// V1's maintenance (the running example): update every table under every
/// secondary strategy, verifying against recompute; exercises the rule 4/5
/// null-if path (updating R or S makes the right operand `T fo U` bushy).
#[test]
fn v1_running_example_full_matrix() {
    for strategy in [
        SecondaryStrategy::Auto,
        SecondaryStrategy::FromView,
        SecondaryStrategy::FromBase,
    ] {
        let mut catalog = fixtures::v1_catalog();
        for (name, n) in [("r", 5i64), ("s", 6), ("t", 7), ("u", 8)] {
            let rows: Vec<Row> = (1..=n).map(|i| fixtures::v1_row(i, i % 3, i)).collect();
            catalog.insert(name, rows).unwrap();
        }
        let mut db = Database::new(catalog);
        db.policy = MaintenancePolicy {
            secondary: strategy,
            ..Default::default()
        };
        db.create_view(fixtures::v1_view_def()).unwrap();

        for (name, id, jc) in [
            ("r", 50i64, 0i64),
            ("s", 51, 1),
            ("t", 52, 2),
            ("u", 53, 0),
            ("t", 54, 0),
        ] {
            db.insert(name, vec![fixtures::v1_row(id, jc, 0)]).unwrap();
            assert!(
                verify_against_recompute(db.view("v1").unwrap(), db.catalog()),
                "{strategy:?} diverged after insert into {name}"
            );
        }
        for (name, id) in [("t", 1i64), ("u", 2), ("r", 3), ("s", 4), ("t", 52)] {
            db.delete(name, &[vec![Datum::Int(id)]]).unwrap();
            assert!(
                verify_against_recompute(db.view("v1").unwrap(), db.catalog()),
                "{strategy:?} diverged after delete from {name}"
            );
        }
    }
}

/// Theorem 1: the view equals the disjoint outer union of the terms' net
/// contributions — term cardinalities partition the view.
#[test]
fn net_contributions_partition_the_view() {
    let mut catalog = fixtures::example1_catalog();
    fixtures::populate_example1(&mut catalog, 10, 15);
    let mut db = Database::new(catalog);
    db.create_view(fixtures::oj_view_def()).unwrap();
    let view = db.view("oj_view").unwrap();
    let total: usize = view.term_cardinalities().iter().map(|(_, n)| n).sum();
    assert_eq!(total, view.len());
    // Each row matches exactly one term pattern (checked by construction of
    // term_cardinalities + this total).
}

/// An update modeled as delete+insert (§3 / §6 caveat 1) must stay correct
/// even when it touches FK-parent tables.
#[test]
fn update_decomposition_on_parent_table() {
    let mut catalog = fixtures::example1_catalog();
    fixtures::populate_example1(&mut catalog, 6, 6);
    let mut db = Database::new(catalog);
    db.create_view(fixtures::oj_view_def()).unwrap();
    // "Update" part 3's name: delete + reinsert the same key. With the FK
    // fast path this would be wrong to shortcut, because the delete must
    // first verify no lineitems reference part 3 — it does, so the restrict
    // check fires and the update fails cleanly.
    let result = db.update(
        "part",
        &[vec![Datum::Int(3)]],
        vec![fixtures::part_row(3, "renamed", 1.0)],
    );
    // Part 3 is referenced by fixture lineitems → FK restrict error, view
    // untouched and still correct.
    assert!(result.is_err());
    assert!(verify_against_recompute(
        db.view("oj_view").unwrap(),
        db.catalog()
    ));

    // An unreferenced part updates fine.
    db.insert("part", vec![fixtures::part_row(100, "tmp", 2.0)])
        .unwrap();
    db.update(
        "part",
        &[vec![Datum::Int(100)]],
        vec![fixtures::part_row(100, "renamed", 3.0)],
    )
    .unwrap();
    assert!(verify_against_recompute(
        db.view("oj_view").unwrap(),
        db.catalog()
    ));
}

/// Restricted projections: §5.2's column-availability analysis must flag
/// views that cannot expose their terms, while maintenance (which keeps the
/// full wide state internally) stays correct and `output()` shows only the
/// projected columns.
#[test]
fn projected_view_maintenance() {
    let mut catalog = fixtures::example1_catalog();
    fixtures::populate_example1(&mut catalog, 6, 6);
    let def = fixtures::oj_view_def().with_projection(vec![
        ("part", "p_partkey"),
        ("part", "p_name"),
        ("orders", "o_orderkey"),
        ("lineitem", "l_quantity"),
    ]);
    let mut db = Database::new(catalog);
    db.create_view(def).unwrap();
    {
        let view = db.view("oj_view").unwrap();
        assert_eq!(view.output().unwrap().schema().len(), 4);
        // lineitem exposes no non-nullable column → no term is from-view
        // maintainable per the paper's condition.
        for i in 0..view.analysis.terms.len() {
            assert!(!view.analysis.from_view_available(i));
        }
    }
    db.insert("lineitem", vec![fixtures::lineitem_row(3, 1, 2, 9, 9.0)])
        .unwrap();
    assert!(verify_against_recompute(
        db.view("oj_view").unwrap(),
        db.catalog()
    ));
}

/// Golden test: V3's join-disjunctive normal form has exactly the four terms
/// the paper derives — `{L,O,C,P}`, `{L,O,C}`, `{C}`, `{P}`. The candidate
/// term `{C,P}` is pruned because the full-outer predicate references
/// lineitem, which is null-extended there.
#[test]
fn v3_jdnf_terms_golden() {
    let catalog = ojv::tpch::create_tpch_catalog().unwrap();
    let a = analyze(&catalog, &v3_def()).unwrap();
    let term_tables: Vec<Vec<&str>> = a
        .terms
        .iter()
        .map(|t| {
            t.tables
                .iter()
                .map(|tid| a.layout.slot(tid).name.as_str())
                .collect()
        })
        .collect();
    assert_eq!(
        term_tables,
        vec![
            vec!["lineitem", "orders", "customer", "part"],
            vec!["lineitem", "orders", "customer"],
            vec!["customer"],
            vec!["part"],
        ]
    );
}

/// Golden test: the maintenance graph (§6) for every base table of V3, with
/// and without foreign-key simplification. FK simplification makes orders
/// updates no-ops (every order row joins its lineitems through the FK) and
/// shrinks customer/part updates to their single-table terms.
#[test]
fn v3_maintenance_graph_classification_golden() {
    let catalog = ojv::tpch::create_tpch_catalog().unwrap();
    let a = analyze(&catalog, &v3_def()).unwrap();
    // (table, use_fk, direct terms, indirect terms) — term indices refer to
    // the JDNF order pinned in `v3_jdnf_terms_golden`.
    let expected: &[(&str, bool, &[usize], &[usize])] = &[
        ("lineitem", false, &[0, 1], &[2, 3]),
        ("lineitem", true, &[0, 1], &[2, 3]),
        ("orders", false, &[0, 1], &[2, 3]),
        ("orders", true, &[], &[]),
        ("customer", false, &[0, 1, 2], &[3]),
        ("customer", true, &[2], &[]),
        ("part", false, &[0, 3], &[1]),
        ("part", true, &[3], &[]),
    ];
    for (table, fk, direct, indirect) in expected {
        let t = a.layout.table_id(table).unwrap();
        let g = a.maintenance_graph(t, *fk);
        assert_eq!(&g.direct, direct, "{table} fk={fk}: direct terms");
        let got: Vec<usize> = g.indirect.iter().map(|i| i.term).collect();
        assert_eq!(&got, indirect, "{table} fk={fk}: indirect terms");
    }
}

/// Golden test: Table 1 of the paper pins the view's term cardinalities for
/// the generated TPC-H database. Our deterministic generator at SF=0.05,
/// seed 42 yields the cardinalities below; any change to the generator, the
/// normal form, or the executor shows up here as an exact diff.
#[test]
fn v3_table1_term_cardinalities_golden() {
    let gen = ojv::tpch::TpchGen::new(0.05, 42);
    let mut catalog = ojv::tpch::create_tpch_catalog().unwrap();
    gen.populate(&mut catalog).unwrap();
    assert_eq!(catalog.table("lineitem").unwrap().len(), 300_867);
    assert_eq!(catalog.table("orders").unwrap().len(), 75_000);
    assert_eq!(catalog.table("customer").unwrap().len(), 7_500);
    assert_eq!(catalog.table("part").unwrap().len(), 10_000);

    let v = ojv::core::materialize::MaterializedView::create(&catalog, v3_def()).unwrap();
    let cards = v.term_cardinalities();
    let got: Vec<(String, usize)> = cards.iter().map(|(n, c)| (format!("{n}"), *c)).collect();
    assert_eq!(
        got,
        vec![
            ("{T0,T1,T2,T3}".to_string(), 24_608),
            ("{T0,T1,T2}".to_string(), 2_340),
            ("{T2}".to_string(), 3_011),
            ("{T3}".to_string(), 1_480),
        ]
    );
    assert_eq!(v.len(), 31_439);
}
