//! End-to-end tests over the TPC-H substrate: the evaluation's view V3
//! maintained through realistic refresh streams, checked against recompute.

use ojv::core::agg_view::{AggSpec, AggViewDef};
use ojv::core::maintain::verify_against_recompute;
use ojv::prelude::*;
use ojv::rel::datum::date;
use ojv::tpch::{create_tpch_catalog, TpchGen};

fn v3_def() -> ViewDef {
    ViewDef::new(
        "v3",
        ViewExpr::full_outer(
            vec![
                col_eq("lineitem", "l_partkey", "part", "p_partkey"),
                col_cmp("part", "p_retailprice", CmpOp::Lt, 2000.0),
            ],
            ViewExpr::right_outer(
                vec![col_eq("customer", "c_custkey", "orders", "o_custkey")],
                ViewExpr::inner(
                    vec![
                        col_eq("lineitem", "l_orderkey", "orders", "o_orderkey"),
                        col_between(
                            "orders",
                            "o_orderdate",
                            date("1994-06-01"),
                            date("1994-12-31"),
                        ),
                    ],
                    ViewExpr::table("lineitem"),
                    ViewExpr::table("orders"),
                ),
                ViewExpr::table("customer"),
            ),
            ViewExpr::table("part"),
        ),
    )
}

fn setup(sf: f64, seed: u64) -> (Database, TpchGen) {
    let gen = TpchGen::new(sf, seed);
    let mut catalog = create_tpch_catalog().unwrap();
    gen.populate(&mut catalog).unwrap();
    (Database::new(catalog), gen)
}

#[test]
fn v3_lineitem_refresh_stream() {
    let (mut db, gen) = setup(0.002, 11);
    db.create_view(v3_def()).unwrap();
    // Three insert batches, then delete batches, verifying throughout.
    for batch in 0..3u64 {
        let rows = gen.lineitem_insert_batch(120, batch);
        db.insert("lineitem", rows).unwrap();
        assert!(
            verify_against_recompute(db.view("v3").unwrap(), db.catalog()),
            "diverged after insert batch {batch}"
        );
    }
    for batch in 0..2u64 {
        let keys = gen.lineitem_delete_keys(80, batch + 10);
        // Some keys may already be gone if batches overlap; delete the ones
        // present.
        let live: Vec<_> = keys
            .into_iter()
            .filter(|k| db.catalog().table("lineitem").unwrap().get(k).is_some())
            .collect();
        db.delete("lineitem", &live).unwrap();
        assert!(
            verify_against_recompute(db.view("v3").unwrap(), db.catalog()),
            "diverged after delete batch {batch}"
        );
    }
}

#[test]
fn v3_order_refresh_rf1_rf2() {
    let (mut db, gen) = setup(0.002, 13);
    db.create_view(v3_def()).unwrap();
    // RF1: new orders + lineitems.
    let (orders, lines) = gen.order_insert_batch(40, 0);
    let reports = db.insert("orders", orders).unwrap();
    // Orders updates never affect V3 (FK between lineitem and orders).
    assert!(reports.is_empty());
    db.insert("lineitem", lines).unwrap();
    assert!(verify_against_recompute(
        db.view("v3").unwrap(),
        db.catalog()
    ));

    // RF2: delete some base orders with their lineitems.
    let (okeys, lkeys) = gen.order_delete_batch(25, 0);
    db.delete("lineitem", &lkeys).unwrap();
    let reports = db.delete("orders", &okeys).unwrap();
    assert!(reports.is_empty());
    assert!(verify_against_recompute(
        db.view("v3").unwrap(),
        db.catalog()
    ));
}

#[test]
fn v3_customer_fast_path() {
    let (mut db, gen) = setup(0.002, 17);
    db.create_view(v3_def()).unwrap();
    let new_key = gen.customer_count() + 1;
    let row: Row = vec![
        Datum::Int(new_key),
        Datum::str("Customer#new"),
        Datum::str("addr"),
        Datum::Int(3),
        Datum::str("13-000-000-0000"),
        Datum::Float(0.0),
        Datum::str("BUILDING"),
        Datum::str("c"),
    ];
    let before = db.view("v3").unwrap().len();
    let reports = db.insert("customer", vec![row]).unwrap();
    // Exactly one row (the orphaned customer) is added; no secondary work.
    assert_eq!(reports[0].primary_rows, 1);
    assert_eq!(reports[0].secondary_rows, 0);
    assert_eq!(db.view("v3").unwrap().len(), before + 1);
    assert!(verify_against_recompute(
        db.view("v3").unwrap(),
        db.catalog()
    ));

    // Deleting the (childless) customer removes it again.
    let reports = db.delete("customer", &[vec![Datum::Int(new_key)]]).unwrap();
    assert_eq!(reports[0].primary_rows, 1);
    assert_eq!(db.view("v3").unwrap().len(), before);
    assert!(verify_against_recompute(
        db.view("v3").unwrap(),
        db.catalog()
    ));
}

#[test]
fn aggregated_revenue_rollup_over_v3() {
    let (mut db, gen) = setup(0.002, 19);
    let agg = AggViewDef::new("rev_by_customer", v3_def())
        .group_by("customer", "c_custkey")
        .agg("rows", AggSpec::CountRows)
        .agg(
            "lines",
            AggSpec::CountNonNull {
                table: "lineitem".into(),
                column: "l_orderkey".into(),
            },
        )
        .agg(
            "revenue",
            AggSpec::Sum {
                table: "lineitem".into(),
                column: "l_extendedprice".into(),
            },
        );
    db.create_agg_view(agg.clone()).unwrap();

    let assert_agg_fresh = |db: &Database| {
        let fresh =
            ojv::core::agg_view::MaterializedAggView::create(db.catalog(), agg.clone()).unwrap();
        assert!(db
            .agg_view("rev_by_customer")
            .unwrap()
            .output()
            .bag_eq(&fresh.output()));
    };

    let rows = gen.lineitem_insert_batch(150, 3);
    db.insert("lineitem", rows).unwrap();
    assert_agg_fresh(&db);

    let keys = gen.lineitem_delete_keys(100, 4);
    let live: Vec<_> = keys
        .into_iter()
        .filter(|k| db.catalog().table("lineitem").unwrap().get(k).is_some())
        .collect();
    db.delete("lineitem", &live).unwrap();
    assert_agg_fresh(&db);
}

#[test]
fn gk_baseline_agrees_on_tpch() {
    let gen = TpchGen::new(0.002, 23);
    let mut catalog = create_tpch_catalog().unwrap();
    gen.populate(&mut catalog).unwrap();
    let mut ours = ojv::core::materialize::MaterializedView::create(&catalog, v3_def()).unwrap();
    let mut gk = ours.clone();

    let rows = gen.lineitem_insert_batch(100, 0);
    let up = catalog.insert("lineitem", rows).unwrap();
    ojv::core::maintain::maintain(&mut ours, &catalog, &up, &MaintenancePolicy::paper()).unwrap();
    ojv::core::baseline::maintain_gk(&mut gk, &catalog, &up, &MaintenancePolicy::paper()).unwrap();

    let mut a: Vec<Row> = ours.wide_rows().to_vec();
    let mut b: Vec<Row> = gk.wide_rows().to_vec();
    a.sort();
    b.sort();
    assert_eq!(a, b, "GK and the paper's maintenance must agree");
    assert!(verify_against_recompute(&ours, &catalog));
}
