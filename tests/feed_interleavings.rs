//! Deterministic-interleaving corpus for the change-feed hub, built on the
//! stepped fan-out API: [`FeedHub::begin_fanout`] (evaluate, nothing
//! visible) and [`FeedHub::publish_fanout`] (append to rings, advance the
//! hub LSN) run as *separate scheduler steps*, so subscribe and drain land
//! at every point of a commit's lifetime — including between a commit's
//! snapshot publication and its fan-out, the race the born-LSN guard
//! exists for.
//!
//! A `Recorder` observer captures each commit's journaled `ViewOp`s instead
//! of fanning out inline; a driver actor then replays them through the
//! stepped API one half per step. The invariant at every drain: the
//! subscriber's applied state byte-equals a serial twin's fresh filtered
//! scan at the subscriber's cursor LSN.
//!
//! Fixed seeds below are the regression corpus; exhaustive enumeration
//! covers the small scenario completely.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::{Arc, Mutex};

use ojv::feed::{
    scan_state_bytes, Drained, FanoutBatch, FeedFilter, FeedHub, Resumed, SubscriberState,
    Subscription, SubscriptionSpec,
};
use ojv::prelude::*;
use ojv_core::fixtures;
use ojv_durability::Lsn;
use ojv_testkit::race;
use ojv_testkit::sched::{interleavings, replay, run_seeded, Actor};

fn build_db() -> Database {
    let mut c = fixtures::example1_catalog();
    fixtures::populate_example1(&mut c, 6, 9);
    let mut db = Database::new(c);
    db.create_view(fixtures::oj_view_def()).unwrap();
    db
}

/// The i-th maintenance batch, identical across every run of a scenario;
/// prices alternate across the `> 500` filter threshold so filtered
/// subscribers see rows enter and leave.
fn batch(i: usize) -> Vec<Row> {
    let i = i as i64;
    let price = if i % 2 == 0 { 700.0 + i as f64 } else { 9.0 };
    vec![fixtures::lineitem_row(
        1 + i % 9,
        4000 + i,
        1 + i % 6,
        1 + i % 9,
        price,
    )]
}

/// Price-threshold subscription every scenario uses.
fn price_spec() -> SubscriptionSpec {
    SubscriptionSpec::on("oj_view").with_filter(FeedFilter::cmp(9, CmpOp::Gt, Datum::Float(500.0)))
}

/// Reference bytes per LSN from a serially maintained twin: the fresh
/// filtered scan a subscriber's applied state must match at that cursor.
fn feed_refs(spec: &SubscriptionSpec, batches: usize) -> Vec<Vec<u8>> {
    let mut twin = build_db();
    let scan = |db: &Database| {
        let snap = db.snapshot().unwrap();
        scan_state_bytes(snap.view("oj_view").unwrap(), spec).unwrap()
    };
    let mut refs = vec![scan(&twin)];
    for i in 0..batches {
        twin.insert("lineitem", batch(i)).unwrap();
        refs.push(scan(&twin));
    }
    refs
}

/// One journaled commit: its LSN and the per-view ops it published.
type RecordedCommit = (Lsn, Vec<(String, Vec<ViewOp>)>);

/// Commit observer that journals `(lsn, ops)` pairs instead of fanning out,
/// so a driver actor can replay them through the stepped fan-out API at
/// scheduler-chosen points.
#[derive(Debug, Default)]
struct Recorder {
    commits: Mutex<Vec<RecordedCommit>>,
}

impl CommitObserver for Recorder {
    fn on_commit(&self, lsn: Lsn, updates: &[(String, Vec<ViewOp>)]) {
        self.commits.lock().unwrap().push((lsn, updates.to_vec()));
    }
}

/// Hub + database wired so commits journal into the recorder: the hub gets
/// the registry at attach time, then the recorder replaces it as observer.
fn recorded_world(threads: usize) -> (Rc<RefCell<Database>>, FeedHub, Arc<Recorder>) {
    let mut db = build_db();
    let hub = FeedHub::with_threads(threads);
    hub.attach(&mut db);
    let recorder = Arc::new(Recorder::default());
    db.attach_commit_observer(Arc::clone(&recorder) as Arc<dyn CommitObserver>);
    (Rc::new(RefCell::new(db)), hub, recorder)
}

/// Driver actor: step 3i commits batch i, step 3i+1 begins its fan-out,
/// step 3i+2 publishes it.
fn driver(
    db: &Rc<RefCell<Database>>,
    hub: &FeedHub,
    recorder: &Arc<Recorder>,
    batches: usize,
) -> Actor {
    let db = Rc::clone(db);
    let hub = hub.clone();
    let recorder = Arc::clone(recorder);
    let mut step = 0usize;
    let mut pending: Option<FanoutBatch> = None;
    Box::new(move || {
        match step % 3 {
            0 => {
                db.borrow_mut().insert("lineitem", batch(step / 3)).unwrap();
            }
            1 => {
                let (lsn, ups) = recorder.commits.lock().unwrap()[step / 3].clone();
                pending = Some(hub.begin_fanout(lsn, &ups));
            }
            _ => hub.publish_fanout(pending.take().expect("begun in the previous step")),
        }
        step += 1;
        step < 3 * batches
    })
}

/// Drain and apply (or rebase, if lapsed).
fn apply_drain(sub: &Subscription, state: &mut SubscriberState) {
    match sub.drain().unwrap() {
        Drained::Updates(sets) => {
            for set in sets {
                state.apply(&set);
            }
        }
        Drained::Rebase(image) => state.rebase(&image),
    }
}

/// Close a detector session and require a clean report: zero races and an
/// acyclic runtime lock order; under `--features concheck` the feed weave
/// is live, so the event log must be non-empty too.
fn assert_detector_clean(detector: race::DetectorGuard, name: &str) {
    let report = detector.finish();
    report.assert_no_races();
    assert!(
        report.witness_cycle().is_none(),
        "lock order inverted in {name}: {:?}",
        report.witness_cycle()
    );
    if cfg!(feature = "concheck") {
        assert!(
            report.events > 0,
            "concheck feature is on but no trace events were recorded in {name}"
        );
    }
}

/// Scenario 1 (exhaustive): every interleaving of a 4-step subscriber
/// (subscribe · drain · drain · drain) against a 3-commit driver whose
/// commit / begin / publish halves are separate steps. Wherever the
/// subscription lands — before a commit, after its snapshot publication
/// but before its fan-out, between begin and publish — the applied state
/// must match the serial twin at the cursor, and the final drain must
/// converge on the tip.
#[test]
fn subscribe_during_commit_exhaustive() {
    const BATCHES: usize = 3;
    let detector = race::install("subscribe_during_commit_exhaustive");
    let spec = price_spec();
    let refs = feed_refs(&spec, BATCHES);
    for trace in interleavings(&[3 * BATCHES, 4]) {
        let (db, hub, recorder) = recorded_world(1);
        let client: Rc<RefCell<Option<(Subscription, SubscriberState)>>> =
            Rc::new(RefCell::new(None));
        let subscriber: Actor = {
            let hub = hub.clone();
            let client = Rc::clone(&client);
            let refs = refs.clone();
            let spec = spec.clone();
            let trace = trace.clone();
            let mut step = 0usize;
            Box::new(move || {
                let mut c = client.borrow_mut();
                if step == 0 {
                    let (sub, image) = hub.subscribe(&spec).unwrap();
                    let state = SubscriberState::new(&image);
                    let cursor = sub.cursor().unwrap() as usize;
                    assert_eq!(
                        state.state_bytes(),
                        refs[cursor],
                        "initial image at cursor {cursor} under trace {trace:?}"
                    );
                    *c = Some((sub, state));
                } else {
                    let (sub, state) = c.as_mut().expect("subscribed at step 0");
                    apply_drain(sub, state);
                    let cursor = sub.cursor().unwrap() as usize;
                    assert_eq!(
                        state.state_bytes(),
                        refs[cursor],
                        "drained state at cursor {cursor} under trace {trace:?}"
                    );
                }
                step += 1;
                step < 4
            })
        };
        replay(
            &trace,
            &mut [driver(&db, &hub, &recorder, BATCHES), subscriber],
        );
        // Every commit is published now: one more drain converges on the tip.
        let (sub, mut state) = client.borrow_mut().take().unwrap();
        apply_drain(&sub, &mut state);
        assert_eq!(
            sub.cursor().unwrap() as usize,
            BATCHES,
            "cursor stopped short of the tip under trace {trace:?}"
        );
        assert_eq!(
            state.state_bytes(),
            refs[BATCHES],
            "final state diverged under trace {trace:?}"
        );
        drop(sub);
        assert_eq!(hub.stats().subscribers, 0);
        assert!(hub.take_error().is_none());
    }
    assert_detector_clean(detector, "subscribe_during_commit_exhaustive");
}

/// Scenario 2 (seeded sweep): random schedules over three actors — the
/// stepped driver, a filtered subscriber draining continuously, and a
/// projection subscriber that drops mid-stream and resumes from its last
/// cursor (exercising Stream / CatchUp / Rebase, whichever the schedule
/// produces). Multithreaded fan-out runs under the race detector.
#[test]
fn seeded_subscribe_drop_resume_corpus() {
    const SEEDS: [u64; 6] = [1, 7, 42, 0xfeed, 0xbead5, 271_828];
    const BATCHES: usize = 5;
    let detector = race::install("seeded_subscribe_drop_resume_corpus");
    let spec_a = price_spec();
    let spec_b = SubscriptionSpec::on("oj_view").with_projection(vec![0, 9]);
    let refs_a = feed_refs(&spec_a, BATCHES);
    let refs_b = feed_refs(&spec_b, BATCHES);
    for seed in SEEDS {
        let (db, hub, recorder) = recorded_world(2);
        type Client = Rc<RefCell<Option<(Subscription, SubscriberState)>>>;
        let client_a: Client = Rc::new(RefCell::new(None));
        // Subscriber B's handle and state live in separate slots: between
        // its drop and its resume it has a state but no subscription.
        let sub_b_handle: Rc<RefCell<Option<Subscription>>> = Rc::new(RefCell::new(None));
        let sub_b_state: Rc<RefCell<Option<SubscriberState>>> = Rc::new(RefCell::new(None));

        let sub_a: Actor = {
            let hub = hub.clone();
            let client = Rc::clone(&client_a);
            let refs = refs_a.clone();
            let spec = spec_a.clone();
            let mut step = 0usize;
            Box::new(move || {
                let mut c = client.borrow_mut();
                if step == 0 {
                    let (sub, image) = hub.subscribe(&spec).unwrap();
                    let state = SubscriberState::new(&image);
                    *c = Some((sub, state));
                } else {
                    let (sub, state) = c.as_mut().expect("subscribed at step 0");
                    apply_drain(sub, state);
                    let cursor = sub.cursor().unwrap() as usize;
                    assert_eq!(
                        state.state_bytes(),
                        refs[cursor],
                        "filtered subscriber at cursor {cursor} diverged, seed {seed}"
                    );
                }
                step += 1;
                step < 6
            })
        };
        let sub_b: Actor = {
            let hub = hub.clone();
            let handle = Rc::clone(&sub_b_handle);
            let slot = Rc::clone(&sub_b_state);
            let refs = refs_b.clone();
            let spec = spec_b.clone();
            let mut step = 0usize;
            let mut cursor_at_drop: Lsn = 0;
            Box::new(move || {
                match step {
                    0 => {
                        let (sub, image) = hub.subscribe(&spec).unwrap();
                        *slot.borrow_mut() = Some(SubscriberState::new(&image));
                        *handle.borrow_mut() = Some(sub);
                    }
                    1 => {
                        let h = handle.borrow();
                        let sub = h.as_ref().expect("subscribed at step 0");
                        let mut s = slot.borrow_mut();
                        let state = s.as_mut().unwrap();
                        apply_drain(sub, state);
                        let cursor = sub.cursor().unwrap() as usize;
                        assert_eq!(
                            state.state_bytes(),
                            refs[cursor],
                            "projection subscriber at cursor {cursor} diverged, seed {seed}"
                        );
                    }
                    2 => {
                        // Abrupt drop (no park, no pin): the cursor is all
                        // the client keeps across the gap.
                        let sub = handle.borrow_mut().take().expect("still subscribed");
                        cursor_at_drop = sub.cursor().unwrap();
                        sub.unsubscribe();
                    }
                    3 => {
                        let (sub, resumed) = hub.resume(&spec, cursor_at_drop).unwrap();
                        let mut s = slot.borrow_mut();
                        let state = s.as_mut().unwrap();
                        match resumed {
                            Resumed::Stream => {}
                            Resumed::CatchUp(set) => state.apply(&set),
                            Resumed::Rebase(image) => state.rebase(&image),
                        }
                        *handle.borrow_mut() = Some(sub);
                    }
                    _ => {
                        let h = handle.borrow();
                        let sub = h.as_ref().expect("resumed at step 3");
                        let mut s = slot.borrow_mut();
                        let state = s.as_mut().unwrap();
                        apply_drain(sub, state);
                        let cursor = sub.cursor().unwrap() as usize;
                        assert_eq!(
                            state.state_bytes(),
                            refs[cursor],
                            "resumed subscriber at cursor {cursor} diverged, seed {seed}"
                        );
                    }
                }
                step += 1;
                step < 6
            })
        };
        run_seeded(
            seed,
            &mut [driver(&db, &hub, &recorder, BATCHES), sub_a, sub_b],
        );

        // Both subscribers live; distinct specs keep distinct evaluations.
        let stats = hub.stats();
        assert_eq!(stats.subscribers, 2, "seed {seed}");
        assert_eq!(stats.shared_evals, 2, "seed {seed}");

        // Everything is committed and published: both converge on the tip.
        let (sub, mut state) = client_a.borrow_mut().take().unwrap();
        apply_drain(&sub, &mut state);
        assert_eq!(
            state.state_bytes(),
            refs_a[BATCHES],
            "filtered subscriber failed to converge, seed {seed}"
        );
        let sub = sub_b_handle.borrow_mut().take().unwrap();
        let mut state = sub_b_state.borrow_mut().take().unwrap();
        apply_drain(&sub, &mut state);
        assert_eq!(
            state.state_bytes(),
            refs_b[BATCHES],
            "resumed subscriber failed to converge, seed {seed}"
        );
        drop(sub);
        assert!(hub.take_error().is_none(), "seed {seed}");
    }
    assert_detector_clean(detector, "seeded_subscribe_drop_resume_corpus");
}
