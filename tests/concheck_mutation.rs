//! Mutation test for the concurrency checker: a deliberately *reversed*
//! lock acquisition, committed here so the defect class stays covered.
//!
//! `transfer_forward` takes `a` then `b`; `transfer_backward` takes `b`
//! then `a`. That pair is the textbook deadlock shape, and it must be
//! caught by **both** sides of the checker:
//!
//! * the static lock-order graph (`ojv_concheck::check_sources` over this
//!   file's own source, via `include_str!`) reports a `lock-order-cycle`;
//! * the runtime lock witness (the `testkit::race` detector observing the
//!   real acquisitions) reports a cycle in the witnessed order — and every
//!   runtime edge is cross-checked against the static graph.
//!
//! This file lives under `tests/` precisely because the repo-wide
//! `cargo run -p xtask -- concheck` gate scans only `crates/` and `src/`:
//! the seeded violation exercises the checker without failing the gate.

use std::collections::BTreeSet;

use ojv_concheck::{check_sources, lock_graph};
use ojv_testkit::race::{self, TracedMutex};

struct Accounts {
    a: TracedMutex<i64>,
    b: TracedMutex<i64>,
}

/// Sanctioned order: `a` before `b`.
fn transfer_forward(acc: &Accounts, amount: i64) {
    let mut a = acc.a.lock();
    let mut b = acc.b.lock();
    *a -= amount;
    *b += amount;
}

/// The mutation: `b` before `a` — a deadlock hazard against
/// `transfer_forward` running on another thread.
fn transfer_backward(acc: &Accounts, amount: i64) {
    let mut b = acc.b.lock();
    let mut a = acc.a.lock();
    *b -= amount;
    *a += amount;
}

const SELF_SRC: &str = include_str!("concheck_mutation.rs");

fn self_sources() -> Vec<(String, String)> {
    vec![(
        "tests/concheck_mutation.rs".to_string(),
        SELF_SRC.to_string(),
    )]
}

fn static_edge_pairs() -> BTreeSet<(String, String)> {
    lock_graph(&self_sources())
        .into_iter()
        .map(|e| (e.from, e.to))
        .collect()
}

/// Static side: the syntactic lock-order graph over this very file contains
/// the `a -> b` and `b -> a` edges and reports the cycle.
#[test]
fn static_graph_catches_the_reversed_order() {
    let violations = check_sources(&self_sources());
    let cycles: Vec<_> = violations
        .iter()
        .filter(|v| v.invariant == "lock-order-cycle")
        .collect();
    assert!(
        !cycles.is_empty(),
        "the reversed acquisition must produce a lock-order-cycle, got: {violations:?}"
    );
    for c in &cycles {
        assert!(
            c.detail.contains('a') && c.detail.contains('b'),
            "cycle report should name both lock classes: {c}"
        );
    }
    let pairs = static_edge_pairs();
    assert!(
        pairs.contains(&("a".to_string(), "b".to_string()))
            && pairs.contains(&("b".to_string(), "a".to_string())),
        "graph must contain both directions of the reversal: {pairs:?}"
    );
}

/// Dynamic side: actually run both transfer orders under the race detector.
/// The lock witness records the real acquisition order and finds the same
/// cycle; every witnessed edge also exists in the static graph.
#[test]
fn runtime_witness_catches_the_reversed_order() {
    let detector = race::install("mutation:transfer-forward-backward");
    let acc = Accounts {
        a: TracedMutex::new("a", 100),
        b: TracedMutex::new("b", 0),
    };
    transfer_forward(&acc, 10);
    transfer_backward(&acc, 5);
    assert_eq!(*acc.a.lock(), 95);
    assert_eq!(*acc.b.lock(), 5);
    let report = detector.finish();
    // A reversed order is a deadlock hazard, not a data race: the accesses
    // themselves are all lock-protected.
    report.assert_no_races();
    let cycle = report
        .witness_cycle()
        .expect("lock witness must see the a<->b reversal");
    assert!(
        cycle.contains(&"a".to_string()) && cycle.contains(&"b".to_string()),
        "witness cycle should involve both locks: {cycle:?}"
    );

    // Cross-check: the runtime witness never invents an edge the static
    // graph cannot see — the two sides agree on the acquisition order.
    let static_pairs = static_edge_pairs();
    for e in &report.witness {
        assert!(
            static_pairs.contains(&(e.from.clone(), e.to.clone())),
            "runtime edge {} -> {} missing from the static lock graph {static_pairs:?}",
            e.from,
            e.to
        );
    }
}

/// A consistent-order control: taking `a` then `b` twice leaves the witness
/// acyclic — the detectors flag the mutation, not lock nesting per se.
#[test]
fn consistent_order_stays_clean() {
    let detector = race::install("mutation:control-consistent-order");
    let acc = Accounts {
        a: TracedMutex::new("a", 0),
        b: TracedMutex::new("b", 0),
    };
    transfer_forward(&acc, 1);
    transfer_forward(&acc, 2);
    let report = detector.finish();
    report.assert_no_races();
    assert!(
        report.witness_cycle().is_none(),
        "consistent a->b nesting must not witness a cycle"
    );
}
