//! Differential property tests for the change-feed hub.
//!
//! The instrument is byte equality of one canonical encoding computed two
//! ways: [`SubscriberState::state_bytes`] over the *applied stream* (initial
//! image + every drained update set, in LSN order) versus
//! [`scan_state_bytes`] over a *fresh filtered scan* of the view at the same
//! LSN. Arbitrary command sequences interleave maintenance batches (inserts,
//! deletes, decomposed updates, insert-then-delete net-zero pairs) with
//! subscriber lifecycle (subscribe mid-stream, drain, park, resume, drop)
//! under a deliberately tiny retention ring, so lapse-and-rebase paths run
//! too — and after every drain the two encodings must agree exactly.

use ojv::feed::{
    scan_state_bytes, Drained, FeedAtom, FeedFilter, FeedHub, Resumed, SubscriberState,
    Subscription, SubscriptionSpec,
};
use ojv::prelude::*;
use ojv_core::fixtures;
use ojv_testkit::{property, strategy, vec_of, Rng, Strategy};

/// One abstract command; numeric arguments are resolved against the live
/// state inside the property body (so every generated sequence is valid).
#[derive(Debug, Clone, PartialEq)]
enum Cmd {
    /// Commit one new lineitem (a fresh view row, price chosen so rows land
    /// on either side of the `> 500` filter threshold).
    Insert { ok: u8, pk: u8, price: u8 },
    /// Delete a previously inserted lineitem chosen by `pick`.
    Delete { pick: u8 },
    /// Decomposed UPDATE of a previously inserted lineitem: two commits
    /// (delete half, insert half) whose sets must net correctly.
    Update { pick: u8, qty: u8, price: u8 },
    /// Insert a row and immediately delete it again: two commits whose
    /// drained sets must net to zero state change.
    InsertDelete { ok: u8, pk: u8 },
    /// Commit a part no lineitem references: the full outer join gains a
    /// null-extended row (exercises `IsNull` filters).
    NewPart { price: u8 },
    /// Subscribe mid-stream with a spec from the fixed pool.
    Subscribe { spec: u8 },
    /// Drain one live subscriber and check it against a fresh scan.
    Drain { pick: u8 },
    /// Park one live subscriber (pins its cursor for a later catch-up).
    Park { pick: u8 },
    /// Resume the oldest parked subscriber.
    Resume,
    /// Drop one live subscriber (releases its evaluation leaf).
    Drop { pick: u8 },
}

fn cmd_strategy() -> impl Strategy<Value = Cmd> {
    strategy(
        |rng: &mut Rng| match rng.gen_range(0u8..10) {
            0 | 1 => Cmd::Insert {
                ok: rng.gen_range(0u8..9),
                pk: rng.gen_range(0u8..6),
                price: rng.gen_range(0u8..=255),
            },
            2 => Cmd::Delete {
                pick: rng.gen_range(0u8..8),
            },
            3 => Cmd::Update {
                pick: rng.gen_range(0u8..8),
                qty: rng.gen_range(0u8..9),
                price: rng.gen_range(0u8..=255),
            },
            4 => Cmd::InsertDelete {
                ok: rng.gen_range(0u8..9),
                pk: rng.gen_range(0u8..6),
            },
            5 => Cmd::NewPart {
                price: rng.gen_range(0u8..=255),
            },
            6 => Cmd::Subscribe {
                spec: rng.gen_range(0u8..8),
            },
            7 => Cmd::Drain {
                pick: rng.gen_range(0u8..8),
            },
            8 => Cmd::Park {
                pick: rng.gen_range(0u8..8),
            },
            _ => {
                if rng.gen_range(0u8..2) == 0 {
                    Cmd::Resume
                } else {
                    Cmd::Drop {
                        pick: rng.gen_range(0u8..8),
                    }
                }
            }
        },
        // Shrinking: drop parameters toward zero and commands toward Insert.
        |cmd: &Cmd| match cmd {
            Cmd::Insert { ok, pk, price } if *ok > 0 || *pk > 0 || *price > 0 => {
                vec![Cmd::Insert {
                    ok: ok / 2,
                    pk: pk / 2,
                    price: price / 2,
                }]
            }
            Cmd::Insert { .. } => vec![],
            Cmd::Delete { pick } if *pick > 0 => vec![Cmd::Delete { pick: pick - 1 }],
            Cmd::Update { pick, qty, price } if *pick > 0 || *qty > 0 || *price > 0 => {
                vec![
                    Cmd::Update {
                        pick: pick / 2,
                        qty: qty / 2,
                        price: price / 2,
                    },
                    Cmd::Delete { pick: *pick },
                ]
            }
            Cmd::InsertDelete { ok, pk } if *ok > 0 || *pk > 0 => vec![Cmd::InsertDelete {
                ok: ok / 2,
                pk: pk / 2,
            }],
            Cmd::Subscribe { spec } if *spec > 0 => vec![Cmd::Subscribe { spec: spec - 1 }],
            Cmd::Drain { pick } if *pick > 0 => vec![Cmd::Drain { pick: pick - 1 }],
            Cmd::Park { pick } => vec![Cmd::Drain { pick: *pick }],
            Cmd::Resume => vec![Cmd::Drain { pick: 0 }],
            Cmd::Drop { pick } => vec![Cmd::Drain { pick: *pick }],
            _ => vec![Cmd::Insert {
                ok: 0,
                pk: 0,
                price: 0,
            }],
        },
    )
}

/// Fixed subscription pool over `oj_view` (output columns: 0–2 part,
/// 3–4 orders, 5–9 lineitem; col 8 quantity, col 9 extended price). Entries
/// are pairwise-distinct `(filter, projection)` fingerprints; `FILTER_ID`
/// maps each to its filter-group identity for the dedup assertions.
fn spec_pool() -> Vec<SubscriptionSpec> {
    vec![
        SubscriptionSpec::on("oj_view"),
        SubscriptionSpec::on("oj_view").with_filter(FeedFilter::cmp(
            9,
            CmpOp::Gt,
            Datum::Float(500.0),
        )),
        SubscriptionSpec::on("oj_view")
            .with_filter(FeedFilter::new(vec![FeedAtom::IsNull { col: 3 }])),
        SubscriptionSpec::on("oj_view").with_projection(vec![0, 1]),
        SubscriptionSpec::on("oj_view")
            .with_filter(
                FeedFilter::cmp(8, CmpOp::Ge, Datum::Int(3)).and(FeedAtom::IsNotNull { col: 9 }),
            )
            .with_projection(vec![0, 8, 9]),
        SubscriptionSpec::on("oj_view")
            .with_filter(FeedFilter::cmp(9, CmpOp::Gt, Datum::Float(500.0)))
            .with_projection(vec![9]),
    ]
}

/// Filter-group identity of each pool entry (specs 0 and 3 share the
/// match-all filter; 1 and 5 share the price threshold).
const FILTER_ID: [usize; 6] = [0, 1, 2, 0, 3, 1];

fn build_db() -> Database {
    let mut c = fixtures::example1_catalog();
    fixtures::populate_example1(&mut c, 6, 9);
    let mut db = Database::new(c);
    db.create_view(fixtures::oj_view_def()).unwrap();
    db
}

/// The fresh-scan side of the differential: filter + project the view at
/// the current snapshot through the sanctioned hub entry point.
fn expected(db: &Database, spec: &SubscriptionSpec) -> Vec<u8> {
    let snap = db.snapshot().unwrap();
    scan_state_bytes(snap.view("oj_view").unwrap(), spec).unwrap()
}

/// The applied-stream side: drain and apply (or rebase, if lapsed).
fn drain_into(sub: &Subscription, state: &mut SubscriberState) {
    match sub.drain().unwrap() {
        Drained::Updates(sets) => {
            for set in sets {
                state.apply(&set);
            }
        }
        Drained::Rebase(image) => state.rebase(&image),
    }
}

property! {
    /// After any drain, a subscriber's applied stream byte-equals a fresh
    /// filtered scan — across subscribers joining mid-stream, parking and
    /// resuming, lapsing past a 3-set retention ring, decomposed updates,
    /// and insert-then-delete pairs netting to zero.
    #[cases = 48]
    fn applied_stream_equals_fresh_scan(
        cmds in vec_of(cmd_strategy(), 1..28),
    ) {
        let mut db = build_db();
        let hub = FeedHub::with_threads(2);
        hub.attach(&mut db);
        // Tiny ring so lagging subscribers actually lapse and rebase.
        hub.set_retention(3);

        let specs = spec_pool();
        let mut live: Vec<(Subscription, SubscriberState, usize)> = Vec::new();
        let mut parked: Vec<(u64, SubscriberState, usize)> = Vec::new();
        let mut keys: Vec<(i64, i64)> = Vec::new();
        let mut next_ln = 5000i64;
        let mut next_pk = 1000i64;

        for cmd in &cmds {
            match cmd {
                Cmd::Insert { ok, pk, price } => {
                    next_ln += 1;
                    let ok = 1 + i64::from(*ok) % 9;
                    let pk = 1 + i64::from(*pk) % 6;
                    let qty = 1 + i64::from(*price) % 9;
                    db.insert(
                        "lineitem",
                        vec![fixtures::lineitem_row(
                            ok,
                            next_ln,
                            pk,
                            qty,
                            f64::from(*price) * 4.0,
                        )],
                    )
                    .unwrap();
                    keys.push((ok, next_ln));
                }
                Cmd::Delete { pick } => {
                    if keys.is_empty() {
                        continue;
                    }
                    let (ok, ln) = keys.swap_remove(usize::from(*pick) % keys.len());
                    db.delete("lineitem", &[vec![Datum::Int(ok), Datum::Int(ln)]])
                        .unwrap();
                }
                Cmd::Update { pick, qty, price } => {
                    if keys.is_empty() {
                        continue;
                    }
                    let (ok, ln) = keys[usize::from(*pick) % keys.len()];
                    let pk = 1 + i64::from(*qty) % 6;
                    let qty = 1 + i64::from(*qty) % 9;
                    db.update(
                        "lineitem",
                        &[vec![Datum::Int(ok), Datum::Int(ln)]],
                        vec![fixtures::lineitem_row(
                            ok,
                            ln,
                            pk,
                            qty,
                            f64::from(*price) * 4.0,
                        )],
                    )
                    .unwrap();
                }
                Cmd::InsertDelete { ok, pk } => {
                    next_ln += 1;
                    let ok = 1 + i64::from(*ok) % 9;
                    let pk = 1 + i64::from(*pk) % 6;
                    db.insert(
                        "lineitem",
                        vec![fixtures::lineitem_row(ok, next_ln, pk, 2, 900.0)],
                    )
                    .unwrap();
                    db.delete("lineitem", &[vec![Datum::Int(ok), Datum::Int(next_ln)]])
                        .unwrap();
                }
                Cmd::NewPart { price } => {
                    next_pk += 1;
                    db.insert(
                        "part",
                        vec![fixtures::part_row(next_pk, "feedprop", f64::from(*price) * 4.0)],
                    )
                    .unwrap();
                }
                Cmd::Subscribe { spec } => {
                    let si = usize::from(*spec) % specs.len();
                    let (sub, image) = hub.subscribe(&specs[si]).unwrap();
                    let state = SubscriberState::new(&image);
                    assert_eq!(
                        state.state_bytes(),
                        expected(&db, &specs[si]),
                        "initial image of spec {si} differs from a fresh scan"
                    );
                    live.push((sub, state, si));
                }
                Cmd::Drain { pick } => {
                    if live.is_empty() {
                        continue;
                    }
                    let i = usize::from(*pick) % live.len();
                    let (sub, state, si) = &mut live[i];
                    drain_into(sub, state);
                    assert_eq!(
                        state.state_bytes(),
                        expected(&db, &specs[*si]),
                        "drained spec {si} diverged from a fresh scan at lsn {}",
                        db.commit_lsn()
                    );
                }
                Cmd::Park { pick } => {
                    if live.is_empty() {
                        continue;
                    }
                    let i = usize::from(*pick) % live.len();
                    let (sub, mut state, si) = live.swap_remove(i);
                    // Drain first so the parked cursor is the current tip
                    // (a cursor strictly behind an unpinned tip has no
                    // snapshot left to pin).
                    drain_into(&sub, &mut state);
                    let cursor = sub.park().unwrap();
                    assert_eq!(cursor, db.commit_lsn(), "park pins the drained tip");
                    parked.push((cursor, state, si));
                }
                Cmd::Resume => {
                    if parked.is_empty() {
                        continue;
                    }
                    let (cursor, mut state, si) = parked.remove(0);
                    let (sub, resumed) = hub.resume(&specs[si], cursor).unwrap();
                    match resumed {
                        Resumed::Stream => {}
                        Resumed::CatchUp(set) => state.apply(&set),
                        Resumed::Rebase(_) => {
                            panic!("a parked cursor is pinned; resume must never rebase")
                        }
                    }
                    drain_into(&sub, &mut state);
                    assert_eq!(
                        state.state_bytes(),
                        expected(&db, &specs[si]),
                        "resumed spec {si} diverged after catch-up from lsn {cursor}"
                    );
                    live.push((sub, state, si));
                }
                Cmd::Drop { pick } => {
                    if live.is_empty() {
                        continue;
                    }
                    let (sub, _, _) = live.swap_remove(usize::from(*pick) % live.len());
                    sub.unsubscribe();
                }
            }
        }

        // Final sweep: every parked subscriber resumes and every live one
        // drains to the tip; all of them must agree with a fresh scan.
        while let Some((cursor, mut state, si)) = parked.pop() {
            let (sub, resumed) = hub.resume(&specs[si], cursor).unwrap();
            match resumed {
                Resumed::Stream => {}
                Resumed::CatchUp(set) => state.apply(&set),
                Resumed::Rebase(_) => {
                    panic!("a parked cursor is pinned; resume must never rebase")
                }
            }
            live.push((sub, state, si));
        }
        for (sub, state, si) in &mut live {
            drain_into(sub, state);
            assert_eq!(
                state.state_bytes(),
                expected(&db, &specs[*si]),
                "final drain of spec {si} diverged from a fresh scan"
            );
        }

        // Dedup bookkeeping: live leaves are exactly the distinct specs in
        // use, and filter groups collapse specs sharing a filter.
        let mut distinct: Vec<usize> = live.iter().map(|(_, _, si)| *si).collect();
        distinct.sort_unstable();
        distinct.dedup();
        let mut groups: Vec<usize> = live.iter().map(|(_, _, si)| FILTER_ID[*si]).collect();
        groups.sort_unstable();
        groups.dedup();
        let stats = hub.stats();
        assert_eq!(stats.subscribers, live.len());
        assert_eq!(
            stats.shared_evals,
            distinct.len(),
            "identical specs must share one evaluation"
        );
        assert_eq!(
            stats.filter_groups,
            groups.len(),
            "specs sharing a filter must share its group"
        );
        assert!(hub.take_error().is_none(), "no fan-out job may fail");

        drop(live);
        assert_eq!(hub.stats().subscribers, 0);
    }
}

property! {
    /// Cancellation, pointedly: inserting rows and deleting them again
    /// returns every subscriber's applied state to its prior bytes, and a
    /// price-only UPDATE nets to zero for a projection that excludes the
    /// price while moving a price projection to the fresh-scan state.
    #[cases = 32]
    fn net_zero_batches_cancel_and_update_halves_net(
        n in 1usize..5,
        price in 0u16..300,
    ) {
        let mut db = build_db();
        let hub = FeedHub::new();
        hub.attach(&mut db);

        let price_spec = SubscriptionSpec::on("oj_view")
            .with_filter(FeedFilter::cmp(9, CmpOp::Gt, Datum::Float(500.0)));
        let name_spec = SubscriptionSpec::on("oj_view").with_projection(vec![0, 1]);
        let (price_sub, image) = hub.subscribe(&price_spec).unwrap();
        let mut price_state = SubscriberState::new(&image);
        let (name_sub, image) = hub.subscribe(&name_spec).unwrap();
        let mut name_state = SubscriberState::new(&image);

        // Insert n rows straddling the filter threshold, then delete them
        // all again: 2n commits whose drained sets must net to nothing.
        let before_price = price_state.state_bytes();
        let before_name = name_state.state_bytes();
        let int_keys: Vec<(i64, i64)> = (0..n)
            .map(|j| (1 + j as i64 % 9, 7000 + j as i64))
            .collect();
        for (j, &(ok, ln)) in int_keys.iter().enumerate() {
            let row_price = f64::from(price) * 4.0 + if j % 2 == 0 { 600.0 } else { 0.0 };
            db.insert(
                "lineitem",
                vec![fixtures::lineitem_row(ok, ln, 1 + j as i64 % 6, 2, row_price)],
            )
            .unwrap();
        }
        let keys: Vec<Vec<Datum>> = int_keys
            .iter()
            .map(|&(ok, ln)| vec![Datum::Int(ok), Datum::Int(ln)])
            .collect();
        db.delete("lineitem", &keys).unwrap();
        drain_into(&price_sub, &mut price_state);
        drain_into(&name_sub, &mut name_state);
        assert_eq!(
            price_state.state_bytes(),
            before_price,
            "insert-then-delete must net to zero under the price filter"
        );
        assert_eq!(
            name_state.state_bytes(),
            before_name,
            "insert-then-delete must net to zero under the name projection"
        );

        // Decomposed UPDATE of only the price: the name projection nets to
        // its prior bytes; the price filter tracks the fresh scan (the row
        // crosses the threshold in at least one direction).
        db.insert(
            "lineitem",
            vec![fixtures::lineitem_row(2, 7999, 2, 2, 100.0)],
        )
        .unwrap();
        drain_into(&price_sub, &mut price_state);
        drain_into(&name_sub, &mut name_state);
        let before_name = name_state.state_bytes();
        db.update(
            "lineitem",
            &[vec![Datum::Int(2), Datum::Int(7999)]],
            vec![fixtures::lineitem_row(2, 7999, 2, 2, 700.0 + f64::from(price))],
        )
        .unwrap();
        drain_into(&price_sub, &mut price_state);
        drain_into(&name_sub, &mut name_state);
        assert_eq!(
            price_state.state_bytes(),
            expected(&db, &price_spec),
            "price filter must track the decomposed update"
        );
        assert_eq!(
            name_state.state_bytes(),
            before_name,
            "a price-only update must net to zero under the name projection"
        );
        assert_eq!(name_state.state_bytes(), expected(&db, &name_spec));
    }
}
