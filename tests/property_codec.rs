//! Binary codec round-trip properties.
//!
//! The WAL and checkpoints persist every [`Datum`] through the `ojv-rel`
//! codec, so recovery is only byte-identical if the codec is *bit-exact* —
//! including the values ordinary equality glosses over: `-0.0` vs `0.0`,
//! NaNs with arbitrary payloads and sign bits, subnormals, and integral
//! floats. These properties hold decoded values to `f64::to_bits` equality,
//! not `==`.

use ojv::prelude::*;
use ojv::rel::{decode_datum, encode_datum, put_row, ByteReader};
use ojv_testkit::{property, strategy, vec_of, Rng, Strategy};

/// Bit-exact equality: floats compare by representation, not IEEE `==`.
fn datum_eq_bits(a: &Datum, b: &Datum) -> bool {
    match (a, b) {
        (Datum::Float(x), Datum::Float(y)) => x.to_bits() == y.to_bits(),
        _ => a == b,
    }
}

/// Floats the codec must not canonicalize: signed zeros, NaN payloads with
/// either sign, infinities, subnormals, integral values, and raw bit noise.
fn adversarial_float(rng: &mut Rng) -> f64 {
    match rng.gen_range(0u32..10) {
        0 => -0.0,
        1 => 0.0,
        2 => f64::from_bits(0x7FF8_0000_0000_0000 | rng.gen_range(1u64..0xFFFF)),
        3 => f64::from_bits(0xFFF8_0000_0000_0000 | rng.gen_range(1u64..0xFFFF)),
        4 => f64::INFINITY,
        5 => f64::NEG_INFINITY,
        6 => f64::from_bits(rng.gen_range(1u64..0x000F_FFFF_FFFF_FFFF)), // subnormal
        7 => rng.gen_range(-1_000_000i64..1_000_000) as f64,             // integral float
        8 => rng.gen_range(-1000i64..1000) as f64 / 8.0,
        _ => f64::from_bits(rng.next_u64()),
    }
}

fn random_string(rng: &mut Rng) -> String {
    let n = rng.gen_range(0usize..12);
    (0..n)
        .map(|_| match rng.gen_range(0u32..4) {
            0 => 'é',
            1 => '日',
            2 => '\u{10348}', // outside the BMP: 4-byte UTF-8
            _ => char::from_u32(rng.gen_range(32u32..127)).expect("printable ascii"),
        })
        .collect()
}

/// Every [`Datum`] variant, weighted toward the adversarial corners.
fn datum_strategy() -> impl Strategy<Value = Datum> {
    strategy(
        |rng: &mut Rng| match rng.gen_range(0u32..8) {
            0 => Datum::Null,
            1 => Datum::Bool(rng.gen_bool(0.5)),
            2 => Datum::Int(rng.next_u64() as i64), // full 64-bit range
            3 => Datum::Int(rng.gen_range(-100i64..100)),
            4 | 5 => Datum::Float(adversarial_float(rng)),
            6 => Datum::str(random_string(rng)),
            _ => Datum::Date(rng.gen_range(i32::MIN..i32::MAX)),
        },
        |d: &Datum| match d {
            Datum::Null => Vec::new(),
            Datum::Bool(_) => vec![Datum::Null],
            Datum::Int(0) => vec![Datum::Null],
            Datum::Int(v) => vec![Datum::Null, Datum::Int(0), Datum::Int(v / 2)],
            Datum::Float(f) if f.to_bits() == 0 => vec![Datum::Null],
            Datum::Float(_) => vec![Datum::Null, Datum::Float(0.0)],
            Datum::Str(s) if s.is_empty() => vec![Datum::Null],
            Datum::Str(s) => {
                let shorter: String = s.chars().take(s.chars().count() - 1).collect();
                vec![Datum::Null, Datum::str(""), Datum::str(shorter)]
            }
            Datum::Date(0) => vec![Datum::Null],
            Datum::Date(v) => vec![Datum::Null, Datum::Date(0), Datum::Date(v / 2)],
        },
    )
}

property! {
    /// encode ∘ decode is the identity on every datum, bit for bit.
    #[cases = 512]
    fn datum_round_trips_bit_exactly(d in datum_strategy()) {
        let bytes = encode_datum(&d).unwrap();
        let back = decode_datum(&bytes).unwrap();
        assert!(datum_eq_bits(&d, &back), "{d:?} decoded as {back:?}");
    }

    /// Rows (length-prefixed datum sequences) round-trip element-wise,
    /// with nothing left over in the buffer.
    #[cases = 128]
    fn row_round_trips_bit_exactly(row in vec_of(datum_strategy(), 0..8)) {
        let mut buf = Vec::new();
        put_row(&mut buf, &row).unwrap();
        let mut r = ByteReader::new(&buf);
        let back = r.row().unwrap();
        assert!(r.is_empty(), "trailing bytes after row");
        assert_eq!(row.len(), back.len());
        for (a, b) in row.iter().zip(&back) {
            assert!(datum_eq_bits(a, b), "{a:?} decoded as {b:?}");
        }
    }
}

/// The corners the property reaches only probabilistically, pinned forever.
#[test]
fn datum_corner_cases_round_trip() {
    let corners = [
        Datum::Null,
        Datum::Bool(false),
        Datum::Bool(true),
        Datum::Int(i64::MIN),
        Datum::Int(i64::MAX),
        Datum::Int(0),
        Datum::Float(-0.0),
        Datum::Float(0.0),
        Datum::Float(f64::NAN),
        Datum::Float(f64::from_bits(0x7FF8_0000_0000_BEEF)), // NaN payload
        Datum::Float(f64::from_bits(0xFFF8_0000_0000_0001)), // negative NaN
        Datum::Float(f64::INFINITY),
        Datum::Float(f64::NEG_INFINITY),
        Datum::Float(f64::MIN_POSITIVE),
        Datum::Float(f64::from_bits(1)), // smallest subnormal
        Datum::Float(42.0),              // integral float
        Datum::str(""),
        Datum::str("naïve 日本語 𐍈"),
        Datum::Date(i32::MIN),
        Datum::Date(i32::MAX),
    ];
    for d in &corners {
        let back = decode_datum(&encode_datum(d).unwrap()).unwrap();
        assert!(datum_eq_bits(d, &back), "{d:?} decoded as {back:?}");
    }
    // Sign of zero and NaN payload bits specifically survive.
    let neg_zero = decode_datum(&encode_datum(&Datum::Float(-0.0)).unwrap()).unwrap();
    match neg_zero {
        Datum::Float(f) => assert!(f.is_sign_negative() && f == 0.0),
        other => panic!("expected float, got {other:?}"),
    }
}
