//! Deterministic-interleaving regression corpus for the snapshot layer.
//!
//! The `ojv-testkit` scheduler drives reader and maintainer *actors* —
//! closures advancing one logical thread by one step — through exhaustively
//! enumerated and seed-replayed interleavings, single-threaded and fully
//! reproducible. Three scenario families are covered:
//!
//! 1. **commit-during-read** — a reader pins, verifies, re-pins and drops
//!    while a maintainer commits between any two of its steps (every
//!    interleaving of the two step sequences is enumerated);
//! 2. **reclaim-during-pin** — overlapping pins are taken and released in
//!    every order relative to a commit stream; held pins must stay
//!    byte-stable and full release must always reclaim all history;
//! 3. **crash-between-commit-and-fsync** — a durable database under
//!    `FsyncPolicy::EveryN` is crashed through the PR-4 [`FaultFile`] at a
//!    seed-chosen point; recovery must land on a consistent snapshot LSN:
//!    the recovered database's snapshot byte-equals a serial twin paused at
//!    the recovered LSN, and every snapshot observed before the crash whose
//!    LSN survived matches the same twin.
//!
//! Fixed seeds below are the regression corpus; `ci/check.sh` runs the
//! wider sweep behind `--ignored`.

use std::cell::RefCell;
use std::rc::Rc;

use ojv::prelude::*;
use ojv_core::fixtures;
use ojv_testkit::race;
use ojv_testkit::sched::{interleavings, replay, run_seeded, Actor};
use ojv_testkit::{FaultFile, FaultSpec};

/// A pin (plus its bytes at pin time) handed between actor steps.
type HeldPin = Rc<RefCell<Option<(ojv_core::snapshot::Snapshot, Vec<u8>)>>>;
/// `(lsn, bytes)` observations recorded by a reader actor.
type SeenReads = Rc<RefCell<Vec<(u64, Vec<u8>)>>>;

fn build_db() -> Database {
    let mut c = fixtures::example1_catalog();
    fixtures::populate_example1(&mut c, 6, 9);
    let mut db = Database::new(c);
    db.create_view(fixtures::oj_view_def()).unwrap();
    db
}

/// The i-th maintenance batch, identical across every run of a scenario.
fn batch(i: usize) -> Vec<Row> {
    let i = i as i64;
    vec![fixtures::lineitem_row(
        1 + i % 9,
        3000 + i,
        1 + i % 6,
        2,
        7.0,
    )]
}

/// Reference bytes per LSN from a serially maintained twin.
fn serial_refs(batches: usize) -> Vec<Vec<u8>> {
    let mut twin = build_db();
    let mut refs = vec![twin.snapshot().unwrap().state_bytes().unwrap()];
    for i in 0..batches {
        twin.insert("lineitem", batch(i)).unwrap();
        refs.push(twin.snapshot().unwrap().state_bytes().unwrap());
    }
    refs
}

/// Shared world for the in-memory scenarios.
struct World {
    db: Database,
    refs: Vec<Vec<u8>>,
    commits: usize,
}

fn maintainer(world: &Rc<RefCell<World>>, batches: usize) -> Actor {
    let world = Rc::clone(world);
    let mut i = 0;
    Box::new(move || {
        let mut w = world.borrow_mut();
        let rows = batch(i);
        w.db.insert("lineitem", rows).unwrap();
        w.commits += 1;
        i += 1;
        i < batches
    })
}

/// Scenario 1: every interleaving of a 4-step reader against a
/// 3-commit maintainer. Reader steps: pin+verify · hold-verify ·
/// re-pin-at · drop (with reclamation check).
/// Close a detector session and require a clean report: zero races, an
/// acyclic runtime lock order, and (under `--features concheck`, when the
/// registry weave is live) a non-empty event log proving the detector
/// actually observed the run.
fn assert_detector_clean(detector: race::DetectorGuard, name: &str) {
    let report = detector.finish();
    report.assert_no_races();
    assert!(
        report.witness_cycle().is_none(),
        "lock order inverted in {name}: {:?}",
        report.witness_cycle()
    );
    if cfg!(feature = "concheck") {
        assert!(
            report.events > 0,
            "concheck feature is on but no trace events were recorded in {name}"
        );
    }
}

#[test]
fn commit_during_read_exhaustive() {
    const BATCHES: usize = 3;
    let detector = race::install("commit_during_read_exhaustive");
    let refs = serial_refs(BATCHES);
    for trace in interleavings(&[BATCHES, 4]) {
        let world = Rc::new(RefCell::new(World {
            db: build_db(),
            refs: refs.clone(),
            commits: 0,
        }));
        let held: HeldPin = Rc::new(RefCell::new(None));
        let reader: Actor = {
            let world = Rc::clone(&world);
            let held = Rc::clone(&held);
            let mut step = 0;
            Box::new(move |/* one reader step */| {
                let w = world.borrow();
                match step {
                    0 => {
                        // Pin at whatever the maintainer has committed so far.
                        let snap = w.db.snapshot().unwrap();
                        assert_eq!(snap.lsn() as usize, w.commits, "pin sees every commit");
                        let bytes = snap.state_bytes().unwrap();
                        assert_eq!(bytes, w.refs[w.commits], "torn read at pin time");
                        *held.borrow_mut() = Some((snap, bytes));
                    }
                    1 | 2 => {
                        // The held pin is immune to commits in between; a
                        // fresh pin at its LSN materializes the same bytes.
                        let h = held.borrow();
                        let (snap, bytes) = h.as_ref().unwrap();
                        assert_eq!(&snap.state_bytes().unwrap(), bytes);
                        let again = w.db.snapshot_at(snap.lsn()).unwrap();
                        assert_eq!(&again.state_bytes().unwrap(), bytes);
                    }
                    _ => {
                        held.borrow_mut().take();
                        // This was the only pin: trim must have run.
                        assert_eq!(w.db.snapshots().stats().retained_ops, 0);
                    }
                }
                step += 1;
                step < 4
            })
        };
        replay(&trace, &mut [maintainer(&world, BATCHES), reader]);
        let w = world.borrow();
        assert_eq!(
            w.db.snapshot().unwrap().state_bytes().unwrap(),
            refs[BATCHES],
            "final state diverged under trace {trace:?}"
        );
        assert_eq!(w.db.snapshots().stats().active_pins, 0);
    }
    assert_detector_clean(detector, "commit_during_read_exhaustive");
}

/// Scenario 2: two overlapping pins against a commit stream, every
/// interleaving of take/release orders. Reclamation must never touch a
/// held version and must free everything once both pins drop.
#[test]
fn reclaim_during_pin_exhaustive() {
    const BATCHES: usize = 3;
    let detector = race::install("reclaim_during_pin_exhaustive");
    let refs = serial_refs(BATCHES);
    for trace in interleavings(&[BATCHES, 4]) {
        let world = Rc::new(RefCell::new(World {
            db: build_db(),
            refs: refs.clone(),
            commits: 0,
        }));
        type Held = Option<(ojv_core::snapshot::Snapshot, Vec<u8>)>;
        let pins: Rc<RefCell<(Held, Held)>> = Rc::new(RefCell::new((None, None)));
        let pinner: Actor = {
            let world = Rc::clone(&world);
            let pins = Rc::clone(&pins);
            let trace = trace.clone();
            let mut step = 0;
            Box::new(move || {
                let w = world.borrow();
                let mut p = pins.borrow_mut();
                match step {
                    0 | 1 => {
                        let snap = w.db.snapshot().unwrap();
                        let bytes = snap.state_bytes().unwrap();
                        assert_eq!(
                            bytes,
                            w.refs[snap.lsn() as usize],
                            "torn pin under trace {trace:?}"
                        );
                        let slot = if step == 0 { &mut p.0 } else { &mut p.1 };
                        *slot = Some((snap, bytes));
                    }
                    2 => {
                        // Release the *older* pin first: the younger one
                        // must keep its version alive through the trim.
                        p.0.take();
                        let (snap, bytes) = p.1.as_ref().unwrap();
                        assert_eq!(&snap.state_bytes().unwrap(), bytes);
                        let floor = w.db.snapshots().stats().floor_lsn;
                        assert!(
                            floor <= snap.lsn(),
                            "trim freed a pinned version under trace {trace:?}"
                        );
                    }
                    _ => {
                        p.1.take();
                        let stats = w.db.snapshots().stats();
                        assert_eq!(stats.active_pins, 0);
                        assert_eq!(stats.retained_ops, 0, "full release reclaims all");
                        assert_eq!(stats.retained_versions, 0);
                    }
                }
                step += 1;
                step < 4
            })
        };
        replay(&trace, &mut [maintainer(&world, BATCHES), pinner]);
    }
    assert_detector_clean(detector, "reclaim_during_pin_exhaustive");
}

/// Scenario 2b (seeded sweep): the same world under random schedules with
/// more actors — two independent pinners plus the maintainer — for seeds
/// beyond what exhaustive enumeration can afford. The recorded trace is
/// replayed once to pin down scheduler determinism itself.
#[test]
fn seeded_pin_release_corpus() {
    const SEEDS: [u64; 6] = [1, 2, 3, 0xbeef, 0xfeed_face, 98127];
    const BATCHES: usize = 5;
    let detector = race::install("seeded_pin_release_corpus");
    let refs = serial_refs(BATCHES);
    for seed in SEEDS {
        let run = |record: &mut Vec<usize>| {
            let world = Rc::new(RefCell::new(World {
                db: build_db(),
                refs: refs.clone(),
                commits: 0,
            }));
            let mk_pinner = || -> Actor {
                let world = Rc::clone(&world);
                let mut held: Vec<(ojv_core::snapshot::Snapshot, Vec<u8>)> = Vec::new();
                let mut step = 0;
                Box::new(move || {
                    let w = world.borrow();
                    if step % 2 == 0 {
                        let snap = w.db.snapshot().unwrap();
                        let bytes = snap.state_bytes().unwrap();
                        assert_eq!(bytes, w.refs[snap.lsn() as usize]);
                        held.push((snap, bytes));
                    } else {
                        for (snap, bytes) in &held {
                            assert_eq!(&snap.state_bytes().unwrap(), bytes);
                        }
                        held.remove(0);
                    }
                    step += 1;
                    step < 6
                })
            };
            let mut actors = vec![maintainer(&world, BATCHES), mk_pinner(), mk_pinner()];
            let trace = if record.is_empty() {
                let t = run_seeded(seed, &mut actors);
                record.extend_from_slice(&t);
                t
            } else {
                replay(record, &mut actors);
                record.clone()
            };
            let w = world.borrow();
            assert_eq!(w.db.snapshots().stats().active_pins, 0, "seed {seed}");
            assert_eq!(w.db.snapshots().stats().retained_ops, 0, "seed {seed}");
            assert_eq!(
                w.db.snapshot().unwrap().state_bytes().unwrap(),
                refs[BATCHES],
                "final state diverged under seed {seed}"
            );
            trace
        };
        let mut record = Vec::new();
        let first = run(&mut record);
        let second = run(&mut record); // replay of the recorded trace
        assert_eq!(first, second, "seed {seed} replay produced a new trace");
    }
    assert_detector_clean(detector, "seeded_pin_release_corpus");
}

/// Build the durable twin world: same catalog, same view, WAL on a
/// [`FaultFile`] so the crash keeps only fsynced bytes.
fn durable_db(fsync_every: u32) -> DurableDatabase<FaultFile> {
    let mut c = fixtures::example1_catalog();
    fixtures::populate_example1(&mut c, 6, 9);
    let policy = MaintenancePolicy {
        fsync: FsyncPolicy::EveryN(fsync_every),
        ..MaintenancePolicy::default()
    };
    let mut d =
        DurableDatabase::create(FaultFile::new(MemVfs::new(), FaultSpec::none()), c, policy)
            .unwrap();
    d.create_view(fixtures::oj_view_def()).unwrap();
    d
}

/// Scenario 3: commits race reads, then the process crashes *between a
/// commit and its fsync* (`EveryN(3)` leaves up to 2 unsynced batches).
/// The scheduler decides per seed how reads and commits interleave before
/// the crash point; recovery must land on a consistent snapshot LSN.
#[test]
fn crash_between_commit_and_fsync_lands_on_consistent_lsn() {
    const SEEDS: [u64; 5] = [4, 17, 333, 0xabcd, 31337];
    const BATCHES: usize = 7;
    let detector = race::install("crash_between_commit_and_fsync");
    let refs = serial_refs(BATCHES);
    for seed in SEEDS {
        let ddb = Rc::new(RefCell::new(Some(durable_db(3))));
        // Snapshots observed live, as (lsn, bytes).
        let seen: SeenReads = Rc::new(RefCell::new(Vec::new()));
        let writer: Actor = {
            let ddb = Rc::clone(&ddb);
            let mut i = 0;
            Box::new(move || {
                let mut d = ddb.borrow_mut();
                d.as_mut().unwrap().insert("lineitem", batch(i)).unwrap();
                i += 1;
                i < BATCHES
            })
        };
        let reader: Actor = {
            let ddb = Rc::clone(&ddb);
            let seen = Rc::clone(&seen);
            let mut step = 0;
            Box::new(move || {
                let d = ddb.borrow();
                let snap = d.as_ref().unwrap().snapshot().unwrap();
                seen.borrow_mut()
                    .push((snap.lsn(), snap.state_bytes().unwrap()));
                step += 1;
                step < 4
            })
        };
        run_seeded(seed, &mut [writer, reader]);

        // Every live observation matches the serial twin at its LSN —
        // durable LSNs and twin LSNs are the same clock.
        for (lsn, bytes) in seen.borrow().iter() {
            assert_eq!(
                bytes, &refs[*lsn as usize],
                "live read at lsn {lsn}, seed {seed}"
            );
        }

        // Crash without syncing: the WAL tail since the last EveryN fsync
        // is gone. Recovery must stop at the last durable record.
        let crashed = ddb.borrow_mut().take().unwrap().into_vfs().crash();
        let (rec, report) = DurableDatabase::open(crashed, MaintenancePolicy::default()).unwrap();
        let durable_lsn = rec.last_lsn();
        assert!(
            (durable_lsn as usize) <= BATCHES,
            "recovered past the workload"
        );
        assert!(
            BATCHES - (durable_lsn as usize) < 3,
            "EveryN(3) loses at most 2 batches, lost {}",
            BATCHES - durable_lsn as usize
        );
        assert_eq!(report.checkpoint_lsn, 0, "only the DDL checkpoint exists");

        // The recovered database's snapshot clock equals the durable LSN,
        // and its bytes equal the serial twin paused there: recovery landed
        // on a consistent snapshot LSN, not mid-batch.
        assert_eq!(rec.database().commit_lsn(), durable_lsn);
        let snap = rec.snapshot().unwrap();
        assert_eq!(snap.lsn(), durable_lsn);
        assert_eq!(
            snap.state_bytes().unwrap(),
            refs[durable_lsn as usize],
            "recovered snapshot differs from the serial twin at lsn {durable_lsn}"
        );
        // Pre-crash versions below the recovered tip were never re-created:
        // pinning one must fail cleanly, not fabricate state.
        if durable_lsn > 0 {
            assert!(matches!(
                rec.snapshot_at(durable_lsn - 1),
                Err(CoreError::SnapshotUnavailable { .. })
            ));
        }
    }
    assert_detector_clean(detector, "crash_between_commit_and_fsync");
}

/// Wider seed sweep for the same three scenarios (CI runs via `--ignored`).
#[test]
#[ignore = "wide seed sweep; run via ci/check.sh or --ignored"]
fn seeded_corpus_wide_sweep() {
    const BATCHES: usize = 5;
    let detector = race::install("seeded_corpus_wide_sweep");
    let refs = serial_refs(BATCHES);
    for seed in 0u64..64 {
        let world = Rc::new(RefCell::new(World {
            db: build_db(),
            refs: refs.clone(),
            commits: 0,
        }));
        let reader: Actor = {
            let world = Rc::clone(&world);
            let mut held: Option<(ojv_core::snapshot::Snapshot, Vec<u8>)> = None;
            let mut step = 0;
            Box::new(move || {
                let w = world.borrow();
                match &held {
                    None => {
                        let snap = w.db.snapshot().unwrap();
                        let bytes = snap.state_bytes().unwrap();
                        assert_eq!(bytes, w.refs[snap.lsn() as usize]);
                        held = Some((snap, bytes));
                    }
                    Some((snap, bytes)) => {
                        assert_eq!(&snap.state_bytes().unwrap(), bytes);
                        held = None;
                    }
                }
                step += 1;
                step < 8
            })
        };
        run_seeded(seed, &mut [maintainer(&world, BATCHES), reader]);
        let w = world.borrow();
        assert_eq!(
            w.db.snapshot().unwrap().state_bytes().unwrap(),
            refs[BATCHES],
            "final state diverged under seed {seed}"
        );
        assert_eq!(w.db.snapshots().stats().retained_ops, 0, "seed {seed}");
    }
    assert_detector_clean(detector, "seeded_corpus_wide_sweep");
}
