#!/usr/bin/env bash
# Full offline CI gate: formatting, lints, release build, tests.
#
# The workspace has zero external dependencies (the test/bench substrate is
# in-repo: crates/testkit, crates/criterion-lite), so every step below must
# succeed with no network access. --offline makes cargo enforce that.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, deny warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> xtask lint (in-repo token-level lint gate)"
cargo run --offline -q -p xtask -- lint

echo "==> xtask concheck (static concurrency gate: lock order, workers, atomics)"
cargo run --offline -q -p xtask -- concheck

echo "==> cargo build --release"
cargo build --offline --release --workspace

echo "==> cargo test"
cargo test --offline --workspace -q

echo "==> cargo test -p ojv-analysis (static plan verifier)"
cargo test --offline -q -p ojv-analysis

echo "==> crash-recovery matrix + 200-case fuzz sweep (fixed seed)"
cargo test --offline -q --test crash_recovery -- --ignored

echo "==> snapshot stress matrix (1/8/32 reader threads x 3 seeds)"
cargo test --offline -q --test snapshot_isolation -- --ignored

echo "==> snapshot interleaving sweep (64 scheduler seeds)"
cargo test --offline -q --test snapshot_interleavings -- --ignored

echo "==> race detector (fast): interleavings + mutation under --features concheck"
cargo test --offline -q --features concheck --test snapshot_interleavings
cargo test --offline -q --features concheck --test snapshot_isolation
cargo test --offline -q --test concheck_mutation

echo "==> race detector (full): seeded matrix under --features concheck"
cargo test --offline -q --features concheck --test snapshot_interleavings -- --ignored
cargo test --offline -q --features concheck --test snapshot_isolation -- --ignored

echo "==> change-feed suite: unit, differential property, interleavings (plain + concheck)"
cargo test --offline -q -p ojv-feed
cargo test --offline -q --test property_feed --test feed_interleavings
cargo test --offline -q --features concheck --test property_feed --test feed_interleavings

echo "==> change-feed fan-out panel (100k subscribers, writes BENCH_pr9.json)"
./target/release/repro --sf 0.05 feedbench

echo "==> sharding suite: differential property + group-commit crash matrix (plain + concheck)"
cargo test --offline -q --test property_sharding --test readme_quickstart_sharding
cargo test --offline -q --features concheck --test property_sharding

echo "==> shard scaling smoke (1/2 shards, quick; scratch cwd keeps the committed SF=1 artifact)"
mkdir -p target/shardbench-smoke
(cd target/shardbench-smoke && ../../target/release/repro --quick --shards 1,2 shardbench)

echo "==> bench targets compile (criterion-lite shim)"
cargo check --offline -p ojv-bench --benches --features criterion

echo "==> cargo bench --no-run (bench binaries link)"
cargo bench --offline --no-run -p ojv-bench --features criterion

echo "All checks passed."
