//! Change-feed fan-out at scale: one view, 100k filtered subscribers.
//!
//! The question: what does delivering a maintenance batch to a large
//! subscriber population cost through the hub's deduplicated fan-out,
//! versus the naive architecture where every subscriber re-scans the view
//! after every batch?
//!
//! Setup registers `subscribers` subscriptions drawn round-robin from
//! `distinct` distinct `(filter, projection)` specs — price-threshold
//! filters over a V3-family view, half with a column projection — so the
//! fingerprint trie collapses the population to `distinct` shared
//! evaluations (measured and reported). Each measured batch then:
//!
//! 1. commits a lineitem insert batch (maintenance + hub fan-out, timed
//!    separately via the hub's per-commit counter),
//! 2. drains every subscriber, counting delivered net rows (subscribers of
//!    one evaluation group drain clones of the same `Arc`),
//! 3. times the naive baseline on a subscriber *sample* — a full filtered
//!    re-scan of the view per subscriber — and extrapolates linearly to
//!    the whole population (the sample size and the extrapolation are both
//!    recorded; the naive cost is per-subscriber by construction, so
//!    linear scaling is exact up to cache effects that favor the baseline).

use std::hint::black_box;
use std::time::{Duration, Instant};

use ojv_core::prelude::*;
use ojv_feed::{Drained, FeedFilter, FeedHub, Resumed, Subscription, SubscriptionSpec};
use ojv_rel::Datum;

use crate::harness::{Config, Env};
use crate::views::v3_family_def;

/// The benchmark view: one V3-family member (mid-range price cutoff).
const VIEW: &str = "v3_feed";

/// Population-level facts, fixed across the measured batches.
#[derive(Debug, Clone)]
pub struct FeedSetup {
    pub subscribers: usize,
    /// Distinct `(filter, projection)` specs in the population.
    pub distinct_specs: usize,
    /// Shared evaluations the hub actually runs per commit (must equal
    /// `distinct_specs`: the dedup claim, measured).
    pub shared_evals: usize,
    /// Filter groups (specs differing only in projection share one).
    pub filter_groups: usize,
    /// Rows in the view when the subscribers registered.
    pub view_rows: usize,
    /// Wall clock to register the whole population.
    pub setup: Duration,
}

/// One measured batch.
#[derive(Debug, Clone)]
pub struct FeedPoint {
    /// Lineitem rows in the insert batch.
    pub batch: usize,
    /// Whole-commit wall clock (maintenance + fan-out).
    pub commit: Duration,
    /// Hub fan-out share of the commit (evaluate + publish, per-commit
    /// counter).
    pub fanout: Duration,
    /// Draining every subscriber once.
    pub drain: Duration,
    /// Net rows delivered across all drained sets.
    pub delivered: u64,
    /// Subscribers the naive baseline actually re-scanned.
    pub naive_sample: usize,
    /// Wall clock for those sample re-scans.
    pub naive_sample_time: Duration,
    /// Sample time scaled to the full population.
    pub naive_est: Duration,
    /// `naive_est / (fanout + drain)` — the headline ratio.
    pub speedup: f64,
}

fn build_db(env: &Env) -> Database {
    let mut db = Database::new(env.catalog.clone());
    db.create_view(v3_family_def(VIEW, 1500.0))
        .expect("feed-bench view materializes");
    db
}

/// `distinct` specs: price thresholds spread across the observed
/// `l_extendedprice` range, each threshold once with the full projection
/// and once projecting only the price column.
fn build_specs(db: &Database, distinct: usize) -> Vec<SubscriptionSpec> {
    let snap = db.snapshot().expect("snapshot pins");
    let view = snap.view(VIEW).expect("view in snapshot");
    let price = view
        .schema()
        .index_of("lineitem", "l_extendedprice")
        .expect("price column in view output");
    let wide = view.projection()[price];
    let (mut lo, mut hi) = (f64::MAX, f64::MIN);
    for row in view.wide_rows() {
        if let Some(Datum::Float(v)) = row.get(wide) {
            lo = lo.min(*v);
            hi = hi.max(*v);
        }
    }
    if lo >= hi {
        (lo, hi) = (0.0, 1.0);
    }
    let filters = (distinct / 2).max(1);
    let mut specs = Vec::with_capacity(filters * 2);
    for i in 0..filters {
        let t = lo + (hi - lo) * (i as f64 + 1.0) / (filters as f64 + 1.0);
        let f = FeedFilter::cmp(price, CmpOp::Gt, Datum::Float(t));
        specs.push(SubscriptionSpec::on(VIEW).with_filter(f.clone()));
        specs.push(
            SubscriptionSpec::on(VIEW)
                .with_filter(f)
                .with_projection(vec![price]),
        );
    }
    specs
}

/// Register `subscribers` subscriptions at the current tip. `resume` at the
/// tip skips the initial image scan `subscribe` would run per subscriber —
/// the population registers in O(subscribers), not
/// O(subscribers × view rows).
fn register(
    hub: &FeedHub,
    specs: &[SubscriptionSpec],
    subscribers: usize,
    tip: u64,
) -> Vec<Subscription> {
    let mut subs = Vec::with_capacity(subscribers);
    for i in 0..subscribers {
        let (sub, resumed) = hub
            .resume(&specs[i % specs.len()], tip)
            .expect("resume at the tip");
        assert!(
            matches!(resumed, Resumed::Stream),
            "resume at the tip must stream, not rebase"
        );
        subs.push(sub);
    }
    subs
}

/// The naive architecture, measured on a subscriber sample: every
/// subscriber re-scans the whole view and re-evaluates its own filter.
fn naive_rescan(db: &Database, specs: &[SubscriptionSpec], sample: usize) -> Duration {
    let snap = db.snapshot().expect("snapshot pins");
    let view = snap.view(VIEW).expect("view in snapshot");
    let out_cols = view.projection();
    let start = Instant::now();
    for i in 0..sample {
        let spec = &specs[i % specs.len()];
        let mut matched = 0u64;
        for row in view.wide_rows() {
            // This loop IS the naive per-subscriber baseline the lint bans
            // everywhere else: lint:allow(feed-eval-confined)
            if spec.filter.matches_row(row, out_cols) {
                matched += 1;
            }
        }
        black_box(matched);
    }
    start.elapsed()
}

/// Run the fan-out panel: register the population, then measure `batches`
/// insert batches of `batch` lineitems each.
pub fn run_feedbench(
    env: &Env,
    _cfg: &Config,
    batch: usize,
    subscribers: usize,
    distinct: usize,
    naive_sample: usize,
    batches: usize,
) -> (FeedSetup, Vec<FeedPoint>) {
    let mut db = build_db(env);
    let hub = FeedHub::with_threads(4);
    hub.attach(&mut db);
    let specs = build_specs(&db, distinct);
    let view_rows = db.view(VIEW).expect("view exists").len();

    let start = Instant::now();
    let subs = register(&hub, &specs, subscribers, db.commit_lsn());
    let setup_time = start.elapsed();
    let stats = hub.stats();
    let setup = FeedSetup {
        subscribers: stats.subscribers,
        distinct_specs: specs.len(),
        shared_evals: stats.shared_evals,
        filter_groups: stats.filter_groups,
        view_rows,
        setup: setup_time,
    };

    let mut points = Vec::with_capacity(batches);
    for b in 0..batches {
        let rows = env.gen.lineitem_insert_batch(batch, 0x9e00 + b as u64);
        let t0 = Instant::now();
        db.insert("lineitem", rows).expect("maintenance batch");
        let commit = t0.elapsed();
        let fanout = Duration::from_nanos(hub.stats().last_fanout_nanos);

        let t1 = Instant::now();
        let mut delivered = 0u64;
        for sub in &subs {
            match sub.drain().expect("drain") {
                Drained::Updates(sets) => {
                    for set in sets {
                        let (ins, del) = set.counts();
                        delivered += (ins + del) as u64;
                    }
                }
                Drained::Rebase(image) => delivered += image.rows.len() as u64,
            }
        }
        black_box(delivered);
        let drain = t1.elapsed();

        let naive_sample_time = naive_rescan(&db, &specs, naive_sample);
        let naive_est = naive_sample_time.mul_f64(subscribers as f64 / naive_sample.max(1) as f64);
        let feed_total = (fanout + drain).as_secs_f64().max(f64::EPSILON);
        points.push(FeedPoint {
            batch,
            commit,
            fanout,
            drain,
            delivered,
            naive_sample,
            naive_sample_time,
            naive_est,
            speedup: naive_est.as_secs_f64() / feed_total,
        });
    }
    assert!(hub.take_error().is_none(), "no fan-out job may fail");
    drop(subs);
    (setup, points)
}

/// Plain-text panel.
pub fn render_feedbench(setup: &FeedSetup, points: &[FeedPoint]) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "Change-feed fan-out: {} subscribers over {} view rows, {} distinct specs \
         -> {} shared evals in {} filter groups (registered in {:.3?})\n",
        setup.subscribers,
        setup.view_rows,
        setup.distinct_specs,
        setup.shared_evals,
        setup.filter_groups,
        setup.setup,
    ));
    s.push_str("  batch   commit      fanout      drain       delivered  naive(est)    speedup\n");
    for p in points {
        s.push_str(&format!(
            "  {:>5}  {:>10.3?}  {:>10.3?}  {:>10.3?}  {:>9}  {:>10.3?}  {:>8.1}x\n",
            p.batch, p.commit, p.fanout, p.drain, p.delivered, p.naive_est, p.speedup,
        ));
    }
    s.push_str(&format!(
        "  naive baseline measured on {} subscribers, scaled linearly to {}\n",
        points.first().map_or(0, |p| p.naive_sample),
        setup.subscribers,
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Config {
        Config {
            sf: 0.002,
            seed: 7,
            batch_sizes: vec![50],
            repetitions: 1,
            verify: false,
        }
    }

    /// Smoke: a small population over a tiny scale factor registers, dedups
    /// to the distinct spec count, delivers rows on every batch, and the
    /// naive estimate is recorded alongside an honest sample size.
    #[test]
    fn feed_panel_smoke() {
        let cfg = tiny();
        let env = Env::new(&cfg);
        let (setup, points) = run_feedbench(&env, &cfg, 50, 60, 6, 10, 2);
        assert_eq!(setup.subscribers, 60);
        assert_eq!(setup.distinct_specs, 6);
        assert_eq!(setup.shared_evals, 6, "60 subscribers dedup to 6 evals");
        assert_eq!(setup.filter_groups, 3, "6 specs share 3 filters");
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.delivered > 0, "every batch delivers net rows");
            assert_eq!(p.naive_sample, 10);
            assert!(p.naive_est >= p.naive_sample_time);
            assert!(p.speedup > 0.0);
        }
        let text = render_feedbench(&setup, &points);
        assert!(text.contains("shared evals"));
        assert!(text.contains("speedup"));
    }
}
