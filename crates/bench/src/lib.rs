//! Benchmark harness reproducing the paper's evaluation (§7).
//!
//! * [`views`] — the experiment's view definitions: V3 (outer joins over
//!   customer/orders/lineitem/part) and its *core view* (all inner joins),
//! * [`harness`] — workload builders and timed maintenance runners for the
//!   three compared systems (core view, outer-join view, GK baseline),
//! * [`report`] — plain-text table/series formatting for the `repro` binary,
//! * [`walbench`] — WAL overhead of durable maintenance per fsync policy,
//! * [`multiview`] — batched multi-view maintenance with shared-plan A/B,
//! * [`readbench`] — snapshot-reader throughput concurrent with maintenance,
//! * [`feedbench`] — change-feed fan-out to a 100k filtered-subscriber
//!   population versus naive per-subscriber re-scans,
//! * [`shardbench`] — batch maintenance through the hash-partitioned
//!   [`ShardedDatabase`](ojv_core::shard::ShardedDatabase) at 1/2/4/8
//!   shards.

#![forbid(unsafe_code)]

pub mod feedbench;
pub mod harness;
pub mod multiview;
pub mod readbench;
pub mod report;
pub mod shardbench;
pub mod views;
pub mod walbench;
