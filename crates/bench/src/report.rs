//! Plain-text rendering of experiment results.

use std::time::Duration;

use crate::harness::{Measurement, System, Table1};

fn fmt_dur(d: Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us} µs")
    } else if us < 1_000_000 {
        format!("{:.2} ms", us as f64 / 1_000.0)
    } else {
        format!("{:.3} s", us as f64 / 1_000_000.0)
    }
}

/// Render Table 1: term cardinalities and rows affected.
pub fn render_table1(t: &Table1) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Table 1. Terms in view V3 and rows affected when inserting {} lineitem rows\n",
        t.batch
    ));
    out.push_str(&format!(
        "{:<8} {:>14} {:>14}\n",
        "Term", "Cardinality", "Rows affected"
    ));
    // Sort wide-to-narrow like the paper (COLP, COL, C, P).
    let mut rows = t.rows.clone();
    rows.sort_by_key(|(l, _, _)| std::cmp::Reverse(l.len()));
    for (label, card, affected) in rows {
        out.push_str(&format!("{label:<8} {card:>14} {affected:>14}\n"));
    }
    out
}

/// Render a Figure 5 panel (insertion or deletion series).
pub fn render_fig5(title: &str, measurements: &[Measurement]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    let mut batches: Vec<usize> = measurements.iter().map(|m| m.batch).collect();
    batches.sort_unstable();
    batches.dedup();

    out.push_str(&format!("{:<22}", "LINEITEM rows"));
    for b in &batches {
        out.push_str(&format!("{b:>14}"));
    }
    out.push('\n');
    for system in System::ALL {
        out.push_str(&format!("{:<22}", system.label()));
        for &b in &batches {
            let m = measurements
                .iter()
                .find(|m| m.system == system && m.batch == b);
            match m {
                Some(m) => out.push_str(&format!("{:>14}", fmt_dur(m.time))),
                None => out.push_str(&format!("{:>14}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

/// Render the delta-row counts behind a Figure 5 run (diagnostics).
pub fn render_rows(measurements: &[Measurement]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22} {:>10} {:>14} {:>14}\n",
        "System", "batch", "ΔV^D rows", "ΔV^I rows"
    ));
    for m in measurements {
        out.push_str(&format!(
            "{:<22} {:>10} {:>14} {:>14}\n",
            m.system.label(),
            m.batch,
            m.primary_rows,
            m.secondary_rows
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(system: System, batch: usize, ms: u64) -> Measurement {
        Measurement {
            system,
            batch,
            time: Duration::from_millis(ms),
            primary_rows: 10,
            secondary_rows: 2,
            exec: Default::default(),
        }
    }

    #[test]
    fn fig5_rendering_contains_all_systems_and_batches() {
        let ms = vec![
            m(System::CoreView, 10, 1),
            m(System::OuterJoin, 10, 2),
            m(System::OuterJoinGk, 10, 500),
            m(System::CoreView, 100, 3),
            m(System::OuterJoin, 100, 4),
            m(System::OuterJoinGk, 100, 900),
        ];
        let s = render_fig5("Figure 5(a)", &ms);
        assert!(s.contains("Core View"));
        assert!(s.contains("Outer Join View (GK)"));
        assert!(s.contains("500"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn table1_rendering_sorted_wide_first() {
        let t = Table1 {
            rows: vec![
                ("C".into(), 5, 1),
                ("LOCP".into(), 100, 10),
                ("LOC".into(), 20, 2),
                ("P".into(), 7, 3),
            ],
            batch: 60,
        };
        let s = render_table1(&t);
        let pos_colp = s.find("LOCP").unwrap();
        let pos_c = s.find("\nC ").unwrap();
        assert!(pos_colp < pos_c);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_dur(Duration::from_micros(12)), "12 µs");
        assert_eq!(fmt_dur(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(fmt_dur(Duration::from_millis(2500)), "2.500 s");
    }
}
