//! Multi-view batched maintenance: N structurally related views over the
//! shared TPC-H tables, maintained for one lineitem insert batch, with
//! shared-plan batching on vs off (A/B).
//!
//! The view set is the V3 family ([`crate::views::v3_family_def`]): four
//! variants differing only in the trailing part-join price cutoff, repeated
//! round-robin to reach the requested view count. All members share the
//! `Δlineitem ⋈ orders ⋈ customer` plan prefix; members with equal cutoffs
//! share whole plans. With sharing on, the batch layer evaluates the common
//! prefix once per batch instead of once per view.
//!
//! Steady-state batches must not compile plans — the runner counter-asserts
//! zero compilations inside every timed region.

use std::time::{Duration, Instant};

use ojv_core::prelude::*;

use crate::harness::{Config, Env};
use crate::views::v3_family_def;

/// The family's part-join price cutoffs; view `i` gets cutoff `i % 4`.
pub const FAMILY_CUTOFFS: [f64; 4] = [500.0, 1000.0, 1500.0, 2000.0];

/// One measured point: `views` family members maintained for one lineitem
/// batch, with shared-plan batching on or off.
#[derive(Debug, Clone)]
pub struct MultiViewPoint {
    pub views: usize,
    pub shared: bool,
    pub batch: usize,
    /// Median wall-clock of the whole batched maintenance (all views).
    pub time: Duration,
    /// Plan compilations observed inside the timed regions, summed over
    /// repetitions. Asserted zero: plans compile at view creation only.
    pub timed_compiles: usize,
    /// Primary-delta rows of the widest view in the batch.
    pub primary_rows: usize,
}

fn build_db(env: &Env, n_views: usize, shared: bool) -> Database {
    let mut db = Database::new(env.catalog.clone());
    db.policy = MaintenancePolicy {
        share_plans: shared,
        ..MaintenancePolicy::default()
    };
    for i in 0..n_views {
        let cutoff = FAMILY_CUTOFFS[i % FAMILY_CUTOFFS.len()];
        db.create_view(v3_family_def(&format!("v3_{i}"), cutoff))
            .expect("family view materializes");
    }
    db
}

/// Run the multi-view panel: for each view count, maintain the same insert
/// workload with sharing off and on. Returns unshared/shared pairs in view
/// count order.
pub fn run_multiview(
    env: &Env,
    cfg: &Config,
    batch: usize,
    view_counts: &[usize],
) -> Vec<MultiViewPoint> {
    let mut out = Vec::new();
    for &n in view_counts {
        for shared in [false, true] {
            let mut reps: Vec<(Duration, usize)> = Vec::new();
            let mut timed_compiles = 0usize;
            for rep in 0..cfg.repetitions.max(1) as u64 {
                let mut db = build_db(env, n, shared);
                // Warm-up batch (untimed): view creation already compiled
                // every plan; this exercises the full maintenance path once.
                let rows = env.gen.lineitem_insert_batch(batch, 10_000 + rep);
                let update = db.apply_insert("lineitem", rows).expect("warm-up batch");
                db.maintain_update(&update).expect("warm-up maintenance");

                let rows = env.gen.lineitem_insert_batch(batch, rep);
                let update = db.apply_insert("lineitem", rows).expect("timed batch");
                let before = compile_count();
                let start = Instant::now();
                let reports = db.maintain_update(&update).expect("timed maintenance");
                let t = start.elapsed();
                let compiled = compile_count() - before;
                assert_eq!(compiled, 0, "steady-state batch must not compile plans");
                timed_compiles += compiled;
                let primary = reports.iter().map(|r| r.primary_rows).max().unwrap_or(0);
                reps.push((t, primary));
            }
            reps.sort_by_key(|(t, _)| *t);
            let (time, primary_rows) = reps[reps.len() / 2];
            out.push(MultiViewPoint {
                views: n,
                shared,
                batch,
                time,
                timed_compiles,
                primary_rows,
            });
        }
    }
    out
}

/// Plain-text table with the shared-vs-unshared speedup per view count.
pub fn render_multiview(points: &[MultiViewPoint]) -> String {
    let mut s = String::new();
    s.push_str("Multi-view batched maintenance (V3 family, lineitem insert):\n");
    s.push_str("  views  batch   unshared      shared        speedup\n");
    let mut i = 0;
    while i + 1 < points.len() + 1 {
        let Some(unshared) = points.get(i) else { break };
        let shared = points.get(i + 1);
        match shared {
            Some(sh) if sh.views == unshared.views && sh.shared && !unshared.shared => {
                let speedup = unshared.time.as_secs_f64() / sh.time.as_secs_f64().max(f64::EPSILON);
                s.push_str(&format!(
                    "  {:>5}  {:>5}  {:>10.3?}  {:>10.3?}  {:>9.2}x\n",
                    unshared.views, unshared.batch, unshared.time, sh.time, speedup
                ));
                i += 2;
            }
            _ => {
                s.push_str(&format!(
                    "  {:>5}  {:>5}  {:>10.3?}  (unpaired)\n",
                    unshared.views, unshared.batch, unshared.time
                ));
                i += 1;
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Config {
        Config {
            sf: 0.002,
            seed: 7,
            batch_sizes: vec![50],
            repetitions: 1,
            verify: false,
        }
    }

    /// The panel runs at small scale, produces unshared/shared pairs with
    /// identical view contents, and compiles nothing inside timed regions.
    #[test]
    fn multiview_panel_runs_and_matches() {
        let cfg = tiny();
        let env = Env::new(&cfg);
        let points = run_multiview(&env, &cfg, 50, &[1, 4]);
        assert_eq!(points.len(), 4);
        assert!(points.iter().all(|p| p.timed_compiles == 0));
        for pair in points.chunks(2) {
            assert_eq!(pair[0].views, pair[1].views);
            assert!(!pair[0].shared && pair[1].shared);
            assert_eq!(pair[0].primary_rows, pair[1].primary_rows);
        }
        // Shared and unshared runs leave byte-identical views.
        let mut a = build_db(&env, 4, true);
        let mut b = build_db(&env, 4, false);
        for db in [&mut a, &mut b] {
            let rows = env.gen.lineitem_insert_batch(50, 3);
            let update = db.apply_insert("lineitem", rows).unwrap();
            db.maintain_update(&update).unwrap();
        }
        for i in 0..4 {
            let name = format!("v3_{i}");
            assert_eq!(
                a.view(&name).unwrap().wide_rows(),
                b.view(&name).unwrap().wide_rows(),
                "view {name} diverged"
            );
        }
        let text = render_multiview(&points);
        assert!(text.contains("speedup"));
    }
}
