//! The evaluation's view definitions (paper §7).

use ojv_core::prelude::*;
use ojv_rel::datum::date;

/// The paper's view V3:
///
/// ```sql
/// create view V3 as select ... from
///   ((select * from lineitem, orders
///      where l_orderkey = o_orderkey
///        and o_orderdate between '1994-06-01' and '1994-12-31')
///    right outer join customer on c_custkey = o_custkey)
///   full outer join part on l_partkey = p_partkey
///                       and p_retailprice < 2000
/// ```
pub fn v3_def() -> ViewDef {
    ViewDef::new("v3", v3_expr(JoinKind::RightOuter, JoinKind::FullOuter))
}

/// The *core view* of V3: all outer joins replaced by inner joins, same
/// predicates and indexes (paper §7).
pub fn v3_core_def() -> ViewDef {
    ViewDef::new("v3_core", v3_expr(JoinKind::Inner, JoinKind::Inner))
}

/// A member of the V3 *family*: identical shape to [`v3_def`], with the
/// part-join retail-price cutoff as a parameter. All members share the
/// `Δlineitem ⋈ orders ⋈ customer` leading subplan of their lineitem
/// maintenance plans and diverge only at the trailing part join, so batched
/// multi-view maintenance factors the shared prefix out once. Members with
/// equal cutoffs have identical plans and share whole primary deltas.
pub fn v3_family_def(name: &str, price_cutoff: f64) -> ViewDef {
    ViewDef::new(
        name,
        v3_expr_with(JoinKind::RightOuter, JoinKind::FullOuter, price_cutoff),
    )
}

fn v3_expr(customer_join: JoinKind, part_join: JoinKind) -> ViewExpr {
    v3_expr_with(customer_join, part_join, 2000.0)
}

fn v3_expr_with(customer_join: JoinKind, part_join: JoinKind, price_cutoff: f64) -> ViewExpr {
    let lineitem_orders = ViewExpr::inner(
        vec![
            col_eq("lineitem", "l_orderkey", "orders", "o_orderkey"),
            col_between(
                "orders",
                "o_orderdate",
                date("1994-06-01"),
                date("1994-12-31"),
            ),
        ],
        ViewExpr::table("lineitem"),
        ViewExpr::table("orders"),
    );
    let with_customer = ViewExpr::join(
        customer_join,
        vec![col_eq("customer", "c_custkey", "orders", "o_custkey")],
        lineitem_orders,
        ViewExpr::table("customer"),
    );
    ViewExpr::join(
        part_join,
        vec![
            col_eq("lineitem", "l_partkey", "part", "p_partkey"),
            col_cmp("part", "p_retailprice", CmpOp::Lt, price_cutoff),
        ],
        with_customer,
        ViewExpr::table("part"),
    )
}

/// The paper's Example 11 view V2 over TPC-H:
/// `V2 = σ_pc C fo_{ck=ock} (σ_po O fo_{ok=lok} L)` — with the customer and
/// orders selections expressed as account-balance and total-price filters.
pub fn v2_def() -> ViewDef {
    ViewDef::new(
        "v2",
        ViewExpr::full_outer(
            vec![col_eq("customer", "c_custkey", "orders", "o_custkey")],
            ViewExpr::select(
                vec![col_cmp("customer", "c_acctbal", CmpOp::Ge, 0.0)],
                ViewExpr::table("customer"),
            ),
            ViewExpr::full_outer(
                vec![col_eq("orders", "o_orderkey", "lineitem", "l_orderkey")],
                ViewExpr::select(
                    vec![col_cmp("orders", "o_totalprice", CmpOp::Ge, 1000.0)],
                    ViewExpr::table("orders"),
                ),
                ViewExpr::table("lineitem"),
            ),
        ),
    )
}

/// The introduction's `oj_view` over the TPC-H schema (Example 1):
/// `part fo (orders lo lineitem on l_orderkey=o_orderkey) on p_partkey=l_partkey`.
pub fn oj_view_def() -> ViewDef {
    ViewDef::new(
        "oj_view",
        ViewExpr::full_outer(
            vec![col_eq("part", "p_partkey", "lineitem", "l_partkey")],
            ViewExpr::table("part"),
            ViewExpr::left_outer(
                vec![col_eq("orders", "o_orderkey", "lineitem", "l_orderkey")],
                ViewExpr::table("orders"),
                ViewExpr::table("lineitem"),
            ),
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ojv_core::analyze::analyze;
    use ojv_tpch::{create_tpch_catalog, TpchGen};

    #[test]
    fn v3_normal_form_matches_table_1_terms() {
        let mut c = create_tpch_catalog().unwrap();
        TpchGen::new(0.001, 1).populate(&mut c).unwrap();
        let a = analyze(&c, &v3_def()).unwrap();
        // Paper Table 1: terms COLP, COL, C, P.
        let mut sizes: Vec<usize> = a.terms.iter().map(|t| t.tables.len()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 1, 3, 4]);
        let l = a.layout.table_id("lineitem").unwrap();
        let c_id = a.layout.table_id("customer").unwrap();
        let p = a.layout.table_id("part").unwrap();
        assert!(a
            .terms
            .iter()
            .any(|t| t.tables.len() == 1 && t.tables.contains(c_id)));
        assert!(a
            .terms
            .iter()
            .any(|t| t.tables.len() == 1 && t.tables.contains(p)));
        assert!(a
            .terms
            .iter()
            .any(|t| t.tables.len() == 3 && !t.tables.contains(p) && t.tables.contains(l)));
    }

    /// Example 11 / Figure 4: V2's unpruned maintenance graph for orders
    /// updates has 4 direct + 2 indirect terms; the FK L.lok→O.ok reduces it
    /// to {C,O},{O} direct and {C} indirect.
    #[test]
    fn v2_maintenance_graphs_match_figure_4() {
        let mut c = create_tpch_catalog().unwrap();
        TpchGen::new(0.001, 1).populate(&mut c).unwrap();
        let a = analyze(&c, &v2_def()).unwrap();
        let o = a.layout.table_id("orders").unwrap();
        let unreduced = a.maintenance_graph(o, false);
        assert_eq!(unreduced.direct.len(), 4);
        assert_eq!(unreduced.indirect.len(), 2);
        let reduced = a.maintenance_graph(o, true);
        assert_eq!(reduced.direct.len(), 2);
        assert_eq!(reduced.indirect.len(), 1);
        // The surviving indirect term is {C}.
        let cu = a.layout.table_id("customer").unwrap();
        let ind_term = &a.terms[reduced.indirect[0].term];
        assert_eq!(ind_term.tables.len(), 1);
        assert!(ind_term.tables.contains(cu));
    }

    #[test]
    fn v3_core_has_single_term() {
        let mut c = create_tpch_catalog().unwrap();
        TpchGen::new(0.001, 1).populate(&mut c).unwrap();
        let a = analyze(&c, &v3_core_def()).unwrap();
        assert_eq!(a.terms.len(), 1);
        assert_eq!(a.terms[0].tables.len(), 4);
    }

    #[test]
    fn orders_updates_do_not_affect_v3() {
        // Paper: "Because of the foreign key constraint between lineitem and
        // orders, insertion or deletion of order rows does not affect the
        // view."
        let mut c = create_tpch_catalog().unwrap();
        TpchGen::new(0.001, 1).populate(&mut c).unwrap();
        let a = analyze(&c, &v3_def()).unwrap();
        let o = a.layout.table_id("orders").unwrap();
        let m = a.maintenance_graph(o, true);
        assert!(m.is_empty());
    }

    #[test]
    fn customer_updates_touch_only_the_c_term() {
        let mut c = create_tpch_catalog().unwrap();
        TpchGen::new(0.001, 1).populate(&mut c).unwrap();
        let a = analyze(&c, &v3_def()).unwrap();
        let cu = a.layout.table_id("customer").unwrap();
        let m = a.maintenance_graph(cu, true);
        assert_eq!(m.direct.len(), 1);
        assert!(m.indirect.is_empty());
        assert_eq!(a.terms[m.direct[0]].tables.len(), 1);
    }
}
