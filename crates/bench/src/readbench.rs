//! Reader throughput against the versioned view store: N reader threads
//! pin snapshots and scan a V3-family view while (optionally) a writer
//! streams lineitem insert batches through maintenance.
//!
//! Two questions are measured:
//!
//! 1. **Snapshot tax** — a single reader with no maintenance running,
//!    scanning the view directly ([`Database::view`] → `wide_rows`) vs
//!    through a pinned snapshot. The snapshot path adds one registry lock
//!    and per-view `Arc` clones per pin; amortized over a whole-view scan
//!    it must stay within a few percent of the direct path.
//! 2. **Read scaling under maintenance** — aggregate reads/sec at 1, 8 and
//!    32 reader threads while the writer commits batches as fast as it can.
//!    Readers never block the writer and vice versa: each pin is a
//!    consistent version, so throughput should scale with threads instead
//!    of collapsing behind a store-wide lock.
//!
//! Every read is the same unit of work on both paths: scan the view's wide
//! rows and fold a checksum (sampled first-column values), kept honest with
//! [`std::hint::black_box`].

use std::hint::black_box;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use ojv_core::prelude::*;
use ojv_rel::{Datum, Row};

use crate::harness::{Config, Env};
use crate::views::v3_family_def;

/// The benchmark view: one V3-family member (mid-range price cutoff).
const VIEW: &str = "v3_readers";

/// One measured point of the reader panel.
#[derive(Debug, Clone)]
pub struct ReadPoint {
    /// `"direct"` (borrow the live view) or `"snapshot"` (pin per read).
    pub path: &'static str,
    pub readers: usize,
    /// Whether a writer streamed maintenance batches during the reads.
    pub maintenance: bool,
    /// Total reads completed, summed over reader threads.
    pub reads: u64,
    /// Maintenance batches committed while the readers ran (0 when idle).
    pub batches: u64,
    /// Median wall clock for the whole read volume.
    pub time: Duration,
    /// Aggregate reads per second at the median repetition.
    pub qps: f64,
}

fn build_db(env: &Env) -> Database {
    let mut db = Database::new(env.catalog.clone());
    db.create_view(v3_family_def(VIEW, 1500.0))
        .expect("reader-bench view materializes");
    db
}

/// One read's unit of work: scan every wide row, folding a checksum over
/// the leading column.
fn checksum(rows: &[Row]) -> u64 {
    let mut acc = rows.len() as u64;
    for row in rows {
        if let Some(Datum::Int(v)) = row.first() {
            acc = acc.wrapping_mul(31).wrapping_add(*v as u64);
        }
    }
    acc
}

/// Single-reader, no-maintenance baselines: the same scan through the live
/// view reference and through a fresh pin per read.
fn run_baseline(env: &Env, cfg: &Config, reads: u64) -> Vec<ReadPoint> {
    let mut out = Vec::new();
    for path in ["direct", "snapshot"] {
        let mut reps: Vec<Duration> = Vec::new();
        for _ in 0..cfg.repetitions.max(1) {
            let db = build_db(env);
            // Warm both paths once so neither pays first-touch costs.
            black_box(checksum(db.view(VIEW).expect("view exists").wide_rows()));
            black_box(checksum(
                db.snapshot()
                    .expect("snapshot pins")
                    .view(VIEW)
                    .expect("view in snapshot")
                    .wide_rows(),
            ));
            let start = Instant::now();
            match path {
                "direct" => {
                    for _ in 0..reads {
                        let view = db.view(VIEW).expect("view exists");
                        black_box(checksum(view.wide_rows()));
                    }
                }
                _ => {
                    for _ in 0..reads {
                        let snap = db.snapshot().expect("snapshot pins");
                        let view = snap.view(VIEW).expect("view in snapshot");
                        black_box(checksum(view.wide_rows()));
                    }
                }
            }
            reps.push(start.elapsed());
        }
        reps.sort();
        let time = reps[reps.len() / 2];
        out.push(ReadPoint {
            path,
            readers: 1,
            maintenance: false,
            reads,
            batches: 0,
            time,
            qps: reads as f64 / time.as_secs_f64().max(f64::EPSILON),
        });
    }
    out
}

/// Concurrent panel: `readers` threads each complete `reads_per_thread`
/// snapshot reads while the writer streams insert batches until the last
/// reader finishes.
fn run_concurrent(env: &Env, cfg: &Config, readers: usize, reads_per_thread: u64) -> ReadPoint {
    let mut reps: Vec<(Duration, u64)> = Vec::new();
    for rep in 0..cfg.repetitions.max(1) as u64 {
        let mut db = build_db(env);
        // One warm-up batch so the writer's timed stream never compiles.
        let rows = env.gen.lineitem_insert_batch(100, 90_000 + rep);
        db.insert("lineitem", rows).expect("warm-up batch");

        let registry = db.snapshots().clone();
        let done = AtomicBool::new(false);
        let batches = AtomicU64::new(0);
        let start_gate = Barrier::new(readers + 1);
        let mut elapsed = Duration::ZERO;

        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..readers {
                let registry = registry.clone();
                let start_gate = &start_gate;
                handles.push(scope.spawn(move || {
                    start_gate.wait();
                    for _ in 0..reads_per_thread {
                        let snap = registry.pin().expect("snapshot pins");
                        let view = snap.view(VIEW).expect("view in snapshot");
                        black_box(checksum(view.wide_rows()));
                    }
                }));
            }

            start_gate.wait();
            let start = Instant::now();
            let mut batch_seed = rep << 32;
            while !done.load(Ordering::Acquire) {
                batch_seed += 1;
                let rows = env.gen.lineitem_insert_batch(100, batch_seed);
                db.insert("lineitem", rows).expect("maintenance batch");
                // concheck:allow(atomic-ordering) throughput counter, read after join
                batches.fetch_add(1, Ordering::Relaxed);
                if handles.iter().all(|h| h.is_finished()) {
                    done.store(true, Ordering::Release);
                }
            }
            for h in handles {
                h.join().expect("reader thread");
            }
            elapsed = start.elapsed();
        });

        // concheck:allow(atomic-ordering) all writers joined above
        reps.push((elapsed, batches.load(Ordering::Relaxed)));
        // Readers pin and drop; nothing may leak once they are done.
        let stats = db.snapshots().stats();
        assert_eq!(stats.active_pins, 0, "reader pins must all release");
        assert_eq!(stats.retained_ops, 0, "history must reclaim after reads");
    }
    reps.sort_by_key(|&(t, _)| t);
    let (time, batch_count) = reps[reps.len() / 2];
    let reads = reads_per_thread * readers as u64;
    ReadPoint {
        path: "snapshot",
        readers,
        maintenance: true,
        reads,
        batches: batch_count,
        time,
        qps: reads as f64 / time.as_secs_f64().max(f64::EPSILON),
    }
}

/// Run the full reader panel: direct/snapshot baselines, then snapshot
/// reads at each thread count with maintenance streaming.
pub fn run_readbench(
    env: &Env,
    cfg: &Config,
    reads_per_thread: u64,
    thread_counts: &[usize],
) -> Vec<ReadPoint> {
    let mut out = run_baseline(env, cfg, reads_per_thread);
    for &n in thread_counts {
        out.push(run_concurrent(env, cfg, n, reads_per_thread));
    }
    out
}

/// Plain-text table, with the snapshot-vs-direct baseline ratio called out.
pub fn render_readbench(points: &[ReadPoint]) -> String {
    let mut s = String::new();
    s.push_str("Reader throughput vs the versioned view store (V3 family scan):\n");
    s.push_str("  path      readers  maint  reads    batches  elapsed       reads/s\n");
    for p in points {
        s.push_str(&format!(
            "  {:<8}  {:>7}  {:>5}  {:>7}  {:>7}  {:>10.3?}  {:>10.0}\n",
            p.path,
            p.readers,
            if p.maintenance { "yes" } else { "no" },
            p.reads,
            p.batches,
            p.time,
            p.qps,
        ));
    }
    let direct = points.iter().find(|p| p.path == "direct");
    let pinned = points
        .iter()
        .find(|p| p.path == "snapshot" && !p.maintenance);
    if let (Some(d), Some(p)) = (direct, pinned) {
        s.push_str(&format!(
            "  snapshot/direct single-reader ratio: {:.3} (pin overhead per scan)\n",
            d.qps / p.qps.max(f64::EPSILON)
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Config {
        Config {
            sf: 0.002,
            seed: 7,
            batch_sizes: vec![50],
            repetitions: 1,
            verify: false,
        }
    }

    /// Smoke: both baselines and a 2-thread concurrent point run, reads
    /// all complete, maintenance genuinely commits batches underneath.
    #[test]
    fn reader_panel_smoke() {
        let cfg = tiny();
        let env = Env::new(&cfg);
        let points = run_readbench(&env, &cfg, 50, &[2]);
        assert_eq!(points.len(), 3);
        let direct = &points[0];
        let pinned = &points[1];
        assert_eq!((direct.path, direct.maintenance), ("direct", false));
        assert_eq!((pinned.path, pinned.maintenance), ("snapshot", false));
        assert!(direct.qps > 0.0 && pinned.qps > 0.0);
        let concurrent = &points[2];
        assert_eq!(concurrent.readers, 2);
        assert_eq!(concurrent.reads, 100);
        assert!(
            concurrent.batches > 0,
            "writer must commit at least one batch while readers run"
        );
        let text = render_readbench(&points);
        assert!(text.contains("snapshot/direct single-reader ratio"));
    }
}
