//! Reproduce the paper's tables and figures.
//!
//! ```text
//! repro [--sf 0.05] [--seed 42] [--quick] [--shards 1,2,4,8] \
//!       [table1|fig5a|fig5b|example1|graphs|walbench|multiview|readers|feedbench|shardbench|all]
//! ```
//!
//! * `table1` — Table 1: term cardinalities of V3 and rows affected by a
//!   lineitem insert batch,
//! * `fig5a` / `fig5b` — Figure 5(a)/(b): maintenance cost for lineitem
//!   insertions/deletions across batch sizes, for the core view, the
//!   outer-join view, and the GK baseline,
//! * `example1` — the §1/§6 foreign-key fast paths,
//! * `graphs` — the subsumption and maintenance graphs of Figures 1 and 4,
//! * `walbench` — Figure-5-style insert maintenance through the durable
//!   WAL at each fsync policy vs the in-memory engine (`BENCH_pr4.json`),
//! * `multiview` — batched maintenance of a multi-view family (1/4/16 views
//!   over the shared TPC-H tables) with shared-plan batching on vs off
//!   (`BENCH_pr5.json`),
//! * `readers` — snapshot-reader throughput at 1/8/32 reader threads while
//!   maintenance streams insert batches, plus the single-reader
//!   snapshot-vs-direct baseline (`BENCH_pr6.json`),
//! * `feedbench` — change-feed fan-out of per-batch deltas to 100k filtered
//!   subscribers vs naive per-subscriber re-scans (`BENCH_pr9.json`),
//! * `shardbench` — batch maintenance through the hash-partitioned
//!   `ShardedDatabase` at 1/2/4/8 shards, with columnar heap footprints and
//!   honest machine metadata (`BENCH_pr10.json`),
//! * `all` — everything above except `walbench`, `multiview`, `readers`,
//!   `feedbench` and `shardbench`.

use std::fmt::Write as _;
use std::time::Instant;

use ojv_bench::harness::{run_fast_paths, run_fig5, run_table1, Config, Env, Measurement};
use ojv_bench::report::{render_fig5, render_rows, render_table1};
use ojv_bench::views::{v2_def, v3_def};

// Count heap allocations so the emitted per-operator stats include real
// allocation numbers, not zeros. Two relaxed atomic adds per allocation —
// noise next to the allocations themselves.
#[global_allocator]
static ALLOC: ojv_rel::CountingAlloc = ojv_rel::CountingAlloc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = Config::default();
    let mut command = "all".to_string();
    let mut shards: Vec<usize> = vec![1, 2, 4, 8];
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--shards" => {
                i += 1;
                shards = args[i]
                    .split(',')
                    .map(|s| s.trim().parse().expect("--shards takes integers"))
                    .collect();
            }
            "--sf" => {
                i += 1;
                cfg.sf = args[i].parse().expect("--sf takes a number");
            }
            "--seed" => {
                i += 1;
                cfg.seed = args[i].parse().expect("--seed takes an integer");
            }
            "--reps" => {
                i += 1;
                cfg.repetitions = args[i].parse().expect("--reps takes an integer");
            }
            "--quick" => {
                let seed = cfg.seed;
                cfg = Config::quick();
                cfg.seed = seed;
            }
            other => command = other.to_string(),
        }
        i += 1;
    }

    println!(
        "# Reproduction of Larson & Zhou, ICDE 2007 — SF={}, seed={}\n",
        cfg.sf, cfg.seed
    );
    let start = Instant::now();
    print!("loading TPC-H data ... ");
    let env = Env::new(&cfg);
    println!(
        "done in {:.1}s ({} lineitems)\n",
        start.elapsed().as_secs_f64(),
        env.gen.lineitem_count()
    );

    let mut json_panels: Vec<(&str, Vec<Measurement>)> = Vec::new();
    match command.as_str() {
        "table1" => table1(&env, &cfg),
        "fig5a" => json_panels.push(("fig5a_insert", fig5(&env, &cfg, false))),
        "fig5b" => json_panels.push(("fig5b_delete", fig5(&env, &cfg, true))),
        "example1" => example1(&env),
        "graphs" => graphs(&env),
        "sql" => sql(&env),
        "walbench" => walbench(&env, &cfg),
        "multiview" => multiview(&env, &cfg),
        "readers" => readers(&env, &cfg),
        "feedbench" => feedbench(&env, &cfg),
        "shardbench" => shardbench(&env, &cfg, &shards),
        "all" => {
            graphs(&env);
            sql(&env);
            example1(&env);
            table1(&env, &cfg);
            json_panels.push(("fig5a_insert", fig5(&env, &cfg, false)));
            json_panels.push(("fig5b_delete", fig5(&env, &cfg, true)));
        }
        other => {
            eprintln!(
                "unknown command {other}; use table1|fig5a|fig5b|example1|graphs|sql|walbench|multiview|readers|feedbench|shardbench|all"
            );
            std::process::exit(2);
        }
    }
    if !json_panels.is_empty() {
        let path = "BENCH_pr2.json";
        match std::fs::write(path, render_json(&cfg, &json_panels)) {
            Ok(()) => println!("machine-readable results written to {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}

/// Hand-rolled JSON (the workspace has no serde): per measured point the
/// wall-clock, row counts, and per-operator executor counters including
/// heap allocations from the counting allocator above.
fn render_json(cfg: &Config, panels: &[(&str, Vec<Measurement>)]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(
        s,
        "  \"config\": {{ \"sf\": {}, \"seed\": {}, \"repetitions\": {} }},",
        cfg.sf, cfg.seed, cfg.repetitions
    );
    let _ = writeln!(s, "  \"panels\": [");
    for (pi, (panel, ms)) in panels.iter().enumerate() {
        let _ = writeln!(s, "    {{ \"panel\": \"{panel}\", \"measurements\": [");
        for (mi, m) in ms.iter().enumerate() {
            let _ = write!(
                s,
                "      {{ \"system\": \"{}\", \"batch\": {}, \"time_ns\": {}, \
                 \"primary_rows\": {}, \"secondary_rows\": {}, \"operators\": {{",
                m.system.label(),
                m.batch,
                m.time.as_nanos(),
                m.primary_rows,
                m.secondary_rows,
            );
            let ops = [
                ("filter", &m.exec.filter),
                ("join_build", &m.exec.join_build),
                ("join_probe", &m.exec.join_probe),
                ("index_join", &m.exec.index_join),
                ("dedup", &m.exec.dedup),
                ("subsume", &m.exec.subsume),
            ];
            for (oi, (name, op)) in ops.iter().enumerate() {
                let _ = write!(
                    s,
                    " \"{name}\": {{ \"rows_in\": {}, \"rows_out\": {}, \"morsels\": {}, \
                     \"time_ns\": {}, \"allocs\": {}, \"alloc_bytes\": {} }}{}",
                    op.rows_in,
                    op.rows_out,
                    op.morsels,
                    op.time_ns,
                    op.allocs,
                    op.alloc_bytes,
                    if oi + 1 < ops.len() { "," } else { "" },
                );
            }
            let _ = writeln!(s, " }} }}{}", if mi + 1 < ms.len() { "," } else { "" });
        }
        let _ = writeln!(
            s,
            "    ] }}{}",
            if pi + 1 < panels.len() { "," } else { "" }
        );
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}

/// Durable WAL overhead sweep; emits `BENCH_pr4.json` next to the pr2 file.
fn walbench(env: &Env, cfg: &Config) {
    let scratch = std::env::temp_dir().join(format!("ojv-walbench-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("scratch dir creates");
    let ms = ojv_bench::walbench::run_walbench(env, cfg, &scratch);
    std::fs::remove_dir_all(&scratch).ok();
    println!("{}", ojv_bench::walbench::render_walbench(&ms));

    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(
        s,
        "  \"config\": {{ \"sf\": {}, \"seed\": {}, \"repetitions\": {} }},",
        cfg.sf, cfg.seed, cfg.repetitions
    );
    let _ = writeln!(s, "  \"panels\": [");
    let _ = writeln!(
        s,
        "    {{ \"panel\": \"walbench_insert\", \"measurements\": ["
    );
    for (mi, m) in ms.iter().enumerate() {
        let _ = writeln!(
            s,
            "      {{ \"system\": \"{}\", \"batch\": {}, \"time_ns\": {}, \
             \"wal_bytes\": {}, \"primary_rows\": {} }}{}",
            m.series,
            m.batch,
            m.time.as_nanos(),
            m.wal_bytes,
            m.primary_rows,
            if mi + 1 < ms.len() { "," } else { "" },
        );
    }
    let _ = writeln!(s, "    ] }}");
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    let path = "BENCH_pr4.json";
    match std::fs::write(path, s) {
        Ok(()) => println!("machine-readable results written to {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// Multi-view shared-plan A/B sweep; emits `BENCH_pr5.json`.
fn multiview(env: &Env, cfg: &Config) {
    // Batch 10k at the default config; --quick caps at its largest batch.
    let batch = (*cfg.batch_sizes.last().expect("batch sizes configured")).min(10_000);
    let view_counts = [1usize, 4, 16];
    let points = ojv_bench::multiview::run_multiview(env, cfg, batch, &view_counts);
    println!("{}", ojv_bench::multiview::render_multiview(&points));

    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(
        s,
        "  \"config\": {{ \"sf\": {}, \"seed\": {}, \"repetitions\": {} }},",
        cfg.sf, cfg.seed, cfg.repetitions
    );
    let _ = writeln!(s, "  \"panels\": [");
    let _ = writeln!(
        s,
        "    {{ \"panel\": \"multiview_insert\", \"measurements\": ["
    );
    for (mi, m) in points.iter().enumerate() {
        let _ = writeln!(
            s,
            "      {{ \"views\": {}, \"shared\": {}, \"batch\": {}, \"time_ns\": {}, \
             \"timed_compiles\": {}, \"primary_rows\": {} }}{}",
            m.views,
            m.shared,
            m.batch,
            m.time.as_nanos(),
            m.timed_compiles,
            m.primary_rows,
            if mi + 1 < points.len() { "," } else { "" },
        );
    }
    let _ = writeln!(s, "    ] }}");
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    let path = "BENCH_pr5.json";
    match std::fs::write(path, s) {
        Ok(()) => println!("machine-readable results written to {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// Reader-throughput panel against the versioned view store; emits
/// `BENCH_pr6.json`.
fn readers(env: &Env, cfg: &Config) {
    let thread_counts = [1usize, 8, 32];
    let reads_per_thread = 400u64;
    let points = ojv_bench::readbench::run_readbench(env, cfg, reads_per_thread, &thread_counts);
    println!("{}", ojv_bench::readbench::render_readbench(&points));

    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(
        s,
        "  \"config\": {{ \"sf\": {}, \"seed\": {}, \"repetitions\": {}, \
         \"reads_per_thread\": {} }},",
        cfg.sf, cfg.seed, cfg.repetitions, reads_per_thread
    );
    let _ = writeln!(s, "  \"panels\": [");
    let _ = writeln!(
        s,
        "    {{ \"panel\": \"reader_throughput\", \"measurements\": ["
    );
    for (mi, p) in points.iter().enumerate() {
        let _ = writeln!(
            s,
            "      {{ \"path\": \"{}\", \"readers\": {}, \"maintenance\": {}, \
             \"reads\": {}, \"batches\": {}, \"time_ns\": {}, \"qps\": {:.1} }}{}",
            p.path,
            p.readers,
            p.maintenance,
            p.reads,
            p.batches,
            p.time.as_nanos(),
            p.qps,
            if mi + 1 < points.len() { "," } else { "" },
        );
    }
    let _ = writeln!(s, "    ] }}");
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    let path = "BENCH_pr6.json";
    match std::fs::write(path, s) {
        Ok(()) => println!("machine-readable results written to {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn feedbench(env: &Env, cfg: &Config) {
    let batch = (*cfg.batch_sizes.last().expect("batch sizes configured")).max(10_000);
    let (subscribers, distinct, sample, batches) = (100_000usize, 250usize, 200usize, 3usize);
    let (setup, points) = ojv_bench::feedbench::run_feedbench(
        env,
        cfg,
        batch,
        subscribers,
        distinct,
        sample,
        batches,
    );
    println!(
        "{}",
        ojv_bench::feedbench::render_feedbench(&setup, &points)
    );

    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(
        s,
        "  \"config\": {{ \"sf\": {}, \"seed\": {}, \"batch\": {}, \"subscribers\": {}, \
         \"distinct_specs\": {}, \"naive_sample\": {}, \"batches\": {} }},",
        cfg.sf, cfg.seed, batch, subscribers, distinct, sample, batches
    );
    let _ = writeln!(
        s,
        "  \"setup\": {{ \"subscribers\": {}, \"distinct_specs\": {}, \"shared_evals\": {}, \
         \"filter_groups\": {}, \"view_rows\": {}, \"register_ns\": {} }},",
        setup.subscribers,
        setup.distinct_specs,
        setup.shared_evals,
        setup.filter_groups,
        setup.view_rows,
        setup.setup.as_nanos()
    );
    let _ = writeln!(s, "  \"panels\": [");
    let _ = writeln!(s, "    {{ \"panel\": \"feed_fanout\", \"measurements\": [");
    for (mi, p) in points.iter().enumerate() {
        let _ = writeln!(
            s,
            "      {{ \"batch\": {}, \"commit_ns\": {}, \"fanout_ns\": {}, \"drain_ns\": {}, \
             \"delivered\": {}, \"naive_sample\": {}, \"naive_sample_ns\": {}, \
             \"naive_est_ns\": {}, \"speedup\": {:.1} }}{}",
            p.batch,
            p.commit.as_nanos(),
            p.fanout.as_nanos(),
            p.drain.as_nanos(),
            p.delivered,
            p.naive_sample,
            p.naive_sample_time.as_nanos(),
            p.naive_est.as_nanos(),
            p.speedup,
            if mi + 1 < points.len() { "," } else { "" },
        );
    }
    let _ = writeln!(s, "    ] }}");
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    let path = "BENCH_pr9.json";
    match std::fs::write(path, s) {
        Ok(()) => println!("machine-readable results written to {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// Shard-count scaling sweep through the hash-partitioned engine; emits
/// `BENCH_pr10.json` with honest machine metadata (a single-core container
/// cannot show parallel shard speedup, and says so).
fn shardbench(env: &Env, cfg: &Config, shard_counts: &[usize]) {
    let batch = (*cfg.batch_sizes.last().expect("batch sizes configured")).min(10_000);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let points = ojv_bench::shardbench::run_shardbench(env, cfg, batch, shard_counts);
    println!(
        "{}",
        ojv_bench::shardbench::render_shardbench(&points, cores)
    );

    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(
        s,
        "  \"config\": {{ \"sf\": {}, \"seed\": {}, \"repetitions\": {}, \"batch\": {} }},",
        cfg.sf, cfg.seed, cfg.repetitions, batch
    );
    let _ = writeln!(
        s,
        "  \"machine\": {{ \"cores\": {cores}, \"note\": \"{}\" }},",
        if cores == 1 {
            "single core visible: per-shard maintenance is concurrent, not parallel; \
             the sweep measures partitioning overhead, not parallel speedup"
        } else {
            "per-shard maintenance runs on scoped threads, one per touched shard"
        }
    );
    let _ = writeln!(s, "  \"panels\": [");
    let _ = writeln!(
        s,
        "    {{ \"panel\": \"shard_scaling\", \"measurements\": ["
    );
    for (mi, p) in points.iter().enumerate() {
        let _ = writeln!(
            s,
            "      {{ \"shards\": {}, \"sf\": {}, \"batch\": {}, \"build_ns\": {}, \
             \"heap_bytes\": {}, \"min_shard_rows\": {}, \"max_shard_rows\": {}, \
             \"insert_ns\": {}, \"delete_ns\": {}, \"primary_rows\": {}, \
             \"speedup\": {:.3} }}{}",
            p.shards,
            cfg.sf,
            p.batch,
            p.build.as_nanos(),
            p.heap_bytes,
            p.min_shard_rows,
            p.max_shard_rows,
            p.insert.as_nanos(),
            p.delete.as_nanos(),
            p.primary_rows,
            p.speedup,
            if mi + 1 < points.len() { "," } else { "" },
        );
    }
    let _ = writeln!(s, "    ] }}");
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    let path = "BENCH_pr10.json";
    match std::fs::write(path, s) {
        Ok(()) => println!("machine-readable results written to {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn table1(env: &Env, cfg: &Config) {
    let batch = *cfg.batch_sizes.last().expect("batch sizes configured");
    let t = run_table1(env, batch);
    println!("{}", render_table1(&t));
}

fn fig5(env: &Env, cfg: &Config, deletes: bool) -> Vec<Measurement> {
    let (panel, verb) = if deletes {
        (
            "Figure 5(b). Maintenance costs for V3 — deletion",
            "Deleted",
        )
    } else {
        (
            "Figure 5(a). Maintenance costs for V3 — insertion",
            "Inserted",
        )
    };
    let ms = run_fig5(env, cfg, deletes);
    println!("{}", render_fig5(panel, &ms));
    println!("{verb} rows touched per system/batch:");
    println!("{}", render_rows(&ms));
    ms
}

fn example1(env: &Env) {
    println!("Example 1 / Section 6 foreign-key fast paths:");
    for demo in run_fast_paths(env) {
        println!(
            "  {:<62} primary={} secondary={} noop={} time={:?}",
            demo.description, demo.primary_rows, demo.secondary_rows, demo.noop, demo.time
        );
    }
    println!();
}

fn sql(env: &Env) {
    use ojv_core::analyze::analyze;
    use ojv_storage::UpdateOp;
    let a = analyze(&env.catalog, &v3_def()).expect("V3 analyzes");
    println!("Maintenance script for a lineitem insert into V3 (cf. the paper's Q1–Q4):\n");
    println!(
        "{}",
        ojv_core::sql::maintenance_script(&a, "V3", "lineitem", UpdateOp::Insert, true, true)
    );
    println!("Maintenance script for a part insert (FK fast path):\n");
    println!(
        "{}",
        ojv_core::sql::maintenance_script(&a, "V3", "part", UpdateOp::Insert, true, true)
    );
    println!("Maintenance script for an orders insert (FK no-op):\n");
    println!(
        "{}",
        ojv_core::sql::maintenance_script(&a, "V3", "orders", UpdateOp::Insert, true, true)
    );
}

fn graphs(env: &Env) {
    use ojv_core::analyze::analyze;
    // Figure 4 (Example 11): V2's maintenance graphs for orders updates,
    // without and with the L.l_orderkey → O.o_orderkey foreign key.
    let v2 = analyze(&env.catalog, &v2_def()).expect("V2 analyzes");
    let o = v2.layout.table_id("orders").expect("orders in V2");
    println!("V2 maintenance graph, update orders (Figure 4(a)):");
    println!("  {}", v2.maintenance_graph(o, false));
    println!("V2 reduced maintenance graph (Figure 4(b)):");
    println!(
        "  {}
",
        v2.maintenance_graph(o, true)
    );

    let a = analyze(&env.catalog, &v3_def()).expect("V3 analyzes");
    println!("V3 subsumption graph (cf. Figure 1(a) for V1):");
    print!("{}", a.graph);
    println!();
    for table in ["lineitem", "customer", "orders", "part"] {
        let t = a.layout.table_id(table).expect("V3 table");
        let m = a.maintenance_graph(t, true);
        println!("reduced maintenance graph, update {table}: {m}");
    }
    println!();
    let l = a.layout.table_id("lineitem").expect("lineitem in V3");
    println!("ΔV3^D plan for a lineitem update (left-deep, FK-simplified):");
    let plan = a.primary_delta_plan(l, true, true);
    print!("{}", plan.tree_string(&|t| a.layout.slot(t).name.clone()));
    println!();
}
