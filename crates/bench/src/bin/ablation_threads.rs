//! Thread-scaling ablation for the morsel-parallel delta executor.
//!
//! ```text
//! ablation_threads [--sf 0.05] [--seed 42] [--reps 3] [--batch N]...
//!                  [--threads 1,2,4,8]
//! ```
//!
//! Maintains V3 after lineitem insert batches with the executor pinned to
//! each thread count, verifying the first run of every setting against
//! recompute. Results are bit-identical at any thread count by construction;
//! this sweep measures only wall-clock.

use std::str::FromStr;

use ojv_bench::harness::{run_thread_scaling, Config, Env};

fn usage_error(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!(
        "usage: ablation_threads [--sf 0.05] [--seed 42] [--reps 3] \
         [--batch N]... [--threads 1,2,4,8]"
    );
    std::process::exit(2);
}

fn parse_value<T: FromStr>(args: &[String], i: usize, flag: &str, what: &str) -> T {
    let Some(raw) = args.get(i) else {
        usage_error(&format!("{flag} requires a value ({what})"));
    };
    raw.parse()
        .unwrap_or_else(|_| usage_error(&format!("{flag}: `{raw}` is not {what}")))
}

fn main() {
    let mut cfg = Config::default();
    let mut threads: Vec<usize> = vec![1, 2, 4, 8];
    let mut batches: Vec<usize> = Vec::new();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--sf" => {
                i += 1;
                cfg.sf = parse_value(&args, i, "--sf", "a number");
            }
            "--seed" => {
                i += 1;
                cfg.seed = parse_value(&args, i, "--seed", "an integer");
            }
            "--reps" => {
                i += 1;
                cfg.repetitions = parse_value(&args, i, "--reps", "an integer");
            }
            "--batch" => {
                i += 1;
                batches.push(parse_value(&args, i, "--batch", "an integer"));
            }
            "--threads" => {
                i += 1;
                let Some(raw) = args.get(i) else {
                    usage_error("--threads requires a comma list, e.g. 1,2,4,8");
                };
                threads = raw
                    .split(',')
                    .map(|s| match s.parse() {
                        Ok(n) if n >= 1 => n,
                        _ => usage_error(&format!("--threads: `{s}` is not a thread count >= 1")),
                    })
                    .collect();
            }
            other => {
                usage_error(&format!("unknown argument {other}"));
            }
        }
        i += 1;
    }
    if batches.is_empty() {
        batches = vec![1_000, 10_000];
    }

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "# Thread-scaling ablation — SF={}, seed={}, reps={}, {cores} core(s) available\n",
        cfg.sf, cfg.seed, cfg.repetitions
    );
    let env = Env::new(&cfg);
    println!(
        "{:>8} {:>8} {:>12} {:>10} {:>12}",
        "batch", "threads", "median", "speedup", "ΔV^D rows"
    );
    for &batch in &batches {
        for p in run_thread_scaling(&env, batch, cfg.repetitions, &threads) {
            println!(
                "{:>8} {:>8} {:>12.3?} {:>9.2}x {:>12}",
                p.batch, p.threads, p.time, p.speedup, p.primary_rows
            );
        }
        println!();
    }
}
