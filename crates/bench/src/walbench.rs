//! WAL overhead benchmark: Figure-5-style lineitem insert batches run
//! through [`DurableDatabase`] over a real on-disk WAL, at each
//! [`FsyncPolicy`], against the in-memory [`Database`] baseline.
//!
//! The interesting number is the `fsync=never` series: it measures pure
//! framing + buffered-write overhead of write-ahead logging, and should sit
//! within a few percent of the in-memory path (the same numbers `repro
//! fig5a` emits to `BENCH_pr2.json`). `fsync=always` then shows what the
//! durability *guarantee* costs, and `EveryN(16)` the amortized middle
//! ground the paper's deferred-maintenance setting would pick.

use std::path::Path;
use std::time::{Duration, Instant};

use ojv_core::database::Database;
use ojv_core::durable::DurableDatabase;
use ojv_core::policy::MaintenancePolicy;
use ojv_durability::{DiskVfs, FsyncPolicy, Vfs};

use crate::harness::{Config, Env};
use crate::views::v3_def;

/// One measured durable-insert point.
#[derive(Debug, Clone)]
pub struct WalMeasurement {
    /// Series label (`in-memory`, `fsync=never`, ...).
    pub series: &'static str,
    pub batch: usize,
    /// Wall-clock of the whole durable insert: catalog apply + WAL append
    /// (+ fsync per policy) + incremental maintenance.
    pub time: Duration,
    /// WAL bytes appended for this batch (0 for the in-memory baseline).
    pub wal_bytes: u64,
    pub primary_rows: usize,
}

/// The compared series: the in-memory engine, then the durable layer at
/// each fsync policy.
pub fn series() -> Vec<(&'static str, Option<FsyncPolicy>)> {
    vec![
        ("in-memory", None),
        ("fsync=never", Some(FsyncPolicy::Never)),
        ("fsync=every16", Some(FsyncPolicy::EveryN(16))),
        ("fsync=always", Some(FsyncPolicy::Always)),
    ]
}

fn wal_bytes_in(vfs: &DiskVfs) -> u64 {
    vfs.list()
        .unwrap_or_default()
        .into_iter()
        .filter(|n| n.starts_with("wal-") && n.ends_with(".log"))
        .map(|n| vfs.len(&n).unwrap_or(0))
        .sum()
}

fn one_run(
    env: &Env,
    batch: usize,
    rep: u64,
    series: &'static str,
    fsync: Option<FsyncPolicy>,
    scratch: &Path,
) -> WalMeasurement {
    let rows = env.gen.lineitem_insert_batch(batch, rep);
    match fsync {
        None => {
            let mut db = Database::new(env.catalog.clone());
            db.create_view(v3_def()).expect("V3 materializes");
            let start = Instant::now();
            let reports = db.insert("lineitem", rows).expect("batch applies");
            WalMeasurement {
                series,
                batch,
                time: start.elapsed(),
                wal_bytes: 0,
                primary_rows: reports.iter().map(|r| r.primary_rows).sum(),
            }
        }
        Some(policy) => {
            let dir = scratch.join(format!("{series}-{batch}-{rep}"));
            std::fs::create_dir_all(&dir).expect("scratch dir creates");
            let vfs = DiskVfs::open(&dir).expect("DiskVfs opens");
            let mp = MaintenancePolicy {
                fsync: policy,
                ..Default::default()
            };
            let mut d = DurableDatabase::create(vfs, env.catalog.clone(), mp)
                .expect("durable database creates");
            d.create_view(v3_def()).expect("V3 materializes");
            let before = wal_bytes_in(d.vfs());
            let start = Instant::now();
            let reports = d.insert("lineitem", rows).expect("batch applies");
            let time = start.elapsed();
            let wal_bytes = wal_bytes_in(d.vfs()) - before;
            drop(d);
            std::fs::remove_dir_all(&dir).ok();
            WalMeasurement {
                series,
                batch,
                time,
                wal_bytes,
                primary_rows: reports.iter().map(|r| r.primary_rows).sum(),
            }
        }
    }
}

/// Median durable-insert time per (series, batch size), Figure-5 style.
///
/// `scratch` is a directory for the on-disk WALs; every run gets a fresh
/// subdirectory (removed afterwards), so fsync costs are measured against
/// the real filesystem, not a warm page-cache replay of the same inode.
pub fn run_walbench(env: &Env, cfg: &Config, scratch: &Path) -> Vec<WalMeasurement> {
    let mut out = Vec::new();
    for &batch in &cfg.batch_sizes {
        for (label, fsync) in series() {
            let mut runs: Vec<WalMeasurement> = (0..cfg.repetitions.max(1))
                .map(|rep| one_run(env, batch, rep as u64, label, fsync, scratch))
                .collect();
            runs.sort_by_key(|m| m.time);
            let median = runs.remove(runs.len() / 2);
            out.push(median);
        }
    }
    out
}

/// Plain-text series table for the `repro` binary.
pub fn render_walbench(ms: &[WalMeasurement]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "WAL overhead — lineitem insert maintenance of V3 (median of reps):"
    );
    let _ = writeln!(
        s,
        "  {:<16} {:>8} {:>12} {:>12} {:>10}",
        "series", "batch", "time", "wal bytes", "Δrows"
    );
    for m in ms {
        let _ = writeln!(
            s,
            "  {:<16} {:>8} {:>12} {:>12} {:>10}",
            m.series,
            m.batch,
            format!("{:.3?}", m.time),
            m.wal_bytes,
            m.primary_rows
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walbench_runs_and_never_matches_in_memory_rows() {
        let cfg = Config {
            sf: 0.001,
            seed: 7,
            batch_sizes: vec![50],
            repetitions: 1,
            verify: false,
        };
        let env = Env::new(&cfg);
        let scratch =
            std::env::temp_dir().join(format!("ojv-walbench-test-{}", std::process::id()));
        std::fs::create_dir_all(&scratch).unwrap();
        let ms = run_walbench(&env, &cfg, &scratch);
        std::fs::remove_dir_all(&scratch).ok();
        assert_eq!(ms.len(), series().len());
        // Every series maintains the same delta; the durable ones log bytes.
        assert!(ms.iter().all(|m| m.primary_rows == ms[0].primary_rows));
        assert!(ms
            .iter()
            .filter(|m| m.series != "in-memory")
            .all(|m| m.wal_bytes > 0));
        assert!(!render_walbench(&ms).is_empty());
    }
}
