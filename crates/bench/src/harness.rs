//! Workload builders and timed maintenance runners.

use std::time::{Duration, Instant};

use ojv_core::baseline::maintain_gk;
use ojv_core::maintain::{maintain, verify_against_recompute};
use ojv_core::materialize::MaterializedView;
use ojv_core::policy::MaintenancePolicy;
use ojv_core::view_def::ViewDef;
use ojv_exec::ParallelSpec;
use ojv_rel::Datum;
use ojv_storage::{Catalog, Update};
use ojv_tpch::{create_tpch_catalog, TpchGen};

use crate::views::{v3_core_def, v3_def};

/// Experiment configuration: scale factor, seed, batch sizes, repetitions.
#[derive(Debug, Clone)]
pub struct Config {
    pub sf: f64,
    pub seed: u64,
    /// Lineitem batch sizes (the paper uses 60 / 600 / 6,000 / 60,000 at
    /// its scale; defaults scale the 1:10:100:1000 ladder down).
    pub batch_sizes: Vec<usize>,
    pub repetitions: usize,
    /// Verify maintained views against recompute after each timed run
    /// (slow; used by tests, off for benchmarks).
    pub verify: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sf: 0.05,
            seed: 42,
            batch_sizes: vec![10, 100, 1_000, 10_000],
            repetitions: 3,
            verify: false,
        }
    }
}

impl Config {
    pub fn quick() -> Self {
        Config {
            sf: 0.005,
            batch_sizes: vec![10, 100, 1_000],
            repetitions: 2,
            ..Default::default()
        }
    }
}

/// The systems Figure 5 compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// The inner-join core view, maintained with our procedure.
    CoreView,
    /// The outer-join view V3, maintained with the paper's procedure.
    OuterJoin,
    /// The outer-join view maintained with Griffin–Kumar-style propagation.
    OuterJoinGk,
}

impl System {
    pub const ALL: [System; 3] = [System::CoreView, System::OuterJoin, System::OuterJoinGk];

    pub fn label(self) -> &'static str {
        match self {
            System::CoreView => "Core View",
            System::OuterJoin => "Outer Join View",
            System::OuterJoinGk => "Outer Join View (GK)",
        }
    }

    pub fn view_def(self) -> ViewDef {
        match self {
            System::CoreView => v3_core_def(),
            System::OuterJoin | System::OuterJoinGk => v3_def(),
        }
    }
}

/// A fully prepared experiment environment: populated catalog (shared
/// baseline, cloned per run) and the generator.
pub struct Env {
    pub gen: TpchGen,
    pub catalog: Catalog,
}

impl Env {
    pub fn new(cfg: &Config) -> Self {
        let gen = TpchGen::new(cfg.sf, cfg.seed);
        let mut catalog = create_tpch_catalog().expect("TPC-H schema builds");
        gen.populate(&mut catalog).expect("TPC-H data loads");
        Env { gen, catalog }
    }

    /// Create and materialize a system's view over a clone of the base
    /// catalog.
    pub fn fresh_view(&self, system: System) -> (Catalog, MaterializedView) {
        let catalog = self.catalog.clone();
        let view =
            MaterializedView::create(&catalog, system.view_def()).expect("view materializes");
        (catalog, view)
    }
}

/// One measured maintenance run.
#[derive(Debug, Clone)]
pub struct Measurement {
    pub system: System,
    pub batch: usize,
    /// Wall-clock maintenance time (delta computation + application),
    /// excluding the base-table update itself.
    pub time: Duration,
    pub primary_rows: usize,
    pub secondary_rows: usize,
    /// Per-operator executor counters for the measured run (rows, morsels,
    /// wall-clock, heap allocations when the counting allocator is
    /// installed).
    pub exec: ojv_exec::ExecStatsSnapshot,
}

/// Maintain `view` for one update with the given system's algorithm and the
/// paper policy, returning the maintenance report.
pub fn maintain_with(
    system: System,
    view: &mut MaterializedView,
    catalog: &Catalog,
    update: &Update,
) -> ojv_core::maintain::MaintenanceReport {
    maintain_with_policy(system, view, catalog, update, &MaintenancePolicy::paper())
}

/// [`maintain_with`] under an explicit policy (parallelism, strategy
/// selection, FK use) — what the thread-scaling ablation drives.
pub fn maintain_with_policy(
    system: System,
    view: &mut MaterializedView,
    catalog: &Catalog,
    update: &Update,
    policy: &MaintenancePolicy,
) -> ojv_core::maintain::MaintenanceReport {
    match system {
        System::CoreView | System::OuterJoin => {
            maintain(view, catalog, update, policy).expect("maintenance")
        }
        System::OuterJoinGk => maintain_gk(view, catalog, update, policy).expect("GK maintenance"),
    }
}

/// Run one insertion measurement: fresh view, apply a lineitem batch, time
/// the maintenance.
pub fn run_insert(env: &Env, cfg: &Config, system: System, batch: usize, rep: u64) -> Measurement {
    let (mut catalog, mut view) = env.fresh_view(system);
    let rows = env.gen.lineitem_insert_batch(batch, rep);
    let update = catalog.insert("lineitem", rows).expect("batch applies");
    let start = Instant::now();
    let report = maintain_with(system, &mut view, &catalog, &update);
    let time = start.elapsed();
    if cfg.verify && system != System::CoreView {
        assert!(verify_against_recompute(&view, &catalog));
    }
    Measurement {
        system,
        batch,
        time,
        primary_rows: report.primary_rows,
        secondary_rows: report.secondary_rows,
        exec: report.exec,
    }
}

/// Run one deletion measurement.
pub fn run_delete(env: &Env, cfg: &Config, system: System, batch: usize, rep: u64) -> Measurement {
    let (mut catalog, mut view) = env.fresh_view(system);
    let keys = env.gen.lineitem_delete_keys(batch, rep);
    let update = catalog.delete("lineitem", &keys).expect("batch applies");
    let start = Instant::now();
    let report = maintain_with(system, &mut view, &catalog, &update);
    let time = start.elapsed();
    if cfg.verify && system != System::CoreView {
        assert!(verify_against_recompute(&view, &catalog));
    }
    Measurement {
        system,
        batch,
        time,
        primary_rows: report.primary_rows,
        secondary_rows: report.secondary_rows,
        exec: report.exec,
    }
}

/// Figure 5 series: median maintenance time per (system, batch size).
pub fn run_fig5(env: &Env, cfg: &Config, deletes: bool) -> Vec<Measurement> {
    let mut out = Vec::new();
    for &batch in &cfg.batch_sizes {
        for system in System::ALL {
            let mut times: Vec<Measurement> = (0..cfg.repetitions)
                .map(|rep| {
                    if deletes {
                        run_delete(env, cfg, system, batch, rep as u64)
                    } else {
                        run_insert(env, cfg, system, batch, rep as u64)
                    }
                })
                .collect();
            times.sort_by_key(|m| m.time);
            out.push(times[times.len() / 2].clone());
        }
    }
    out
}

/// Table 1 data: per-term cardinalities of V3 plus rows affected by a
/// lineitem insert batch.
pub struct Table1 {
    /// `(term label, cardinality, rows affected)`.
    pub rows: Vec<(String, usize, usize)>,
    pub batch: usize,
}

pub fn run_table1(env: &Env, batch: usize) -> Table1 {
    let (mut catalog, mut view) = env.fresh_view(System::OuterJoin);
    let before = view.term_cardinalities();
    let rows = env.gen.lineitem_insert_batch(batch, 0);
    let update = catalog.insert("lineitem", rows).expect("batch applies");
    maintain(&mut view, &catalog, &update, &MaintenancePolicy::paper()).expect("maintenance");
    let after = view.term_cardinalities();

    let layout = &view.analysis.layout;
    let label = |tables: ojv_algebra::TableSet| -> String {
        let mut s = String::new();
        for t in tables.iter() {
            let name = &layout.slot(t).name;
            s.push(name.chars().next().unwrap_or('?').to_ascii_uppercase());
        }
        s
    };
    let rows = before
        .iter()
        .zip(&after)
        .map(|((tables, b), (_, a))| (label(*tables), *b, a.abs_diff(*b)))
        .collect();
    Table1 { rows, batch }
}

/// One thread-scaling measurement point: V3 maintained after a lineitem
/// insert batch, with the morsel executor at a given thread count.
#[derive(Debug, Clone)]
pub struct ThreadScaling {
    pub threads: usize,
    pub batch: usize,
    /// Median maintenance time over the repetitions.
    pub time: Duration,
    /// Relative to the 1-thread entry of the same sweep (1.0 until one runs).
    pub speedup: f64,
    pub primary_rows: usize,
}

/// Thread-scaling ablation: the same insert-maintenance workload at each
/// thread count, identical results checked against recompute once per
/// setting. The cutoff is lowered so moderate deltas actually cross into
/// the parallel path.
pub fn run_thread_scaling(
    env: &Env,
    batch: usize,
    repetitions: usize,
    threads: &[usize],
) -> Vec<ThreadScaling> {
    let mut out: Vec<ThreadScaling> = Vec::new();
    let mut serial = Duration::ZERO;
    for &n in threads {
        let policy = MaintenancePolicy {
            parallel: ParallelSpec::threads(n).with_cutoff(1_024),
            ..Default::default()
        };
        let mut runs: Vec<(Duration, usize)> = (0..repetitions.max(1))
            .map(|rep| {
                let (mut catalog, mut view) = env.fresh_view(System::OuterJoin);
                // Same batch for every rep and thread count: repetitions
                // time identical work, and the reported delta cardinality is
                // a constant the caller can cross-check across settings.
                let rows = env.gen.lineitem_insert_batch(batch, 0);
                let update = catalog.insert("lineitem", rows).expect("batch applies");
                let start = Instant::now();
                let report = maintain(&mut view, &catalog, &update, &policy).expect("maintenance");
                let t = start.elapsed();
                if rep == 0 {
                    assert!(
                        verify_against_recompute(&view, &catalog),
                        "{n}-thread maintenance diverged from recompute"
                    );
                }
                (t, report.primary_rows)
            })
            .collect();
        runs.sort_by_key(|(t, _)| *t);
        let (time, primary_rows) = runs[runs.len() / 2];
        if serial.is_zero() {
            serial = time;
        }
        out.push(ThreadScaling {
            threads: n,
            batch,
            time,
            speedup: serial.as_secs_f64() / time.as_secs_f64().max(f64::EPSILON),
            primary_rows,
        });
    }
    out
}

/// The Example 1 fast-path demonstration: part/orders/customer updates on
/// V3 and the `oj_view`.
pub struct FastPathDemo {
    pub description: String,
    pub primary_rows: usize,
    pub secondary_rows: usize,
    pub noop: bool,
    pub time: Duration,
}

pub fn run_fast_paths(env: &Env) -> Vec<FastPathDemo> {
    let mut out = Vec::new();
    // Insert a part into V3: only the P term gains the row.
    let (mut catalog, mut view) = env.fresh_view(System::OuterJoin);
    let new_part_key = env.gen.part_count() + 1;
    let part_row = vec![
        Datum::Int(new_part_key),
        Datum::str("repro part"),
        Datum::str("Manufacturer#1"),
        Datum::str("Brand#11"),
        Datum::str("STANDARD ANODIZED TIN"),
        Datum::Int(10),
        Datum::str("SM BOX"),
        Datum::Float(TpchGen::retail_price(new_part_key)),
        Datum::str("repro"),
    ];
    let update = catalog.insert("part", vec![part_row]).expect("part insert");
    let start = Instant::now();
    let report = maintain(&mut view, &catalog, &update, &MaintenancePolicy::paper()).unwrap();
    out.push(FastPathDemo {
        description: "insert 1 part into V3 (FK fast path: plain view insert)".into(),
        primary_rows: report.primary_rows,
        secondary_rows: report.secondary_rows,
        noop: report.noop,
        time: start.elapsed(),
    });

    // Insert an order into V3: no effect at all.
    let (orders, _) = env.gen.order_insert_batch(1, 7);
    let update = catalog.insert("orders", orders).expect("order insert");
    let start = Instant::now();
    let report = maintain(&mut view, &catalog, &update, &MaintenancePolicy::paper()).unwrap();
    out.push(FastPathDemo {
        description: "insert 1 order into V3 (FK proves: view unaffected)".into(),
        primary_rows: report.primary_rows,
        secondary_rows: report.secondary_rows,
        noop: report.noop,
        time: start.elapsed(),
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Config {
        Config {
            sf: 0.001,
            seed: 7,
            batch_sizes: vec![5, 50],
            repetitions: 1,
            verify: true,
        }
    }

    #[test]
    fn fig5_insert_runs_and_verifies() {
        let cfg = tiny();
        let env = Env::new(&cfg);
        let ms = run_fig5(&env, &cfg, false);
        assert_eq!(ms.len(), cfg.batch_sizes.len() * System::ALL.len());
        // The largest batch must touch the outer-join view (only ~9% of
        // orders fall in V3's date range, so tiny batches may miss).
        let largest = *cfg.batch_sizes.last().unwrap();
        assert!(ms
            .iter()
            .any(|m| m.batch == largest && m.system == System::OuterJoin && m.primary_rows > 0));
    }

    #[test]
    fn fig5_delete_runs_and_verifies() {
        let cfg = tiny();
        let env = Env::new(&cfg);
        let ms = run_fig5(&env, &cfg, true);
        assert_eq!(ms.len(), cfg.batch_sizes.len() * System::ALL.len());
    }

    #[test]
    fn table1_reports_four_terms() {
        let cfg = tiny();
        let env = Env::new(&cfg);
        let t = run_table1(&env, 100);
        assert_eq!(t.rows.len(), 4);
        let total: usize = t.rows.iter().map(|(_, c, _)| *c).sum();
        assert!(total > 0);
        // The big term (4 letters) must dominate cardinality.
        let colp = t.rows.iter().find(|(l, _, _)| l.len() == 4).unwrap();
        assert!(t.rows.iter().all(|(_, c, _)| *c <= colp.1));
    }

    #[test]
    fn thread_scaling_is_exact_at_every_thread_count() {
        let cfg = tiny();
        let env = Env::new(&cfg);
        let points = run_thread_scaling(&env, 50, 1, &[1, 2, 4]);
        assert_eq!(points.len(), 3);
        assert!(points
            .iter()
            .all(|p| p.primary_rows == points[0].primary_rows));
        assert!((points[0].speedup - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fast_paths_behave_as_example_1() {
        let cfg = tiny();
        let env = Env::new(&cfg);
        let demos = run_fast_paths(&env);
        assert_eq!(demos[0].primary_rows, 1);
        assert_eq!(demos[0].secondary_rows, 0);
        assert!(!demos[0].noop);
        assert!(demos[1].noop);
    }
}
