//! Shard-count scaling of batched maintenance through [`ShardedDatabase`].
//!
//! The question: what does hash-partitioning the engine buy (and cost) for
//! batch maintenance of an orderkey-aligned outer-join view, as the shard
//! count grows at a fixed scale factor?
//!
//! Every TPC-H table routes by a prefix of its primary key, with orders and
//! lineitem both routed by orderkey so the benchmark view
//! `orders ⟕ lineitem on l_orderkey = o_orderkey` is shard-aligned: every
//! join partner lives on the same shard and maintenance decomposes into
//! independent per-shard runs. Each measured point builds the sharded
//! database (routing every base row to its owner), then times whole
//! commits — constraint checks, routing, per-shard maintenance, and the
//! global publish — for lineitem insert and delete batches. Inserts are
//! undone by deleting the same keys, so every repetition and every shard
//! count maintains identical state.
//!
//! Results are honest about the machine: the runner records the core count
//! it saw, and on a single-core container the per-shard maintenance runs
//! are concurrent but not parallel, so shard scaling shows the overhead
//! curve (routing + N small runs vs one large run), not a speedup.

use std::time::{Duration, Instant};

use ojv_core::prelude::*;

use crate::harness::{Config, Env};

/// The benchmark view: orders left-outer-join lineitem, aligned with the
/// orderkey routing below.
pub fn ol_shard_def() -> ViewDef {
    ViewDef::new(
        "ol_shard",
        ViewExpr::left_outer(
            vec![col_eq("orders", "o_orderkey", "lineitem", "l_orderkey")],
            ViewExpr::table("orders"),
            ViewExpr::table("lineitem"),
        ),
    )
}

/// Key-aligned routing for all eight TPC-H tables: each table routes by a
/// prefix of its primary key, and lineitem routes by `l_orderkey` so it is
/// colocated with its order.
pub fn tpch_routing() -> RoutingSpec {
    RoutingSpec::new()
        .table("region", &["r_regionkey"])
        .table("nation", &["n_nationkey"])
        .table("supplier", &["s_suppkey"])
        .table("part", &["p_partkey"])
        .table("partsupp", &["ps_partkey"])
        .table("customer", &["c_custkey"])
        .table("orders", &["o_orderkey"])
        .table("lineitem", &["l_orderkey"])
}

/// One shard-count measurement point.
#[derive(Debug, Clone)]
pub struct ShardPoint {
    pub shards: usize,
    /// Lineitem rows per measured batch.
    pub batch: usize,
    /// Building the sharded database: routing every base row to its owner
    /// shard and materializing the view per shard.
    pub build: Duration,
    /// Columnar heap footprint across all shards and tables after build.
    pub heap_bytes: usize,
    /// Lineitem rows on the smallest / largest shard (routing balance).
    pub min_shard_rows: usize,
    pub max_shard_rows: usize,
    /// Median whole-commit wall clock for the insert / delete batch.
    pub insert: Duration,
    pub delete: Duration,
    /// Primary delta rows of the insert commit (identical across shard
    /// counts: the work is the same, only its partitioning differs).
    pub primary_rows: usize,
    /// `insert` of the 1-shard point divided by this point's `insert`
    /// (1.0 until the 1-shard point exists).
    pub speedup: f64,
}

/// Build a sharded database over a clone of the environment's catalog with
/// the benchmark view materialized.
pub fn build_sharded(env: &Env, shards: usize) -> ShardedDatabase {
    let mut db = ShardedDatabase::new(&env.catalog, shards, tpch_routing())
        .expect("TPC-H routing is key-aligned");
    db.create_view(ol_shard_def())
        .expect("orderkey-aligned view materializes");
    db.parallel_shards = shards > 1;
    db
}

fn heap_bytes(db: &ShardedDatabase) -> usize {
    db.shards()
        .map(|s| {
            s.catalog()
                .tables()
                .map(|t| t.heap().approx_bytes())
                .sum::<usize>()
        })
        .sum()
}

fn lineitem_balance(db: &ShardedDatabase) -> (usize, usize) {
    let sizes: Vec<usize> = db
        .shards()
        .map(|s| s.catalog().table("lineitem").map_or(0, |t| t.len()))
        .collect();
    (
        sizes.iter().copied().min().unwrap_or(0),
        sizes.iter().copied().max().unwrap_or(0),
    )
}

/// Run the sweep: one point per shard count, medians over
/// `cfg.repetitions` insert+delete commit pairs of `batch` lineitems.
pub fn run_shardbench(
    env: &Env,
    cfg: &Config,
    batch: usize,
    shard_counts: &[usize],
) -> Vec<ShardPoint> {
    let mut out: Vec<ShardPoint> = Vec::new();
    let mut serial = Duration::ZERO;
    for &n in shard_counts {
        let t0 = Instant::now();
        let mut db = build_sharded(env, n);
        let build = t0.elapsed();
        let heap = heap_bytes(&db);
        let (min_rows, max_rows) = lineitem_balance(&db);

        let mut inserts: Vec<(Duration, usize)> = Vec::new();
        let mut deletes: Vec<Duration> = Vec::new();
        for rep in 0..cfg.repetitions.max(1) {
            let rows = env.gen.lineitem_insert_batch(batch, rep as u64);
            // Lineitem's key is (l_orderkey, l_linenumber) — columns 0, 1.
            let keys: Vec<Vec<Datum>> = rows
                .iter()
                .map(|r| vec![r[0].clone(), r[1].clone()])
                .collect();
            let t = Instant::now();
            let reports = db.insert("lineitem", rows).expect("insert commit");
            let ins = t.elapsed();
            let primary: usize = reports.iter().map(|r| r.primary_rows).sum();
            if cfg.verify {
                for s in db.shards() {
                    let v = s.view("ol_shard").expect("view on every shard");
                    assert!(
                        ojv_core::maintain::verify_against_recompute(v, s.catalog()),
                        "{n}-shard maintenance diverged from recompute"
                    );
                }
            }
            let t = Instant::now();
            db.delete("lineitem", &keys).expect("delete commit");
            deletes.push(t.elapsed());
            inserts.push((ins, primary));
        }
        inserts.sort_by_key(|(t, _)| *t);
        deletes.sort();
        let (insert, primary_rows) = inserts[inserts.len() / 2];
        let delete = deletes[deletes.len() / 2];
        if serial.is_zero() {
            serial = insert;
        }
        out.push(ShardPoint {
            shards: n,
            batch,
            build,
            heap_bytes: heap,
            min_shard_rows: min_rows,
            max_shard_rows: max_rows,
            insert,
            delete,
            primary_rows,
            speedup: serial.as_secs_f64() / insert.as_secs_f64().max(f64::EPSILON),
        });
    }
    out
}

/// Plain-text panel.
pub fn render_shardbench(points: &[ShardPoint], cores: usize) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "Shard scaling: batch maintenance of ol_shard (orders lo lineitem), {} core(s) visible\n",
        cores
    ));
    s.push_str(
        "  shards  build       heap (MiB)  lineitem min/max     batch   insert      delete      speedup\n",
    );
    for p in points {
        s.push_str(&format!(
            "  {:>6}  {:>10.3?}  {:>10.1}  {:>8} /{:>8}  {:>6}  {:>10.3?}  {:>10.3?}  {:>6.2}x\n",
            p.shards,
            p.build,
            p.heap_bytes as f64 / (1024.0 * 1024.0),
            p.min_shard_rows,
            p.max_shard_rows,
            p.batch,
            p.insert,
            p.delete,
            p.speedup,
        ));
    }
    if cores == 1 {
        s.push_str(
            "  note: single core visible — per-shard runs are concurrent, not parallel;\n  \
             the sweep reports partitioning overhead, not parallel speedup\n",
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Config {
        Config {
            sf: 0.002,
            seed: 7,
            batch_sizes: vec![50],
            repetitions: 1,
            verify: true,
        }
    }

    /// Smoke: the sweep runs at 1 and 2 shards, every point verifies against
    /// recompute, and both shard counts commit identical logical state.
    #[test]
    fn shard_sweep_matches_across_shard_counts() {
        let cfg = tiny();
        let env = Env::new(&cfg);
        let points = run_shardbench(&env, &cfg, 50, &[1, 2]);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].shards, 1);
        assert!(points[0].heap_bytes > 0);
        assert_eq!(
            points[0].primary_rows, points[1].primary_rows,
            "identical batch must produce identical deltas at every shard count"
        );

        // Differential replay: the same insert through 1 and 2 shards ends
        // byte-identical (commit LSNs advance in lockstep).
        let rows = env.gen.lineitem_insert_batch(40, 9);
        let mut one = build_sharded(&env, 1);
        let mut two = build_sharded(&env, 2);
        one.insert("lineitem", rows.clone()).unwrap();
        two.insert("lineitem", rows).unwrap();
        assert_eq!(
            one.state_bytes().unwrap(),
            two.state_bytes().unwrap(),
            "sharded state must be independent of the shard count"
        );

        let text = render_shardbench(&points, 1);
        assert!(text.contains("Shard scaling"));
        assert!(text.contains("single core"));
    }

    /// The full matrix the PR reports: SF = 1, shard counts {1, 2, 4, 8},
    /// 10k-row batches. Minutes of wall clock and ~1.3 GiB of heap, so it is
    /// ignored by default; CI runs it explicitly with
    /// `cargo test --release -p ojv-bench -- --ignored`.
    #[test]
    #[ignore = "SF=1 x {1,2,4,8} shards: minutes of wall clock; run with --release -- --ignored"]
    fn full_matrix_sf1_through_eight_shards() {
        let cfg = Config {
            sf: 1.0,
            seed: 42,
            batch_sizes: vec![10_000],
            repetitions: 1,
            verify: false,
        };
        let env = Env::new(&cfg);
        let points = run_shardbench(&env, &cfg, 10_000, &[1, 2, 4, 8]);
        assert_eq!(points.len(), 4);
        for p in &points {
            assert_eq!(
                p.primary_rows, points[0].primary_rows,
                "the same batch must produce the same delta at every shard count"
            );
            assert!(p.heap_bytes > 0);
            assert!(
                p.max_shard_rows > 0 && p.max_shard_rows < p.min_shard_rows * 2,
                "orderkey routing should stay roughly balanced at SF=1: {} / {}",
                p.min_shard_rows,
                p.max_shard_rows
            );
        }
    }
}
