//! Ablation A3: secondary-delta strategy — from the view (§5.2) vs from
//! base tables (§5.3) vs the cost-based Auto choice, for both update
//! directions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ojv_bench::harness::{Config, Env, System};
use ojv_core::maintain::maintain;
use ojv_core::policy::{MaintenancePolicy, SecondaryStrategy};

fn bench(c: &mut Criterion) {
    let cfg = Config {
        sf: 0.01,
        seed: 42,
        batch_sizes: vec![600],
        repetitions: 1,
        verify: false,
    };
    let batch = cfg.batch_sizes[0];
    let env = Env::new(&cfg);
    let mut group = c.benchmark_group("ablation_secondary");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));

    let strategies = [
        ("from_view", SecondaryStrategy::FromView),
        ("from_base", SecondaryStrategy::FromBase),
        ("auto", SecondaryStrategy::Auto),
    ];
    for (label, secondary) in strategies {
        let policy = MaintenancePolicy {
            secondary,
            ..Default::default()
        };
        group.bench_function(BenchmarkId::new(label, format!("insert_{batch}")), |b| {
            b.iter_batched(
                || {
                    let (mut catalog, view) = env.fresh_view(System::OuterJoin);
                    let rows = env.gen.lineitem_insert_batch(batch, 0);
                    let update = catalog.insert("lineitem", rows).expect("batch applies");
                    (catalog, view, update)
                },
                |(catalog, mut view, update)| {
                    let report =
                        maintain(&mut view, &catalog, &update, &policy).expect("maintenance");
                    (report, catalog, view, update)
                },
                criterion::BatchSize::PerIteration,
            );
        });
        group.bench_function(BenchmarkId::new(label, format!("delete_{batch}")), |b| {
            b.iter_batched(
                || {
                    let (mut catalog, view) = env.fresh_view(System::OuterJoin);
                    let keys = env.gen.lineitem_delete_keys(batch, 0);
                    let update = catalog.delete("lineitem", &keys).expect("batch applies");
                    (catalog, view, update)
                },
                |(catalog, mut view, update)| {
                    let report =
                        maintain(&mut view, &catalog, &update, &policy).expect("maintenance");
                    (report, catalog, view, update)
                },
                criterion::BatchSize::PerIteration,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
