//! Micro-benchmarks for the execution substrate: the operators the
//! maintenance plans are built from (hash join vs index-nested-loop join,
//! the null-if cleanup, subsumption removal).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ojv_algebra::{Atom, ColRef, Expr, JoinKind, Pred, TableId};
use ojv_bench::harness::{Config, Env};
use ojv_exec::{eval_expr, ops, DeltaInput, ExecCtx, ViewLayout};

fn bench(c: &mut Criterion) {
    let cfg = Config {
        sf: 0.01,
        seed: 42,
        batch_sizes: vec![600],
        repetitions: 1,
        verify: false,
    };
    let env = Env::new(&cfg);
    let layout =
        ViewLayout::new(&env.catalog, &["lineitem", "orders", "customer", "part"]).expect("layout");
    let l = TableId(0);
    let o = TableId(1);

    let delta_rows = {
        let rows = env.gen.lineitem_insert_batch(600, 0);
        ojv_rel::Relation::new(
            env.catalog.table("lineitem").expect("t").schema().clone(),
            rows,
        )
    };
    // ΔL ⋈ O on l_orderkey = o_orderkey.
    let pred = Pred::atom(Atom::eq(ColRef::new(l, 0), ColRef::new(o, 0)));
    let join = Expr::inner(pred.clone(), Expr::Delta(l), Expr::Table(o));

    let mut group = c.benchmark_group("substrate_join");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    for (label, prefer_index) in [("index_nested_loop", true), ("hash_full_scan", false)] {
        group.bench_function(BenchmarkId::new(label, "delta600_join_orders"), |b| {
            let mut ctx = ExecCtx::with_delta(
                &env.catalog,
                &layout,
                DeltaInput {
                    table: l,
                    rows: &delta_rows,
                },
            );
            ctx.prefer_index_joins = prefer_index;
            b.iter(|| eval_expr(&ctx, &join).unwrap());
        });
    }
    group.finish();

    // Cleanup operator on a realistic mixed row set.
    let ctx = ExecCtx::with_delta(
        &env.catalog,
        &layout,
        DeltaInput {
            table: l,
            rows: &delta_rows,
        },
    );
    let lo = Expr::join(
        JoinKind::LeftOuter,
        Pred::atom(Atom::eq(ColRef::new(l, 0), ColRef::new(o, 0))),
        Expr::Delta(l),
        Expr::Table(o),
    );
    let rows = eval_expr(&ctx, &lo).unwrap();
    c.bench_function("substrate_clean_dup", |b| {
        b.iter(|| ops::clean_dup(&layout, rows.clone()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
