//! Table 1 companions: the cost of the static analysis behind the term
//! table — JDNF normalization, subsumption-graph construction, maintenance-
//! graph classification, and the per-term cardinality scan of V3.

use criterion::{criterion_group, criterion_main, Criterion};

use ojv_bench::harness::{Config, Env, System};
use ojv_bench::views::v3_def;
use ojv_core::analyze::analyze;

fn bench(c: &mut Criterion) {
    let cfg = Config {
        sf: 0.01,
        seed: 42,
        batch_sizes: vec![600],
        repetitions: 1,
        verify: false,
    };
    let env = Env::new(&cfg);

    c.bench_function("table1/analyze_v3", |b| {
        b.iter(|| analyze(&env.catalog, &v3_def()).expect("analyzes"))
    });

    let analysis = analyze(&env.catalog, &v3_def()).expect("analyzes");
    c.bench_function("table1/maintenance_graphs_all_tables", |b| {
        b.iter(|| {
            for name in ["lineitem", "orders", "customer", "part"] {
                let t = analysis.layout.table_id(name).expect("table");
                criterion::black_box(analysis.maintenance_graph(t, true));
            }
        })
    });

    let (_catalog, view) = env.fresh_view(System::OuterJoin);
    c.bench_function("table1/term_cardinalities_scan", |b| {
        b.iter(|| criterion::black_box(view.term_cardinalities()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
