//! Ablation A2: foreign-key exploitation (§6).
//!
//! With FK knowledge, part inserts into V3 collapse to a single view insert
//! (`SimplifyTree` prunes every join) and orders inserts become no-ops
//! (Theorem 3 empties the maintenance graph). Without it, the full primary
//! and secondary machinery runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ojv_bench::harness::{Config, Env, System};
use ojv_core::maintain::maintain;
use ojv_core::policy::MaintenancePolicy;
use ojv_rel::Datum;
use ojv_tpch::TpchGen;

fn bench(c: &mut Criterion) {
    let cfg = Config {
        sf: 0.01,
        seed: 42,
        batch_sizes: vec![100],
        repetitions: 1,
        verify: false,
    };
    let env = Env::new(&cfg);
    let mut group = c.benchmark_group("ablation_fk");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));

    for (label, use_fk) in [("fk_off", false), ("fk_on", true)] {
        let policy = MaintenancePolicy {
            use_fk,
            ..Default::default()
        };
        // Part inserts: FK turns them into plain view inserts.
        group.bench_function(BenchmarkId::new(label, "insert_100_parts"), |b| {
            b.iter_batched(
                || {
                    let (mut catalog, view) = env.fresh_view(System::OuterJoin);
                    let rows: Vec<Vec<Datum>> = (0..100i64)
                        .map(|i| {
                            let key = env.gen.part_count() + 1 + i;
                            vec![
                                Datum::Int(key),
                                Datum::str("bench part"),
                                Datum::str("Manufacturer#1"),
                                Datum::str("Brand#11"),
                                Datum::str("STANDARD ANODIZED TIN"),
                                Datum::Int(10),
                                Datum::str("SM BOX"),
                                Datum::Float(TpchGen::retail_price(key)),
                                Datum::str("bench"),
                            ]
                        })
                        .collect();
                    let update = catalog.insert("part", rows).expect("parts insert");
                    (catalog, view, update)
                },
                |(catalog, mut view, update)| {
                    let report =
                        maintain(&mut view, &catalog, &update, &policy).expect("maintenance");
                    (report, catalog, view, update)
                },
                criterion::BatchSize::PerIteration,
            );
        });
        // Orders inserts: FK proves the view unaffected.
        group.bench_function(BenchmarkId::new(label, "insert_100_orders"), |b| {
            b.iter_batched(
                || {
                    let (mut catalog, view) = env.fresh_view(System::OuterJoin);
                    let (orders, _) = env.gen.order_insert_batch(100, 0);
                    let update = catalog.insert("orders", orders).expect("orders insert");
                    (catalog, view, update)
                },
                |(catalog, mut view, update)| {
                    let report =
                        maintain(&mut view, &catalog, &update, &policy).expect("maintenance");
                    (report, catalog, view, update)
                },
                criterion::BatchSize::PerIteration,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
