//! Figure 5(b): maintenance cost of V3 under lineitem **deletions**.
//!
//! Paper shape: the outer-join view stays near the core view; GK is "much
//! worse than ours" for deletions at every batch size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ojv_bench::harness::{maintain_with, Config, Env, System};

fn bench(c: &mut Criterion) {
    let cfg = Config {
        sf: 0.01,
        seed: 42,
        batch_sizes: vec![60, 600, 6_000],
        repetitions: 1,
        verify: false,
    };
    let env = Env::new(&cfg);
    let mut group = c.benchmark_group("fig5b_delete");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    for &batch in &cfg.batch_sizes {
        for system in System::ALL {
            group.bench_with_input(
                BenchmarkId::new(system.label(), batch),
                &batch,
                |b, &batch| {
                    b.iter_batched(
                        || {
                            let (mut catalog, view) = env.fresh_view(system);
                            let keys = env.gen.lineitem_delete_keys(batch, 0);
                            let update = catalog.delete("lineitem", &keys).expect("batch applies");
                            (catalog, view, update)
                        },
                        |(catalog, mut view, update)| {
                            let report = maintain_with(system, &mut view, &catalog, &update);
                            // Return the inputs so the (expensive) teardown of
                            // the cloned catalog/view happens outside timing.
                            (report, catalog, view, update)
                        },
                        criterion::BatchSize::PerIteration,
                    );
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
