//! Ablation A4: aggregated outer-join views (§3.3) — maintenance cost of an
//! aggregated rollup of V3 compared with the non-aggregated view, plus the
//! initial materialization cost of each.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ojv_bench::harness::{Config, Env, System};
use ojv_bench::views::v3_def;
use ojv_core::agg_view::{AggSpec, AggViewDef, MaterializedAggView};
use ojv_core::maintain::maintain;
use ojv_core::materialize::MaterializedView;
use ojv_core::policy::MaintenancePolicy;

fn agg_def() -> AggViewDef {
    AggViewDef::new("rev_by_customer", v3_def())
        .group_by("customer", "c_custkey")
        .agg("rows", AggSpec::CountRows)
        .agg(
            "lines",
            AggSpec::CountNonNull {
                table: "lineitem".into(),
                column: "l_orderkey".into(),
            },
        )
        .agg(
            "revenue",
            AggSpec::Sum {
                table: "lineitem".into(),
                column: "l_extendedprice".into(),
            },
        )
}

fn bench(c: &mut Criterion) {
    let cfg = Config {
        sf: 0.01,
        seed: 42,
        batch_sizes: vec![600],
        repetitions: 1,
        verify: false,
    };
    let batch = cfg.batch_sizes[0];
    let env = Env::new(&cfg);
    let mut group = c.benchmark_group("agg_view");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));

    group.bench_function("materialize/plain_v3", |b| {
        b.iter(|| MaterializedView::create(&env.catalog, v3_def()).expect("materializes"))
    });
    group.bench_function("materialize/aggregated", |b| {
        b.iter(|| MaterializedAggView::create(&env.catalog, agg_def()).expect("materializes"))
    });

    let policy = MaintenancePolicy::paper();
    group.bench_function(BenchmarkId::new("maintain_insert", "plain_v3"), |b| {
        b.iter_batched(
            || {
                let (mut catalog, view) = env.fresh_view(System::OuterJoin);
                let rows = env.gen.lineitem_insert_batch(batch, 0);
                let update = catalog.insert("lineitem", rows).expect("batch applies");
                (catalog, view, update)
            },
            |(catalog, mut view, update)| {
                let report = maintain(&mut view, &catalog, &update, &policy).expect("maintenance");
                (report, catalog, view, update)
            },
            criterion::BatchSize::PerIteration,
        );
    });
    group.bench_function(BenchmarkId::new("maintain_insert", "aggregated"), |b| {
        b.iter_batched(
            || {
                let mut catalog = env.catalog.clone();
                let view = MaterializedAggView::create(&catalog, agg_def()).expect("materializes");
                let rows = env.gen.lineitem_insert_batch(batch, 0);
                let update = catalog.insert("lineitem", rows).expect("batch applies");
                (catalog, view, update)
            },
            |(catalog, mut view, update)| {
                let report = view
                    .maintain(&catalog, &update, &policy)
                    .expect("maintenance");
                (report, catalog, view, update)
            },
            criterion::BatchSize::PerIteration,
        );
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
