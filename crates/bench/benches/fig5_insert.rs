//! Figure 5(a): maintenance cost of V3 under lineitem **insertions**, for
//! the core view, the outer-join view (this paper), and the GK baseline.
//!
//! The paper's batch ladder is 60/600/6,000/60,000 at its scale; we keep the
//! 1:10:100 ratios at a laptop scale factor. The shape to reproduce: the
//! outer-join view costs about the same as the core view, while GK's cost is
//! dominated by base-table joins and deteriorates with batch size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ojv_bench::harness::{maintain_with, Config, Env, System};

fn bench(c: &mut Criterion) {
    let cfg = Config {
        sf: 0.01,
        seed: 42,
        batch_sizes: vec![60, 600, 6_000],
        repetitions: 1,
        verify: false,
    };
    let env = Env::new(&cfg);
    let mut group = c.benchmark_group("fig5a_insert");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    for &batch in &cfg.batch_sizes {
        for system in System::ALL {
            group.bench_with_input(
                BenchmarkId::new(system.label(), batch),
                &batch,
                |b, &batch| {
                    b.iter_batched(
                        || {
                            let (mut catalog, view) = env.fresh_view(system);
                            let rows = env.gen.lineitem_insert_batch(batch, 0);
                            let update = catalog.insert("lineitem", rows).expect("batch applies");
                            (catalog, view, update)
                        },
                        |(catalog, mut view, update)| {
                            let report = maintain_with(system, &mut view, &catalog, &update);
                            // Return the inputs so the (expensive) teardown of
                            // the cloned catalog/view happens outside timing.
                            (report, catalog, view, update)
                        },
                        criterion::BatchSize::PerIteration,
                    );
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
