//! Ablation A1: the left-deep conversion of §4.1.
//!
//! Updating `part` in V3 derives
//! `ΔV^D = ΔP lo ((L ⋈ O) ro C)` — a bushy tree whose right operand joins
//! base tables only. Without the conversion the maintenance cost scales with
//! the database (the `(L ⋈ O) ro C` intermediate); with it, with the delta.
//! Foreign keys are disabled here, since `SimplifyTree` would remove the
//! join altogether (that effect is ablation A2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ojv_bench::harness::{Config, Env, System};
use ojv_core::maintain::maintain;
use ojv_core::policy::MaintenancePolicy;
use ojv_rel::Datum;
use ojv_tpch::TpchGen;

fn part_rows(gen: &TpchGen, n: usize) -> Vec<Vec<Datum>> {
    (0..n as i64)
        .map(|i| {
            let key = gen.part_count() + 1 + i;
            vec![
                Datum::Int(key),
                Datum::str(format!("bench part {i}")),
                Datum::str("Manufacturer#1"),
                Datum::str("Brand#11"),
                Datum::str("STANDARD ANODIZED TIN"),
                Datum::Int(10),
                Datum::str("SM BOX"),
                Datum::Float(TpchGen::retail_price(key)),
                Datum::str("bench"),
            ]
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let cfg = Config {
        sf: 0.01,
        seed: 42,
        batch_sizes: vec![1, 100],
        repetitions: 1,
        verify: false,
    };
    let env = Env::new(&cfg);
    let mut group = c.benchmark_group("ablation_left_deep");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    for &batch in &cfg.batch_sizes {
        for (label, left_deep) in [("bushy", false), ("left_deep", true)] {
            let policy = MaintenancePolicy {
                use_fk: false,
                left_deep,
                ..Default::default()
            };
            group.bench_with_input(BenchmarkId::new(label, batch), &batch, |b, &batch| {
                b.iter_batched(
                    || {
                        let (mut catalog, view) = env.fresh_view(System::OuterJoin);
                        let update = catalog
                            .insert("part", part_rows(&env.gen, batch))
                            .expect("parts insert");
                        (catalog, view, update)
                    },
                    |(catalog, mut view, update)| {
                        let report =
                            maintain(&mut view, &catalog, &update, &policy).expect("maintenance");
                        (report, catalog, view, update)
                    },
                    criterion::BatchSize::PerIteration,
                );
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
