//! Deterministic, scale-factor-parameterized TPC-H data generation.

use ojv_testkit::Rng;

use ojv_rel::datum::days_from_date;
use ojv_rel::{Datum, Row};
use ojv_storage::{Catalog, StorageError};

use crate::text;

/// First and last order dates (the spec's `STARTDATE`/`ENDDATE`).
pub const START_DATE: (i32, u32, u32) = (1992, 1, 1);
pub const END_DATE: (i32, u32, u32) = (1998, 8, 2);

/// The generator: a scale factor plus a seed. The same pair always produces
/// bit-identical data, including refresh streams.
#[derive(Debug, Clone, Copy)]
pub struct TpchGen {
    pub sf: f64,
    pub seed: u64,
}

impl TpchGen {
    pub fn new(sf: f64, seed: u64) -> Self {
        assert!(sf > 0.0, "scale factor must be positive");
        TpchGen { sf, seed }
    }

    fn scaled(&self, base: u64, min: u64) -> i64 {
        ((base as f64 * self.sf) as u64).max(min) as i64
    }

    pub fn supplier_count(&self) -> i64 {
        self.scaled(10_000, 10)
    }

    pub fn part_count(&self) -> i64 {
        self.scaled(200_000, 20)
    }

    pub fn customer_count(&self) -> i64 {
        self.scaled(150_000, 15)
    }

    /// Ten orders per customer, as in the spec.
    pub fn order_count(&self) -> i64 {
        self.customer_count() * 10
    }

    /// Lineitems per order: deterministic in the order key, uniform 1–7
    /// (spec average ≈ 4).
    pub fn line_count(&self, orderkey: i64) -> i64 {
        1 + (mix(self.seed ^ 0x11c3, orderkey as u64) % 7) as i64
    }

    /// Total lineitem rows this generator produces.
    pub fn lineitem_count(&self) -> i64 {
        (1..=self.order_count()).map(|o| self.line_count(o)).sum()
    }

    fn rng(&self, tag: u64) -> Rng {
        Rng::seed_from_u64(mix(self.seed, tag))
    }

    /// Retail price, deterministic in the part key.
    ///
    /// The spec's formula `(90000 + ((partkey/10) % 20001) + 100·(partkey %
    /// 1000)) / 100` spans 900.00–2098.99 *only once partkeys reach the
    /// hundreds of thousands*; at the small scale factors this reproduction
    /// runs at, it would never exceed 2000 and the `p_retailprice < 2000`
    /// join predicate of the paper's V3 would stop rejecting anything —
    /// collapsing the `{C,O,L}` term of Table 1. We therefore draw the price
    /// uniformly from the same 900–2099 range but scale-free (hashed key),
    /// preserving the predicate's ≈8% rejection rate at every scale factor.
    pub fn retail_price(partkey: i64) -> f64 {
        900.0 + (mix(0x9E37_79B9, partkey as u64) % 120_000) as f64 / 100.0
    }

    pub fn gen_region(&self) -> Vec<Row> {
        let mut rng = self.rng(1);
        text::REGIONS
            .iter()
            .enumerate()
            .map(|(i, name)| {
                vec![
                    Datum::Int(i as i64),
                    Datum::str(name),
                    Datum::str(text::comment(&mut rng, "rg")),
                ]
            })
            .collect()
    }

    pub fn gen_nation(&self) -> Vec<Row> {
        let mut rng = self.rng(2);
        text::NATIONS
            .iter()
            .enumerate()
            .map(|(i, (name, region))| {
                vec![
                    Datum::Int(i as i64),
                    Datum::str(name),
                    Datum::Int(*region),
                    Datum::str(text::comment(&mut rng, "nt")),
                ]
            })
            .collect()
    }

    pub fn gen_supplier(&self) -> Vec<Row> {
        let mut rng = self.rng(3);
        (1..=self.supplier_count())
            .map(|k| {
                let nation = rng.gen_range(0..25i64);
                vec![
                    Datum::Int(k),
                    Datum::str(format!("Supplier#{k:09}")),
                    Datum::str(text::comment(&mut rng, "ad")),
                    Datum::Int(nation),
                    Datum::str(text::phone(&mut rng, nation)),
                    Datum::Float(rng.gen_range(-999.99..9999.99)),
                    Datum::str(text::comment(&mut rng, "sp")),
                ]
            })
            .collect()
    }

    pub fn gen_part(&self) -> Vec<Row> {
        let mut rng = self.rng(4);
        (1..=self.part_count())
            .map(|k| {
                vec![
                    Datum::Int(k),
                    Datum::str(text::part_name(&mut rng)),
                    Datum::str(format!("Manufacturer#{}", rng.gen_range(1..=5))),
                    Datum::str(format!(
                        "Brand#{}{}",
                        rng.gen_range(1..=5),
                        rng.gen_range(1..=5)
                    )),
                    Datum::str(text::part_type(&mut rng)),
                    Datum::Int(rng.gen_range(1..=50)),
                    Datum::str(*text::pick(&mut rng, &text::CONTAINERS)),
                    Datum::Float(Self::retail_price(k)),
                    Datum::str(text::comment(&mut rng, "pt")),
                ]
            })
            .collect()
    }

    pub fn gen_partsupp(&self) -> Vec<Row> {
        let mut rng = self.rng(5);
        let suppliers = self.supplier_count();
        let mut rows = Vec::new();
        for p in 1..=self.part_count() {
            // Four suppliers per part, distinct by construction (spec
            // formula shape).
            for i in 0..4i64 {
                let s = (p + i * (suppliers / 4 + 1)) % suppliers + 1;
                rows.push(vec![
                    Datum::Int(p),
                    Datum::Int(s),
                    Datum::Int(rng.gen_range(1..=9999)),
                    Datum::Float(rng.gen_range(1.0..1000.0)),
                    Datum::str(text::comment(&mut rng, "ps")),
                ]);
            }
        }
        rows
    }

    pub fn gen_customer(&self) -> Vec<Row> {
        let mut rng = self.rng(6);
        (1..=self.customer_count())
            .map(|k| {
                let nation = rng.gen_range(0..25i64);
                vec![
                    Datum::Int(k),
                    Datum::str(format!("Customer#{k:09}")),
                    Datum::str(text::comment(&mut rng, "ad")),
                    Datum::Int(nation),
                    Datum::str(text::phone(&mut rng, nation)),
                    Datum::Float(rng.gen_range(-999.99..9999.99)),
                    Datum::str(*text::pick(&mut rng, &text::SEGMENTS)),
                    Datum::str(text::comment(&mut rng, "cu")),
                ]
            })
            .collect()
    }

    /// One orders row; `orderkey` may exceed [`Self::order_count`] for
    /// refresh batches.
    pub fn gen_order_row(&self, orderkey: i64, rng: &mut Rng) -> Row {
        let custkey = rng.gen_range(1..=self.customer_count());
        let start = days_from_date(START_DATE.0, START_DATE.1, START_DATE.2);
        let end = days_from_date(END_DATE.0, END_DATE.1, END_DATE.2);
        vec![
            Datum::Int(orderkey),
            Datum::Int(custkey),
            Datum::str(*text::pick(rng, &["O", "F", "P"])),
            Datum::Float(rng.gen_range(1000.0..500_000.0)),
            Datum::Date(rng.gen_range(start..=end)),
            Datum::str(*text::pick(rng, &text::PRIORITIES)),
            Datum::str(format!("Clerk#{:09}", rng.gen_range(1..=1000))),
            Datum::Int(0),
            Datum::str(text::comment(rng, "or")),
        ]
    }

    /// One lineitem row for `(orderkey, linenumber)`, with a ship date near
    /// the given order date.
    pub fn gen_lineitem_row(
        &self,
        orderkey: i64,
        linenumber: i64,
        orderdate: i32,
        rng: &mut Rng,
    ) -> Row {
        let partkey = rng.gen_range(1..=self.part_count());
        let suppkey = rng.gen_range(1..=self.supplier_count());
        let qty = rng.gen_range(1..=50i64);
        let price = Self::retail_price(partkey) * qty as f64;
        let ship = orderdate + rng.gen_range(1..=121);
        vec![
            Datum::Int(orderkey),
            Datum::Int(linenumber),
            Datum::Int(partkey),
            Datum::Int(suppkey),
            Datum::Int(qty),
            Datum::Float(price),
            Datum::Float(rng.gen_range(0.0..0.1)),
            Datum::Float(rng.gen_range(0.0..0.08)),
            Datum::str(*text::pick(rng, &["R", "A", "N"])),
            Datum::str(*text::pick(rng, &["O", "F"])),
            Datum::Date(ship),
            Datum::Date(ship + rng.gen_range(1..=30)),
            Datum::Date(ship + rng.gen_range(1..=30)),
            Datum::str(*text::pick(rng, &text::SHIP_MODES)),
            Datum::str(text::comment(rng, "li")),
        ]
    }

    /// Generate orders and their lineitems together (the lineitem stream is
    /// keyed by the order stream's dates).
    pub fn gen_orders_and_lineitems(&self) -> (Vec<Row>, Vec<Row>) {
        let mut rng = self.rng(7);
        let mut orders = Vec::with_capacity(self.order_count() as usize);
        let mut lines = Vec::new();
        for o in 1..=self.order_count() {
            let row = self.gen_order_row(o, &mut rng);
            let orderdate = row[4].as_date().expect("generated date");
            for ln in 1..=self.line_count(o) {
                lines.push(self.gen_lineitem_row(o, ln, orderdate, &mut rng));
            }
            orders.push(row);
        }
        (orders, lines)
    }

    /// Populate a fresh TPC-H catalog. Constraint enforcement is suspended
    /// during the bulk load (the generated data is FK-consistent by
    /// construction) and restored afterwards.
    pub fn populate(&self, catalog: &mut Catalog) -> Result<(), StorageError> {
        let enforce = catalog.enforce_constraints;
        catalog.enforce_constraints = false;
        let result = (|| {
            catalog.insert("region", self.gen_region())?;
            catalog.insert("nation", self.gen_nation())?;
            catalog.insert("supplier", self.gen_supplier())?;
            catalog.insert("part", self.gen_part())?;
            catalog.insert("partsupp", self.gen_partsupp())?;
            catalog.insert("customer", self.gen_customer())?;
            let (orders, lines) = self.gen_orders_and_lineitems();
            catalog.insert("orders", orders)?;
            catalog.insert("lineitem", lines)?;
            Ok(())
        })();
        catalog.enforce_constraints = enforce;
        result
    }
}

/// SplitMix64-style mixer for deriving independent seeds.
pub(crate) use ojv_testkit::mix;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::create_tpch_catalog;

    #[test]
    fn cardinalities_scale() {
        let g = TpchGen::new(0.01, 42);
        assert_eq!(g.supplier_count(), 100);
        assert_eq!(g.part_count(), 2000);
        assert_eq!(g.customer_count(), 1500);
        assert_eq!(g.order_count(), 15000);
        let avg = g.lineitem_count() as f64 / g.order_count() as f64;
        assert!((3.5..4.5).contains(&avg), "avg lines per order {avg}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = TpchGen::new(0.002, 7).gen_part();
        let b = TpchGen::new(0.002, 7).gen_part();
        assert_eq!(a, b);
        let c = TpchGen::new(0.002, 8).gen_part();
        assert_ne!(a, c);
    }

    #[test]
    fn retail_price_formula_range() {
        for k in [1i64, 10, 999, 1000, 123_456] {
            let p = TpchGen::retail_price(k);
            assert!((900.0..2100.0).contains(&p), "price {p} for key {k}");
        }
        // The paper's `p_retailprice < 2000` predicate keeps most parts but
        // must reject some at every scale factor.
        for parts in [2_000i64, 200_000] {
            let below = (1..=parts)
                .filter(|&k| TpchGen::retail_price(k) < 2000.0)
                .count();
            let frac = below as f64 / parts as f64;
            assert!(frac > 0.85 && frac < 0.98, "selectivity {frac} at {parts}");
        }
    }

    #[test]
    fn populate_satisfies_constraints() {
        let mut c = create_tpch_catalog().unwrap();
        let g = TpchGen::new(0.001, 3);
        g.populate(&mut c).unwrap();
        assert!(c.enforce_constraints);
        assert_eq!(c.table("region").unwrap().len(), 5);
        assert_eq!(c.table("orders").unwrap().len(), g.order_count() as usize);
        assert_eq!(
            c.table("lineitem").unwrap().len(),
            g.lineitem_count() as usize
        );
        // Spot-check FK consistency manually: every lineitem's order exists.
        let orders = c.table("orders").unwrap();
        for row in c.table("lineitem").unwrap().iter_refs().take(500) {
            assert!(orders.contains_key(&[row.datum(0)]));
        }
    }

    /// The paper's V3 date window (1994-06-01..1994-12-31) must keep its
    /// ≈8.75% selectivity (7 months of 80) at any scale factor.
    #[test]
    fn date_window_selectivity_matches_spec() {
        let g = TpchGen::new(0.01, 5);
        let (orders, _) = g.gen_orders_and_lineitems();
        let lo = days_from_date(1994, 6, 1);
        let hi = days_from_date(1994, 12, 31);
        let hits = orders
            .iter()
            .filter(|o| {
                let d = o[4].as_date().unwrap();
                d >= lo && d <= hi
            })
            .count();
        let frac = hits as f64 / orders.len() as f64;
        assert!(
            (0.06..0.12).contains(&frac),
            "date-window selectivity {frac} out of expected band"
        );
    }

    /// Lineitems per order are uniform 1–7 and independent of the seed's
    /// other streams.
    #[test]
    fn line_count_distribution() {
        let g = TpchGen::new(0.01, 9);
        let mut counts = [0usize; 8];
        for o in 1..=g.order_count() {
            counts[g.line_count(o) as usize] += 1;
        }
        assert_eq!(counts[0], 0);
        for (n, &c) in counts.iter().enumerate().skip(1) {
            let frac = c as f64 / g.order_count() as f64;
            assert!(
                (0.10..0.19).contains(&frac),
                "line count {n} has frequency {frac}"
            );
        }
    }

    #[test]
    fn order_dates_in_range() {
        let g = TpchGen::new(0.001, 3);
        let (orders, _) = g.gen_orders_and_lineitems();
        let lo = days_from_date(1992, 1, 1);
        let hi = days_from_date(1998, 8, 2);
        for o in &orders {
            let d = o[4].as_date().unwrap();
            assert!(d >= lo && d <= hi);
        }
    }
}
