//! Text pools for the generator — compact stand-ins for dbgen's grammar.

use ojv_testkit::Rng;

pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

pub const NATIONS: [(&str, i64); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];

pub const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];

pub const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

pub const SHIP_MODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];

pub const CONTAINERS: [&str; 8] = [
    "SM CASE",
    "SM BOX",
    "MED BAG",
    "MED BOX",
    "LG CASE",
    "LG BOX",
    "JUMBO PKG",
    "WRAP CASE",
];

pub const TYPE_SYLLABLE_1: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
pub const TYPE_SYLLABLE_2: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
pub const TYPE_SYLLABLE_3: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];

pub const PART_NAME_WORDS: [&str; 16] = [
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blanched",
    "blue",
    "blush",
    "brown",
    "burlywood",
    "burnished",
    "chartreuse",
    "chiffon",
    "chocolate",
];

/// Pick a random element from a slice.
pub fn pick<'a, T>(rng: &mut Rng, items: &'a [T]) -> &'a T {
    &items[rng.gen_range(0..items.len())]
}

/// A short pseudo-comment (dbgen generates long text; the experiments only
/// need the column to exist and carry per-row entropy).
pub fn comment(rng: &mut Rng, tag: &str) -> String {
    format!("{tag}#{:06x}", rng.gen_range(0u32..0xff_ffff))
}

/// A TPC-H part type, e.g. "STANDARD ANODIZED TIN".
pub fn part_type(rng: &mut Rng) -> String {
    format!(
        "{} {} {}",
        pick(rng, &TYPE_SYLLABLE_1),
        pick(rng, &TYPE_SYLLABLE_2),
        pick(rng, &TYPE_SYLLABLE_3)
    )
}

/// A part name: two words from the colour pool.
pub fn part_name(rng: &mut Rng) -> String {
    format!(
        "{} {}",
        pick(rng, &PART_NAME_WORDS),
        pick(rng, &PART_NAME_WORDS)
    )
}

/// A phone number shaped like dbgen's `NN-NNN-NNN-NNNN`.
pub fn phone(rng: &mut Rng, nationkey: i64) -> String {
    format!(
        "{}-{:03}-{:03}-{:04}",
        10 + nationkey,
        rng.gen_range(100..1000),
        rng.gen_range(100..1000),
        rng.gen_range(1000..10000)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_with_seed() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        assert_eq!(part_type(&mut a), part_type(&mut b));
        assert_eq!(comment(&mut a, "x"), comment(&mut b, "x"));
        assert_eq!(phone(&mut a, 3), phone(&mut b, 3));
    }

    #[test]
    fn pools_are_well_formed() {
        assert_eq!(NATIONS.len(), 25);
        assert!(NATIONS.iter().all(|(_, r)| *r < REGIONS.len() as i64));
        let mut rng = Rng::seed_from_u64(1);
        let name = part_name(&mut rng);
        assert!(name.contains(' '));
    }
}
