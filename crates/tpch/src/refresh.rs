//! Refresh streams: the update batches the experiments replay.
//!
//! All batches are FK-consistent against data produced by the same
//! [`TpchGen`] and deterministic in `(sf, seed, batch)`.

use ojv_testkit::Rng;

use ojv_rel::{Datum, Row};

use crate::gen::{mix, TpchGen};

impl TpchGen {
    /// A batch of `n` **new lineitems for existing orders** — the update
    /// stream of the paper's Figure 5 experiments ("inserting 60,000 rows
    /// into lineitem").
    ///
    /// Orders are drawn round-robin from a seeded random start; line numbers
    /// continue above the base data's per-order counts and are namespaced by
    /// `batch` so distinct batches never collide.
    pub fn lineitem_insert_batch(&self, n: usize, batch: u64) -> Vec<Row> {
        let mut rng = Rng::seed_from_u64(mix(self.seed, 0xAAB0 ^ batch));
        let orders = self.order_count();
        let start = rng.gen_range(1..=orders);
        let per_order = n as i64 / orders + 2;
        let mut rows = Vec::with_capacity(n);
        let mut occurrence = std::collections::HashMap::new();
        let start_date = ojv_rel::datum::days_from_date(crate::gen::START_DATE.0, 6, 1);
        for i in 0..n as i64 {
            let order = (start + i - 1) % orders + 1;
            let occ = occurrence.entry(order).or_insert(0i64);
            *occ += 1;
            let linenumber = self.line_count(order) + (batch as i64) * per_order * 8 + *occ;
            // Ship dates follow a plausible date; the view predicates of the
            // experiments filter on o_orderdate, not lineitem dates.
            rows.push(self.gen_lineitem_row(order, linenumber, start_date, &mut rng));
        }
        rows
    }

    /// Keys of `n` **existing lineitems** to delete (Figure 5(b)).
    ///
    /// Walks orders from a batch-dependent start, taking whole orders' lines
    /// until `n` keys are collected. Keys are distinct within a batch.
    pub fn lineitem_delete_keys(&self, n: usize, batch: u64) -> Vec<Vec<Datum>> {
        let orders = self.order_count();
        let start = (mix(self.seed, 0xDD10 ^ batch) % orders as u64) as i64 + 1;
        let mut keys = Vec::with_capacity(n);
        let mut o = start;
        while keys.len() < n {
            for ln in 1..=self.line_count(o) {
                keys.push(vec![Datum::Int(o), Datum::Int(ln)]);
                if keys.len() == n {
                    break;
                }
            }
            o = o % orders + 1;
            assert_ne!(o, start, "delete batch larger than the lineitem table");
        }
        keys
    }

    /// RF1-style batch: `n` new orders (keys above the base range) with
    /// their lineitems. Insert the orders first, then the lineitems.
    pub fn order_insert_batch(&self, n: usize, batch: u64) -> (Vec<Row>, Vec<Row>) {
        let mut rng = Rng::seed_from_u64(mix(self.seed, 0x0F1 ^ batch));
        let base = self.order_count() + (batch as i64) * n as i64 * 4;
        let mut orders = Vec::with_capacity(n);
        let mut lines = Vec::new();
        for i in 0..n as i64 {
            let orderkey = base + i + 1;
            let row = self.gen_order_row(orderkey, &mut rng);
            let orderdate = row[4].as_date().expect("generated date");
            for ln in 1..=self.line_count(orderkey) {
                lines.push(self.gen_lineitem_row(orderkey, ln, orderdate, &mut rng));
            }
            orders.push(row);
        }
        (orders, lines)
    }

    /// RF2-style batch: keys of `n` existing orders and of all their
    /// lineitems. Delete the lineitems first, then the orders.
    pub fn order_delete_batch(&self, n: usize, batch: u64) -> (Vec<Vec<Datum>>, Vec<Vec<Datum>>) {
        let orders = self.order_count();
        let start = (mix(self.seed, 0xDE2 ^ batch) % orders as u64) as i64 + 1;
        let mut order_keys = Vec::with_capacity(n);
        let mut line_keys = Vec::new();
        for i in 0..n as i64 {
            let o = (start + i - 1) % orders + 1;
            order_keys.push(vec![Datum::Int(o)]);
            for ln in 1..=self.line_count(o) {
                line_keys.push(vec![Datum::Int(o), Datum::Int(ln)]);
            }
        }
        (order_keys, line_keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::create_tpch_catalog;
    use std::collections::HashSet;

    fn gen() -> TpchGen {
        TpchGen::new(0.001, 42)
    }

    #[test]
    fn insert_batches_apply_cleanly_with_constraints() {
        let mut c = create_tpch_catalog().unwrap();
        let g = gen();
        g.populate(&mut c).unwrap();
        for batch in 0..3u64 {
            let rows = g.lineitem_insert_batch(200, batch);
            assert_eq!(rows.len(), 200);
            c.insert("lineitem", rows).expect("batch {batch} applies");
        }
    }

    #[test]
    fn insert_batch_keys_are_unique_within_and_across_batches() {
        let g = gen();
        let mut seen: HashSet<(i64, i64)> = HashSet::new();
        for batch in 0..4u64 {
            for row in g.lineitem_insert_batch(300, batch) {
                let key = (row[0].as_int().unwrap(), row[1].as_int().unwrap());
                assert!(seen.insert(key), "duplicate key {key:?} in batch {batch}");
            }
        }
    }

    #[test]
    fn delete_batches_apply_cleanly() {
        let mut c = create_tpch_catalog().unwrap();
        let g = gen();
        g.populate(&mut c).unwrap();
        let keys = g.lineitem_delete_keys(500, 0);
        assert_eq!(keys.len(), 500);
        let before = c.table("lineitem").unwrap().len();
        c.delete("lineitem", &keys).unwrap();
        assert_eq!(c.table("lineitem").unwrap().len(), before - 500);
    }

    #[test]
    fn order_refresh_batches_apply() {
        let mut c = create_tpch_catalog().unwrap();
        let g = gen();
        g.populate(&mut c).unwrap();
        let (orders, lines) = g.order_insert_batch(50, 0);
        assert_eq!(orders.len(), 50);
        c.insert("orders", orders).unwrap();
        c.insert("lineitem", lines).unwrap();

        let (okeys, lkeys) = g.order_delete_batch(30, 0);
        c.delete("lineitem", &lkeys).unwrap();
        c.delete("orders", &okeys).unwrap();
    }

    #[test]
    fn batches_are_deterministic() {
        let a = gen().lineitem_insert_batch(100, 1);
        let b = gen().lineitem_insert_batch(100, 1);
        assert_eq!(a, b);
    }
}
