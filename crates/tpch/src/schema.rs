//! The TPC-H schema (TPC Benchmark H, revision 2.3.0) with primary keys and
//! foreign-key constraints.

use ojv_rel::{Column, DataType};
use ojv_storage::{Catalog, StorageError};

fn col(table: &str, name: &str, ty: DataType, nullable: bool) -> Column {
    Column::new(table, name, ty, nullable)
}

/// Create all eight TPC-H tables and the spec's foreign keys.
pub fn create_tpch_catalog() -> Result<Catalog, StorageError> {
    use DataType::*;
    let mut c = Catalog::new();

    c.create_table(
        "region",
        vec![
            col("region", "r_regionkey", Int, false),
            col("region", "r_name", Str, false),
            col("region", "r_comment", Str, true),
        ],
        &["r_regionkey"],
    )?;

    c.create_table(
        "nation",
        vec![
            col("nation", "n_nationkey", Int, false),
            col("nation", "n_name", Str, false),
            col("nation", "n_regionkey", Int, false),
            col("nation", "n_comment", Str, true),
        ],
        &["n_nationkey"],
    )?;

    c.create_table(
        "supplier",
        vec![
            col("supplier", "s_suppkey", Int, false),
            col("supplier", "s_name", Str, false),
            col("supplier", "s_address", Str, true),
            col("supplier", "s_nationkey", Int, false),
            col("supplier", "s_phone", Str, true),
            col("supplier", "s_acctbal", Float, true),
            col("supplier", "s_comment", Str, true),
        ],
        &["s_suppkey"],
    )?;

    c.create_table(
        "part",
        vec![
            col("part", "p_partkey", Int, false),
            col("part", "p_name", Str, false),
            col("part", "p_mfgr", Str, true),
            col("part", "p_brand", Str, true),
            col("part", "p_type", Str, true),
            col("part", "p_size", Int, true),
            col("part", "p_container", Str, true),
            col("part", "p_retailprice", Float, false),
            col("part", "p_comment", Str, true),
        ],
        &["p_partkey"],
    )?;

    c.create_table(
        "partsupp",
        vec![
            col("partsupp", "ps_partkey", Int, false),
            col("partsupp", "ps_suppkey", Int, false),
            col("partsupp", "ps_availqty", Int, true),
            col("partsupp", "ps_supplycost", Float, true),
            col("partsupp", "ps_comment", Str, true),
        ],
        &["ps_partkey", "ps_suppkey"],
    )?;

    c.create_table(
        "customer",
        vec![
            col("customer", "c_custkey", Int, false),
            col("customer", "c_name", Str, false),
            col("customer", "c_address", Str, true),
            col("customer", "c_nationkey", Int, false),
            col("customer", "c_phone", Str, true),
            col("customer", "c_acctbal", Float, true),
            col("customer", "c_mktsegment", Str, true),
            col("customer", "c_comment", Str, true),
        ],
        &["c_custkey"],
    )?;

    c.create_table(
        "orders",
        vec![
            col("orders", "o_orderkey", Int, false),
            col("orders", "o_custkey", Int, false),
            col("orders", "o_orderstatus", Str, true),
            col("orders", "o_totalprice", Float, true),
            col("orders", "o_orderdate", Date, false),
            col("orders", "o_orderpriority", Str, true),
            col("orders", "o_clerk", Str, true),
            col("orders", "o_shippriority", Int, true),
            col("orders", "o_comment", Str, true),
        ],
        &["o_orderkey"],
    )?;

    c.create_table(
        "lineitem",
        vec![
            col("lineitem", "l_orderkey", Int, false),
            col("lineitem", "l_linenumber", Int, false),
            col("lineitem", "l_partkey", Int, false),
            col("lineitem", "l_suppkey", Int, false),
            col("lineitem", "l_quantity", Int, false),
            col("lineitem", "l_extendedprice", Float, false),
            col("lineitem", "l_discount", Float, true),
            col("lineitem", "l_tax", Float, true),
            col("lineitem", "l_returnflag", Str, true),
            col("lineitem", "l_linestatus", Str, true),
            col("lineitem", "l_shipdate", Date, false),
            col("lineitem", "l_commitdate", Date, true),
            col("lineitem", "l_receiptdate", Date, true),
            col("lineitem", "l_shipmode", Str, true),
            col("lineitem", "l_comment", Str, true),
        ],
        &["l_orderkey", "l_linenumber"],
    )?;

    c.add_foreign_key("fk_nation_region", "nation", &["n_regionkey"], "region")?;
    c.add_foreign_key("fk_supplier_nation", "supplier", &["s_nationkey"], "nation")?;
    c.add_foreign_key("fk_customer_nation", "customer", &["c_nationkey"], "nation")?;
    c.add_foreign_key("fk_partsupp_part", "partsupp", &["ps_partkey"], "part")?;
    c.add_foreign_key(
        "fk_partsupp_supplier",
        "partsupp",
        &["ps_suppkey"],
        "supplier",
    )?;
    c.add_foreign_key("fk_orders_customer", "orders", &["o_custkey"], "customer")?;
    c.add_foreign_key("fk_lineitem_orders", "lineitem", &["l_orderkey"], "orders")?;
    c.add_foreign_key("fk_lineitem_part", "lineitem", &["l_partkey"], "part")?;
    c.add_foreign_key(
        "fk_lineitem_supplier",
        "lineitem",
        &["l_suppkey"],
        "supplier",
    )?;
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_all_tables_and_fks() {
        let c = create_tpch_catalog().unwrap();
        for t in [
            "region", "nation", "supplier", "part", "partsupp", "customer", "orders", "lineitem",
        ] {
            assert!(c.table(t).is_ok(), "missing table {t}");
        }
        assert_eq!(c.foreign_keys().len(), 9);
        assert_eq!(c.fks_from("lineitem").count(), 3);
        assert_eq!(c.table("lineitem").unwrap().key_cols().len(), 2);
    }
}
