//! TPC-H substrate: schema, deterministic data generator, and refresh
//! streams.
//!
//! The paper's experiments (§7) run against a TPC-H database, creating view
//! V3 over `customer`, `orders`, `lineitem`, and `part`, and measuring
//! maintenance cost for batches of lineitem insertions and deletions. This
//! crate provides:
//!
//! * [`schema::create_tpch_catalog`] — all eight TPC-H tables with their
//!   primary keys and the spec's foreign keys,
//! * [`gen::TpchGen`] — a scale-factor-parameterized, fully deterministic
//!   generator with the distributions the experiments depend on (key
//!   ranges, 1–7 lineitems per order, the `o_orderdate` range, the spec's
//!   `p_retailprice` formula),
//! * [`refresh`] — FK-respecting update streams: new-order batches (RF1),
//!   order deletions (RF2), and the lineitem-only insert/delete batches the
//!   paper's Figure 5 uses.
//!
//! Everything is seeded: the same `(scale factor, seed)` pair regenerates
//! bit-identical data, so experiments are reproducible.

#![forbid(unsafe_code)]

pub mod gen;
pub mod refresh;
pub mod schema;
pub mod text;

pub use gen::TpchGen;
pub use schema::create_tpch_catalog;
