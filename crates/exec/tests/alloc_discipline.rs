//! Allocation discipline of the join probe hot path.
//!
//! Installs the counting global allocator from the testkit and asserts that
//! probing a join hash table with non-matching keys performs **zero** heap
//! allocations per probe: the borrowed-key hash-then-verify design never
//! builds an owned key, and a probe that finds no candidates writes nothing.

use ojv_algebra::{Atom, ColRef, JoinKind, Pred, TableId, TableSet};
use ojv_exec::{ops, ExecEnv, KeyHashTable, ViewLayout};
use ojv_rel::{Column, DataType, Datum, RowBuf};
use ojv_storage::Catalog;
use ojv_testkit::{alloc_snapshot, CountingAlloc};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn layout() -> (Catalog, ViewLayout) {
    let mut c = Catalog::new();
    c.create_table(
        "a",
        vec![
            Column::new("a", "id", DataType::Int, false),
            Column::new("a", "v", DataType::Int, true),
        ],
        &["id"],
    )
    .unwrap();
    c.create_table(
        "b",
        vec![
            Column::new("b", "id", DataType::Int, false),
            Column::new("b", "w", DataType::Int, true),
        ],
        &["id"],
    )
    .unwrap();
    let l = ViewLayout::new(&c, &["a", "b"]).unwrap();
    (c, l)
}

/// Widened `a` rows with ids in `lo..hi` (disjoint from the build side).
fn probes(l: &ViewLayout, lo: i64, hi: i64) -> RowBuf {
    let mut buf = RowBuf::new(l.width());
    for id in lo..hi {
        let row = buf.push_null_row();
        row[0] = Datum::Int(id);
        row[1] = Datum::Int(id * 2);
    }
    buf
}

fn build_side(l: &ViewLayout, n: i64) -> RowBuf {
    let mut buf = RowBuf::new(l.width());
    for id in 0..n {
        let row = buf.push_null_row();
        row[2] = Datum::Int(id);
        row[3] = Datum::Int(id + 100);
    }
    buf
}

/// Minimum allocation count of `f` over a few repeats. The counters are
/// process-global, so a background thread (libtest's own machinery) can leak
/// stray allocations into one measured window; it cannot *remove* the
/// allocations a leaky probe path would perform every time, so the minimum
/// is the honest per-run cost.
fn min_alloc_count(mut f: impl FnMut()) -> u64 {
    (0..5)
        .map(|_| {
            let before = alloc_snapshot();
            f();
            alloc_snapshot().since(&before).count
        })
        .min()
        .expect("at least one attempt")
}

/// Everything in one test function: the counters are process-global, so
/// concurrently running tests would pollute each other's deltas.
#[test]
fn non_matching_probes_do_not_allocate() {
    let (_c, l) = layout();

    // 1. The raw probe loop: hash + bucket walk, borrowed keys only.
    //    Exactly zero allocations across 10k misses.
    let right = build_side(&l, 128);
    let table = KeyHashTable::build(&right, &[2]);
    let misses = probes(&l, 1_000_000, 1_010_000);
    let mut found = 0usize;
    let count = min_alloc_count(|| {
        found = 0;
        for i in 0..misses.len() {
            found += table.candidates(misses.row(i), &[0]).count();
        }
    });
    assert_eq!(found, 0, "probe ids are disjoint from the build side");
    assert!(
        alloc_snapshot().count > 0,
        "counting allocator must be installed for this test to mean anything"
    );
    assert_eq!(
        count, 0,
        "non-matching probes must not touch the heap (saw {count} allocations)",
    );

    // 2. The full hash-join operator: per-probe cost must be zero, so the
    //    operator's allocation count is independent of the number of
    //    non-matching probe rows (fixed setup cost only).
    let env = ExecEnv::serial(&l);
    let pred = Pred::atom(Atom::eq(
        ColRef::new(TableId(0), 0),
        ColRef::new(TableId(1), 0),
    ));
    let (ls, rs) = (
        TableSet::singleton(TableId(0)),
        TableSet::singleton(TableId(1)),
    );
    let mut deltas = Vec::new();
    for n in [10i64, 1000] {
        let left = probes(&l, 1_000_000, 1_000_000 + n);
        let right = build_side(&l, 128);
        // The per-attempt clones cost a fixed allocation count (buffer
        // clones; the Int datums never touch the heap), identical for both
        // probe counts, so they cancel in the equality below.
        let count = min_alloc_count(|| {
            let out = ops::hash_join_buf(
                &env,
                JoinKind::Inner,
                &pred,
                left.clone(),
                right.clone(),
                ls,
                rs,
            );
            assert!(out.is_empty(), "no probe matches the build side");
        });
        deltas.push(count);
    }
    assert_eq!(
        deltas[0], deltas[1],
        "join allocation count must not scale with non-matching probes: \
         {} allocs for 10 probes vs {} for 1000",
        deltas[0], deltas[1]
    );
}
