//! Execution substrate: physical operators over *wide rows*.
//!
//! Every expression over a view's tables is evaluated in the view-wide row
//! layout: one slot per column of every base table the view references, in
//! table order. A tuple that is null-extended on table `T` simply holds
//! nulls in `T`'s slots — exactly the representation the paper's `null(T)`
//! predicate assumes (`T.c IS NULL` for a non-nullable column `c` of `T`,
//! §2.1). This makes the delta-expression operators compositional: joins
//! merge disjoint slot ranges, the null-if operator clears slot ranges, and
//! term extraction (§5.1) is a null-pattern filter.
//!
//! Operators are materialize-at-each-node: relation in, relation out. Joins
//! pick between a hash join and an index-nested-loop join (when the right
//! operand is a base-table scan with a covering index), mirroring the plans
//! a production optimizer would choose for small deltas.

#![forbid(unsafe_code)]

pub mod error;
pub mod eval;
pub mod hashtbl;
pub mod layout;
pub mod morsel;
pub mod ops;
pub mod parallel;
pub mod run;
mod trace;

pub use error::{ExecError, ExecResult};
pub use hashtbl::{KeyHashTable, KeySet};
pub use layout::{TableSlot, ViewLayout};
pub use morsel::{morsel_ranges, ParallelSpec};
pub use ops::filter::filter_project_into;
pub use parallel::{map_morsels, map_parts, ExecEnv, ExecStats, ExecStatsSnapshot};
pub use run::{
    apply_spine_step, eval_expr, eval_expr_buf, join_buf_expr, join_rows_expr, null_if_buf,
    DeltaInput, ExecCtx,
};
