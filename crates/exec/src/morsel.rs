//! Morsel partitioning: fixed-size row ranges that parallel operators
//! process as independent work units.
//!
//! A *morsel* is a contiguous range of input row indices. Parallel operators
//! claim morsels from a shared counter (work-stealing granularity without a
//! queue) and merge per-morsel outputs **in morsel order**, which makes every
//! parallel operator bit-identical to its serial counterpart regardless of
//! thread count or scheduling.

use std::ops::Range;

/// Default rows per morsel: big enough to amortize dispatch, small enough to
/// load-balance skewed probe costs.
pub const DEFAULT_MORSEL_ROWS: usize = 4096;

/// Inputs smaller than this stay on the serial path by default — thread
/// spawn/join overhead dominates below it.
pub const DEFAULT_PARALLEL_CUTOFF: usize = 8192;

/// Degree-of-parallelism configuration, threaded from `MaintenancePolicy`
/// through `ExecCtx` into every operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelSpec {
    /// Worker threads for parallel operators. `1` means fully serial.
    pub threads: usize,
    /// Rows per morsel.
    pub morsel_rows: usize,
    /// Minimum outer-input row count before an operator goes parallel.
    pub parallel_cutoff: usize,
}

impl ParallelSpec {
    /// Fully serial execution (the default).
    pub fn serial() -> Self {
        ParallelSpec {
            threads: 1,
            morsel_rows: DEFAULT_MORSEL_ROWS,
            parallel_cutoff: DEFAULT_PARALLEL_CUTOFF,
        }
    }

    /// `n` worker threads with default morsel size and cutoff.
    pub fn threads(n: usize) -> Self {
        ParallelSpec {
            threads: n.max(1),
            ..Self::serial()
        }
    }

    /// One worker per available core.
    pub fn auto() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::threads(n)
    }

    pub fn with_morsel_rows(mut self, rows: usize) -> Self {
        self.morsel_rows = rows.max(1);
        self
    }

    pub fn with_cutoff(mut self, rows: usize) -> Self {
        self.parallel_cutoff = rows;
        self
    }

    /// Should an operator with `rows` outer rows run in parallel?
    pub fn is_parallel_for(&self, rows: usize) -> bool {
        self.threads > 1 && rows >= self.parallel_cutoff
    }
}

impl Default for ParallelSpec {
    fn default() -> Self {
        Self::serial()
    }
}

/// Split `0..len` into morsels of `morsel_rows` (last one may be short).
pub fn morsel_ranges(len: usize, morsel_rows: usize) -> Vec<Range<usize>> {
    let step = morsel_rows.max(1);
    (0..len)
        .step_by(step)
        .map(|start| start..(start + step).min(len))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_input_exactly_once() {
        for len in [0usize, 1, 7, 4096, 4097, 10_000] {
            for morsel in [1usize, 7, 4096] {
                let ranges = morsel_ranges(len, morsel);
                let mut covered = 0usize;
                let mut expected_start = 0usize;
                for r in &ranges {
                    assert_eq!(r.start, expected_start, "contiguous at len={len}");
                    assert!(r.end <= len);
                    covered += r.len();
                    expected_start = r.end;
                }
                assert_eq!(covered, len, "len={len} morsel={morsel}");
            }
        }
    }

    #[test]
    fn zero_morsel_rows_does_not_panic() {
        assert_eq!(morsel_ranges(3, 0).len(), 3);
    }

    #[test]
    fn spec_cutover() {
        let spec = ParallelSpec::threads(4).with_cutoff(100);
        assert!(!spec.is_parallel_for(99));
        assert!(spec.is_parallel_for(100));
        assert!(!ParallelSpec::serial().is_parallel_for(1_000_000));
    }

    #[test]
    fn serial_is_default() {
        assert_eq!(ParallelSpec::default(), ParallelSpec::serial());
        assert_eq!(ParallelSpec::threads(0).threads, 1);
    }
}
