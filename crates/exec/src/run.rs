//! Evaluation of delta expressions against the catalog.

use ojv_algebra::{Expr, JoinKind, TableId, TableSet};
use ojv_rel::{Relation, Row, RowBuf};
use ojv_storage::Catalog;

use crate::error::{ExecError, ExecResult};
use crate::eval::{eval_pred, eval_pred_narrow_ref};
use crate::hashtbl::KeySet;
use crate::layout::ViewLayout;
use crate::morsel::ParallelSpec;
use crate::ops;
use crate::parallel::{map_morsels, ExecEnv, ExecStats};

/// The update batch `ΔT` made available to `Expr::Delta`/`Expr::OldState`
/// leaves. Rows are in the base table's (narrow) schema.
#[derive(Debug, Clone, Copy)]
pub struct DeltaInput<'a> {
    pub table: TableId,
    pub rows: &'a Relation,
}

/// Evaluation context: the catalog, the view's wide layout, and (during
/// maintenance) the current update batch.
#[derive(Clone, Copy)]
pub struct ExecCtx<'a> {
    pub catalog: &'a Catalog,
    pub layout: &'a ViewLayout,
    pub delta: Option<DeltaInput<'a>>,
    /// When false, joins never take the index-nested-loop fast path — used
    /// by baselines that model optimizers without index-aware delta plans.
    pub prefer_index_joins: bool,
    /// Degree of parallelism for the physical operators.
    pub spec: ParallelSpec,
    /// Per-operator counters, shared across workers when set.
    pub stats: Option<&'a ExecStats>,
}

impl<'a> ExecCtx<'a> {
    pub fn new(catalog: &'a Catalog, layout: &'a ViewLayout) -> Self {
        ExecCtx {
            catalog,
            layout,
            delta: None,
            prefer_index_joins: true,
            spec: ParallelSpec::serial(),
            stats: None,
        }
    }

    pub fn with_delta(catalog: &'a Catalog, layout: &'a ViewLayout, delta: DeltaInput<'a>) -> Self {
        ExecCtx {
            delta: Some(delta),
            ..Self::new(catalog, layout)
        }
    }

    /// Replace the parallelism spec.
    pub fn with_parallel(mut self, spec: ParallelSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Attach per-operator counters.
    pub fn with_stats(mut self, stats: &'a ExecStats) -> Self {
        self.stats = Some(stats);
        self
    }

    /// The operator environment this context implies.
    pub fn env(&self) -> ExecEnv<'a> {
        ExecEnv {
            layout: self.layout,
            spec: self.spec,
            stats: self.stats,
        }
    }

    fn base_table(&self, t: TableId) -> ExecResult<&'a ojv_storage::Table> {
        let name = &self.layout.slot(t).name;
        self.catalog
            .table(name)
            .map_err(|_| ExecError::UnknownTable {
                table: name.clone(),
            })
    }
}

/// Evaluate a delta expression to a set of wide rows — legacy `Vec<Row>`
/// form of [`eval_expr_buf`].
pub fn eval_expr(ctx: &ExecCtx<'_>, expr: &Expr) -> ExecResult<Vec<Row>> {
    Ok(eval_expr_buf(ctx, expr)?.into_rows())
}

/// Evaluate a delta expression to a flat wide-row batch.
///
/// Returns [`ExecError::UnknownTable`] when the expression references a
/// table the catalog no longer has (e.g. dropped after view analysis).
///
/// # Panics
/// Panics on internal invariant violations (e.g. a `Delta` leaf without a
/// delta input, or a right-preserving spine join) — these indicate planner
/// bugs, not runtime conditions.
pub fn eval_expr_buf(ctx: &ExecCtx<'_>, expr: &Expr) -> ExecResult<RowBuf> {
    let width = ctx.layout.width();
    match expr {
        Expr::Empty => Ok(RowBuf::new(width)),
        Expr::Table(t) => {
            let table = ctx.base_table(*t)?;
            let mut out = RowBuf::with_capacity(width, table.len());
            for r in table.iter_refs() {
                ctx.layout.widen_ref_into(*t, r, &mut out);
            }
            Ok(out)
        }
        Expr::Delta(t) => {
            let delta = ctx.delta.expect("Delta leaf requires a delta input");
            assert_eq!(delta.table, *t, "Delta leaf for the wrong table");
            let mut out = RowBuf::with_capacity(width, delta.rows.rows().len());
            for r in delta.rows.rows() {
                ctx.layout.widen_into(*t, r, &mut out);
            }
            Ok(out)
        }
        Expr::OldState(t) => {
            // T current minus ΔT by key: the pre-update state after an
            // insert (§5.3's `T± ▷_{eq(T)} ΔT`). The delta keys live in a
            // borrowed-key set, so the scan allocates nothing per row.
            let delta = ctx.delta.expect("OldState leaf requires a delta input");
            assert_eq!(delta.table, *t, "OldState leaf for the wrong table");
            let table = ctx.base_table(*t)?;
            let key_cols = table.key_cols();
            let delta_keys =
                KeySet::build(delta.rows.rows().iter().map(|r| r.as_slice()), key_cols);
            let mut out = RowBuf::with_capacity(width, table.len());
            for r in table.iter_refs() {
                if !delta_keys.contains_ref(r, key_cols) {
                    ctx.layout.widen_ref_into(*t, r, &mut out);
                }
            }
            Ok(out)
        }
        Expr::Select(pred, input) => {
            let rows = eval_expr_buf(ctx, input)?;
            Ok(ops::filter_buf(&ctx.env(), pred, rows))
        }
        Expr::NullIf {
            null_tables,
            pred,
            input,
        } => {
            let rows = eval_expr_buf(ctx, input)?;
            Ok(null_if_buf(ctx, *null_tables, pred, rows))
        }
        Expr::CleanDup(input) => {
            let rows = eval_expr_buf(ctx, input)?;
            Ok(ops::clean_dup_buf(&ctx.env(), rows))
        }
        Expr::Join {
            kind,
            pred,
            left,
            right,
        } => {
            // Delta-driven first join: when the left operand is the raw
            // delta and the right is an indexed base scan, probe from the
            // narrow delta rows and widen only survivors — the bulk of a
            // selective delta batch is never materialized at view width.
            if let Expr::Delta(dt) = left.as_ref() {
                if let Some(out) = delta_index_join(ctx, *kind, pred, *dt, right)? {
                    return Ok(out);
                }
            }
            let left_rows = eval_expr_buf(ctx, left)?;
            join_buf_expr(ctx, *kind, pred, left_rows, left.sources(), right)
        }
    }
}

/// The paper's `λ^c_p` on a materialized batch: null out the columns of
/// `null_tables` on every row *failing* `pred`. Predicate evaluation is the
/// expensive part; it runs morsel-parallel over the read-only rows, then the
/// flagged rows are nulled in order.
pub fn null_if_buf(
    ctx: &ExecCtx<'_>,
    null_tables: TableSet,
    pred: &ojv_algebra::Pred,
    mut rows: RowBuf,
) -> RowBuf {
    let null_flags: Vec<bool> = map_morsels(ctx.spec, rows.len(), |range| {
        range
            .map(|i| !eval_pred(ctx.layout, pred, rows.row(i)))
            .collect::<Vec<bool>>()
    })
    .into_iter()
    .flatten()
    .collect();
    for (i, null_it) in null_flags.into_iter().enumerate() {
        if null_it {
            ctx.layout.null_out(null_tables, rows.row_mut(i));
        }
    }
    rows
}

/// Apply one left-spine step to an already-materialized prefix batch whose
/// source set is `sources`. This is how the batch maintenance layer fans a
/// shared prefix's rows out into per-view plan remainders: joins go through
/// the same [`join_buf_expr`] ladder `eval_expr_buf` uses, so the access-path
/// choices (index NL, narrow build, hash) are identical to evaluating the
/// full plan from scratch.
pub fn apply_spine_step(
    ctx: &ExecCtx<'_>,
    step: &ojv_algebra::SpineStep,
    rows: RowBuf,
    sources: TableSet,
) -> ExecResult<RowBuf> {
    use ojv_algebra::SpineStep;
    match step {
        SpineStep::Join { kind, pred, right } => {
            join_buf_expr(ctx, *kind, pred, rows, sources, right)
        }
        SpineStep::Select(pred) => Ok(ops::filter_buf(&ctx.env(), pred, rows)),
        SpineStep::NullIf { null_tables, pred } => Ok(null_if_buf(ctx, *null_tables, pred, rows)),
        SpineStep::CleanDup => Ok(ops::clean_dup_buf(&ctx.env(), rows)),
    }
}

/// Join already-materialized left rows against a right *expression* —
/// legacy `Vec<Row>` form of [`join_buf_expr`].
pub fn join_rows_expr(
    ctx: &ExecCtx<'_>,
    kind: JoinKind,
    pred: &ojv_algebra::Pred,
    left_rows: Vec<Row>,
    left_sources: TableSet,
    right: &Expr,
) -> ExecResult<Vec<Row>> {
    let left = RowBuf::from_rows(ctx.layout.width(), &left_rows);
    Ok(join_buf_expr(ctx, kind, pred, left, left_sources, right)?.into_rows())
}

/// Join a materialized left batch against a right *expression*, choosing —
/// in order of preference:
///
/// 1. an **index-nested-loop** plan when the right operand is a base-table
///    scan (or the pre-update `OldState` of the delta table) with a
///    covering index,
/// 2. a **narrow-build hash join** when the right operand is a base-table
///    scan without a covering index: the build indexes the table's narrow
///    rows in place instead of widening the whole table first,
/// 3. a hash join against the evaluated right expression otherwise.
///
/// This is the join arm of [`eval_expr_buf`], exposed so the maintenance
/// layer can run the paper's §5.3 anti-semijoins (`candidates ▷ E'_{ip}`)
/// against constructed expressions with the same plan choices.
pub fn join_buf_expr(
    ctx: &ExecCtx<'_>,
    kind: JoinKind,
    pred: &ojv_algebra::Pred,
    left_rows: RowBuf,
    left_sources: TableSet,
    right: &Expr,
) -> ExecResult<RowBuf> {
    let right_sources = right.sources();
    if let Some(scan) = base_scan_of(right) {
        let (keys, residual) = pred.equi_split(left_sources, right_sources);
        if !keys.is_empty() {
            let table = ctx.base_table(scan.table)?;
            let slot_offset = ctx.layout.slot(scan.table).offset;
            let local: Vec<usize> = keys
                .iter()
                .map(|(_, r)| ctx.layout.global(*r) - slot_offset)
                .collect();
            let probe: Vec<usize> = keys.iter().map(|(l, _)| ctx.layout.global(*l)).collect();
            let delta_exclusion = || {
                let delta = ctx.delta.expect("OldState leaf requires a delta input");
                assert_eq!(delta.table, scan.table, "OldState leaf for the wrong table");
                KeySet::build(
                    delta.rows.rows().iter().map(|r| r.as_slice()),
                    table.key_cols(),
                )
            };
            // Index-nested-loop fast path: a covering index on the equijoin
            // columns, for the left-preserving kinds the spine produces.
            if ctx.prefer_index_joins
                && matches!(
                    kind,
                    JoinKind::Inner | JoinKind::LeftOuter | JoinKind::LeftSemi | JoinKind::LeftAnti
                )
            {
                if let Some((index, perm)) = table.index_on(&local) {
                    let mut full_residual = residual.clone();
                    if let Some(p) = scan.pred {
                        full_residual = full_residual.and(p);
                    }
                    let exclude = scan.exclude_delta.then(delta_exclusion);
                    return Ok(ops::index_join_excluding_buf(
                        &ctx.env(),
                        kind,
                        left_rows,
                        &probe,
                        table,
                        scan.table,
                        index,
                        &perm,
                        &full_residual,
                        exclude.as_ref(),
                    ));
                }
            }
            // Narrow-build fallback: hash-join against the table's narrow
            // rows in place — the whole base table is never widened. Scan
            // predicates and delta exclusion fold into the build-side keep
            // mask (narrow predicate evaluation), so right-preserving kinds
            // emit exactly the filtered unmatched rows.
            let keep: Option<Vec<bool>> = if scan.pred.is_some() || scan.exclude_delta {
                let excluded = scan.exclude_delta.then(delta_exclusion);
                let key_cols = table.key_cols();
                Some(
                    table
                        .iter_refs()
                        .map(|r| {
                            scan.pred.is_none_or(|p| eval_pred_narrow_ref(p, r))
                                && excluded
                                    .as_ref()
                                    .is_none_or(|ex| !ex.contains_ref(r, key_cols))
                        })
                        .collect(),
                )
            } else {
                None
            };
            return Ok(ops::narrow_build_join_buf(
                &ctx.env(),
                kind,
                left_rows,
                &probe,
                table,
                scan.table,
                &local,
                keep.as_deref(),
                &residual,
            ));
        }
    }
    let right_rows = eval_expr_buf(ctx, right)?;
    Ok(ops::hash_join_buf(
        &ctx.env(),
        kind,
        pred,
        left_rows,
        right_rows,
        left_sources,
        right_sources,
    ))
}

/// The narrow-left fast path of [`eval_expr_buf`]'s join arm: `Δt ⋈ scan`
/// with a covering index on the equijoin columns probes straight from the
/// narrow delta rows (see [`ops::index_join_narrow_left_buf`]). Returns
/// `Ok(None)` when the shape doesn't apply and the caller should widen the
/// delta and take the regular join ladder.
fn delta_index_join(
    ctx: &ExecCtx<'_>,
    kind: JoinKind,
    pred: &ojv_algebra::Pred,
    dt: TableId,
    right: &Expr,
) -> ExecResult<Option<RowBuf>> {
    if !ctx.prefer_index_joins
        || !matches!(
            kind,
            JoinKind::Inner | JoinKind::LeftOuter | JoinKind::LeftSemi | JoinKind::LeftAnti
        )
    {
        return Ok(None);
    }
    let Some(scan) = base_scan_of(right) else {
        return Ok(None);
    };
    if scan.exclude_delta {
        // `Δt ⋈ OldState(t)` — a self-join shape the spine never produces;
        // let the widened path handle it.
        return Ok(None);
    }
    let (keys, residual) = pred.equi_split(TableSet::singleton(dt), right.sources());
    if keys.is_empty() {
        return Ok(None);
    }
    let table = ctx.base_table(scan.table)?;
    let slot_offset = ctx.layout.slot(scan.table).offset;
    let local: Vec<usize> = keys
        .iter()
        .map(|(_, r)| ctx.layout.global(*r) - slot_offset)
        .collect();
    let Some((index, perm)) = table.index_on(&local) else {
        return Ok(None);
    };
    let probe_local: Vec<usize> = keys
        .iter()
        .map(|(l, _)| {
            debug_assert_eq!(l.table, dt, "left key column outside the delta table");
            l.col
        })
        .collect();
    let mut full_residual = residual;
    if let Some(p) = scan.pred {
        full_residual = full_residual.and(p);
    }
    let delta = ctx.delta.expect("Delta leaf requires a delta input");
    assert_eq!(delta.table, dt, "Delta leaf for the wrong table");
    Ok(Some(ops::index_join_narrow_left_buf(
        &ctx.env(),
        kind,
        delta.rows.rows(),
        dt,
        &probe_local,
        table,
        scan.table,
        index,
        &perm,
        &full_residual,
        None,
    )))
}

struct BaseScan<'e> {
    table: TableId,
    pred: Option<&'e ojv_algebra::Pred>,
    /// True for `OldState`: rows whose key is in the delta must be skipped.
    exclude_delta: bool,
}

/// If `e` is a base-table scan — `Table(t)`, `OldState(t)`, or a
/// single-table selection over one — return its description.
fn base_scan_of(e: &Expr) -> Option<BaseScan<'_>> {
    match e {
        Expr::Table(t) => Some(BaseScan {
            table: *t,
            pred: None,
            exclude_delta: false,
        }),
        Expr::OldState(t) => Some(BaseScan {
            table: *t,
            pred: None,
            exclude_delta: true,
        }),
        Expr::Select(p, inner) => match inner.as_ref() {
            Expr::Table(t) if p.tables().is_subset_of(TableSet::singleton(*t)) => Some(BaseScan {
                table: *t,
                pred: Some(p),
                exclude_delta: false,
            }),
            Expr::OldState(t) if p.tables().is_subset_of(TableSet::singleton(*t)) => {
                Some(BaseScan {
                    table: *t,
                    pred: Some(p),
                    exclude_delta: true,
                })
            }
            _ => None,
        },
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ojv_algebra::{Atom, CmpOp, ColRef, Pred};
    use ojv_rel::{Column, DataType, Datum};

    /// part(0) fo (orders(1) lo lineitem(2)) — the paper's Example 1 shape,
    /// tiny data.
    fn setup() -> (Catalog, ViewLayout) {
        let mut c = Catalog::new();
        c.create_table(
            "part",
            vec![
                Column::new("part", "pk", DataType::Int, false),
                Column::new("part", "pname", DataType::Str, true),
            ],
            &["pk"],
        )
        .unwrap();
        c.create_table(
            "orders",
            vec![
                Column::new("orders", "ok", DataType::Int, false),
                Column::new("orders", "cust", DataType::Int, true),
            ],
            &["ok"],
        )
        .unwrap();
        c.create_table(
            "lineitem",
            vec![
                Column::new("lineitem", "lk", DataType::Int, false),
                Column::new("lineitem", "lok", DataType::Int, false),
                Column::new("lineitem", "lpk", DataType::Int, false),
            ],
            &["lk"],
        )
        .unwrap();
        c.add_foreign_key("fk_l_o", "lineitem", &["lok"], "orders")
            .unwrap();
        c.add_foreign_key("fk_l_p", "lineitem", &["lpk"], "part")
            .unwrap();
        let l = ViewLayout::new(&c, &["part", "orders", "lineitem"]).unwrap();
        (c, l)
    }

    fn populate(c: &mut Catalog) {
        c.insert(
            "part",
            vec![
                vec![Datum::Int(1), Datum::str("bolt")],
                vec![Datum::Int(2), Datum::str("nut")],
            ],
        )
        .unwrap();
        c.insert(
            "orders",
            vec![
                vec![Datum::Int(10), Datum::Int(100)],
                vec![Datum::Int(11), Datum::Int(101)],
            ],
        )
        .unwrap();
        c.insert(
            "lineitem",
            vec![vec![Datum::Int(1000), Datum::Int(10), Datum::Int(1)]],
        )
        .unwrap();
    }

    fn view_expr() -> Expr {
        let p_pk_lpk = Pred::atom(Atom::eq(
            ColRef::new(TableId(0), 0),
            ColRef::new(TableId(2), 2),
        ));
        let p_ok_lok = Pred::atom(Atom::eq(
            ColRef::new(TableId(1), 0),
            ColRef::new(TableId(2), 1),
        ));
        Expr::full_outer(
            p_pk_lpk,
            Expr::table(TableId(0)),
            Expr::left_outer(p_ok_lok, Expr::table(TableId(1)), Expr::table(TableId(2))),
        )
    }

    #[test]
    fn full_view_evaluation_matches_example_1_semantics() {
        let (mut c, l) = setup();
        populate(&mut c);
        let ctx = ExecCtx::new(&c, &l);
        let rows = eval_expr(&ctx, &view_expr()).unwrap();
        // Expected: {P,O,L} for part 1/order 10/line 1000, {O} for order 11,
        // {P} for part 2 → 3 rows.
        assert_eq!(rows.len(), 3);
        let full: Vec<_> = rows
            .iter()
            .filter(|r| l.row_matches_term(TableSet::first_n(3), r))
            .collect();
        assert_eq!(full.len(), 1);
        assert_eq!(full[0][0], Datum::Int(1));
        assert!(rows
            .iter()
            .any(|r| l.row_matches_term(TableSet::singleton(TableId(1)), r)
                && r[2] == Datum::Int(11)));
        assert!(rows.iter().any(
            |r| l.row_matches_term(TableSet::singleton(TableId(0)), r) && r[0] == Datum::Int(2)
        ));
    }

    #[test]
    fn delta_leaf_widens_update_rows() {
        let (mut c, l) = setup();
        populate(&mut c);
        let delta_rel = Relation::new(
            c.table("lineitem").unwrap().schema().clone(),
            vec![vec![Datum::Int(2000), Datum::Int(11), Datum::Int(2)]],
        );
        let ctx = ExecCtx::with_delta(
            &c,
            &l,
            DeltaInput {
                table: TableId(2),
                rows: &delta_rel,
            },
        );
        let rows = eval_expr(&ctx, &Expr::Delta(TableId(2))).unwrap();
        assert_eq!(rows.len(), 1);
        assert!(l.is_null_on(TableId(0), &rows[0]));
        assert_eq!(rows[0][4], Datum::Int(2000));
    }

    #[test]
    fn old_state_excludes_delta_keys() {
        let (mut c, l) = setup();
        populate(&mut c);
        // Pretend lineitem 1000 was just inserted.
        let delta_rel = Relation::new(
            c.table("lineitem").unwrap().schema().clone(),
            vec![vec![Datum::Int(1000), Datum::Int(10), Datum::Int(1)]],
        );
        let ctx = ExecCtx::with_delta(
            &c,
            &l,
            DeltaInput {
                table: TableId(2),
                rows: &delta_rel,
            },
        );
        let rows = eval_expr(&ctx, &Expr::OldState(TableId(2))).unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn empty_leaf() {
        let (c, l) = setup();
        let ctx = ExecCtx::new(&c, &l);
        assert!(eval_expr(&ctx, &Expr::Empty).unwrap().is_empty());
    }

    #[test]
    fn missing_catalog_table_is_an_error_not_a_panic() {
        let (_c, l) = setup();
        // A catalog that lacks the layout's tables (e.g. dropped after the
        // view was analyzed) must surface as an error, not a panic.
        let empty = Catalog::new();
        let ctx = ExecCtx::new(&empty, &l);
        let err = eval_expr(&ctx, &Expr::table(TableId(0))).unwrap_err();
        assert_eq!(
            err,
            ExecError::UnknownTable {
                table: "part".into()
            }
        );
        assert!(err.to_string().contains("part"));
        // The join fast path goes through the same lookup.
        let pred = Pred::atom(Atom::eq(
            ColRef::new(TableId(1), 0),
            ColRef::new(TableId(2), 1),
        ));
        let join = Expr::inner(pred, Expr::table(TableId(2)), Expr::table(TableId(1)));
        assert!(eval_expr(&ctx, &join).is_err());
    }

    #[test]
    fn parallel_evaluation_is_bit_identical_to_serial() {
        let (mut c, l) = setup();
        populate(&mut c);
        c.insert(
            "lineitem",
            vec![
                vec![Datum::Int(1001), Datum::Int(11), Datum::Int(1)],
                vec![Datum::Int(1002), Datum::Int(10), Datum::Int(2)],
            ],
        )
        .unwrap();
        let serial = eval_expr(&ExecCtx::new(&c, &l), &view_expr()).unwrap();
        for threads in [2, 8] {
            for morsel in [1, 3, 4096] {
                let spec = ParallelSpec::threads(threads)
                    .with_morsel_rows(morsel)
                    .with_cutoff(0);
                let ctx = ExecCtx::new(&c, &l).with_parallel(spec);
                let parallel = eval_expr(&ctx, &view_expr()).unwrap();
                assert_eq!(serial, parallel, "threads={threads} morsel={morsel}");
            }
        }
    }

    #[test]
    fn index_join_path_matches_hash_join() {
        let (mut c, l) = setup();
        populate(&mut c);
        // ΔL ⋈ orders on lok = ok — orders' unique key is covered, so the
        // index path fires; compare against forcing the hash path via an
        // equivalent evaluated-right join.
        let delta_rel = Relation::new(
            c.table("lineitem").unwrap().schema().clone(),
            vec![
                vec![Datum::Int(2000), Datum::Int(11), Datum::Int(2)],
                vec![Datum::Int(2001), Datum::Int(99), Datum::Int(2)], // dangling
            ],
        );
        let ctx = ExecCtx::with_delta(
            &c,
            &l,
            DeltaInput {
                table: TableId(2),
                rows: &delta_rel,
            },
        );
        let pred = Pred::atom(Atom::eq(
            ColRef::new(TableId(1), 0),
            ColRef::new(TableId(2), 1),
        ));
        let join = Expr::inner(
            pred.clone(),
            Expr::Delta(TableId(2)),
            Expr::table(TableId(1)),
        );
        let out = eval_expr(&ctx, &join).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0][2], Datum::Int(11));

        // lo variant keeps the dangling delta row.
        let lo = Expr::left_outer(pred, Expr::Delta(TableId(2)), Expr::table(TableId(1)));
        let out = eval_expr(&ctx, &lo).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn index_join_with_scan_predicate_residual() {
        let (mut c, l) = setup();
        populate(&mut c);
        let delta_rel = Relation::new(
            c.table("lineitem").unwrap().schema().clone(),
            vec![vec![Datum::Int(2000), Datum::Int(10), Datum::Int(2)]],
        );
        let ctx = ExecCtx::with_delta(
            &c,
            &l,
            DeltaInput {
                table: TableId(2),
                rows: &delta_rel,
            },
        );
        let pred = Pred::atom(Atom::eq(
            ColRef::new(TableId(1), 0),
            ColRef::new(TableId(2), 1),
        ));
        // Selection on orders that rejects order 10.
        let scan = Expr::select(
            Pred::atom(Atom::Const(
                ColRef::new(TableId(1), 1),
                CmpOp::Gt,
                Datum::Int(100),
            )),
            Expr::table(TableId(1)),
        );
        let lo = Expr::left_outer(pred, Expr::Delta(TableId(2)), scan);
        let out = eval_expr(&ctx, &lo).unwrap();
        assert_eq!(out.len(), 1);
        // Order 10 fails the scan predicate, so the delta row is preserved
        // null-extended on orders.
        assert!(l.is_null_on(TableId(1), &out[0]));
    }

    /// Evaluating the JDNF terms and gluing them with minimum union must
    /// equal direct evaluation (paper, Theorem 1).
    #[test]
    fn normal_form_evaluation_equals_direct_evaluation() {
        let (mut c, l) = setup();
        populate(&mut c);
        // Add a second lineitem to make it more interesting.
        c.insert(
            "lineitem",
            vec![vec![Datum::Int(1001), Datum::Int(11), Datum::Int(1)]],
        )
        .unwrap();
        let ctx = ExecCtx::new(&c, &l);
        let direct = eval_expr(&ctx, &view_expr()).unwrap();

        let terms = ojv_algebra::normalize_unpruned(&view_expr());
        // Evaluate each term as a cross join + filter, then minimum-union.
        let mut all: Vec<Row> = Vec::new();
        for term in &terms {
            let mut rows: Vec<Row> = vec![vec![Datum::Null; l.width()]];
            for t in term.tables.iter() {
                let table_rows = eval_expr(&ctx, &Expr::Table(t)).unwrap();
                let mut next = Vec::new();
                for r in &rows {
                    for tr in &table_rows {
                        next.push(ops::merge_rows(&l, r, tr, TableSet::singleton(t)));
                    }
                }
                rows = next;
            }
            rows = ops::filter(&l, &term.pred, rows);
            all.extend(rows);
        }
        let glued = ops::clean_dup(&l, all);
        let mut a = direct;
        let mut b = glued;
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }
}
