//! Happens-before trace shim.
//!
//! With the `concheck` feature (or under `cfg(test)`), these forward to the
//! vector-clock race detector in `ojv_testkit::race`; otherwise they are
//! inlined no-ops, so the default build carries zero instrumentation cost.
//! The detector itself is also inert until a test installs it, so even
//! feature-enabled builds only pay when a session is active.

#[cfg(any(test, feature = "concheck"))]
pub(crate) use ojv_testkit::race::{active, observe, on_write, publish, register_thread};

#[cfg(not(any(test, feature = "concheck")))]
mod noop {
    #[inline(always)]
    pub(crate) fn active() -> bool {
        false
    }
    #[inline(always)]
    pub(crate) fn on_write(_cell: &str) {}
    #[inline(always)]
    pub(crate) fn publish(_chan: &str) {}
    #[inline(always)]
    pub(crate) fn observe(_chan: &str) {}
    #[inline(always)]
    pub(crate) fn register_thread(_name: &str) {}
}

#[cfg(not(any(test, feature = "concheck")))]
pub(crate) use noop::*;
