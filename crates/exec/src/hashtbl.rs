//! Allocation-free key hash tables for the join hot path.
//!
//! The old build side was `HashMap<Vec<Datum>, Vec<usize>>`: one owned key
//! vector per build row, one candidate vector per distinct key, and one more
//! owned key per *probe*. [`KeyHashTable`] replaces all of that with
//! hash-then-verify over borrowed key slices:
//!
//! * build hashes each row's key columns **in place** ([`key_hash`]) and
//!   links equal-hash rows into an intrusive chain (`head` map + `next`
//!   vector) — two flat allocations total, none per row;
//! * probe hashes the probe row's key columns in place, walks the chain,
//!   and **verifies** candidate keys column-by-column ([`key_eq_rows`]) —
//!   hash collisions between distinct keys are filtered here, and no key
//!   vector ever materializes.
//!
//! Chains are built by scanning rows in *reverse* so each chain yields
//! candidates in ascending row order — exactly the order the old
//! `Vec<usize>` per key produced. That keeps parallel morsel output
//! bit-identical to the previous implementation.
//!
//! Rows with a null key column never enter the table and never match a
//! probe: every equijoin the maintenance algebra generates is
//! null-rejecting (§2.1), so a null key cannot join — skipping them here is
//! both correct and what keeps outer-join dangling tuples dangling.

use ojv_rel::{fx_map_with_capacity, key_hash, Datum, FxHashMap, RowBuf};
use ojv_storage::RowRef;

const NIL: u32 = u32::MAX;

/// A chained hash table over the key columns of a [`RowBuf`].
pub struct KeyHashTable {
    key_cols: Vec<usize>,
    head: FxHashMap<u64, u32>,
    next: Vec<u32>,
}

impl KeyHashTable {
    /// Index `rows` by their key columns. Rows with any null key column are
    /// skipped (null-rejecting equijoin semantics).
    pub fn build(rows: &RowBuf, key_cols: &[usize]) -> Self {
        let hashes: Vec<Option<u64>> = rows
            .iter()
            .map(|row| {
                if key_cols.iter().any(|&c| row[c].is_null()) {
                    None
                } else {
                    Some(key_hash(row, key_cols))
                }
            })
            .collect();
        Self::from_hashes(&hashes, key_cols)
    }

    /// Build from precomputed per-row key hashes (`None` = row excluded:
    /// null key, failed scan predicate, delta-excluded, …). Lets callers
    /// index rows they don't own contiguously — e.g. a base table's narrow
    /// `Vec<Row>` — without copying them into a [`RowBuf`].
    pub fn from_hashes(hashes: &[Option<u64>], key_cols: &[usize]) -> Self {
        let mut head: FxHashMap<u64, u32> = fx_map_with_capacity(hashes.len());
        let mut next = vec![NIL; hashes.len()];
        // Reverse scan: each push-front leaves chains in ascending row
        // order, matching the old per-key `Vec<usize>` candidate order.
        for i in (0..hashes.len()).rev() {
            if let Some(h) = hashes[i] {
                let slot = head.entry(h).or_insert(NIL);
                next[i] = *slot;
                *slot = i as u32;
            }
        }
        KeyHashTable {
            key_cols: key_cols.to_vec(),
            head,
            next,
        }
    }

    /// Number of distinct key hashes (≈ distinct keys) in the table.
    pub fn distinct_hashes(&self) -> usize {
        self.head.len()
    }

    /// Iterate the indices of build rows whose key *may* equal the probe
    /// row's key at `probe_cols` — ascending row order, hash-matched only.
    /// The caller must verify with [`Self::key_matches`]. Yields nothing for
    /// null probe keys.
    #[inline]
    pub fn candidates(&self, probe_row: &[Datum], probe_cols: &[usize]) -> Candidates<'_> {
        let cur = if probe_cols.iter().any(|&c| probe_row[c].is_null()) {
            NIL
        } else {
            let h = key_hash(probe_row, probe_cols);
            self.head.get(&h).copied().unwrap_or(NIL)
        };
        Candidates { table: self, cur }
    }

    /// Verify that build row `build_row` (a row slice of the indexed
    /// `RowBuf`) agrees with the probe key — the collision filter after a
    /// hash match.
    #[inline]
    pub fn key_matches(
        &self,
        build_row: &[Datum],
        probe_row: &[Datum],
        probe_cols: &[usize],
    ) -> bool {
        self.key_cols
            .iter()
            .zip(probe_cols)
            .all(|(&bc, &pc)| build_row[bc] == probe_row[pc])
    }

    /// [`Self::key_matches`] where the build row is *columnar*: candidate
    /// verification reads the key columns straight off the heap's column
    /// pages (`DatumRef` equality mirrors `Datum` equality).
    #[inline]
    pub fn key_matches_ref(
        &self,
        build_row: RowRef<'_>,
        probe_row: &[Datum],
        probe_cols: &[usize],
    ) -> bool {
        self.key_cols
            .iter()
            .zip(probe_cols)
            .all(|(&bc, &pc)| build_row.dat(bc) == probe_row[pc])
    }
}

/// Iterator over hash-matched build-row indices, ascending.
pub struct Candidates<'a> {
    table: &'a KeyHashTable,
    cur: u32,
}

impl Iterator for Candidates<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.cur == NIL {
            return None;
        }
        let i = self.cur as usize;
        self.cur = self.table.next[i];
        Some(i)
    }
}

/// A set of keys supporting membership tests against borrowed row slices —
/// the allocation-free replacement for `HashSet<Vec<Datum>>` in semi/anti
/// joins and delta-key exclusion.
///
/// Keys are stored as a contiguous key-only [`RowBuf`]; `contains` hashes
/// the probe columns in place and verifies by slice comparison.
pub struct KeySet {
    keys: RowBuf,
    all_cols: Vec<usize>,
    head: FxHashMap<u64, u32>,
    next: Vec<u32>,
}

impl KeySet {
    /// Collect the keys (at `key_cols`) of `rows`. Keys with a null column
    /// are not inserted — they can never equal a (null-rejecting) probe.
    pub fn build<'r>(rows: impl Iterator<Item = &'r [Datum]>, key_cols: &[usize]) -> Self {
        let mut keys = RowBuf::new(key_cols.len());
        for row in rows {
            if key_cols.iter().any(|&c| row[c].is_null()) {
                continue;
            }
            let dst = keys.push_null_row();
            for (slot, &c) in dst.iter_mut().zip(key_cols) {
                *slot = row[c].clone();
            }
        }
        let all_cols: Vec<usize> = (0..key_cols.len()).collect();
        let mut head: FxHashMap<u64, u32> = fx_map_with_capacity(keys.len());
        let mut next = vec![NIL; keys.len()];
        for (i, link) in next.iter_mut().enumerate() {
            let h = key_hash(keys.row(i), &all_cols);
            let slot = head.entry(h).or_insert(NIL);
            *link = *slot;
            *slot = i as u32;
        }
        KeySet {
            keys,
            all_cols,
            head,
            next,
        }
    }

    /// Number of stored keys (including duplicates).
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Does the set contain the key of `row` at `cols`? Null keys are never
    /// members. No allocation.
    #[inline]
    pub fn contains(&self, row: &[Datum], cols: &[usize]) -> bool {
        if cols.iter().any(|&c| row[c].is_null()) {
            return false;
        }
        let h = key_hash(row, cols);
        let mut cur = self.head.get(&h).copied().unwrap_or(NIL);
        while cur != NIL {
            let k = self.keys.row(cur as usize);
            if self
                .all_cols
                .iter()
                .zip(cols)
                .all(|(&kc, &pc)| k[kc] == row[pc])
            {
                return true;
            }
            cur = self.next[cur as usize];
        }
        false
    }

    /// [`Self::contains`] for a *columnar* probe row: the key columns hash
    /// and compare via `DatumRef`, whose hash stream is byte-identical to
    /// `Datum`'s, so the probe hits the same buckets. No allocation.
    #[inline]
    pub fn contains_ref(&self, row: RowRef<'_>, cols: &[usize]) -> bool {
        if cols.iter().any(|&c| row.is_null(c)) {
            return false;
        }
        let h = ojv_rel::key_hash_with(cols, |c| row.dat(c));
        let mut cur = self.head.get(&h).copied().unwrap_or(NIL);
        while cur != NIL {
            let k = self.keys.row(cur as usize);
            if self
                .all_cols
                .iter()
                .zip(cols)
                .all(|(&kc, &pc)| row.dat(pc) == k[kc])
            {
                return true;
            }
            cur = self.next[cur as usize];
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: i64) -> Datum {
        Datum::Int(i)
    }

    fn buf(rows: &[Vec<Datum>]) -> RowBuf {
        RowBuf::from_rows(rows[0].len(), rows)
    }

    #[test]
    fn candidates_ascend_per_key() {
        let rows = buf(&[
            vec![d(1), d(10)],
            vec![d(2), d(20)],
            vec![d(1), d(30)],
            vec![d(1), d(40)],
        ]);
        let t = KeyHashTable::build(&rows, &[0]);
        let probe = vec![d(1)];
        let cands: Vec<usize> = t
            .candidates(&probe, &[0])
            .filter(|&i| t.key_matches(rows.row(i), &probe, &[0]))
            .collect();
        assert_eq!(cands, vec![0, 2, 3]);
    }

    #[test]
    fn null_build_and_probe_keys_never_match() {
        let rows = buf(&[vec![Datum::Null, d(10)], vec![d(1), d(20)]]);
        let t = KeyHashTable::build(&rows, &[0]);
        // Null build key was skipped.
        let probe = vec![Datum::Null];
        assert_eq!(t.candidates(&probe, &[0]).count(), 0);
        let probe = vec![d(1)];
        assert_eq!(t.candidates(&probe, &[0]).count(), 1);
    }

    #[test]
    fn cross_column_probe() {
        // Build keyed on col 1, probed with col 0 of a different row shape.
        let rows = buf(&[vec![d(9), d(7)], vec![d(9), d(8)]]);
        let t = KeyHashTable::build(&rows, &[1]);
        let probe = vec![d(7), d(0), d(0)];
        let m: Vec<usize> = t
            .candidates(&probe, &[0])
            .filter(|&i| t.key_matches(rows.row(i), &probe, &[0]))
            .collect();
        assert_eq!(m, vec![0]);
    }

    #[test]
    fn key_set_membership() {
        let rows = buf(&[vec![d(1), d(5)], vec![d(2), d(6)], vec![Datum::Null, d(7)]]);
        let s = KeySet::build(rows.iter(), &[0]);
        assert_eq!(s.len(), 2); // null key not inserted
        assert!(s.contains(&[d(0), d(0), d(1)], &[2]));
        assert!(!s.contains(&[d(3)], &[0]));
        assert!(!s.contains(&[Datum::Null], &[0]));
    }

    #[test]
    fn key_set_multi_column() {
        let rows = buf(&[vec![d(1), d(2)], vec![d(3), d(4)]]);
        let s = KeySet::build(rows.iter(), &[0, 1]);
        assert!(s.contains(&[d(1), d(2)], &[0, 1]));
        assert!(s.contains(&[d(2), d(1)], &[1, 0]));
        assert!(!s.contains(&[d(2), d(1)], &[0, 1]));
    }
}
