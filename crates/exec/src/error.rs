//! Execution errors.

use std::fmt;

/// Errors the executor can hit at runtime (as opposed to planner invariant
/// violations, which remain panics — see [`crate::run::eval_expr`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A table named by the view layout is missing from the catalog — e.g.
    /// the table was dropped after the view was analyzed.
    UnknownTable { table: String },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownTable { table } => {
                write!(
                    f,
                    "table `{table}` referenced by the view layout is not in the catalog"
                )
            }
        }
    }
}

impl std::error::Error for ExecError {}

pub type ExecResult<T> = Result<T, ExecError>;
