//! Selection.

use std::time::Instant;

use ojv_algebra::Pred;
use ojv_rel::{alloc_snapshot, Datum, Row, RowBuf};

use crate::eval::eval_pred;
use crate::layout::ViewLayout;
use crate::parallel::{map_morsels, ExecEnv};

/// Keep the rows satisfying `pred` (null-rejecting conjunction).
pub fn filter(layout: &ViewLayout, pred: &Pred, rows: Vec<Row>) -> Vec<Row> {
    filter_in(&ExecEnv::serial(layout), pred, rows)
}

/// [`filter`] with a parallelism spec and counters — legacy `Vec<Row>` form.
pub fn filter_in(env: &ExecEnv<'_>, pred: &Pred, rows: Vec<Row>) -> Vec<Row> {
    if pred.is_true() {
        return rows;
    }
    let width = env.layout.width();
    filter_buf(env, pred, RowBuf::from_rows(width, &rows)).into_rows()
}

/// Batch selection: predicate evaluation is morsel-parallel over read-only
/// rows, then the batch is compacted in place — kept rows stay in input
/// order, identical to the serial path, with no per-row allocation.
pub fn filter_buf(env: &ExecEnv<'_>, pred: &Pred, mut rows: RowBuf) -> RowBuf {
    if pred.is_true() {
        return rows;
    }
    let layout = env.layout;
    let started = Instant::now();
    let alloc0 = alloc_snapshot();
    let n_in = rows.len();
    let keep_morsels = map_morsels(env.spec, rows.len(), |range| {
        range
            .map(|i| eval_pred(layout, pred, rows.row(i)))
            .collect::<Vec<bool>>()
    });
    let n_morsels = keep_morsels.len();
    let keep: Vec<bool> = keep_morsels.into_iter().flatten().collect();
    rows.retain_rows(&keep);
    env.record(|s| &s.filter, n_in, rows.len(), n_morsels, started, alloc0);
    rows
}

/// Filtered projection into a flat batch: run `keep` over each wide row and
/// append only the accepted rows' `cols` cells to `out` (whose width must be
/// `cols.len()`). A rejected row costs exactly the predicate call — it is
/// never widened, copied, or projected — so scanning a large view for a
/// selective consumer allocates in proportion to the matches, not the scan.
/// The predicate is a plain closure: its *semantics* stay with the caller
/// (the change-feed layer evaluates subscription filters through this for
/// its catch-up materialization scans).
pub fn filter_project_into<'a, I, F>(rows: I, mut keep: F, cols: &[usize], out: &mut RowBuf)
where
    I: IntoIterator<Item = &'a [Datum]>,
    F: FnMut(&[Datum]) -> bool,
{
    assert_eq!(out.width(), cols.len(), "projection width mismatch");
    for row in rows {
        if keep(row) {
            let dst = out.push_null_row();
            for (slot, &c) in dst.iter_mut().zip(cols) {
                *slot = row[c].clone();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ojv_algebra::{Atom, CmpOp, ColRef, TableId};
    use ojv_rel::{Column, DataType, Datum};
    use ojv_storage::Catalog;

    fn layout() -> ViewLayout {
        let mut c = Catalog::new();
        c.create_table(
            "t",
            vec![
                Column::new("t", "id", DataType::Int, false),
                Column::new("t", "v", DataType::Int, true),
            ],
            &["id"],
        )
        .unwrap();
        ViewLayout::new(&c, &["t"]).unwrap()
    }

    #[test]
    fn filters_by_predicate() {
        let l = layout();
        let p = Pred::atom(Atom::Const(
            ColRef::new(TableId(0), 1),
            CmpOp::Gt,
            Datum::Int(5),
        ));
        let rows = vec![
            vec![Datum::Int(1), Datum::Int(10)],
            vec![Datum::Int(2), Datum::Int(3)],
            vec![Datum::Int(3), Datum::Null],
        ];
        let out = filter(&l, &p, rows);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0][0], Datum::Int(1));
    }

    #[test]
    fn true_predicate_is_identity() {
        let l = layout();
        let rows = vec![vec![Datum::Int(1), Datum::Null]];
        let out = filter(&l, &Pred::true_(), rows.clone());
        assert_eq!(out, rows);
    }

    #[test]
    fn filter_project_appends_matches_only() {
        let rows = [
            vec![Datum::Int(1), Datum::Int(10), Datum::str("a")],
            vec![Datum::Int(2), Datum::Int(3), Datum::str("b")],
            vec![Datum::Int(3), Datum::Int(7), Datum::str("c")],
        ];
        let mut out = RowBuf::new(2);
        filter_project_into(
            rows.iter().map(|r| r.as_slice()),
            |r| r[1] > Datum::Int(5),
            &[2, 0],
            &mut out,
        );
        assert_eq!(out.len(), 2);
        assert_eq!(out.row(0), &[Datum::str("a"), Datum::Int(1)]);
        assert_eq!(out.row(1), &[Datum::str("c"), Datum::Int(3)]);
        // Appending is cumulative: a second scan extends the same batch.
        filter_project_into(
            rows.iter().map(|r| r.as_slice()),
            |r| r[1] == Datum::Int(3),
            &[2, 0],
            &mut out,
        );
        assert_eq!(out.len(), 3);
        assert_eq!(out.row(2), &[Datum::str("b"), Datum::Int(2)]);
    }

    #[test]
    #[should_panic(expected = "projection width mismatch")]
    fn filter_project_rejects_width_mismatch() {
        let mut out = RowBuf::new(1);
        filter_project_into(std::iter::empty(), |_| true, &[0, 1], &mut out);
    }
}
