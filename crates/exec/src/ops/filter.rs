//! Selection.

use std::time::Instant;

use ojv_algebra::Pred;
use ojv_rel::{alloc_snapshot, Row, RowBuf};

use crate::eval::eval_pred;
use crate::layout::ViewLayout;
use crate::parallel::{map_morsels, ExecEnv};

/// Keep the rows satisfying `pred` (null-rejecting conjunction).
pub fn filter(layout: &ViewLayout, pred: &Pred, rows: Vec<Row>) -> Vec<Row> {
    filter_in(&ExecEnv::serial(layout), pred, rows)
}

/// [`filter`] with a parallelism spec and counters — legacy `Vec<Row>` form.
pub fn filter_in(env: &ExecEnv<'_>, pred: &Pred, rows: Vec<Row>) -> Vec<Row> {
    if pred.is_true() {
        return rows;
    }
    let width = env.layout.width();
    filter_buf(env, pred, RowBuf::from_rows(width, &rows)).into_rows()
}

/// Batch selection: predicate evaluation is morsel-parallel over read-only
/// rows, then the batch is compacted in place — kept rows stay in input
/// order, identical to the serial path, with no per-row allocation.
pub fn filter_buf(env: &ExecEnv<'_>, pred: &Pred, mut rows: RowBuf) -> RowBuf {
    if pred.is_true() {
        return rows;
    }
    let layout = env.layout;
    let started = Instant::now();
    let alloc0 = alloc_snapshot();
    let n_in = rows.len();
    let keep_morsels = map_morsels(env.spec, rows.len(), |range| {
        range
            .map(|i| eval_pred(layout, pred, rows.row(i)))
            .collect::<Vec<bool>>()
    });
    let n_morsels = keep_morsels.len();
    let keep: Vec<bool> = keep_morsels.into_iter().flatten().collect();
    rows.retain_rows(&keep);
    env.record(|s| &s.filter, n_in, rows.len(), n_morsels, started, alloc0);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use ojv_algebra::{Atom, CmpOp, ColRef, TableId};
    use ojv_rel::{Column, DataType, Datum};
    use ojv_storage::Catalog;

    fn layout() -> ViewLayout {
        let mut c = Catalog::new();
        c.create_table(
            "t",
            vec![
                Column::new("t", "id", DataType::Int, false),
                Column::new("t", "v", DataType::Int, true),
            ],
            &["id"],
        )
        .unwrap();
        ViewLayout::new(&c, &["t"]).unwrap()
    }

    #[test]
    fn filters_by_predicate() {
        let l = layout();
        let p = Pred::atom(Atom::Const(
            ColRef::new(TableId(0), 1),
            CmpOp::Gt,
            Datum::Int(5),
        ));
        let rows = vec![
            vec![Datum::Int(1), Datum::Int(10)],
            vec![Datum::Int(2), Datum::Int(3)],
            vec![Datum::Int(3), Datum::Null],
        ];
        let out = filter(&l, &p, rows);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0][0], Datum::Int(1));
    }

    #[test]
    fn true_predicate_is_identity() {
        let l = layout();
        let rows = vec![vec![Datum::Int(1), Datum::Null]];
        let out = filter(&l, &Pred::true_(), rows.clone());
        assert_eq!(out, rows);
    }
}
