//! Join operators: hash joins over wide rows, index-nested-loop joins
//! against base tables, and key-based semi/anti joins.
//!
//! Probe phases are morsel-parallel: the outer (left) input is split into
//! fixed-size morsels, workers probe independently, and per-morsel outputs
//! are concatenated in morsel order — so the parallel result is bit-identical
//! to the serial one. Hash-table builds stay serial (the build side of a
//! delta join is small by construction).

use std::collections::HashMap;
use std::time::Instant;

use ojv_algebra::{JoinKind, Pred, TableId, TableSet};
use ojv_rel::{key_of, Datum, Row};
use ojv_storage::Table;

use crate::eval::eval_pred;
use crate::layout::ViewLayout;
use crate::parallel::{map_morsels, ExecEnv};

/// Merge a right wide row into a left wide row: copy the slots of all
/// tables in `right_sources` (the two source sets are disjoint).
pub fn merge_rows(layout: &ViewLayout, left: &Row, right: &Row, right_sources: TableSet) -> Row {
    let mut out = left.clone();
    for t in right_sources.iter() {
        let slot = layout.slot(t);
        out[slot.offset..slot.offset + slot.len]
            .clone_from_slice(&right[slot.offset..slot.offset + slot.len]);
    }
    out
}

/// Hash (or nested-loop, when there is no equijoin conjunct) join of two
/// wide-row sets.
///
/// `left_sources`/`right_sources` are the table sets of the two inputs; they
/// determine both the equijoin key extraction and which slots a merge copies.
/// All [`JoinKind`]s are supported.
pub fn hash_join(
    layout: &ViewLayout,
    kind: JoinKind,
    pred: &Pred,
    left: Vec<Row>,
    right: Vec<Row>,
    left_sources: TableSet,
    right_sources: TableSet,
) -> Vec<Row> {
    hash_join_in(
        &ExecEnv::serial(layout),
        kind,
        pred,
        left,
        right,
        left_sources,
        right_sources,
    )
}

/// [`hash_join`] with a parallelism spec and counters. The probe runs one
/// morsel of the left input per work unit; per-morsel `(output, matched
/// right indices)` pairs merge in morsel order, so output order and content
/// are identical to the serial path for any thread count or morsel size.
pub fn hash_join_in(
    env: &ExecEnv<'_>,
    kind: JoinKind,
    pred: &Pred,
    left: Vec<Row>,
    right: Vec<Row>,
    left_sources: TableSet,
    right_sources: TableSet,
) -> Vec<Row> {
    let layout = env.layout;
    let (keys, residual) = pred.equi_split(left_sources, right_sources);
    if keys.is_empty() {
        return nested_loop_join(env, kind, pred, left, right, right_sources);
    }
    let lcols: Vec<usize> = keys.iter().map(|(l, _)| layout.global(*l)).collect();
    let rcols: Vec<usize> = keys.iter().map(|(_, r)| layout.global(*r)).collect();

    let build_start = Instant::now();
    let mut table: HashMap<Vec<Datum>, Vec<usize>> = HashMap::with_capacity(right.len());
    for (i, r) in right.iter().enumerate() {
        let k = key_of(r, &rcols);
        if k.iter().any(Datum::is_null) {
            continue; // null keys never match (null-rejecting predicates)
        }
        table.entry(k).or_default().push(i);
    }
    env.record(|s| &s.join_build, right.len(), table.len(), 1, build_start);

    let probe_start = Instant::now();
    let probe = |range: std::ops::Range<usize>| {
        let mut out = Vec::new();
        let mut matched_right = Vec::new();
        for l in &left[range] {
            let k = key_of(l, &lcols);
            let mut matched = false;
            if !k.iter().any(Datum::is_null) {
                if let Some(cands) = table.get(&k) {
                    for &ri in cands {
                        let m = merge_rows(layout, l, &right[ri], right_sources);
                        if eval_pred(layout, &residual, &m) {
                            matched = true;
                            matched_right.push(ri);
                            match kind {
                                JoinKind::LeftSemi => break,
                                JoinKind::LeftAnti => break,
                                _ => out.push(m),
                            }
                        }
                    }
                }
            }
            match kind {
                JoinKind::LeftOuter | JoinKind::FullOuter if !matched => out.push(l.clone()),
                JoinKind::LeftSemi if matched => out.push(l.clone()),
                JoinKind::LeftAnti if !matched => out.push(l.clone()),
                _ => {}
            }
        }
        (out, matched_right)
    };
    let morsels = map_morsels(env.spec, left.len(), probe);

    let n_morsels = morsels.len();
    let mut right_matched = vec![false; right.len()];
    let mut out = Vec::new();
    for (rows, matched) in morsels {
        out.extend(rows);
        for ri in matched {
            right_matched[ri] = true;
        }
    }
    if matches!(kind, JoinKind::RightOuter | JoinKind::FullOuter) {
        for (i, r) in right.iter().enumerate() {
            if !right_matched[i] {
                out.push(r.clone());
            }
        }
    }
    env.record(
        |s| &s.join_probe,
        left.len(),
        out.len(),
        n_morsels,
        probe_start,
    );
    out
}

fn nested_loop_join(
    env: &ExecEnv<'_>,
    kind: JoinKind,
    pred: &Pred,
    left: Vec<Row>,
    right: Vec<Row>,
    right_sources: TableSet,
) -> Vec<Row> {
    let layout = env.layout;
    let probe_start = Instant::now();
    let probe = |range: std::ops::Range<usize>| {
        let mut out = Vec::new();
        let mut matched_right = Vec::new();
        for l in &left[range] {
            let mut matched = false;
            for (ri, r) in right.iter().enumerate() {
                let m = merge_rows(layout, l, r, right_sources);
                if eval_pred(layout, pred, &m) {
                    matched = true;
                    matched_right.push(ri);
                    match kind {
                        JoinKind::LeftSemi | JoinKind::LeftAnti => break,
                        _ => out.push(m),
                    }
                }
            }
            match kind {
                JoinKind::LeftOuter | JoinKind::FullOuter if !matched => out.push(l.clone()),
                JoinKind::LeftSemi if matched => out.push(l.clone()),
                JoinKind::LeftAnti if !matched => out.push(l.clone()),
                _ => {}
            }
        }
        (out, matched_right)
    };
    let morsels = map_morsels(env.spec, left.len(), probe);

    let n_morsels = morsels.len();
    let mut right_matched = vec![false; right.len()];
    let mut out = Vec::new();
    for (rows, matched) in morsels {
        out.extend(rows);
        for ri in matched {
            right_matched[ri] = true;
        }
    }
    if matches!(kind, JoinKind::RightOuter | JoinKind::FullOuter) {
        for (i, r) in right.iter().enumerate() {
            if !right_matched[i] {
                out.push(r.clone());
            }
        }
    }
    env.record(
        |s| &s.join_probe,
        left.len(),
        out.len(),
        n_morsels,
        probe_start,
    );
    out
}

/// Index-nested-loop join against a base table.
///
/// The right operand is the base table `table` at view position `right_id`;
/// `keys` pairs wide-row probe columns on the left with *local* (base-table)
/// columns on the right, which must be covered by `index_perm` (the result of
/// [`Table::index_on`]). `residual` runs on the merged wide row and may
/// reference right columns (e.g. a pushed-down selection on the right table).
///
/// Supports `Inner`, `LeftOuter`, `LeftSemi`, and `LeftAnti` — the kinds the
/// maintenance spine produces; right-preserving joins need the hash path.
#[allow(clippy::too_many_arguments)]
pub fn index_join(
    layout: &ViewLayout,
    kind: JoinKind,
    left: Vec<Row>,
    probe_cols: &[usize],
    table: &Table,
    right_id: TableId,
    index: ojv_storage::IndexRef,
    index_perm: &[usize],
    residual: &Pred,
) -> Vec<Row> {
    index_join_excluding(
        layout, kind, left, probe_cols, table, right_id, index, index_perm, residual, None,
    )
}

/// [`index_join`] with an optional set of excluded right-side unique keys —
/// used to probe the *pre-update* state of the delta table (`Expr::OldState`,
/// §5.3) without materializing it: matches whose key is in `exclude` are
/// skipped.
#[allow(clippy::too_many_arguments)]
pub fn index_join_excluding(
    layout: &ViewLayout,
    kind: JoinKind,
    left: Vec<Row>,
    probe_cols: &[usize],
    table: &Table,
    right_id: TableId,
    index: ojv_storage::IndexRef,
    index_perm: &[usize],
    residual: &Pred,
    exclude: Option<&std::collections::HashSet<Vec<Datum>>>,
) -> Vec<Row> {
    index_join_excluding_in(
        &ExecEnv::serial(layout),
        kind,
        left,
        probe_cols,
        table,
        right_id,
        index,
        index_perm,
        residual,
        exclude,
    )
}

/// [`index_join_excluding`] with a parallelism spec and counters: left
/// morsels probe the index concurrently (the base table is read-only), and
/// outputs concatenate in morsel order.
#[allow(clippy::too_many_arguments)]
pub fn index_join_excluding_in(
    env: &ExecEnv<'_>,
    kind: JoinKind,
    left: Vec<Row>,
    probe_cols: &[usize],
    table: &Table,
    right_id: TableId,
    index: ojv_storage::IndexRef,
    index_perm: &[usize],
    residual: &Pred,
    exclude: Option<&std::collections::HashSet<Vec<Datum>>>,
) -> Vec<Row> {
    assert!(
        matches!(
            kind,
            JoinKind::Inner | JoinKind::LeftOuter | JoinKind::LeftSemi | JoinKind::LeftAnti
        ),
        "index join does not support right-preserving kinds"
    );
    let layout = env.layout;
    let right_sources = TableSet::singleton(right_id);
    let key_cols = table.key_cols();
    let started = Instant::now();
    let probe_morsel = |range: std::ops::Range<usize>| {
        let mut out = Vec::new();
        let mut probe = vec![Datum::Null; probe_cols.len()];
        for l in &left[range] {
            let mut matched = false;
            let any_null = probe_cols.iter().any(|&c| l[c].is_null());
            if !any_null {
                for (slot, &perm) in probe.iter_mut().zip(index_perm) {
                    *slot = l[probe_cols[perm]].clone();
                }
                for r in table.index_lookup(index, &probe) {
                    if let Some(ex) = exclude {
                        if ex.contains(&key_of(r, key_cols)) {
                            continue;
                        }
                    }
                    let wide = layout.widen(right_id, r);
                    let m = merge_rows(layout, l, &wide, right_sources);
                    if eval_pred(layout, residual, &m) {
                        matched = true;
                        match kind {
                            JoinKind::LeftSemi | JoinKind::LeftAnti => break,
                            _ => out.push(m),
                        }
                    }
                }
            }
            match kind {
                JoinKind::LeftOuter if !matched => out.push(l.clone()),
                JoinKind::LeftSemi if matched => out.push(l.clone()),
                JoinKind::LeftAnti if !matched => out.push(l.clone()),
                _ => {}
            }
        }
        out
    };
    let n_left = left.len();
    let morsels = map_morsels(env.spec, n_left, probe_morsel);
    let n_morsels = morsels.len();
    let out: Vec<Row> = morsels.into_iter().flatten().collect();
    env.record(|s| &s.index_join, n_left, out.len(), n_morsels, started);
    out
}

/// Key-based semi/anti join: keep (or drop) left rows whose key at
/// `left_cols` appears among the right rows' keys at `right_cols`.
///
/// This implements the paper's `⋉ls_{eq(T_i)}` and `▷la_{eq(T_i)}` operators
/// from the secondary-delta expressions (§5.2). Rows whose key contains a
/// null never match (the equijoin is null-rejecting).
pub fn semi_anti_by_key(
    left: Vec<Row>,
    left_cols: &[usize],
    right: &[Row],
    right_cols: &[usize],
    anti: bool,
) -> Vec<Row> {
    let keys: std::collections::HashSet<Vec<Datum>> = right
        .iter()
        .map(|r| key_of(r, right_cols))
        .filter(|k| !k.iter().any(Datum::is_null))
        .collect();
    left.into_iter()
        .filter(|l| {
            let k = key_of(l, left_cols);
            let matched = !k.iter().any(Datum::is_null) && keys.contains(&k);
            matched != anti
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ojv_algebra::{Atom, CmpOp, ColRef};
    use ojv_rel::{Column, DataType};
    use ojv_storage::Catalog;

    /// Two tables: a(id, x), b(id, aid, y). View order [a, b].
    fn setup() -> (Catalog, ViewLayout) {
        let mut c = Catalog::new();
        c.create_table(
            "a",
            vec![
                Column::new("a", "id", DataType::Int, false),
                Column::new("a", "x", DataType::Int, true),
            ],
            &["id"],
        )
        .unwrap();
        c.create_table(
            "b",
            vec![
                Column::new("b", "id", DataType::Int, false),
                Column::new("b", "aid", DataType::Int, false),
                Column::new("b", "y", DataType::Int, true),
            ],
            &["id"],
        )
        .unwrap();
        let l = ViewLayout::new(&c, &["a", "b"]).unwrap();
        (c, l)
    }

    fn a_rows(l: &ViewLayout, ids: &[i64]) -> Vec<Row> {
        ids.iter()
            .map(|&i| l.widen(TableId(0), &[Datum::Int(i), Datum::Int(i * 10)]))
            .collect()
    }

    /// b rows as (id, aid).
    fn b_rows(l: &ViewLayout, rows: &[(i64, i64)]) -> Vec<Row> {
        rows.iter()
            .map(|&(id, aid)| {
                l.widen(
                    TableId(1),
                    &[Datum::Int(id), Datum::Int(aid), Datum::Int(0)],
                )
            })
            .collect()
    }

    fn join_pred() -> Pred {
        Pred::atom(Atom::eq(
            ColRef::new(TableId(0), 0),
            ColRef::new(TableId(1), 1),
        ))
    }

    fn run(kind: JoinKind, left: Vec<Row>, right: Vec<Row>, l: &ViewLayout) -> Vec<Row> {
        hash_join(
            l,
            kind,
            &join_pred(),
            left,
            right,
            TableSet::singleton(TableId(0)),
            TableSet::singleton(TableId(1)),
        )
    }

    #[test]
    fn inner_join_matches() {
        let (_c, l) = setup();
        let out = run(
            JoinKind::Inner,
            a_rows(&l, &[1, 2, 3]),
            b_rows(&l, &[(10, 1), (11, 1), (12, 9)]),
            &l,
        );
        assert_eq!(out.len(), 2);
        for r in &out {
            assert_eq!(r[0], Datum::Int(1));
            assert!(!l.is_null_on(TableId(1), r));
        }
    }

    #[test]
    fn left_outer_preserves_left() {
        let (_c, l) = setup();
        let out = run(
            JoinKind::LeftOuter,
            a_rows(&l, &[1, 2]),
            b_rows(&l, &[(10, 1)]),
            &l,
        );
        assert_eq!(out.len(), 2);
        let unmatched: Vec<_> = out.iter().filter(|r| l.is_null_on(TableId(1), r)).collect();
        assert_eq!(unmatched.len(), 1);
        assert_eq!(unmatched[0][0], Datum::Int(2));
    }

    #[test]
    fn right_outer_preserves_right() {
        let (_c, l) = setup();
        let out = run(
            JoinKind::RightOuter,
            a_rows(&l, &[1]),
            b_rows(&l, &[(10, 1), (11, 7)]),
            &l,
        );
        assert_eq!(out.len(), 2);
        let unmatched: Vec<_> = out.iter().filter(|r| l.is_null_on(TableId(0), r)).collect();
        assert_eq!(unmatched.len(), 1);
        assert_eq!(unmatched[0][2], Datum::Int(11));
    }

    #[test]
    fn full_outer_preserves_both() {
        let (_c, l) = setup();
        let out = run(
            JoinKind::FullOuter,
            a_rows(&l, &[1, 2]),
            b_rows(&l, &[(10, 1), (11, 7)]),
            &l,
        );
        // 1 match + 1 unmatched left + 1 unmatched right.
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn semi_and_anti_joins() {
        let (_c, l) = setup();
        let semi = run(
            JoinKind::LeftSemi,
            a_rows(&l, &[1, 2]),
            b_rows(&l, &[(10, 1), (11, 1)]),
            &l,
        );
        assert_eq!(semi.len(), 1);
        assert_eq!(semi[0][0], Datum::Int(1));
        // Semi join never duplicates.
        let anti = run(
            JoinKind::LeftAnti,
            a_rows(&l, &[1, 2]),
            b_rows(&l, &[(10, 1), (11, 1)]),
            &l,
        );
        assert_eq!(anti.len(), 1);
        assert_eq!(anti[0][0], Datum::Int(2));
    }

    #[test]
    fn null_keys_never_match() {
        let (_c, l) = setup();
        // A b-row null-extended on a (null aid is impossible in base data,
        // but a null-extended wide row probes with null).
        let mut left = a_rows(&l, &[1]);
        l.null_out(TableSet::singleton(TableId(0)), &mut left[0]);
        let out = run(JoinKind::Inner, left, b_rows(&l, &[(10, 1)]), &l);
        assert!(out.is_empty());
    }

    #[test]
    fn residual_predicate_applies_after_key_match() {
        let (_c, l) = setup();
        let pred = join_pred().and(&Pred::atom(Atom::Const(
            ColRef::new(TableId(1), 0),
            CmpOp::Gt,
            Datum::Int(10),
        )));
        let out = hash_join(
            &l,
            JoinKind::Inner,
            &pred,
            a_rows(&l, &[1]),
            b_rows(&l, &[(10, 1), (11, 1)]),
            TableSet::singleton(TableId(0)),
            TableSet::singleton(TableId(1)),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0][2], Datum::Int(11));
    }

    #[test]
    fn nested_loop_fallback_without_equijoin() {
        let (_c, l) = setup();
        let pred = Pred::atom(Atom::Cols(
            ColRef::new(TableId(0), 0),
            CmpOp::Lt,
            ColRef::new(TableId(1), 1),
        ));
        let out = hash_join(
            &l,
            JoinKind::Inner,
            &pred,
            a_rows(&l, &[1, 5]),
            b_rows(&l, &[(10, 3)]),
            TableSet::singleton(TableId(0)),
            TableSet::singleton(TableId(1)),
        );
        // a.id < b.aid: only a(1) < 3.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0][0], Datum::Int(1));
    }

    #[test]
    fn index_join_against_base_table() {
        let (mut c, l) = setup();
        c.insert(
            "b",
            vec![
                vec![Datum::Int(10), Datum::Int(1), Datum::Int(0)],
                vec![Datum::Int(11), Datum::Int(1), Datum::Int(0)],
            ],
        )
        .unwrap();
        let table = c.table("b").unwrap();
        // Probe on b.id (the unique key) using a.x column? Use aid via b's
        // unique key is id; probe a.id against b.id here for the test.
        let (index, perm) = table.index_on(&[0]).unwrap();
        let out = index_join(
            &l,
            JoinKind::LeftOuter,
            a_rows(&l, &[10, 99]),
            &[0], // wide col 0 = a.id
            table,
            TableId(1),
            index,
            &perm,
            &Pred::true_(),
        );
        assert_eq!(out.len(), 2);
        let matched: Vec<_> = out
            .iter()
            .filter(|r| !l.is_null_on(TableId(1), r))
            .collect();
        assert_eq!(matched.len(), 1);
        assert_eq!(matched[0][0], Datum::Int(10));
    }

    #[test]
    fn semi_anti_by_key_basics() {
        let (_c, l) = setup();
        let left = a_rows(&l, &[1, 2, 3]);
        let right = a_rows(&l, &[2, 3, 4]);
        let semi = semi_anti_by_key(left.clone(), &[0], &right, &[0], false);
        assert_eq!(semi.len(), 2);
        let anti = semi_anti_by_key(left, &[0], &right, &[0], true);
        assert_eq!(anti.len(), 1);
        assert_eq!(anti[0][0], Datum::Int(1));
    }
}
