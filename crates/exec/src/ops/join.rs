//! Join operators: hash joins over wide-row batches, index-nested-loop joins
//! against base tables, and key-based semi/anti joins.
//!
//! Probe phases are morsel-parallel: the outer (left) input is split into
//! fixed-size morsels, workers probe independently, and per-morsel outputs
//! are concatenated in morsel order — so the parallel result is bit-identical
//! to the serial one. Hash-table builds stay serial (the build side of a
//! delta join is small by construction).
//!
//! The probe loops are allocation-free per row: batches are flat [`RowBuf`]s,
//! probes hash key columns in place and verify against borrowed slices
//! ([`crate::hashtbl::KeyHashTable`]), residual predicates run on a virtual
//! merge of the probe row and the candidate (rejected candidates are never
//! materialized), and surviving merges write straight into the output
//! batch. Builds of at most [`TINY_BUILD_MAX`] rows skip the hash table
//! entirely and probe linearly — at that size the scan beats the hash.

use std::time::Instant;

use ojv_algebra::{JoinKind, Pred, TableId, TableSet};
use ojv_rel::{alloc_snapshot, key_eq_rows, key_hash_with, Datum, Row, RowBuf};
use ojv_storage::Table;

use crate::eval::{eval_pred_merged, eval_pred_split_ref};
use crate::hashtbl::{KeyHashTable, KeySet};
use crate::layout::ViewLayout;
use crate::parallel::{map_morsels, ExecEnv};

/// Largest build side for which [`hash_join_buf`] probes linearly instead of
/// building a hash table.
pub const TINY_BUILD_MAX: usize = 4;

/// Merge a right wide row into a left wide row: copy the slots of all
/// tables in `right_sources` (the two source sets are disjoint).
pub fn merge_rows(layout: &ViewLayout, left: &Row, right: &Row, right_sources: TableSet) -> Row {
    let mut out = left.clone();
    for t in right_sources.iter() {
        let slot = layout.slot(t);
        out[slot.offset..slot.offset + slot.len]
            .clone_from_slice(&right[slot.offset..slot.offset + slot.len]);
    }
    out
}

/// Evaluate `residual` on the virtual merge of `left` and `right`'s source
/// slots; on success (and when `keep` is set — semi/anti joins only need the
/// verdict) append the merged row to `out`. Rejected candidates are never
/// materialized, so a failing probe costs no slot copies and no allocation.
#[inline]
fn try_merge(
    layout: &ViewLayout,
    out: &mut RowBuf,
    left: &[Datum],
    right: &[Datum],
    right_sources: TableSet,
    residual: &Pred,
    keep: bool,
) -> bool {
    if !eval_pred_merged(layout, residual, left, right, right_sources) {
        return false;
    }
    if keep {
        let n = out.len();
        out.push_row(left);
        let row = out.row_mut(n);
        for t in right_sources.iter() {
            let slot = layout.slot(t);
            row[slot.offset..slot.offset + slot.len]
                .clone_from_slice(&right[slot.offset..slot.offset + slot.len]);
        }
    }
    true
}

/// Hash (or nested-loop, when there is no equijoin conjunct) join of two
/// wide-row sets — legacy `Vec<Row>` entry point.
pub fn hash_join(
    layout: &ViewLayout,
    kind: JoinKind,
    pred: &Pred,
    left: Vec<Row>,
    right: Vec<Row>,
    left_sources: TableSet,
    right_sources: TableSet,
) -> Vec<Row> {
    hash_join_in(
        &ExecEnv::serial(layout),
        kind,
        pred,
        left,
        right,
        left_sources,
        right_sources,
    )
}

/// [`hash_join`] with a parallelism spec and counters — legacy `Vec<Row>`
/// entry point over [`hash_join_buf`].
pub fn hash_join_in(
    env: &ExecEnv<'_>,
    kind: JoinKind,
    pred: &Pred,
    left: Vec<Row>,
    right: Vec<Row>,
    left_sources: TableSet,
    right_sources: TableSet,
) -> Vec<Row> {
    let width = env.layout.width();
    hash_join_buf(
        env,
        kind,
        pred,
        RowBuf::from_rows(width, &left),
        RowBuf::from_rows(width, &right),
        left_sources,
        right_sources,
    )
    .into_rows()
}

/// Batch hash join. The probe runs one morsel of the left input per work
/// unit; per-morsel `(output, matched right indices)` pairs merge in morsel
/// order, so output order and content are identical to the serial path for
/// any thread count or morsel size. All [`JoinKind`]s are supported.
pub fn hash_join_buf(
    env: &ExecEnv<'_>,
    kind: JoinKind,
    pred: &Pred,
    left: RowBuf,
    right: RowBuf,
    left_sources: TableSet,
    right_sources: TableSet,
) -> RowBuf {
    let layout = env.layout;
    let (keys, residual) = pred.equi_split(left_sources, right_sources);
    if keys.is_empty() {
        return nested_loop_join_buf(env, kind, pred, left, right, right_sources);
    }
    let lcols: Vec<usize> = keys.iter().map(|(l, _)| layout.global(*l)).collect();
    let rcols: Vec<usize> = keys.iter().map(|(_, r)| layout.global(*r)).collect();
    hash_join_keyed_buf(
        env,
        kind,
        &residual,
        left,
        right,
        &lcols,
        &rcols,
        right_sources,
        TINY_BUILD_MAX,
    )
}

/// The keyed join body, parameterized on the tiny-build threshold so tests
/// can pin the linear-probe path against the hash path on the same input.
#[allow(clippy::too_many_arguments)]
pub(crate) fn hash_join_keyed_buf(
    env: &ExecEnv<'_>,
    kind: JoinKind,
    residual: &Pred,
    left: RowBuf,
    right: RowBuf,
    lcols: &[usize],
    rcols: &[usize],
    right_sources: TableSet,
    tiny_max: usize,
) -> RowBuf {
    let layout = env.layout;
    let keep_merged = !matches!(kind, JoinKind::LeftSemi | JoinKind::LeftAnti);

    let table = if right.len() > tiny_max {
        let build_start = Instant::now();
        let build_alloc = alloc_snapshot();
        let t = KeyHashTable::build(&right, rcols);
        env.record(
            |s| &s.join_build,
            right.len(),
            t.distinct_hashes(),
            1,
            build_start,
            build_alloc,
        );
        Some(t)
    } else {
        None
    };

    let probe_start = Instant::now();
    let probe_alloc = alloc_snapshot();
    let probe = |range: std::ops::Range<usize>| {
        let mut out = RowBuf::new(layout.width());
        let mut matched_right: Vec<u32> = Vec::new();
        for li in range {
            let l = left.row(li);
            let mut matched = false;
            match &table {
                Some(t) => {
                    for ri in t.candidates(l, lcols) {
                        let r = right.row(ri);
                        if !t.key_matches(r, l, lcols) {
                            continue;
                        }
                        if try_merge(layout, &mut out, l, r, right_sources, residual, keep_merged) {
                            matched = true;
                            matched_right.push(ri as u32);
                            if !keep_merged {
                                break;
                            }
                        }
                    }
                }
                None => {
                    // Tiny build: linear probe, same null-rejecting
                    // semantics and same ascending candidate order.
                    if !lcols.iter().any(|&c| l[c].is_null()) {
                        for ri in 0..right.len() {
                            let r = right.row(ri);
                            if rcols.iter().any(|&c| r[c].is_null())
                                || !key_eq_rows(l, lcols, r, rcols)
                            {
                                continue;
                            }
                            if try_merge(
                                layout,
                                &mut out,
                                l,
                                r,
                                right_sources,
                                residual,
                                keep_merged,
                            ) {
                                matched = true;
                                matched_right.push(ri as u32);
                                if !keep_merged {
                                    break;
                                }
                            }
                        }
                    }
                }
            }
            match kind {
                JoinKind::LeftOuter | JoinKind::FullOuter if !matched => out.push_row(l),
                JoinKind::LeftSemi if matched => out.push_row(l),
                JoinKind::LeftAnti if !matched => out.push_row(l),
                _ => {}
            }
        }
        (out, matched_right)
    };
    let morsels = map_morsels(env.spec, left.len(), probe);

    let n_morsels = morsels.len();
    let mut right_matched = vec![false; right.len()];
    let mut out = RowBuf::new(layout.width());
    for (rows, matched) in morsels {
        out.append(&rows);
        for ri in matched {
            right_matched[ri as usize] = true;
        }
    }
    if matches!(kind, JoinKind::RightOuter | JoinKind::FullOuter) {
        for (i, r) in right.iter().enumerate() {
            if !right_matched[i] {
                out.push_row(r);
            }
        }
    }
    env.record(
        |s| &s.join_probe,
        left.len(),
        out.len(),
        n_morsels,
        probe_start,
        probe_alloc,
    );
    out
}

fn nested_loop_join_buf(
    env: &ExecEnv<'_>,
    kind: JoinKind,
    pred: &Pred,
    left: RowBuf,
    right: RowBuf,
    right_sources: TableSet,
) -> RowBuf {
    let layout = env.layout;
    let keep_merged = !matches!(kind, JoinKind::LeftSemi | JoinKind::LeftAnti);
    let probe_start = Instant::now();
    let probe_alloc = alloc_snapshot();
    let probe = |range: std::ops::Range<usize>| {
        let mut out = RowBuf::new(layout.width());
        let mut matched_right: Vec<u32> = Vec::new();
        for li in range {
            let l = left.row(li);
            let mut matched = false;
            for ri in 0..right.len() {
                let r = right.row(ri);
                if try_merge(layout, &mut out, l, r, right_sources, pred, keep_merged) {
                    matched = true;
                    matched_right.push(ri as u32);
                    if !keep_merged {
                        break;
                    }
                }
            }
            match kind {
                JoinKind::LeftOuter | JoinKind::FullOuter if !matched => out.push_row(l),
                JoinKind::LeftSemi if matched => out.push_row(l),
                JoinKind::LeftAnti if !matched => out.push_row(l),
                _ => {}
            }
        }
        (out, matched_right)
    };
    let morsels = map_morsels(env.spec, left.len(), probe);

    let n_morsels = morsels.len();
    let mut right_matched = vec![false; right.len()];
    let mut out = RowBuf::new(layout.width());
    for (rows, matched) in morsels {
        out.append(&rows);
        for ri in matched {
            right_matched[ri as usize] = true;
        }
    }
    if matches!(kind, JoinKind::RightOuter | JoinKind::FullOuter) {
        for (i, r) in right.iter().enumerate() {
            if !right_matched[i] {
                out.push_row(r);
            }
        }
    }
    env.record(
        |s| &s.join_probe,
        left.len(),
        out.len(),
        n_morsels,
        probe_start,
        probe_alloc,
    );
    out
}

/// Hash join whose right operand is an **un-widened base-table scan**: the
/// build indexes the table's narrow rows in place (no per-row widening, no
/// key copies), and only emitted rows are widened into the output batch.
///
/// `keep` masks rows surviving a pushed-down scan predicate and/or delta
/// exclusion; masked-out rows neither match nor surface as unmatched
/// right-outer rows. `residual` runs on merged wide rows. Output is
/// bit-identical to widening the whole table and hash-joining it.
#[allow(clippy::too_many_arguments)]
pub fn narrow_build_join_buf(
    env: &ExecEnv<'_>,
    kind: JoinKind,
    left: RowBuf,
    lcols: &[usize],
    table: &Table,
    right_id: TableId,
    rcols_local: &[usize],
    keep: Option<&[bool]>,
    residual: &Pred,
) -> RowBuf {
    let layout = env.layout;
    let keep_merged = !matches!(kind, JoinKind::LeftSemi | JoinKind::LeftAnti);
    let (offset, slot_len) = {
        let slot = layout.slot(right_id);
        (slot.offset, slot.len)
    };
    let build_start = Instant::now();
    let build_alloc = alloc_snapshot();
    let hashes: Vec<Option<u64>> = table
        .iter_refs()
        .enumerate()
        .map(|(i, r)| {
            if keep.is_some_and(|k| !k[i]) || rcols_local.iter().any(|&c| r.is_null(c)) {
                None
            } else {
                Some(key_hash_with(rcols_local, |c| r.dat(c)))
            }
        })
        .collect();
    let hash_table = KeyHashTable::from_hashes(&hashes, rcols_local);
    env.record(
        |s| &s.join_build,
        table.len(),
        hash_table.distinct_hashes(),
        1,
        build_start,
        build_alloc,
    );

    let probe_start = Instant::now();
    let probe_alloc = alloc_snapshot();
    let probe = |range: std::ops::Range<usize>| {
        let mut out = RowBuf::new(layout.width());
        let mut matched_right: Vec<u32> = Vec::new();
        for li in range {
            let l = left.row(li);
            let mut matched = false;
            for ri in hash_table.candidates(l, lcols) {
                let r = table.row_ref(ri);
                if !hash_table.key_matches_ref(r, l, lcols)
                    || !eval_pred_split_ref(layout, residual, l, r, offset)
                {
                    continue;
                }
                matched = true;
                matched_right.push(ri as u32);
                if !keep_merged {
                    break;
                }
                let n = out.len();
                out.push_row(l);
                r.copy_into(&mut out.row_mut(n)[offset..offset + slot_len]);
            }
            match kind {
                JoinKind::LeftOuter | JoinKind::FullOuter if !matched => out.push_row(l),
                JoinKind::LeftSemi if matched => out.push_row(l),
                JoinKind::LeftAnti if !matched => out.push_row(l),
                _ => {}
            }
        }
        (out, matched_right)
    };
    let morsels = map_morsels(env.spec, left.len(), probe);

    let n_morsels = morsels.len();
    let mut right_matched = vec![false; table.len()];
    let mut out = RowBuf::new(layout.width());
    for (rows, matched) in morsels {
        out.append(&rows);
        for ri in matched {
            right_matched[ri as usize] = true;
        }
    }
    if matches!(kind, JoinKind::RightOuter | JoinKind::FullOuter) {
        for (i, r) in table.iter_refs().enumerate() {
            if keep.is_some_and(|k| !k[i]) || right_matched[i] {
                continue;
            }
            layout.widen_ref_into(right_id, r, &mut out);
        }
    }
    env.record(
        |s| &s.join_probe,
        left.len(),
        out.len(),
        n_morsels,
        probe_start,
        probe_alloc,
    );
    out
}

/// Index-nested-loop join against a base table.
///
/// The right operand is the base table `table` at view position `right_id`;
/// `keys` pairs wide-row probe columns on the left with *local* (base-table)
/// columns on the right, which must be covered by `index_perm` (the result of
/// [`Table::index_on`]). `residual` runs on the merged wide row and may
/// reference right columns (e.g. a pushed-down selection on the right table).
///
/// Supports `Inner`, `LeftOuter`, `LeftSemi`, and `LeftAnti` — the kinds the
/// maintenance spine produces; right-preserving joins need the hash path.
#[allow(clippy::too_many_arguments)]
pub fn index_join(
    layout: &ViewLayout,
    kind: JoinKind,
    left: Vec<Row>,
    probe_cols: &[usize],
    table: &Table,
    right_id: TableId,
    index: ojv_storage::IndexRef,
    index_perm: &[usize],
    residual: &Pred,
) -> Vec<Row> {
    index_join_excluding(
        layout, kind, left, probe_cols, table, right_id, index, index_perm, residual, None,
    )
}

/// [`index_join`] with an optional set of excluded right-side unique keys —
/// used to probe the *pre-update* state of the delta table (`Expr::OldState`,
/// §5.3) without materializing it: matches whose key is in `exclude` are
/// skipped.
#[allow(clippy::too_many_arguments)]
pub fn index_join_excluding(
    layout: &ViewLayout,
    kind: JoinKind,
    left: Vec<Row>,
    probe_cols: &[usize],
    table: &Table,
    right_id: TableId,
    index: ojv_storage::IndexRef,
    index_perm: &[usize],
    residual: &Pred,
    exclude: Option<&KeySet>,
) -> Vec<Row> {
    index_join_excluding_buf(
        &ExecEnv::serial(layout),
        kind,
        RowBuf::from_rows(layout.width(), &left),
        probe_cols,
        table,
        right_id,
        index,
        index_perm,
        residual,
        exclude,
    )
    .into_rows()
}

/// Batch index-nested-loop join with a parallelism spec and counters: left
/// morsels probe the index concurrently (the base table is read-only), and
/// outputs concatenate in morsel order. The per-morsel probe buffer is
/// reused across rows and exclusion checks borrow the candidate row — the
/// loop performs no heap allocation per probe.
#[allow(clippy::too_many_arguments)]
pub fn index_join_excluding_buf(
    env: &ExecEnv<'_>,
    kind: JoinKind,
    left: RowBuf,
    probe_cols: &[usize],
    table: &Table,
    right_id: TableId,
    index: ojv_storage::IndexRef,
    index_perm: &[usize],
    residual: &Pred,
    exclude: Option<&KeySet>,
) -> RowBuf {
    assert!(
        matches!(
            kind,
            JoinKind::Inner | JoinKind::LeftOuter | JoinKind::LeftSemi | JoinKind::LeftAnti
        ),
        "index join does not support right-preserving kinds"
    );
    let layout = env.layout;
    let key_cols = table.key_cols();
    let keep_merged = !matches!(kind, JoinKind::LeftSemi | JoinKind::LeftAnti);
    let (offset, slot_len) = {
        let slot = layout.slot(right_id);
        (slot.offset, slot.len)
    };
    let started = Instant::now();
    let alloc0 = alloc_snapshot();
    let probe_morsel = |range: std::ops::Range<usize>| {
        let mut out = RowBuf::new(layout.width());
        let mut probe = vec![Datum::Null; probe_cols.len()];
        for li in range {
            let l = left.row(li);
            let mut matched = false;
            let any_null = probe_cols.iter().any(|&c| l[c].is_null());
            if !any_null {
                for (slot, &perm) in probe.iter_mut().zip(index_perm) {
                    *slot = l[probe_cols[perm]].clone();
                }
                for r in table.index_lookup(index, &probe) {
                    if let Some(ex) = exclude {
                        if ex.contains_ref(r, key_cols) {
                            continue;
                        }
                    }
                    if !eval_pred_split_ref(layout, residual, l, r, offset) {
                        continue;
                    }
                    matched = true;
                    if !keep_merged {
                        break;
                    }
                    let n = out.len();
                    out.push_row(l);
                    r.copy_into(&mut out.row_mut(n)[offset..offset + slot_len]);
                }
            }
            match kind {
                JoinKind::LeftOuter if !matched => out.push_row(l),
                JoinKind::LeftSemi if matched => out.push_row(l),
                JoinKind::LeftAnti if !matched => out.push_row(l),
                _ => {}
            }
        }
        out
    };
    let n_left = left.len();
    let morsels = map_morsels(env.spec, n_left, probe_morsel);
    let n_morsels = morsels.len();
    let mut out = RowBuf::new(layout.width());
    for m in morsels {
        out.append(&m);
    }
    env.record(
        |s| &s.index_join,
        n_left,
        out.len(),
        n_morsels,
        started,
        alloc0,
    );
    out
}

/// Index-nested-loop join whose **left side is still narrow** — the shape of
/// the maintenance spine's first join, `ΔT ⋈ X`: delta rows probe the base
/// table's index directly, and only rows that survive the residual are
/// widened into the output batch. Skipping the up-front widening of the
/// whole delta matters because most delta rows are rejected by the view's
/// selective predicates (folded into `residual`) — those rows are never
/// materialized at view width at all.
///
/// `probe_local` are *left-local* column indices (the delta rows are base
/// rows of `left_id`); everything else matches
/// [`index_join_excluding_buf`]. Output is bit-identical to widening the
/// delta first and running the wide-probe index join.
#[allow(clippy::too_many_arguments)]
pub fn index_join_narrow_left_buf(
    env: &ExecEnv<'_>,
    kind: JoinKind,
    left_rows: &[Row],
    left_id: TableId,
    probe_local: &[usize],
    table: &Table,
    right_id: TableId,
    index: ojv_storage::IndexRef,
    index_perm: &[usize],
    residual: &Pred,
    exclude: Option<&KeySet>,
) -> RowBuf {
    assert!(
        matches!(
            kind,
            JoinKind::Inner | JoinKind::LeftOuter | JoinKind::LeftSemi | JoinKind::LeftAnti
        ),
        "index join does not support right-preserving kinds"
    );
    let layout = env.layout;
    let key_cols = table.key_cols();
    let keep_merged = !matches!(kind, JoinKind::LeftSemi | JoinKind::LeftAnti);
    let (loffset, llen) = {
        let slot = layout.slot(left_id);
        (slot.offset, slot.len)
    };
    let (roffset, rlen) = {
        let slot = layout.slot(right_id);
        (slot.offset, slot.len)
    };
    let started = Instant::now();
    let alloc0 = alloc_snapshot();
    let probe_morsel = |range: std::ops::Range<usize>| {
        let mut out = RowBuf::new(layout.width());
        let mut probe = vec![Datum::Null; probe_local.len()];
        for l in &left_rows[range] {
            let mut matched = false;
            let any_null = probe_local.iter().any(|&c| l[c].is_null());
            if !any_null {
                for (slot, &perm) in probe.iter_mut().zip(index_perm) {
                    *slot = l[probe_local[perm]].clone();
                }
                for r in table.index_lookup(index, &probe) {
                    if let Some(ex) = exclude {
                        if ex.contains_ref(r, key_cols) {
                            continue;
                        }
                    }
                    if !crate::eval::eval_pred_two_narrow_ref(residual, left_id, l, right_id, r) {
                        continue;
                    }
                    matched = true;
                    if !keep_merged {
                        break;
                    }
                    let n = out.len();
                    let row = out.push_null_row();
                    row[loffset..loffset + llen].clone_from_slice(l);
                    r.copy_into(&mut row[roffset..roffset + rlen]);
                    debug_assert_eq!(out.len(), n + 1);
                }
            }
            match kind {
                JoinKind::LeftOuter if !matched => layout.widen_into(left_id, l, &mut out),
                JoinKind::LeftSemi if matched => layout.widen_into(left_id, l, &mut out),
                JoinKind::LeftAnti if !matched => layout.widen_into(left_id, l, &mut out),
                _ => {}
            }
        }
        out
    };
    let n_left = left_rows.len();
    let morsels = map_morsels(env.spec, n_left, probe_morsel);
    let n_morsels = morsels.len();
    let mut out = RowBuf::new(layout.width());
    for m in morsels {
        out.append(&m);
    }
    env.record(
        |s| &s.index_join,
        n_left,
        out.len(),
        n_morsels,
        started,
        alloc0,
    );
    out
}

/// Key-based semi/anti join: keep (or drop) left rows whose key at
/// `left_cols` appears among the right rows' keys at `right_cols`.
///
/// This implements the paper's `⋉ls_{eq(T_i)}` and `▷la_{eq(T_i)}` operators
/// from the secondary-delta expressions (§5.2). Rows whose key contains a
/// null never match (the equijoin is null-rejecting).
pub fn semi_anti_by_key(
    left: Vec<Row>,
    left_cols: &[usize],
    right: &[Row],
    right_cols: &[usize],
    anti: bool,
) -> Vec<Row> {
    if left.is_empty() {
        return left;
    }
    let width = left[0].len();
    semi_anti_by_key_buf(
        RowBuf::from_rows(width, &left),
        left_cols,
        right.iter().map(|r| r.as_slice()),
        right_cols,
        anti,
    )
    .into_rows()
}

/// Batch form of [`semi_anti_by_key`]: builds a borrowed-key [`KeySet`] over
/// the right keys and filters the left batch in place — no per-row key
/// vectors on either side.
pub fn semi_anti_by_key_buf<'r>(
    mut left: RowBuf,
    left_cols: &[usize],
    right: impl Iterator<Item = &'r [Datum]>,
    right_cols: &[usize],
    anti: bool,
) -> RowBuf {
    let keys = KeySet::build(right, right_cols);
    let keep: Vec<bool> = left
        .iter()
        .map(|l| keys.contains(l, left_cols) != anti)
        .collect();
    left.retain_rows(&keep);
    left
}

#[cfg(test)]
mod tests {
    use super::*;
    use ojv_algebra::{Atom, CmpOp, ColRef};
    use ojv_rel::{Column, DataType};
    use ojv_storage::Catalog;

    /// Two tables: a(id, x), b(id, aid, y). View order [a, b].
    fn setup() -> (Catalog, ViewLayout) {
        let mut c = Catalog::new();
        c.create_table(
            "a",
            vec![
                Column::new("a", "id", DataType::Int, false),
                Column::new("a", "x", DataType::Int, true),
            ],
            &["id"],
        )
        .unwrap();
        c.create_table(
            "b",
            vec![
                Column::new("b", "id", DataType::Int, false),
                Column::new("b", "aid", DataType::Int, false),
                Column::new("b", "y", DataType::Int, true),
            ],
            &["id"],
        )
        .unwrap();
        let l = ViewLayout::new(&c, &["a", "b"]).unwrap();
        (c, l)
    }

    fn a_rows(l: &ViewLayout, ids: &[i64]) -> Vec<Row> {
        ids.iter()
            .map(|&i| l.widen(TableId(0), &[Datum::Int(i), Datum::Int(i * 10)]))
            .collect()
    }

    /// b rows as (id, aid).
    fn b_rows(l: &ViewLayout, rows: &[(i64, i64)]) -> Vec<Row> {
        rows.iter()
            .map(|&(id, aid)| {
                l.widen(
                    TableId(1),
                    &[Datum::Int(id), Datum::Int(aid), Datum::Int(0)],
                )
            })
            .collect()
    }

    fn join_pred() -> Pred {
        Pred::atom(Atom::eq(
            ColRef::new(TableId(0), 0),
            ColRef::new(TableId(1), 1),
        ))
    }

    fn run(kind: JoinKind, left: Vec<Row>, right: Vec<Row>, l: &ViewLayout) -> Vec<Row> {
        hash_join(
            l,
            kind,
            &join_pred(),
            left,
            right,
            TableSet::singleton(TableId(0)),
            TableSet::singleton(TableId(1)),
        )
    }

    #[test]
    fn inner_join_matches() {
        let (_c, l) = setup();
        let out = run(
            JoinKind::Inner,
            a_rows(&l, &[1, 2, 3]),
            b_rows(&l, &[(10, 1), (11, 1), (12, 9)]),
            &l,
        );
        assert_eq!(out.len(), 2);
        for r in &out {
            assert_eq!(r[0], Datum::Int(1));
            assert!(!l.is_null_on(TableId(1), r));
        }
    }

    #[test]
    fn left_outer_preserves_left() {
        let (_c, l) = setup();
        let out = run(
            JoinKind::LeftOuter,
            a_rows(&l, &[1, 2]),
            b_rows(&l, &[(10, 1)]),
            &l,
        );
        assert_eq!(out.len(), 2);
        let unmatched: Vec<_> = out.iter().filter(|r| l.is_null_on(TableId(1), r)).collect();
        assert_eq!(unmatched.len(), 1);
        assert_eq!(unmatched[0][0], Datum::Int(2));
    }

    #[test]
    fn right_outer_preserves_right() {
        let (_c, l) = setup();
        let out = run(
            JoinKind::RightOuter,
            a_rows(&l, &[1]),
            b_rows(&l, &[(10, 1), (11, 7)]),
            &l,
        );
        assert_eq!(out.len(), 2);
        let unmatched: Vec<_> = out.iter().filter(|r| l.is_null_on(TableId(0), r)).collect();
        assert_eq!(unmatched.len(), 1);
        assert_eq!(unmatched[0][2], Datum::Int(11));
    }

    #[test]
    fn full_outer_preserves_both() {
        let (_c, l) = setup();
        let out = run(
            JoinKind::FullOuter,
            a_rows(&l, &[1, 2]),
            b_rows(&l, &[(10, 1), (11, 7)]),
            &l,
        );
        // 1 match + 1 unmatched left + 1 unmatched right.
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn semi_and_anti_joins() {
        let (_c, l) = setup();
        let semi = run(
            JoinKind::LeftSemi,
            a_rows(&l, &[1, 2]),
            b_rows(&l, &[(10, 1), (11, 1)]),
            &l,
        );
        assert_eq!(semi.len(), 1);
        assert_eq!(semi[0][0], Datum::Int(1));
        // Semi join never duplicates.
        let anti = run(
            JoinKind::LeftAnti,
            a_rows(&l, &[1, 2]),
            b_rows(&l, &[(10, 1), (11, 1)]),
            &l,
        );
        assert_eq!(anti.len(), 1);
        assert_eq!(anti[0][0], Datum::Int(2));
    }

    #[test]
    fn null_keys_never_match() {
        let (_c, l) = setup();
        // A b-row null-extended on a (null aid is impossible in base data,
        // but a null-extended wide row probes with null).
        let mut left = a_rows(&l, &[1]);
        l.null_out(TableSet::singleton(TableId(0)), &mut left[0]);
        let out = run(JoinKind::Inner, left, b_rows(&l, &[(10, 1)]), &l);
        assert!(out.is_empty());
    }

    #[test]
    fn residual_predicate_applies_after_key_match() {
        let (_c, l) = setup();
        let pred = join_pred().and(&Pred::atom(Atom::Const(
            ColRef::new(TableId(1), 0),
            CmpOp::Gt,
            Datum::Int(10),
        )));
        let out = hash_join(
            &l,
            JoinKind::Inner,
            &pred,
            a_rows(&l, &[1]),
            b_rows(&l, &[(10, 1), (11, 1)]),
            TableSet::singleton(TableId(0)),
            TableSet::singleton(TableId(1)),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0][2], Datum::Int(11));
    }

    #[test]
    fn nested_loop_fallback_without_equijoin() {
        let (_c, l) = setup();
        let pred = Pred::atom(Atom::Cols(
            ColRef::new(TableId(0), 0),
            CmpOp::Lt,
            ColRef::new(TableId(1), 1),
        ));
        let out = hash_join(
            &l,
            JoinKind::Inner,
            &pred,
            a_rows(&l, &[1, 5]),
            b_rows(&l, &[(10, 3)]),
            TableSet::singleton(TableId(0)),
            TableSet::singleton(TableId(1)),
        );
        // a.id < b.aid: only a(1) < 3.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0][0], Datum::Int(1));
    }

    /// The tiny-build linear probe must be indistinguishable from the hash
    /// path — same rows, same order — for every join kind, including inputs
    /// with duplicate keys, null keys, and a residual predicate.
    #[test]
    fn tiny_build_pins_hash_path_output() {
        let (_c, l) = setup();
        let mut left = a_rows(&l, &[1, 2, 3, 1]);
        l.null_out(TableSet::singleton(TableId(0)), &mut left[2]);
        let right = b_rows(&l, &[(10, 1), (11, 2), (12, 1), (13, 9)]);
        assert!(right.len() <= TINY_BUILD_MAX);
        let residual = Pred::atom(Atom::Const(
            ColRef::new(TableId(1), 0),
            CmpOp::Gt,
            Datum::Int(9),
        ));
        let (keys, _) = join_pred().equi_split(
            TableSet::singleton(TableId(0)),
            TableSet::singleton(TableId(1)),
        );
        let lcols: Vec<usize> = keys.iter().map(|(a, _)| l.global(*a)).collect();
        let rcols: Vec<usize> = keys.iter().map(|(_, b)| l.global(*b)).collect();
        for kind in [
            JoinKind::Inner,
            JoinKind::LeftOuter,
            JoinKind::RightOuter,
            JoinKind::FullOuter,
            JoinKind::LeftSemi,
            JoinKind::LeftAnti,
        ] {
            let env = ExecEnv::serial(&l);
            let tiny = hash_join_keyed_buf(
                &env,
                kind,
                &residual,
                RowBuf::from_rows(l.width(), &left),
                RowBuf::from_rows(l.width(), &right),
                &lcols,
                &rcols,
                TableSet::singleton(TableId(1)),
                TINY_BUILD_MAX, // linear probe fires: right.len() <= 4
            );
            let hashed = hash_join_keyed_buf(
                &env,
                kind,
                &residual,
                RowBuf::from_rows(l.width(), &left),
                RowBuf::from_rows(l.width(), &right),
                &lcols,
                &rcols,
                TableSet::singleton(TableId(1)),
                0, // force the hash table
            );
            assert_eq!(tiny, hashed, "{kind:?}");
        }
    }

    /// The narrow-build path (hash table over un-widened base rows) must
    /// match widening the table first and hash-joining.
    #[test]
    fn narrow_build_matches_widened_hash_join() {
        let (mut c, l) = setup();
        let b_data: Vec<Row> = (0..20)
            .map(|i| vec![Datum::Int(100 + i), Datum::Int(i % 5), Datum::Int(0)])
            .collect();
        c.insert("b", b_data.clone()).unwrap();
        let table = c.table("b").unwrap();
        let left = a_rows(&l, &[0, 1, 2, 9]);
        let keep: Vec<bool> = b_data.iter().map(|r| r[0] != Datum::Int(103)).collect();
        for kind in [
            JoinKind::Inner,
            JoinKind::LeftOuter,
            JoinKind::RightOuter,
            JoinKind::FullOuter,
            JoinKind::LeftSemi,
            JoinKind::LeftAnti,
        ] {
            let env = ExecEnv::serial(&l);
            let narrow = narrow_build_join_buf(
                &env,
                kind,
                RowBuf::from_rows(l.width(), &left),
                &[0], // a.id (global)
                table,
                TableId(1),
                &[1], // b.aid (local)
                Some(&keep),
                &Pred::true_(),
            );
            // Reference: widen + filter + hash join.
            let wide_right: Vec<Row> = b_data
                .iter()
                .zip(&keep)
                .filter(|(_, &k)| k)
                .map(|(r, _)| l.widen(TableId(1), r))
                .collect();
            let reference = hash_join(
                &l,
                kind,
                &join_pred(),
                left.clone(),
                wide_right,
                TableSet::singleton(TableId(0)),
                TableSet::singleton(TableId(1)),
            );
            assert_eq!(narrow.into_rows(), reference, "{kind:?}");
        }
    }

    #[test]
    fn index_join_against_base_table() {
        let (mut c, l) = setup();
        c.insert(
            "b",
            vec![
                vec![Datum::Int(10), Datum::Int(1), Datum::Int(0)],
                vec![Datum::Int(11), Datum::Int(1), Datum::Int(0)],
            ],
        )
        .unwrap();
        let table = c.table("b").unwrap();
        // Probe on b.id (the unique key) using a.x column? Use aid via b's
        // unique key is id; probe a.id against b.id here for the test.
        let (index, perm) = table.index_on(&[0]).unwrap();
        let out = index_join(
            &l,
            JoinKind::LeftOuter,
            a_rows(&l, &[10, 99]),
            &[0], // wide col 0 = a.id
            table,
            TableId(1),
            index,
            &perm,
            &Pred::true_(),
        );
        assert_eq!(out.len(), 2);
        let matched: Vec<_> = out
            .iter()
            .filter(|r| !l.is_null_on(TableId(1), r))
            .collect();
        assert_eq!(matched.len(), 1);
        assert_eq!(matched[0][0], Datum::Int(10));
    }

    #[test]
    fn semi_anti_by_key_basics() {
        let (_c, l) = setup();
        let left = a_rows(&l, &[1, 2, 3]);
        let right = a_rows(&l, &[2, 3, 4]);
        let semi = semi_anti_by_key(left.clone(), &[0], &right, &[0], false);
        assert_eq!(semi.len(), 2);
        let anti = semi_anti_by_key(left, &[0], &right, &[0], true);
        assert_eq!(anti.len(), 1);
        assert_eq!(anti[0][0], Datum::Int(1));
    }
}
