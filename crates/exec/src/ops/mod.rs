//! Physical operators over wide rows.

pub mod agg;
pub mod dedup;
pub mod filter;
pub mod join;

pub use agg::{hash_aggregate, AggFunc};
pub use dedup::{clean_dup, distinct};
pub use filter::filter;
pub use join::{hash_join, index_join, index_join_excluding, merge_rows, semi_anti_by_key};
