//! Physical operators over wide rows.

pub mod agg;
pub mod dedup;
pub mod filter;
pub mod join;

pub use agg::{hash_aggregate, AggFunc};
pub use dedup::{clean_dup, clean_dup_buf, clean_dup_in, distinct, distinct_in};
pub use filter::{filter, filter_buf, filter_in};
pub use join::{
    hash_join, hash_join_buf, hash_join_in, index_join, index_join_excluding,
    index_join_excluding_buf, index_join_narrow_left_buf, merge_rows, narrow_build_join_buf,
    semi_anti_by_key, semi_anti_by_key_buf, TINY_BUILD_MAX,
};
