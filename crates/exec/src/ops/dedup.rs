//! Duplicate elimination and the null-if cleanup operator.
//!
//! Both operators run hash-then-verify over flat [`RowBuf`] batches: rows
//! are hashed in place with the deterministic fx hasher, equality is
//! verified on borrowed slices, and survivors are compacted in place — no
//! owned key vectors, no per-row `HashSet` entries.

use std::time::Instant;

use ojv_rel::{
    alloc_snapshot, fx_map_with_capacity, key_eq_rows, key_hash, Datum, FxHashMap, Row, RowBuf,
};

use crate::layout::ViewLayout;
use crate::morsel::ParallelSpec;
use crate::parallel::{map_morsels, map_parts, ExecEnv};

/// Plain duplicate elimination (`δ`), preserving first occurrence order.
pub fn distinct(rows: Vec<Row>) -> Vec<Row> {
    if rows.is_empty() {
        return rows;
    }
    let width = rows[0].len();
    let mut buf = RowBuf::from_rows(width, &rows);
    let all_cols: Vec<usize> = (0..width).collect();
    let hashes = row_hashes(ParallelSpec::serial(), &buf, &all_cols);
    let mut keep = vec![false; buf.len()];
    mark_first_occurrences(&buf, &all_cols, &hashes, |_| true, &mut keep);
    buf.retain_rows(&keep);
    buf.into_rows()
}

/// [`distinct`] over a batch, with a parallelism spec and counters.
///
/// The parallel path hash-partitions rows (`hash % threads`); each partition
/// worker scans *all* row indices in increasing order, keeping only its
/// partition's first occurrences. Equal rows hash alike and so land in the
/// same partition, where first-occurrence-by-index exactly reproduces the
/// serial scan — the kept index set is independent of the partition count.
/// Kept rows are then compacted in input order.
pub fn distinct_in(env: &ExecEnv<'_>, mut rows: RowBuf) -> RowBuf {
    let started = Instant::now();
    let alloc0 = alloc_snapshot();
    let n_in = rows.len();
    let all_cols: Vec<usize> = (0..rows.width()).collect();
    let hashes = row_hashes(env.spec, &rows, &all_cols);

    let (keep, nparts) = if !env.spec.is_parallel_for(rows.len()) {
        let mut keep = vec![false; rows.len()];
        mark_first_occurrences(&rows, &all_cols, &hashes, |_| true, &mut keep);
        (keep, 1)
    } else {
        let nparts = env.spec.threads;
        let keep_per_part = map_parts(env.spec, nparts, |p| {
            let mut keep = vec![false; rows.len()];
            mark_first_occurrences(
                &rows,
                &all_cols,
                &hashes,
                |i| hashes[i] % nparts as u64 == p as u64,
                &mut keep,
            );
            keep
        });
        let mut keep = vec![false; rows.len()];
        for part in keep_per_part {
            for (k, p) in keep.iter_mut().zip(part) {
                *k |= p;
            }
        }
        (keep, nparts)
    };
    rows.retain_rows(&keep);
    env.record(|s| &s.dedup, n_in, rows.len(), nparts, started, alloc0);
    rows
}

/// Scan rows in increasing index order and mark the first occurrence of
/// every distinct row matched by `mine` — chained hash-then-verify, no owned
/// keys.
fn mark_first_occurrences(
    rows: &RowBuf,
    cols: &[usize],
    hashes: &[u64],
    mine: impl Fn(usize) -> bool,
    keep: &mut [bool],
) {
    const NIL: u32 = u32::MAX;
    let mut head: FxHashMap<u64, u32> = FxHashMap::default();
    let mut next = vec![NIL; rows.len()];
    'rows: for i in 0..rows.len() {
        if !mine(i) {
            continue;
        }
        let slot = head.entry(hashes[i]).or_insert(NIL);
        let mut cur = *slot;
        while cur != NIL {
            if key_eq_rows(rows.row(i), cols, rows.row(cur as usize), cols) {
                continue 'rows; // duplicate of an earlier row
            }
            cur = next[cur as usize];
        }
        next[i] = *slot;
        *slot = i as u32;
        keep[i] = true;
    }
}

/// Deterministic per-row hashes over `cols`, computed morsel-parallel with
/// the seeded fx hasher — stable across runs and thread counts.
fn row_hashes(spec: ParallelSpec, rows: &RowBuf, cols: &[usize]) -> Vec<u64> {
    map_morsels(spec, rows.len(), |range| {
        range
            .map(|i| key_hash(rows.row(i), cols))
            .collect::<Vec<u64>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// The cleanup paired with a null-if operator (§4.1): remove exact
/// duplicates **and** rows subsumed by another row in the input.
///
/// Wide rows produced by delta expressions are *table-granular*: a table's
/// slots either hold a complete base row or are entirely null, and a table's
/// slot content is determined by its key. Subsumption therefore reduces to:
/// row `r` is subsumed by `r'` iff `r'`'s source-table set strictly contains
/// `r`'s and the two agree on all of `r`'s source slots. That is what this
/// operator implements (grouping by source mask, then probing superset
/// masks), and it is exact for the well-formed rows the maintenance
/// expressions produce.
pub fn clean_dup(layout: &ViewLayout, rows: Vec<Row>) -> Vec<Row> {
    clean_dup_in(&ExecEnv::serial(layout), rows)
}

/// [`clean_dup`] with a parallelism spec and counters — legacy `Vec<Row>`
/// form over [`clean_dup_buf`].
pub fn clean_dup_in(env: &ExecEnv<'_>, rows: Vec<Row>) -> Vec<Row> {
    clean_dup_buf(env, RowBuf::from_rows(env.layout.width(), &rows)).into_rows()
}

/// Batch subsumption removal.
///
/// Source-mask computation is morsel-parallel; the subsumption check then
/// runs one work unit per distinct mask (each mask's verdicts depend only on
/// the grouped input, so partition order cannot change the result). Kept
/// rows are compacted in input order — identical to the serial path.
pub fn clean_dup_buf(env: &ExecEnv<'_>, rows: RowBuf) -> RowBuf {
    let mut rows = distinct_in(env, rows);
    let layout = env.layout;
    let n_tables = layout.table_count();
    let started = Instant::now();
    let alloc0 = alloc_snapshot();
    let n_in = rows.len();
    let mask_of = |r: &[Datum]| -> u32 {
        let mut m = 0u32;
        for i in 0..n_tables {
            if !layout.is_null_on(ojv_algebra::TableId(i as u8), r) {
                m |= 1 << i;
            }
        }
        m
    };
    // Columns of each mask = concatenated slots of its tables.
    let cols_of_mask = |m: u32| -> Vec<usize> {
        let mut cols = Vec::new();
        for i in 0..n_tables {
            if m & (1 << i) != 0 {
                let slot = layout.slot(ojv_algebra::TableId(i as u8));
                cols.extend(slot.offset..slot.offset + slot.len);
            }
        }
        cols
    };

    let masks: Vec<u32> = map_morsels(env.spec, rows.len(), |range| {
        range.map(|i| mask_of(rows.row(i))).collect::<Vec<u32>>()
    })
    .into_iter()
    .flatten()
    .collect();
    let mut by_mask: FxHashMap<u32, Vec<usize>> = FxHashMap::default();
    for (i, &m) in masks.iter().enumerate() {
        by_mask.entry(m).or_default().push(i);
    }
    let mut distinct_masks: Vec<u32> = by_mask.keys().copied().collect();
    distinct_masks.sort_unstable();

    let dropped_per_mask = map_parts(env.spec, distinct_masks.len(), |mi| {
        let m = distinct_masks[mi];
        let cols = cols_of_mask(m);
        // Hash-then-verify over projections of every superset-mask row onto
        // m's columns — the projections stay borrowed.
        let mut super_proj: FxHashMap<u64, Vec<u32>> = fx_map_with_capacity(8);
        for &m2 in &distinct_masks {
            if m2 != m && m2 & m == m {
                for &j in &by_mask[&m2] {
                    let h = key_hash(rows.row(j), &cols);
                    super_proj.entry(h).or_default().push(j as u32);
                }
            }
        }
        let mut dropped = Vec::new();
        if !super_proj.is_empty() {
            for &i in &by_mask[&m] {
                let h = key_hash(rows.row(i), &cols);
                let subsumed = super_proj.get(&h).is_some_and(|js| {
                    js.iter()
                        .any(|&j| key_eq_rows(rows.row(i), &cols, rows.row(j as usize), &cols))
                });
                if subsumed {
                    dropped.push(i);
                }
            }
        }
        dropped
    });

    let mut keep = vec![true; rows.len()];
    for dropped in dropped_per_mask {
        for i in dropped {
            keep[i] = false;
        }
    }
    rows.retain_rows(&keep);
    env.record(
        |s| &s.subsume,
        n_in,
        rows.len(),
        distinct_masks.len().max(1),
        started,
        alloc0,
    );
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use ojv_algebra::{TableId, TableSet};
    use ojv_rel::{Column, DataType};
    use ojv_storage::Catalog;

    fn layout() -> ViewLayout {
        let mut c = Catalog::new();
        for name in ["a", "b"] {
            c.create_table(
                name,
                vec![
                    Column::new(name, "id", DataType::Int, false),
                    Column::new(name, "v", DataType::Int, true),
                ],
                &["id"],
            )
            .unwrap();
        }
        ViewLayout::new(&c, &["a", "b"]).unwrap()
    }

    fn ab(l: &ViewLayout, a: i64, b: i64) -> Row {
        let mut r = l.widen(TableId(0), &[Datum::Int(a), Datum::Int(a)]);
        r[2] = Datum::Int(b);
        r[3] = Datum::Int(b);
        r
    }

    fn a_only(l: &ViewLayout, a: i64) -> Row {
        l.widen(TableId(0), &[Datum::Int(a), Datum::Int(a)])
    }

    #[test]
    fn distinct_removes_duplicates() {
        let l = layout();
        let rows = vec![a_only(&l, 1), a_only(&l, 1), a_only(&l, 2)];
        assert_eq!(distinct(rows).len(), 2);
    }

    #[test]
    fn distinct_parallel_matches_serial() {
        let l = layout();
        let rows: Vec<Row> = (0..200).map(|i| a_only(&l, i % 17)).collect();
        let serial = distinct(rows.clone());
        let spec = ParallelSpec::threads(4).with_morsel_rows(7).with_cutoff(0);
        let env = ExecEnv {
            layout: &l,
            spec,
            stats: None,
        };
        let parallel = distinct_in(&env, RowBuf::from_rows(l.width(), &rows)).into_rows();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn clean_dup_removes_subsumed_rows() {
        let l = layout();
        // (a=1,b=5) subsumes (a=1, b null); (a=2, null) survives.
        let rows = vec![ab(&l, 1, 5), a_only(&l, 1), a_only(&l, 2)];
        let out = clean_dup(&l, rows);
        assert_eq!(out.len(), 2);
        assert!(out.iter().any(|r| !l.is_null_on(TableId(1), r)));
        assert!(out
            .iter()
            .any(|r| r[0] == Datum::Int(2) && l.is_null_on(TableId(1), r)));
    }

    #[test]
    fn clean_dup_keeps_distinct_joined_rows() {
        let l = layout();
        let rows = vec![ab(&l, 1, 5), ab(&l, 1, 6)];
        assert_eq!(clean_dup(&l, rows).len(), 2);
    }

    #[test]
    fn clean_dup_collapses_duplicates_and_subsumed() {
        let l = layout();
        let rows = vec![a_only(&l, 1), a_only(&l, 1), ab(&l, 1, 5)];
        let out = clean_dup(&l, rows);
        assert_eq!(out.len(), 1);
        assert!(!l.is_null_on(TableId(1), &out[0]));
    }

    #[test]
    fn rows_with_different_keys_do_not_subsume() {
        let l = layout();
        let rows = vec![ab(&l, 1, 5), a_only(&l, 2)];
        assert_eq!(clean_dup(&l, rows).len(), 2);
    }

    #[test]
    fn empty_input() {
        let l = layout();
        assert!(clean_dup(&l, Vec::new()).is_empty());
        let _ = TableSet::EMPTY; // silence unused import in some cfgs
    }
}
