//! Duplicate elimination and the null-if cleanup operator.

use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::time::Instant;

use ojv_rel::{key_of, Datum, Row};

use crate::layout::ViewLayout;
use crate::morsel::ParallelSpec;
use crate::parallel::{map_morsels, map_parts, ExecEnv};

/// Plain duplicate elimination (`δ`), preserving first occurrence order.
pub fn distinct(rows: Vec<Row>) -> Vec<Row> {
    let mut seen: HashSet<Row> = HashSet::with_capacity(rows.len());
    let mut out = Vec::with_capacity(rows.len());
    for r in rows {
        if seen.insert(r.clone()) {
            out.push(r);
        }
    }
    out
}

/// [`distinct`] with a parallelism spec and counters.
///
/// The parallel path hash-partitions rows (`hash % threads`); each partition
/// worker scans *all* row indices in increasing order, keeping only its
/// partition's first occurrences. Equal rows hash alike and so land in the
/// same partition, where first-occurrence-by-index exactly reproduces the
/// serial scan — the kept index set is independent of the partition count.
/// Kept rows are then emitted in input order.
pub fn distinct_in(env: &ExecEnv<'_>, rows: Vec<Row>) -> Vec<Row> {
    let started = Instant::now();
    let n_in = rows.len();
    if !env.spec.is_parallel_for(rows.len()) {
        let out = distinct(rows);
        env.record(|s| &s.dedup, n_in, out.len(), 1, started);
        return out;
    }

    let hashes = row_hashes(env.spec, &rows);
    let nparts = env.spec.threads as u64;
    let kept_per_part = map_parts(env.spec, nparts as usize, |p| {
        let mut seen: HashSet<&Row> = HashSet::new();
        let mut kept = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            if hashes[i] % nparts == p as u64 && seen.insert(row) {
                kept.push(i);
            }
        }
        kept
    });
    let mut keep = vec![false; rows.len()];
    for kept in kept_per_part {
        for i in kept {
            keep[i] = true;
        }
    }
    let out: Vec<Row> = rows
        .into_iter()
        .zip(&keep)
        .filter_map(|(r, &k)| if k { Some(r) } else { None })
        .collect();
    env.record(|s| &s.dedup, n_in, out.len(), nparts as usize, started);
    out
}

/// Deterministic per-row hashes, computed morsel-parallel. `DefaultHasher`
/// with `new()` has fixed keys, so partition assignment is stable across
/// runs and thread counts.
fn row_hashes(spec: ParallelSpec, rows: &[Row]) -> Vec<u64> {
    map_morsels(spec, rows.len(), |range| {
        rows[range]
            .iter()
            .map(|r| {
                let mut h = std::collections::hash_map::DefaultHasher::new();
                r.hash(&mut h);
                h.finish()
            })
            .collect::<Vec<u64>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// The cleanup paired with a null-if operator (§4.1): remove exact
/// duplicates **and** rows subsumed by another row in the input.
///
/// Wide rows produced by delta expressions are *table-granular*: a table's
/// slots either hold a complete base row or are entirely null, and a table's
/// slot content is determined by its key. Subsumption therefore reduces to:
/// row `r` is subsumed by `r'` iff `r'`'s source-table set strictly contains
/// `r`'s and the two agree on all of `r`'s source slots. That is what this
/// operator implements (grouping by source mask, then probing superset
/// masks), and it is exact for the well-formed rows the maintenance
/// expressions produce.
pub fn clean_dup(layout: &ViewLayout, rows: Vec<Row>) -> Vec<Row> {
    clean_dup_in(&ExecEnv::serial(layout), rows)
}

/// [`clean_dup`] with a parallelism spec and counters.
///
/// Source-mask computation is morsel-parallel; the subsumption check then
/// runs one work unit per distinct mask (each mask's verdicts depend only on
/// the grouped input, so partition order cannot change the result). Kept
/// rows are emitted in input order — identical to the serial path.
pub fn clean_dup_in(env: &ExecEnv<'_>, rows: Vec<Row>) -> Vec<Row> {
    let rows = distinct_in(env, rows);
    let layout = env.layout;
    let n_tables = layout.table_count();
    let started = Instant::now();
    let n_in = rows.len();
    let mask_of = |r: &Row| -> u32 {
        let mut m = 0u32;
        for i in 0..n_tables {
            if !layout.is_null_on(ojv_algebra::TableId(i as u8), r) {
                m |= 1 << i;
            }
        }
        m
    };
    // Columns of each mask = concatenated slots of its tables.
    let cols_of_mask = |m: u32| -> Vec<usize> {
        let mut cols = Vec::new();
        for i in 0..n_tables {
            if m & (1 << i) != 0 {
                let slot = layout.slot(ojv_algebra::TableId(i as u8));
                cols.extend(slot.offset..slot.offset + slot.len);
            }
        }
        cols
    };

    let masks: Vec<u32> = map_morsels(env.spec, rows.len(), |range| {
        rows[range].iter().map(mask_of).collect::<Vec<u32>>()
    })
    .into_iter()
    .flatten()
    .collect();
    let mut by_mask: HashMap<u32, Vec<usize>> = HashMap::new();
    for (i, &m) in masks.iter().enumerate() {
        by_mask.entry(m).or_default().push(i);
    }
    let mut distinct_masks: Vec<u32> = by_mask.keys().copied().collect();
    distinct_masks.sort_unstable();

    let dropped_per_mask = map_parts(env.spec, distinct_masks.len(), |mi| {
        let m = distinct_masks[mi];
        let cols = cols_of_mask(m);
        // Projections of every superset-mask row onto m's columns.
        let mut super_proj: HashSet<Vec<Datum>> = HashSet::new();
        for &m2 in &distinct_masks {
            if m2 != m && m2 & m == m {
                for &j in &by_mask[&m2] {
                    super_proj.insert(key_of(&rows[j], &cols));
                }
            }
        }
        let mut dropped = Vec::new();
        if !super_proj.is_empty() {
            for &i in &by_mask[&m] {
                if super_proj.contains(&key_of(&rows[i], &cols)) {
                    dropped.push(i);
                }
            }
        }
        dropped
    });

    let mut keep = vec![true; rows.len()];
    for dropped in dropped_per_mask {
        for i in dropped {
            keep[i] = false;
        }
    }
    let out: Vec<Row> = rows
        .into_iter()
        .zip(keep)
        .filter_map(|(r, k)| if k { Some(r) } else { None })
        .collect();
    env.record(
        |s| &s.subsume,
        n_in,
        out.len(),
        distinct_masks.len().max(1),
        started,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ojv_algebra::{TableId, TableSet};
    use ojv_rel::{Column, DataType};
    use ojv_storage::Catalog;

    fn layout() -> ViewLayout {
        let mut c = Catalog::new();
        for name in ["a", "b"] {
            c.create_table(
                name,
                vec![
                    Column::new(name, "id", DataType::Int, false),
                    Column::new(name, "v", DataType::Int, true),
                ],
                &["id"],
            )
            .unwrap();
        }
        ViewLayout::new(&c, &["a", "b"]).unwrap()
    }

    fn ab(l: &ViewLayout, a: i64, b: i64) -> Row {
        let mut r = l.widen(TableId(0), &[Datum::Int(a), Datum::Int(a)]);
        r[2] = Datum::Int(b);
        r[3] = Datum::Int(b);
        r
    }

    fn a_only(l: &ViewLayout, a: i64) -> Row {
        l.widen(TableId(0), &[Datum::Int(a), Datum::Int(a)])
    }

    #[test]
    fn distinct_removes_duplicates() {
        let l = layout();
        let rows = vec![a_only(&l, 1), a_only(&l, 1), a_only(&l, 2)];
        assert_eq!(distinct(rows).len(), 2);
    }

    #[test]
    fn clean_dup_removes_subsumed_rows() {
        let l = layout();
        // (a=1,b=5) subsumes (a=1, b null); (a=2, null) survives.
        let rows = vec![ab(&l, 1, 5), a_only(&l, 1), a_only(&l, 2)];
        let out = clean_dup(&l, rows);
        assert_eq!(out.len(), 2);
        assert!(out.iter().any(|r| !l.is_null_on(TableId(1), r)));
        assert!(out
            .iter()
            .any(|r| r[0] == Datum::Int(2) && l.is_null_on(TableId(1), r)));
    }

    #[test]
    fn clean_dup_keeps_distinct_joined_rows() {
        let l = layout();
        let rows = vec![ab(&l, 1, 5), ab(&l, 1, 6)];
        assert_eq!(clean_dup(&l, rows).len(), 2);
    }

    #[test]
    fn clean_dup_collapses_duplicates_and_subsumed() {
        let l = layout();
        let rows = vec![a_only(&l, 1), a_only(&l, 1), ab(&l, 1, 5)];
        let out = clean_dup(&l, rows);
        assert_eq!(out.len(), 1);
        assert!(!l.is_null_on(TableId(1), &out[0]));
    }

    #[test]
    fn rows_with_different_keys_do_not_subsume() {
        let l = layout();
        let rows = vec![ab(&l, 1, 5), a_only(&l, 2)];
        assert_eq!(clean_dup(&l, rows).len(), 2);
    }

    #[test]
    fn empty_input() {
        let l = layout();
        assert!(clean_dup(&l, Vec::new()).is_empty());
        let _ = TableSet::EMPTY; // silence unused import in some cfgs
    }
}
