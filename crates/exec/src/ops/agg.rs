//! Hash aggregation.
//!
//! Used for (a) the initial materialization of aggregated outer-join views
//! and (b) aggregating primary/secondary deltas before applying them
//! (paper §3.3). Incrementally maintainable functions are `CountRows`,
//! `CountNonNull`, and `Sum` (the SQL Server indexed-view set); `Min`/`Max`
//! are provided for full computation only.

use ojv_rel::{key_of, Datum, FxHashMap, Row};

/// An aggregate function over a wide-row column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)` — always maintainable; drives row deletion (§3.3).
    CountRows,
    /// `COUNT(col)` — the paper's per-table not-null count when `col` is a
    /// key column of a null-extendable table.
    CountNonNull(usize),
    /// `SUM(col)`; null over an all-null group.
    Sum(usize),
    /// `MIN(col)` — full computation only (not incrementally maintainable
    /// under deletes).
    Min(usize),
    /// `MAX(col)` — full computation only.
    Max(usize),
}

impl AggFunc {
    /// True iff the function can be maintained incrementally under both
    /// inserts and deletes.
    pub fn incrementally_maintainable(self) -> bool {
        !matches!(self, AggFunc::Min(_) | AggFunc::Max(_))
    }
}

#[derive(Debug, Clone)]
enum Acc {
    Count(i64),
    SumInt { sum: i64, non_null: i64 },
    SumFloat { sum: f64, non_null: i64 },
    MinMax(Option<Datum>),
}

/// Group `rows` by `group_cols` and compute `aggs` for each group.
///
/// Output rows are `group key columns ++ aggregate values`, in first-seen
/// group order. `SUM` over integers yields `Int`, over floats `Float`; an
/// empty (all-null) sum yields `Null`.
pub fn hash_aggregate(rows: &[Row], group_cols: &[usize], aggs: &[AggFunc]) -> Vec<Row> {
    let mut groups: FxHashMap<Vec<Datum>, usize> = FxHashMap::default();
    // lint:allow(vec-vec-datum) group keys are variable-arity, not row batches
    let mut order: Vec<Vec<Datum>> = Vec::new();
    let mut accs: Vec<Vec<Acc>> = Vec::new();

    for row in rows {
        let key = key_of(row, group_cols);
        let gi = *groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            accs.push(aggs.iter().map(|a| init_acc(*a)).collect());
            accs.len() - 1
        });
        for (acc, agg) in accs[gi].iter_mut().zip(aggs) {
            update_acc(acc, *agg, row);
        }
    }

    order
        .into_iter()
        .zip(accs)
        .map(|(key, accs)| {
            let mut out = key;
            out.extend(accs.into_iter().map(finish_acc));
            out
        })
        .collect()
}

fn init_acc(agg: AggFunc) -> Acc {
    match agg {
        AggFunc::CountRows | AggFunc::CountNonNull(_) => Acc::Count(0),
        AggFunc::Sum(_) => Acc::SumInt {
            sum: 0,
            non_null: 0,
        },
        AggFunc::Min(_) | AggFunc::Max(_) => Acc::MinMax(None),
    }
}

fn update_acc(acc: &mut Acc, agg: AggFunc, row: &Row) {
    match agg {
        AggFunc::CountRows => {
            if let Acc::Count(c) = acc {
                *c += 1;
            }
        }
        AggFunc::CountNonNull(col) => {
            if let Acc::Count(c) = acc {
                if !row[col].is_null() {
                    *c += 1;
                }
            }
        }
        AggFunc::Sum(col) => match &row[col] {
            Datum::Null => {}
            Datum::Int(v) => {
                // Widen to float accumulation on first float input.
                match acc {
                    Acc::SumInt { sum, non_null } => {
                        *sum += v;
                        *non_null += 1;
                    }
                    Acc::SumFloat { sum, non_null } => {
                        *sum += *v as f64;
                        *non_null += 1;
                    }
                    _ => unreachable!(),
                }
            }
            Datum::Float(v) => {
                let (prev_sum, prev_nn) = match acc {
                    Acc::SumInt { sum, non_null } => (*sum as f64, *non_null),
                    Acc::SumFloat { sum, non_null } => (*sum, *non_null),
                    _ => unreachable!(),
                };
                *acc = Acc::SumFloat {
                    sum: prev_sum + v,
                    non_null: prev_nn + 1,
                };
            }
            other => panic!("SUM over non-numeric datum {other:?}"),
        },
        AggFunc::Min(col) | AggFunc::Max(col) => {
            let v = &row[col];
            if v.is_null() {
                return;
            }
            if let Acc::MinMax(cur) = acc {
                let take = match cur {
                    None => true,
                    Some(c) => {
                        let ord = v.sql_cmp(c).expect("comparable aggregate inputs");
                        if matches!(agg, AggFunc::Min(_)) {
                            ord == std::cmp::Ordering::Less
                        } else {
                            ord == std::cmp::Ordering::Greater
                        }
                    }
                };
                if take {
                    *cur = Some(v.clone());
                }
            }
        }
    }
}

fn finish_acc(acc: Acc) -> Datum {
    match acc {
        Acc::Count(c) => Datum::Int(c),
        Acc::SumInt { non_null: 0, .. } | Acc::SumFloat { non_null: 0, .. } => Datum::Null,
        Acc::SumInt { sum, .. } => Datum::Int(sum),
        Acc::SumFloat { sum, .. } => Datum::Float(sum),
        Acc::MinMax(v) => v.unwrap_or(Datum::Null),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Row> {
        vec![
            vec![Datum::Int(1), Datum::Int(10), Datum::Float(1.5)],
            vec![Datum::Int(1), Datum::Int(20), Datum::Null],
            vec![Datum::Int(2), Datum::Null, Datum::Float(3.0)],
        ]
    }

    #[test]
    fn count_and_sum() {
        let out = hash_aggregate(
            &rows(),
            &[0],
            &[
                AggFunc::CountRows,
                AggFunc::CountNonNull(1),
                AggFunc::Sum(1),
            ],
        );
        assert_eq!(out.len(), 2);
        let g1 = out.iter().find(|r| r[0] == Datum::Int(1)).unwrap();
        assert_eq!(g1[1], Datum::Int(2)); // count(*)
        assert_eq!(g1[2], Datum::Int(2)); // count(col)
        assert_eq!(g1[3], Datum::Int(30)); // sum
        let g2 = out.iter().find(|r| r[0] == Datum::Int(2)).unwrap();
        assert_eq!(g2[1], Datum::Int(1));
        assert_eq!(g2[2], Datum::Int(0));
        assert_eq!(g2[3], Datum::Null); // all-null sum
    }

    #[test]
    fn float_sum_widens() {
        let out = hash_aggregate(&rows(), &[0], &[AggFunc::Sum(2)]);
        let g1 = out.iter().find(|r| r[0] == Datum::Int(1)).unwrap();
        assert_eq!(g1[1], Datum::Float(1.5));
    }

    #[test]
    fn min_max() {
        let out = hash_aggregate(&rows(), &[0], &[AggFunc::Min(1), AggFunc::Max(1)]);
        let g1 = out.iter().find(|r| r[0] == Datum::Int(1)).unwrap();
        assert_eq!(g1[1], Datum::Int(10));
        assert_eq!(g1[2], Datum::Int(20));
        let g2 = out.iter().find(|r| r[0] == Datum::Int(2)).unwrap();
        assert_eq!(g2[1], Datum::Null);
    }

    #[test]
    fn empty_group_cols_single_group() {
        let out = hash_aggregate(&rows(), &[], &[AggFunc::CountRows]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0][0], Datum::Int(3));
    }

    #[test]
    fn maintainability_classification() {
        assert!(AggFunc::CountRows.incrementally_maintainable());
        assert!(AggFunc::Sum(0).incrementally_maintainable());
        assert!(!AggFunc::Min(0).incrementally_maintainable());
        assert!(!AggFunc::Max(0).incrementally_maintainable());
    }
}
