//! The view-wide row layout.

use ojv_algebra::{ColRef, TableId, TableSet};
use ojv_rel::{Column, Datum, Row, Schema, SchemaRef};
use ojv_storage::{Catalog, StorageError};

/// One base table's slot range within the wide row.
#[derive(Debug, Clone)]
pub struct TableSlot {
    pub name: String,
    /// First wide-row column of this table.
    pub offset: usize,
    /// Number of columns.
    pub len: usize,
    /// Wide-row (global) indexes of the table's unique-key columns.
    pub key_cols: Vec<usize>,
    /// The base table's own schema.
    pub schema: SchemaRef,
}

/// The wide-row layout for one view: the ordered list of base tables it
/// references, with each table's column range and key positions.
#[derive(Debug, Clone)]
pub struct ViewLayout {
    slots: Vec<TableSlot>,
    width: usize,
    wide_schema: SchemaRef,
}

impl ViewLayout {
    /// Build a layout for `tables` (in view order) resolved against the
    /// catalog.
    pub fn new(catalog: &Catalog, tables: &[&str]) -> Result<Self, StorageError> {
        if tables.len() > TableSet::MAX_TABLES {
            return Err(StorageError::TooManyTables {
                count: tables.len(),
                max: TableSet::MAX_TABLES,
            });
        }
        let mut slots = Vec::with_capacity(tables.len());
        let mut wide_cols: Vec<Column> = Vec::new();
        let mut offset = 0usize;
        for name in tables {
            let t = catalog.table(name)?;
            let schema = t.schema().clone();
            let key_cols = t.key_cols().iter().map(|&c| offset + c).collect();
            for c in schema.columns() {
                // Every wide column is nullable: any tuple may be
                // null-extended on this table.
                let mut c = c.clone();
                c.nullable = true;
                wide_cols.push(c);
            }
            let len = schema.len();
            slots.push(TableSlot {
                name: name.to_string(),
                offset,
                len,
                key_cols,
                schema,
            });
            offset += len;
        }
        Ok(ViewLayout {
            slots,
            width: offset,
            wide_schema: Schema::shared(wide_cols)?,
        })
    }

    pub fn width(&self) -> usize {
        self.width
    }

    pub fn table_count(&self) -> usize {
        self.slots.len()
    }

    pub fn slots(&self) -> &[TableSlot] {
        &self.slots
    }

    pub fn slot(&self, t: TableId) -> &TableSlot {
        &self.slots[t.index()]
    }

    /// The schema of wide rows (all columns nullable).
    pub fn wide_schema(&self) -> &SchemaRef {
        &self.wide_schema
    }

    /// The set of all tables in the layout.
    pub fn all_tables(&self) -> TableSet {
        TableSet::first_n(self.slots.len())
    }

    /// The `TableId` of a base table by name.
    pub fn table_id(&self, name: &str) -> Option<TableId> {
        self.slots
            .iter()
            .position(|s| s.name == name)
            .map(|i| TableId(i as u8))
    }

    /// The wide-row (global) index of a column reference.
    pub fn global(&self, col: ColRef) -> usize {
        let slot = self.slot(col.table);
        debug_assert!(col.col < slot.len, "column out of range for {}", slot.name);
        slot.offset + col.col
    }

    /// Resolve a `"table.column"`-style pair to a [`ColRef`].
    pub fn col(&self, table: &str, column: &str) -> Result<ColRef, StorageError> {
        let t = self
            .table_id(table)
            .ok_or_else(|| StorageError::UnknownTable {
                name: table.to_string(),
            })?;
        let slot = self.slot(t);
        let idx = slot
            .schema
            .index_of(table, column)
            .map_err(|_| StorageError::UnknownColumn {
                table: table.to_string(),
                column: column.to_string(),
            })?;
        Ok(ColRef::new(t, idx))
    }

    /// Widen a base-table row of table `t` into a wide row (all other
    /// tables' slots null).
    pub fn widen(&self, t: TableId, row: &[Datum]) -> Row {
        let slot = self.slot(t);
        debug_assert_eq!(row.len(), slot.len);
        let mut out = vec![Datum::Null; self.width];
        out[slot.offset..slot.offset + slot.len].clone_from_slice(row);
        out
    }

    /// Widen a base-table row of table `t` directly into a [`RowBuf`] batch
    /// — the batch form of [`Self::widen`]: one amortized bump of the
    /// batch's backing vector instead of a fresh `Vec<Datum>` per row.
    pub fn widen_into(&self, t: TableId, row: &[Datum], out: &mut ojv_rel::RowBuf) {
        let slot = self.slot(t);
        debug_assert_eq!(row.len(), slot.len);
        debug_assert_eq!(out.width(), self.width);
        let dst = out.push_null_row();
        dst[slot.offset..slot.offset + slot.len].clone_from_slice(row);
    }

    /// [`Self::widen_into`] from a columnar row: the heap writes straight
    /// into the table's slot of a fresh null row (strings clone the backing
    /// `Arc`, scalars copy) — no intermediate `Vec<Datum>`.
    pub fn widen_ref_into(
        &self,
        t: TableId,
        row: ojv_storage::RowRef<'_>,
        out: &mut ojv_rel::RowBuf,
    ) {
        let slot = self.slot(t);
        debug_assert_eq!(row.width(), slot.len);
        debug_assert_eq!(out.width(), self.width);
        let dst = out.push_null_row();
        row.copy_into(&mut dst[slot.offset..slot.offset + slot.len]);
    }

    /// Extract table `t`'s portion of a wide row.
    pub fn narrow(&self, t: TableId, row: &[Datum]) -> Row {
        let slot = self.slot(t);
        row[slot.offset..slot.offset + slot.len].to_vec()
    }

    /// The paper's `null(T)`: true iff the wide row is null-extended on `t`
    /// (checked via the table's non-null key columns).
    pub fn is_null_on(&self, t: TableId, row: &[Datum]) -> bool {
        row[self.slot(t).key_cols[0]].is_null()
    }

    /// The set of tables a wide row actually carries (non-null-extended).
    pub fn sources_of_row(&self, row: &[Datum]) -> TableSet {
        (0..self.slots.len())
            .map(|i| TableId(i as u8))
            .filter(|&t| !self.is_null_on(t, row))
            .collect()
    }

    /// `nn(tables) ∧ n(complement)` — true iff the row's source set is
    /// exactly `tables` (used for term extraction, §5.1).
    pub fn row_matches_term(&self, tables: TableSet, row: &[Datum]) -> bool {
        for i in 0..self.slots.len() {
            let t = TableId(i as u8);
            if tables.contains(t) == self.is_null_on(t, row) {
                return false;
            }
        }
        true
    }

    /// Wide-row key columns of all tables in `tables`, in table order — the
    /// paper's `eq(T_i)` key for a term.
    pub fn term_key_cols(&self, tables: TableSet) -> Vec<usize> {
        tables
            .iter()
            .flat_map(|t| self.slot(t).key_cols.iter().copied())
            .collect()
    }

    /// Null out the slots of `tables` in `row` (the null-if operator's
    /// action).
    pub fn null_out(&self, tables: TableSet, row: &mut [Datum]) {
        for t in tables.iter() {
            let slot = self.slot(t);
            for cell in &mut row[slot.offset..slot.offset + slot.len] {
                *cell = Datum::Null;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ojv_rel::DataType;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create_table(
            "a",
            vec![
                Column::new("a", "id", DataType::Int, false),
                Column::new("a", "x", DataType::Str, true),
            ],
            &["id"],
        )
        .unwrap();
        c.create_table(
            "b",
            vec![
                Column::new("b", "id", DataType::Int, false),
                Column::new("b", "aid", DataType::Int, false),
                Column::new("b", "y", DataType::Float, true),
            ],
            &["id"],
        )
        .unwrap();
        c
    }

    #[test]
    fn layout_offsets_and_keys() {
        let c = catalog();
        let l = ViewLayout::new(&c, &["a", "b"]).unwrap();
        assert_eq!(l.width(), 5);
        assert_eq!(l.slot(TableId(0)).offset, 0);
        assert_eq!(l.slot(TableId(1)).offset, 2);
        assert_eq!(l.slot(TableId(1)).key_cols, vec![2]);
        assert_eq!(l.table_id("b"), Some(TableId(1)));
        assert_eq!(l.table_id("zzz"), None);
        assert_eq!(l.global(ColRef::new(TableId(1), 2)), 4);
        assert_eq!(l.col("b", "y").unwrap(), ColRef::new(TableId(1), 2));
        assert!(l.col("b", "nope").is_err());
    }

    #[test]
    fn widen_and_narrow_roundtrip() {
        let c = catalog();
        let l = ViewLayout::new(&c, &["a", "b"]).unwrap();
        let b_row = vec![Datum::Int(7), Datum::Int(1), Datum::Float(0.5)];
        let wide = l.widen(TableId(1), &b_row);
        assert_eq!(wide[0], Datum::Null);
        assert_eq!(wide[2], Datum::Int(7));
        assert_eq!(l.narrow(TableId(1), &wide), b_row);
        assert!(l.is_null_on(TableId(0), &wide));
        assert!(!l.is_null_on(TableId(1), &wide));
        assert_eq!(l.sources_of_row(&wide), TableSet::singleton(TableId(1)));
    }

    #[test]
    fn term_matching_and_keys() {
        let c = catalog();
        let l = ViewLayout::new(&c, &["a", "b"]).unwrap();
        let wide = l.widen(TableId(0), &[Datum::Int(3), Datum::str("v")]);
        assert!(l.row_matches_term(TableSet::singleton(TableId(0)), &wide));
        assert!(!l.row_matches_term(TableSet::first_n(2), &wide));
        assert_eq!(l.term_key_cols(TableSet::first_n(2)), vec![0, 2]);
    }

    #[test]
    fn null_out_clears_slots() {
        let c = catalog();
        let l = ViewLayout::new(&c, &["a", "b"]).unwrap();
        let mut wide = l.widen(TableId(0), &[Datum::Int(3), Datum::str("v")]);
        l.null_out(TableSet::singleton(TableId(0)), &mut wide);
        assert!(wide.iter().all(|d| d.is_null()));
    }

    #[test]
    fn too_many_tables_is_an_error_not_a_panic() {
        let mut c = Catalog::new();
        let mut names = Vec::new();
        for i in 0..=TableSet::MAX_TABLES {
            let name = format!("t{i}");
            c.create_table(
                &name,
                vec![Column::new(&name, "id", DataType::Int, false)],
                &["id"],
            )
            .unwrap();
            names.push(name);
        }
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        match ViewLayout::new(&c, &refs) {
            Err(StorageError::TooManyTables { count, max }) => {
                assert_eq!(count, TableSet::MAX_TABLES + 1);
                assert_eq!(max, TableSet::MAX_TABLES);
            }
            other => panic!("expected TooManyTables, got {other:?}"),
        }
    }

    #[test]
    fn wide_schema_is_fully_nullable() {
        let c = catalog();
        let l = ViewLayout::new(&c, &["a", "b"]).unwrap();
        assert!(l.wide_schema().columns().iter().all(|c| c.nullable));
        assert_eq!(l.wide_schema().len(), 5);
    }
}
