//! Morsel-parallel driver and per-operator counters.
//!
//! [`map_morsels`] is the single scheduling primitive every parallel operator
//! uses: workers claim morsels from an atomic counter, and per-morsel results
//! are returned **in morsel order**, so concatenating them reproduces the
//! serial output exactly. [`map_parts`] is the same idea for work that is
//! naturally indexed by partition (hash-partitioned dedup, per-mask
//! subsumption) rather than by row range.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use crate::layout::ViewLayout;
use crate::morsel::{morsel_ranges, ParallelSpec};

/// Run `work` over every morsel of `0..len`, returning results in morsel
/// order. Serial (caller thread, in-order) when the spec says so or there is
/// at most one morsel; otherwise `spec.threads` scoped workers claim morsels
/// from a shared counter.
pub fn map_morsels<T, F>(spec: ParallelSpec, len: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let ranges = morsel_ranges(len, spec.morsel_rows);
    if !spec.is_parallel_for(len) || ranges.len() <= 1 {
        return ranges.into_iter().map(work).collect();
    }
    run_indexed(spec, ranges.len(), |i| work(ranges[i].clone()))
}

/// Run `work(p)` for every partition index `p in 0..nparts`, returning
/// results in partition order. Parallel whenever the spec has more than one
/// thread and there is more than one partition (partition counts are small;
/// no row-count cutoff applies).
pub fn map_parts<T, F>(spec: ParallelSpec, nparts: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if spec.threads <= 1 || nparts <= 1 {
        return (0..nparts).map(work).collect();
    }
    run_indexed(spec, nparts, work)
}

fn run_indexed<T, F>(spec: ParallelSpec, n: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let next = AtomicUsize::new(0);
    let workers = spec.threads.min(n).max(1);
    let mut indexed: Vec<(usize, T)> = Vec::with_capacity(n);
    // Happens-before edge: everything the caller did before spawning the
    // morsel pool is visible to every worker (spawn edge), and everything a
    // worker did is visible to the caller after the joins (join edge). The
    // merge buffer itself is a traced cell so the detector can prove the
    // workers' results are only touched by the main thread post-join.
    crate::trace::publish("exec.morsel.spawn");
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let next = &next;
                let work = &work;
                s.spawn(move || {
                    if crate::trace::active() {
                        crate::trace::register_thread(&format!("morsel-worker-{w}"));
                    }
                    crate::trace::observe("exec.morsel.spawn");
                    let mut local = Vec::new();
                    loop {
                        // Morsel claim counter: uniqueness is all that
                        // matters; results are ordered by the in-order
                        // merge after scope join.
                        // concheck:allow(atomic-ordering)
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, work(i)));
                    }
                    crate::trace::publish("exec.morsel.join");
                    local
                })
            })
            .collect();
        for h in handles {
            indexed.extend(h.join().expect("morsel worker panicked"));
        }
        crate::trace::observe("exec.morsel.join");
    });
    crate::trace::on_write("exec.morsel.merge");
    indexed.sort_unstable_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, t)| t).collect()
}

/// Counters for one physical operator, shareable by `&` across workers.
#[derive(Debug, Default)]
pub struct OpStats {
    pub rows_in: AtomicU64,
    pub rows_out: AtomicU64,
    pub morsels: AtomicU64,
    pub time_ns: AtomicU64,
    /// Heap allocations during the operator (process-wide; nonzero only
    /// when a [`ojv_rel::CountingAlloc`] is installed as the global
    /// allocator).
    pub allocs: AtomicU64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: AtomicU64,
}

impl OpStats {
    pub fn record(
        &self,
        rows_in: usize,
        rows_out: usize,
        morsels: usize,
        started: Instant,
        alloc0: ojv_rel::AllocSnapshot,
    ) {
        // Monotonic stats counters, read only after the owning scope joins.
        // concheck:allow(atomic-ordering)
        self.rows_in.fetch_add(rows_in as u64, Ordering::Relaxed);
        self.rows_out.fetch_add(rows_out as u64, Ordering::Relaxed); // concheck:allow(atomic-ordering)
        self.morsels.fetch_add(morsels as u64, Ordering::Relaxed); // concheck:allow(atomic-ordering)
        self.time_ns
            .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed); // concheck:allow(atomic-ordering)
        let da = ojv_rel::alloc_snapshot().since(&alloc0);
        self.allocs.fetch_add(da.count, Ordering::Relaxed); // concheck:allow(atomic-ordering)
        self.alloc_bytes.fetch_add(da.bytes, Ordering::Relaxed); // concheck:allow(atomic-ordering)
    }

    pub fn snapshot(&self) -> OpStatsSnapshot {
        OpStatsSnapshot {
            // Best-effort stats snapshot; exact values only required
            // after workers join.
            // concheck:allow(atomic-ordering)
            rows_in: self.rows_in.load(Ordering::Relaxed),
            rows_out: self.rows_out.load(Ordering::Relaxed), // concheck:allow(atomic-ordering)
            morsels: self.morsels.load(Ordering::Relaxed),   // concheck:allow(atomic-ordering)
            time_ns: self.time_ns.load(Ordering::Relaxed),   // concheck:allow(atomic-ordering)
            allocs: self.allocs.load(Ordering::Relaxed),     // concheck:allow(atomic-ordering)
            alloc_bytes: self.alloc_bytes.load(Ordering::Relaxed), // concheck:allow(atomic-ordering)
        }
    }
}

/// Plain-value copy of [`OpStats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OpStatsSnapshot {
    pub rows_in: u64,
    pub rows_out: u64,
    pub morsels: u64,
    pub time_ns: u64,
    pub allocs: u64,
    pub alloc_bytes: u64,
}

/// Per-operator counters for one evaluation (or one maintenance run).
/// Attach via `ExecCtx::with_stats`; operators accumulate with relaxed
/// atomics so a single instance can be shared across all workers.
#[derive(Debug, Default)]
pub struct ExecStats {
    pub filter: OpStats,
    pub join_build: OpStats,
    pub join_probe: OpStats,
    pub index_join: OpStats,
    pub dedup: OpStats,
    pub subsume: OpStats,
}

impl ExecStats {
    pub fn snapshot(&self) -> ExecStatsSnapshot {
        ExecStatsSnapshot {
            filter: self.filter.snapshot(),
            join_build: self.join_build.snapshot(),
            join_probe: self.join_probe.snapshot(),
            index_join: self.index_join.snapshot(),
            dedup: self.dedup.snapshot(),
            subsume: self.subsume.snapshot(),
        }
    }
}

/// Plain-value copy of [`ExecStats`], carried on maintenance reports.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ExecStatsSnapshot {
    pub filter: OpStatsSnapshot,
    pub join_build: OpStatsSnapshot,
    pub join_probe: OpStatsSnapshot,
    pub index_join: OpStatsSnapshot,
    pub dedup: OpStatsSnapshot,
    pub subsume: OpStatsSnapshot,
}

/// What a physical operator needs besides its inputs: the wide-row layout,
/// the parallelism spec, and optional counters.
#[derive(Clone, Copy)]
pub struct ExecEnv<'a> {
    pub layout: &'a ViewLayout,
    pub spec: ParallelSpec,
    pub stats: Option<&'a ExecStats>,
}

impl<'a> ExecEnv<'a> {
    /// Serial environment with no counters — what the legacy free-function
    /// operator entry points use.
    pub fn serial(layout: &'a ViewLayout) -> Self {
        ExecEnv {
            layout,
            spec: ParallelSpec::serial(),
            stats: None,
        }
    }

    pub(crate) fn record(
        &self,
        op: impl Fn(&ExecStats) -> &OpStats,
        rows_in: usize,
        rows_out: usize,
        morsels: usize,
        started: Instant,
        alloc0: ojv_rel::AllocSnapshot,
    ) {
        if let Some(stats) = self.stats {
            op(stats).record(rows_in, rows_out, morsels, started, alloc0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_morsels_preserves_order_serial_and_parallel() {
        let serial = map_morsels(ParallelSpec::serial().with_morsel_rows(3), 10, |r| {
            r.collect::<Vec<_>>()
        });
        let parallel = map_morsels(
            ParallelSpec::threads(4).with_morsel_rows(3).with_cutoff(0),
            10,
            |r| r.collect::<Vec<_>>(),
        );
        assert_eq!(serial, parallel);
        assert_eq!(
            serial.into_iter().flatten().collect::<Vec<_>>(),
            (0..10).collect::<Vec<_>>()
        );
    }

    #[test]
    fn map_morsels_empty_input() {
        let out = map_morsels(ParallelSpec::threads(4).with_cutoff(0), 0, |r| r.len());
        assert!(out.is_empty());
    }

    #[test]
    fn map_parts_runs_every_partition_once() {
        for spec in [ParallelSpec::serial(), ParallelSpec::threads(8)] {
            let out = map_parts(spec, 5, |p| p * 2);
            assert_eq!(out, vec![0, 2, 4, 6, 8]);
        }
    }

    #[test]
    fn op_stats_accumulate() {
        let stats = OpStats::default();
        let t = Instant::now();
        let a = ojv_rel::alloc_snapshot();
        stats.record(10, 4, 2, t, a);
        stats.record(5, 1, 1, t, a);
        let snap = stats.snapshot();
        assert_eq!(snap.rows_in, 15);
        assert_eq!(snap.rows_out, 5);
        assert_eq!(snap.morsels, 3);
    }
}
