//! Scalar predicate evaluation over wide rows.

use ojv_algebra::{Atom, Pred};
use ojv_rel::Datum;

use crate::layout::ViewLayout;

/// Evaluate one atom on a wide row under SQL three-valued logic collapsed to
/// boolean: unknown (any null operand) is false — which is exactly the
/// *null-rejecting* behaviour the paper requires of all view predicates.
pub fn eval_atom(layout: &ViewLayout, atom: &Atom, row: &[Datum]) -> bool {
    match atom {
        Atom::Cols(a, op, b) => {
            let x = &row[layout.global(*a)];
            let y = &row[layout.global(*b)];
            x.sql_cmp(y).map(|o| op.eval(o)).unwrap_or(false)
        }
        Atom::Const(c, op, lit) => {
            let x = &row[layout.global(*c)];
            x.sql_cmp(lit).map(|o| op.eval(o)).unwrap_or(false)
        }
        Atom::Between(c, lo, hi) => {
            let x = &row[layout.global(*c)];
            match (x.sql_cmp(lo), x.sql_cmp(hi)) {
                (Some(a), Some(b)) => {
                    a != std::cmp::Ordering::Less && b != std::cmp::Ordering::Greater
                }
                _ => false,
            }
        }
    }
}

/// Evaluate a conjunction on a wide row.
pub fn eval_pred(layout: &ViewLayout, pred: &Pred, row: &[Datum]) -> bool {
    pred.atoms().iter().all(|a| eval_atom(layout, a, row))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ojv_algebra::{CmpOp, ColRef, TableId};
    use ojv_rel::{Column, DataType};
    use ojv_storage::Catalog;

    fn layout() -> ViewLayout {
        let mut c = Catalog::new();
        c.create_table(
            "t",
            vec![
                Column::new("t", "id", DataType::Int, false),
                Column::new("t", "v", DataType::Int, true),
            ],
            &["id"],
        )
        .unwrap();
        c.create_table(
            "u",
            vec![
                Column::new("u", "id", DataType::Int, false),
                Column::new("u", "tid", DataType::Int, false),
            ],
            &["id"],
        )
        .unwrap();
        ViewLayout::new(&c, &["t", "u"]).unwrap()
    }

    fn cr(t: u8, c: usize) -> ColRef {
        ColRef::new(TableId(t), c)
    }

    #[test]
    fn equijoin_atom() {
        let l = layout();
        let atom = Atom::eq(cr(0, 0), cr(1, 1));
        let hit = vec![Datum::Int(1), Datum::Null, Datum::Int(9), Datum::Int(1)];
        let miss = vec![Datum::Int(1), Datum::Null, Datum::Int(9), Datum::Int(2)];
        assert!(eval_atom(&l, &atom, &hit));
        assert!(!eval_atom(&l, &atom, &miss));
    }

    #[test]
    fn null_operands_reject() {
        let l = layout();
        let atom = Atom::eq(cr(0, 0), cr(1, 1));
        let null_left = vec![Datum::Null, Datum::Null, Datum::Int(9), Datum::Int(1)];
        assert!(!eval_atom(&l, &atom, &null_left));
        let cmp = Atom::Const(cr(0, 1), CmpOp::Lt, Datum::Int(5));
        let null_col = vec![Datum::Int(1), Datum::Null, Datum::Null, Datum::Null];
        assert!(!eval_atom(&l, &cmp, &null_col));
    }

    #[test]
    fn between_atom_inclusive() {
        let l = layout();
        let atom = Atom::Between(cr(0, 1), Datum::Int(2), Datum::Int(4));
        let mk = |v: i64| vec![Datum::Int(1), Datum::Int(v), Datum::Null, Datum::Null];
        assert!(eval_atom(&l, &atom, &mk(2)));
        assert!(eval_atom(&l, &atom, &mk(3)));
        assert!(eval_atom(&l, &atom, &mk(4)));
        assert!(!eval_atom(&l, &atom, &mk(1)));
        assert!(!eval_atom(&l, &atom, &mk(5)));
        let null_row = vec![Datum::Int(1), Datum::Null, Datum::Null, Datum::Null];
        assert!(!eval_atom(&l, &atom, &null_row));
    }

    #[test]
    fn conjunction_semantics() {
        let l = layout();
        let p = Pred::new(vec![
            Atom::eq(cr(0, 0), cr(1, 1)),
            Atom::Const(cr(0, 1), CmpOp::Ge, Datum::Int(0)),
        ]);
        let good = vec![Datum::Int(1), Datum::Int(0), Datum::Int(9), Datum::Int(1)];
        let bad = vec![Datum::Int(1), Datum::Int(-1), Datum::Int(9), Datum::Int(1)];
        assert!(eval_pred(&l, &p, &good));
        assert!(!eval_pred(&l, &p, &bad));
        assert!(eval_pred(&l, &Pred::true_(), &bad));
    }
}
