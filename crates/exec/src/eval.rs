//! Scalar predicate evaluation over wide rows.

use ojv_algebra::{Atom, Pred};
use ojv_rel::{Datum, DatumRef};
use ojv_storage::RowRef;

use crate::layout::ViewLayout;

/// Evaluate one atom on a wide row under SQL three-valued logic collapsed to
/// boolean: unknown (any null operand) is false — which is exactly the
/// *null-rejecting* behaviour the paper requires of all view predicates.
pub fn eval_atom(layout: &ViewLayout, atom: &Atom, row: &[Datum]) -> bool {
    match atom {
        Atom::Cols(a, op, b) => {
            let x = &row[layout.global(*a)];
            let y = &row[layout.global(*b)];
            x.sql_cmp(y).map(|o| op.eval(o)).unwrap_or(false)
        }
        Atom::Const(c, op, lit) => {
            let x = &row[layout.global(*c)];
            x.sql_cmp(lit).map(|o| op.eval(o)).unwrap_or(false)
        }
        Atom::Between(c, lo, hi) => {
            let x = &row[layout.global(*c)];
            match (x.sql_cmp(lo), x.sql_cmp(hi)) {
                (Some(a), Some(b)) => {
                    a != std::cmp::Ordering::Less && b != std::cmp::Ordering::Greater
                }
                _ => false,
            }
        }
    }
}

/// Evaluate a conjunction on a wide row.
pub fn eval_pred(layout: &ViewLayout, pred: &Pred, row: &[Datum]) -> bool {
    pred.atoms().iter().all(|a| eval_atom(layout, a, row))
}

/// Evaluate a conjunction on a *virtual* merged row made of two wide rows:
/// columns of tables in `right_sources` resolve against `right`, everything
/// else against `left`. Join probe loops use this to reject a candidate
/// before materializing the merged row — the merge (a slot copy with
/// possible string clones) only happens for rows that survive.
pub fn eval_pred_merged(
    layout: &ViewLayout,
    pred: &Pred,
    left: &[Datum],
    right: &[Datum],
    right_sources: ojv_algebra::TableSet,
) -> bool {
    let get = |c: &ojv_algebra::ColRef| {
        let row = if right_sources.contains(c.table) {
            right
        } else {
            left
        };
        row[layout.global(*c)].as_ref()
    };
    pred.atoms().iter().all(|a| eval_atom_with(a, get))
}

/// [`eval_pred_merged`] where the right side is a *narrow* base-table row
/// occupying the layout slot `[offset, offset + right.len())` — the shape
/// index-nested-loop and narrow-build joins probe.
pub fn eval_pred_split(
    layout: &ViewLayout,
    pred: &Pred,
    left: &[Datum],
    right: &[Datum],
    offset: usize,
) -> bool {
    let get = |c: &ojv_algebra::ColRef| {
        let g = layout.global(*c);
        match g.checked_sub(offset) {
            Some(local) if local < right.len() => right[local].as_ref(),
            _ => left[g].as_ref(),
        }
    };
    pred.atoms().iter().all(|a| eval_atom_with(a, get))
}

/// [`eval_pred_split`] where the right side is a *columnar* base-table row:
/// right columns read straight from the table's column pages, left columns
/// from the wide probe row. The hot shape of narrow-build and index joins
/// after the heap rework.
pub fn eval_pred_split_ref(
    layout: &ViewLayout,
    pred: &Pred,
    left: &[Datum],
    right: RowRef<'_>,
    offset: usize,
) -> bool {
    let get = |c: &ojv_algebra::ColRef| {
        let g = layout.global(*c);
        match g.checked_sub(offset) {
            Some(local) if local < right.width() => right.dat(local),
            _ => left[g].as_ref(),
        }
    };
    pred.atoms().iter().all(|a| eval_atom_with(a, get))
}

/// Evaluate a conjunction over two *narrow* rows of distinct tables — the
/// shape of a delta-driven index join before any widening. Every atom must
/// reference only `lt` and `rt` (guaranteed for the residual of an
/// `equi_split` between the two tables' singleton source sets).
pub fn eval_pred_two_narrow(
    pred: &Pred,
    lt: ojv_algebra::TableId,
    left: &[Datum],
    rt: ojv_algebra::TableId,
    right: &[Datum],
) -> bool {
    let get = |c: &ojv_algebra::ColRef| {
        if c.table == lt {
            left[c.col].as_ref()
        } else {
            debug_assert_eq!(c.table, rt, "atom references a third table");
            right[c.col].as_ref()
        }
    };
    pred.atoms().iter().all(|a| eval_atom_with(a, get))
}

/// [`eval_pred_two_narrow`] with a columnar right row.
pub fn eval_pred_two_narrow_ref(
    pred: &Pred,
    lt: ojv_algebra::TableId,
    left: &[Datum],
    rt: ojv_algebra::TableId,
    right: RowRef<'_>,
) -> bool {
    let get = |c: &ojv_algebra::ColRef| {
        if c.table == lt {
            left[c.col].as_ref()
        } else {
            debug_assert_eq!(c.table, rt, "atom references a third table");
            right.dat(c.col)
        }
    };
    pred.atoms().iter().all(|a| eval_atom_with(a, get))
}

/// One atom under SQL three-valued logic, columns resolved by `get`.
///
/// The getter returns a borrowed [`DatumRef`] view so one evaluator serves
/// both wide-row slices and columnar rows — `DatumRef::sql_cmp` mirrors
/// `Datum::sql_cmp` exactly.
#[inline]
fn eval_atom_with<'r>(atom: &Atom, get: impl Fn(&ojv_algebra::ColRef) -> DatumRef<'r>) -> bool {
    match atom {
        Atom::Cols(a, op, b) => get(a).sql_cmp(get(b)).map(|o| op.eval(o)).unwrap_or(false),
        Atom::Const(c, op, lit) => get(c)
            .sql_cmp_datum(lit)
            .map(|o| op.eval(o))
            .unwrap_or(false),
        Atom::Between(c, lo, hi) => match (get(c).sql_cmp_datum(lo), get(c).sql_cmp_datum(hi)) {
            (Some(a), Some(b)) => a != std::cmp::Ordering::Less && b != std::cmp::Ordering::Greater,
            _ => false,
        },
    }
}

/// Evaluate a **single-table** conjunction on a *narrow* base-table row:
/// column references index the row directly (`col.col`), no layout needed.
/// Used to run pushed-down scan predicates before widening — the caller
/// must guarantee every atom references only the scanned table.
pub fn eval_pred_narrow(pred: &Pred, row: &[Datum]) -> bool {
    let get = |c: &ojv_algebra::ColRef| row[c.col].as_ref();
    pred.atoms().iter().all(|a| eval_atom_with(a, get))
}

/// [`eval_pred_narrow`] over a columnar base-table row: pushed-down scan
/// predicates evaluate straight off the column pages, no materialization.
pub fn eval_pred_narrow_ref(pred: &Pred, row: RowRef<'_>) -> bool {
    let get = |c: &ojv_algebra::ColRef| row.dat(c.col);
    pred.atoms().iter().all(|a| eval_atom_with(a, get))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ojv_algebra::{CmpOp, ColRef, TableId};
    use ojv_rel::{Column, DataType};
    use ojv_storage::Catalog;

    fn layout() -> ViewLayout {
        let mut c = Catalog::new();
        c.create_table(
            "t",
            vec![
                Column::new("t", "id", DataType::Int, false),
                Column::new("t", "v", DataType::Int, true),
            ],
            &["id"],
        )
        .unwrap();
        c.create_table(
            "u",
            vec![
                Column::new("u", "id", DataType::Int, false),
                Column::new("u", "tid", DataType::Int, false),
            ],
            &["id"],
        )
        .unwrap();
        ViewLayout::new(&c, &["t", "u"]).unwrap()
    }

    fn cr(t: u8, c: usize) -> ColRef {
        ColRef::new(TableId(t), c)
    }

    #[test]
    fn equijoin_atom() {
        let l = layout();
        let atom = Atom::eq(cr(0, 0), cr(1, 1));
        let hit = vec![Datum::Int(1), Datum::Null, Datum::Int(9), Datum::Int(1)];
        let miss = vec![Datum::Int(1), Datum::Null, Datum::Int(9), Datum::Int(2)];
        assert!(eval_atom(&l, &atom, &hit));
        assert!(!eval_atom(&l, &atom, &miss));
    }

    #[test]
    fn null_operands_reject() {
        let l = layout();
        let atom = Atom::eq(cr(0, 0), cr(1, 1));
        let null_left = vec![Datum::Null, Datum::Null, Datum::Int(9), Datum::Int(1)];
        assert!(!eval_atom(&l, &atom, &null_left));
        let cmp = Atom::Const(cr(0, 1), CmpOp::Lt, Datum::Int(5));
        let null_col = vec![Datum::Int(1), Datum::Null, Datum::Null, Datum::Null];
        assert!(!eval_atom(&l, &cmp, &null_col));
    }

    #[test]
    fn between_atom_inclusive() {
        let l = layout();
        let atom = Atom::Between(cr(0, 1), Datum::Int(2), Datum::Int(4));
        let mk = |v: i64| vec![Datum::Int(1), Datum::Int(v), Datum::Null, Datum::Null];
        assert!(eval_atom(&l, &atom, &mk(2)));
        assert!(eval_atom(&l, &atom, &mk(3)));
        assert!(eval_atom(&l, &atom, &mk(4)));
        assert!(!eval_atom(&l, &atom, &mk(1)));
        assert!(!eval_atom(&l, &atom, &mk(5)));
        let null_row = vec![Datum::Int(1), Datum::Null, Datum::Null, Datum::Null];
        assert!(!eval_atom(&l, &atom, &null_row));
    }

    #[test]
    fn conjunction_semantics() {
        let l = layout();
        let p = Pred::new(vec![
            Atom::eq(cr(0, 0), cr(1, 1)),
            Atom::Const(cr(0, 1), CmpOp::Ge, Datum::Int(0)),
        ]);
        let good = vec![Datum::Int(1), Datum::Int(0), Datum::Int(9), Datum::Int(1)];
        let bad = vec![Datum::Int(1), Datum::Int(-1), Datum::Int(9), Datum::Int(1)];
        assert!(eval_pred(&l, &p, &good));
        assert!(!eval_pred(&l, &p, &bad));
        assert!(eval_pred(&l, &Pred::true_(), &bad));
    }
}
