//! `cargo run -p xtask -- <task>` — in-repo developer tasks.
//!
//! Two gates, both dependency-free token-level scanners over the workspace
//! sources and both wired into ci/check.sh:
//!
//! * `lint` — hot-path hygiene rules (see `lint.rs`).
//! * `concheck` — the static side of the concurrency checker in
//!   `ojv-concheck`: lock-order cycles, locks in worker closures, guards
//!   held across callbacks, relaxed atomic orderings.
//!
//! Both exit non-zero when anything fires; `--list` prints the rule table
//! (id, confinement scope, description) sorted by id.
#![forbid(unsafe_code)]

mod lint;

use std::path::Path;

fn usage() -> ! {
    eprintln!("usage: cargo run -p xtask -- <lint|concheck> [--list]");
    std::process::exit(2);
}

/// The `--list` table: one rule per line, `<id> <scope> -- <desc>`, sorted
/// by id (golden-tested in `tests/cli_list.rs`).
fn render_list(rows: &[(&str, &str, &str)]) -> String {
    let idw = rows.iter().map(|r| r.0.len()).max().unwrap_or(0);
    let scw = rows.iter().map(|r| r.1.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (id, scope, desc) in rows {
        out.push_str(&format!("{id:<idw$}  {scope:<scw$}  {desc}\n"));
    }
    out
}

fn lint_list() -> String {
    let rows: Vec<_> = lint::LINTS
        .iter()
        .map(|l| (l.id, l.scope, l.desc))
        .collect();
    render_list(&rows)
}

fn concheck_list() -> String {
    let rows: Vec<_> = ojv_concheck::INVARIANTS
        .iter()
        .map(|i| (i.id, i.scope, i.desc))
        .collect();
    render_list(&rows)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd: Option<&str> = None;
    let mut list = false;
    for a in &args {
        match a.as_str() {
            "lint" | "concheck" if cmd.is_none() => cmd = Some(a),
            "--list" => list = true,
            _ => usage(),
        }
    }
    let Some(cmd) = cmd else { usage() };

    if list {
        print!(
            "{}",
            match cmd {
                "lint" => lint_list(),
                _ => concheck_list(),
            }
        );
        return;
    }

    // crates/xtask/ -> workspace root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("xtask lives two levels below the workspace root");
    let (count, result) = match cmd {
        "lint" => (
            lint::LINTS.len(),
            lint::run(root).map(|v| v.iter().map(|x| x.to_string()).collect::<Vec<_>>()),
        ),
        _ => (
            ojv_concheck::INVARIANTS.len(),
            ojv_concheck::run(root).map(|v| v.iter().map(|x| x.to_string()).collect::<Vec<_>>()),
        ),
    };
    match result {
        Ok(violations) if violations.is_empty() => {
            println!("xtask {cmd}: clean ({count} rules)");
        }
        Ok(violations) => {
            for v in &violations {
                eprintln!("{v}");
            }
            eprintln!("xtask {cmd}: {} violation(s)", violations.len());
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("xtask {cmd}: io error: {e}");
            std::process::exit(1);
        }
    }
}
