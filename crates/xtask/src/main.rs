//! `cargo run -p xtask -- <task>` — in-repo developer tasks.
//!
//! Currently one task: `lint`, a dependency-free token-level scanner that
//! enforces the pipeline's hot-path hygiene rules (see `lint.rs`). Exits
//! non-zero when any lint fires, which is how ci/check.sh gates on it.
#![forbid(unsafe_code)]

mod lint;

use std::path::Path;

fn usage() -> ! {
    eprintln!("usage: cargo run -p xtask -- lint [--list]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut list = false;
    for a in &args {
        match a.as_str() {
            "lint" => {}
            "--list" => list = true,
            _ => usage(),
        }
    }
    if args.is_empty() {
        usage();
    }

    if list {
        for l in &lint::LINTS {
            println!("{:<16} {}", l.id, l.desc);
        }
        return;
    }

    // crates/xtask/ -> workspace root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("xtask lives two levels below the workspace root");
    match lint::run(root) {
        Ok(violations) if violations.is_empty() => {
            println!("xtask lint: clean ({} lints)", lint::LINTS.len());
        }
        Ok(violations) => {
            for v in &violations {
                eprintln!("{v}");
            }
            eprintln!("xtask lint: {} violation(s)", violations.len());
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("xtask lint: io error: {e}");
            std::process::exit(1);
        }
    }
}
