//! Dependency-free token-level lint gate for the maintenance pipeline.
//!
//! The scanner is built on `ojv_concheck::scan` — the same masking and
//! tokenizing substrate the concurrency checker uses: string/char literals
//! and comments are blanked (preserving newlines), the rest is tokenized,
//! and lints match token sequences — so `FxHashMap::new()` never matches the
//! `default-hasher` lint and `"unsafe"` inside a string never matches
//! `unsafe-code`. Each lint has a stable id and a per-line escape hatch:
//! `// lint:allow(<id>)` on the offending line or the line directly above
//! suppresses the finding.

use std::io;
use std::path::Path;

use ojv_concheck::model;
use ojv_concheck::scan::{self, collect_rs, Tok};

/// A lint rule known to the scanner.
pub struct LintDef {
    pub id: &'static str,
    /// Where the rule is enforced (the confinement scope `--list` prints).
    pub scope: &'static str,
    pub desc: &'static str,
}

/// All lints, sorted by id — the order `--list` prints them.
pub const LINTS: [LintDef; 12] = [
    LintDef {
        id: "cast",
        scope: "crates/durability/src/",
        desc: "no `as u32`/`as u64` in the WAL framing (crates/durability) — use try_from",
    },
    LintDef {
        id: "default-hasher",
        scope: "crates/exec/src/, crates/storage/src/",
        desc:
            "no HashMap::new()/HashSet::new() default hasher in exec/storage (use ojv_rel fxhash)",
    },
    LintDef {
        id: "feed-eval-confined",
        scope: "everywhere but crates/feed/src/",
        desc: "no subscription-predicate evaluation (matches_row) outside crates/feed — \
               per-subscriber filtering must go through the hub's deduplicated fan-out, \
               never ad hoc loops that re-evaluate once per subscriber",
    },
    LintDef {
        id: "fs-outside-durability",
        scope: "everywhere but crates/{durability,bench,xtask,concheck}/",
        desc: "no std::fs / File:: outside crates/durability, crates/bench, crates/xtask, \
               crates/concheck (everything else goes through the Vfs trait)",
    },
    LintDef {
        id: "mutex-in-exec-hot-path",
        scope: "crates/exec/src/ except parallel.rs",
        desc: "no lock types (Mutex/RwLock/Condvar) in the executor outside parallel.rs — \
               operators share state via &-references and atomics only, so no operator can \
               block a morsel worker",
    },
    LintDef {
        id: "panic-hot-path",
        scope: "crates/exec/src/{eval,ops/join,ops/dedup}.rs",
        desc: "no unwrap()/expect()/panic! in eval/join/dedup hot paths outside tests",
    },
    LintDef {
        id: "plan-compile-confined",
        scope: "crates/core/src/ except {compile,analyze}.rs",
        desc: "plan derivation/verification (primary_delta_plan, verify_static, \
               verify_maintenance, verify_from_view) only in core's compile/analyze modules \
               — everything else consumes CompiledMaintenancePlan",
    },
    LintDef {
        id: "sched-seed-logged",
        scope: "all scanned files",
        desc: "every run_seeded/interleavings call site must embed its seed (or trace) in a \
               nearby string — a failure that does not name its schedule cannot be replayed",
    },
    LintDef {
        id: "shard-routing-confined",
        scope: "everywhere but crates/storage/src/shard.rs, crates/core/src/shard{,_durable}.rs",
        desc: "no direct ShardId/ShardRouter construction or route_* calls outside the \
               router's module and core's shard facade — a second routing decision point \
               can disagree with the facade's and send a row's maintenance to the wrong \
               shard",
    },
    LintDef {
        id: "unsafe-code",
        scope: "everywhere but crates/rel/src/alloc.rs",
        desc: "unsafe only in the allowlisted crates/rel/src/alloc.rs",
    },
    LintDef {
        id: "vec-vec-datum",
        scope: "crates/exec/src/",
        desc: "no Vec<Vec<Datum>> row batches in crates/exec (use RowBuf)",
    },
    LintDef {
        id: "view-store-mutation",
        scope: "crates/core/src/ except {materialize,maintain,baseline}.rs",
        desc: "no direct ViewStore mutation (store_mut) outside the maintenance commit path \
               (core's materialize/maintain/baseline) — readers go through snapshots so the \
               registry's journaled tips never drift from the working stores",
    },
];

/// One finding: which lint fired, where, and the offending source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub lint: &'static str,
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    pub excerpt: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.excerpt
        )
    }
}

/// Does `lint` apply to the file at workspace-relative `path`?
fn applies(lint: &str, path: &str) -> bool {
    match lint {
        "vec-vec-datum" => path.starts_with("crates/exec/src/"),
        "default-hasher" => {
            path.starts_with("crates/exec/src/") || path.starts_with("crates/storage/src/")
        }
        "panic-hot-path" => matches!(
            path,
            "crates/exec/src/eval.rs"
                | "crates/exec/src/ops/join.rs"
                | "crates/exec/src/ops/dedup.rs"
        ),
        "unsafe-code" => path != "crates/rel/src/alloc.rs",
        // Durability is where the real filesystem is abstracted behind the
        // Vfs trait; bench needs to emit result files; xtask and concheck
        // *are* the file scanners. Everyone else must go through a Vfs so
        // fault injection covers them.
        "fs-outside-durability" => {
            !path.starts_with("crates/durability/")
                && !path.starts_with("crates/bench/")
                && !path.starts_with("crates/xtask/")
                && !path.starts_with("crates/concheck/")
        }
        // Silent truncation in record framing corrupts the log; the WAL
        // code converts with try_from and handles the error.
        "cast" => path.starts_with("crates/durability/src/"),
        // Plans are compiled (and statically verified) exactly once, in the
        // compile module; analyze hosts the derivation primitives. The rest
        // of the crate must go through the cached CompiledMaintenancePlan so
        // the hot path never re-derives or re-verifies.
        "plan-compile-confined" => {
            path.starts_with("crates/core/src/")
                && path != "crates/core/src/compile.rs"
                && path != "crates/core/src/analyze.rs"
        }
        // Every ViewStore mutation must be journaled for the snapshot
        // registry; mutations are confined to the commit path (maintain,
        // the GK/recompute baselines) and the store's own module. Anything
        // else mutating a store would bypass the journal and desynchronize
        // the registry's version chains.
        "view-store-mutation" => {
            path.starts_with("crates/core/src/")
                && path != "crates/core/src/materialize.rs"
                && path != "crates/core/src/maintain.rs"
                && path != "crates/core/src/baseline.rs"
        }
        // The morsel driver in parallel.rs is the one sanctioned
        // synchronization point of the executor; an operator that blocks on
        // a lock inside a worker closure can deadlock the claim loop (see
        // the concheck `lock-in-worker` invariant, which catches the
        // acquisition — this lint bans even *naming* a lock type).
        "mutex-in-exec-hot-path" => {
            path.starts_with("crates/exec/src/") && path != "crates/exec/src/parallel.rs"
        }
        // Subscription predicates are evaluated once per filter group inside
        // the feed hub's fan-out; a `matches_row` call site anywhere else is
        // a per-subscriber loop bypassing the dedup (the exact O(subscribers)
        // blow-up the hub exists to avoid).
        "feed-eval-confined" => !path.starts_with("crates/feed/src/"),
        // Routing is decided in exactly two places: the router's own module
        // and the core facade that owns the shards. Any other call site
        // could hash differently (or construct a ShardId out of thin air)
        // and route a row's maintenance to a shard that does not own it.
        "shard-routing-confined" => {
            path != "crates/storage/src/shard.rs"
                && path != "crates/core/src/shard.rs"
                && path != "crates/core/src/shard_durable.rs"
        }
        // Seed discipline applies to every scanned file, test or not.
        "sched-seed-logged" => true,
        _ => false,
    }
}

/// Scan one file's source. `rel_path` is workspace-relative with `/`
/// separators; it decides which lints apply.
pub fn scan_file(rel_path: &str, src: &str) -> Vec<Violation> {
    let path = rel_path.replace('\\', "/");
    let masked = scan::mask(src, "lint:allow(");
    let toks = scan::tokenize(&masked.text);
    let in_test = scan::test_lines(&masked.text);
    let src_lines: Vec<&str> = src.lines().collect();
    let mut out = Vec::new();

    let seq = |i: usize, pat: &[&str]| {
        pat.iter()
            .enumerate()
            .all(|(k, p)| toks.get(i + k).is_some_and(|t| t.text == *p))
    };

    let record = |lint: &'static str, line: usize, out: &mut Vec<Violation>| {
        if masked.allowed(line, lint) {
            return;
        }
        out.push(Violation {
            lint,
            file: path.clone(),
            line: line + 1,
            excerpt: src_lines.get(line).map_or("", |l| l.trim()).to_string(),
        });
    };

    for (i, tok) in toks.iter().enumerate() {
        let line = tok.line;
        if applies("vec-vec-datum", &path) && seq(i, &["Vec", "<", "Vec", "<", "Datum", ">", ">"]) {
            record("vec-vec-datum", line, &mut out);
        }
        if applies("default-hasher", &path)
            && (tok.text == "HashMap" || tok.text == "HashSet")
            && seq(i + 1, &[":", ":", "new", "(", ")"])
        {
            record("default-hasher", line, &mut out);
        }
        if applies("panic-hot-path", &path)
            && !in_test.get(line).copied().unwrap_or(false)
            && (seq(i, &[".", "unwrap", "(", ")"])
                || seq(i, &[".", "expect", "("])
                || seq(i, &["panic", "!", "("]))
        {
            record("panic-hot-path", line, &mut out);
        }
        if applies("unsafe-code", &path) && tok.text == "unsafe" {
            record("unsafe-code", line, &mut out);
        }
        if applies("fs-outside-durability", &path)
            && (seq(i, &["std", ":", ":", "fs"]) || seq(i, &["File", ":", ":"]))
        {
            record("fs-outside-durability", line, &mut out);
        }
        if applies("cast", &path)
            && tok.text == "as"
            && toks
                .get(i + 1)
                .is_some_and(|t| t.text == "u32" || t.text == "u64")
        {
            record("cast", line, &mut out);
        }
        if applies("plan-compile-confined", &path)
            && !in_test.get(line).copied().unwrap_or(false)
            && matches!(
                tok.text,
                "primary_delta_plan" | "verify_static" | "verify_maintenance" | "verify_from_view"
            )
        {
            record("plan-compile-confined", line, &mut out);
        }
        if applies("view-store-mutation", &path)
            && !in_test.get(line).copied().unwrap_or(false)
            && tok.text == "store_mut"
        {
            record("view-store-mutation", line, &mut out);
        }
        if applies("mutex-in-exec-hot-path", &path)
            && matches!(tok.text, "Mutex" | "RwLock" | "Condvar")
        {
            record("mutex-in-exec-hot-path", line, &mut out);
        }
        if applies("feed-eval-confined", &path)
            && !in_test.get(line).copied().unwrap_or(false)
            && tok.text == "matches_row"
        {
            record("feed-eval-confined", line, &mut out);
        }
        if applies("shard-routing-confined", &path)
            && !in_test.get(line).copied().unwrap_or(false)
            && ((matches!(tok.text, "ShardId" | "ShardRouter")
                && seq(i + 1, &[":", ":", "new", "("]))
                || (matches!(tok.text, "route" | "route_key" | "route_ref" | "route_with")
                    && i > 0
                    && toks[i - 1].text == "."
                    && toks.get(i + 1).is_some_and(|t| t.text == "(")))
        {
            record("shard-routing-confined", line, &mut out);
        }
    }

    if applies("sched-seed-logged", &path) {
        seed_logged(&path, &masked, &toks, &src_lines, &mut out);
    }
    out
}

/// The `sched-seed-logged` rule: a function that drives the deterministic
/// scheduler (`run_seeded(..)` or `interleavings(..)`) must mention its seed
/// (or recorded trace) in at least one string literal inside that function —
/// an assert message, a `println!`, a `format!` — so a failing schedule can
/// always be replayed from the output alone.
fn seed_logged(
    path: &str,
    masked: &scan::Masked,
    toks: &[Tok<'_>],
    src_lines: &[&str],
    out: &mut Vec<Violation>,
) {
    let fm = model::build(toks);
    for (i, tok) in toks.iter().enumerate() {
        if !matches!(tok.text, "run_seeded" | "interleavings") {
            continue;
        }
        // Call sites only: `run_seeded(`, not the definition (`fn
        // run_seeded(`) and not an import path segment or `use` list entry.
        let is_call = toks.get(i + 1).is_some_and(|t| t.text == "(");
        if !is_call || (i > 0 && toks[i - 1].text == "fn") {
            continue;
        }
        let Some(f) = fm.enclosing_fn(i) else {
            continue;
        };
        let mentions_seed = masked.strings.iter().any(|(l, s)| {
            (f.lines.0..=f.lines.1).contains(l)
                && (s.to_ascii_lowercase().contains("seed")
                    || s.to_ascii_lowercase().contains("trace"))
        });
        if !mentions_seed && !masked.allowed(tok.line, "sched-seed-logged") {
            out.push(Violation {
                lint: "sched-seed-logged",
                file: path.to_string(),
                line: tok.line + 1,
                excerpt: src_lines.get(tok.line).map_or("", |l| l.trim()).to_string(),
            });
        }
    }
}

/// Scan every `.rs` file under `crates/`, `src/`, and `tests/` of the
/// workspace rooted at `root`. Returns all findings, ordered by path.
pub fn run(root: &Path) -> io::Result<Vec<Violation>> {
    let mut files = scan::read_workspace(root)?;
    // The workspace-root integration suites are in scope too (notably for
    // sched-seed-logged): read_workspace only walks crates/ and src/.
    let mut extra = Vec::new();
    collect_rs(&root.join("tests"), &mut extra)?;
    extra.sort();
    for f in &extra {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(f)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(f)?;
        files.push((rel, src));
    }
    let mut all = Vec::new();
    for (rel, src) in &files {
        all.extend(scan_file(rel, src));
    }
    Ok(all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    #[test]
    fn lint_ids_are_distinct() {
        for (i, a) in LINTS.iter().enumerate() {
            for b in &LINTS[i + 1..] {
                assert_ne!(a.id, b.id);
            }
        }
    }

    /// `--list` order is part of the golden output: ids sorted, stable.
    #[test]
    fn lints_are_sorted_by_id() {
        for w in LINTS.windows(2) {
            assert!(w[0].id < w[1].id, "{} !< {}", w[0].id, w[1].id);
        }
    }

    #[test]
    fn vec_vec_datum_detected_in_exec_only() {
        let src = "fn f() { let x: Vec<Vec<Datum>> = Vec::new(); }\n";
        let v = scan_file("crates/exec/src/ops/foo.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "vec-vec-datum");
        assert_eq!(v[0].line, 1);
        // Same code outside crates/exec is not in scope.
        assert!(scan_file("crates/core/src/foo.rs", src).is_empty());
    }

    #[test]
    fn vec_vec_datum_spanning_whitespace_still_matches() {
        let src = "fn f() { let x: Vec< Vec < Datum > > = make(); }\n";
        let v = scan_file("crates/exec/src/foo.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "vec-vec-datum");
    }

    #[test]
    fn default_hasher_detected_but_fxhash_is_fine() {
        let bad = "fn f() { return HashMap::new(); }\n";
        let v = scan_file("crates/storage/src/foo.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "default-hasher");
        // Identifier boundary: FxHashMap must NOT match HashMap.
        let good = "fn f() { let m: FxHashMap<u32, u32> = FxHashMap::default(); }\n";
        assert!(scan_file("crates/storage/src/foo.rs", good).is_empty());
        let set = "fn f() { let s = HashSet::new(); }\n";
        assert_eq!(
            scan_file("crates/exec/src/foo.rs", set)[0].lint,
            "default-hasher"
        );
    }

    #[test]
    fn panic_hot_path_skips_tests_and_out_of_scope_files() {
        let src = "fn f(o: Option<u32>) -> u32 { o.unwrap() }\n";
        let v = scan_file("crates/exec/src/eval.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "panic-hot-path");
        // The same code inside a #[cfg(test)] region is exempt.
        let tested =
            "#[cfg(test)]\nmod tests {\n    fn f(o: Option<u32>) -> u32 { o.unwrap() }\n}\n";
        assert!(scan_file("crates/exec/src/eval.rs", tested).is_empty());
        // Non-hot-path files are out of scope.
        assert!(scan_file("crates/exec/src/ops/agg.rs", src).is_empty());
        // expect and panic! also fire.
        let src2 = "fn g(o: Option<u32>) { o.expect(\"boom\"); panic!(\"no\"); }\n";
        let v2 = scan_file("crates/exec/src/ops/join.rs", src2);
        assert_eq!(v2.len(), 2);
    }

    #[test]
    fn unsafe_detected_everywhere_except_alloc() {
        let src = "fn f() { unsafe { std::hint::unreachable_unchecked() } }\n";
        let v = scan_file("crates/exec/src/foo.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "unsafe-code");
        assert!(scan_file("crates/rel/src/alloc.rs", src).is_empty());
        // Identifier boundary: `unsafe_code` (as in the forbid attribute) is
        // one token and must not match.
        let attr = "#![forbid(unsafe_code)]\n";
        assert!(scan_file("crates/core/src/lib.rs", attr).is_empty());
    }

    #[test]
    fn literals_and_comments_are_masked() {
        let src = concat!(
            "// unsafe HashMap::new() in a comment\n",
            "/* unsafe\n   Vec<Vec<Datum>> */\n",
            "fn f() -> &'static str { \"unsafe .unwrap() HashMap::new()\" }\n",
            "fn g() -> char { '\\'' }\n",
            "fn h() -> &'static str { r#\"unsafe \"quoted\" panic!(\"#  }\n",
        );
        assert!(scan_file("crates/exec/src/eval.rs", src).is_empty());
    }

    #[test]
    fn lint_allow_suppresses_on_same_or_previous_line() {
        let same = "fn f() { let m = HashMap::new(); } // lint:allow(default-hasher)\n";
        assert!(scan_file("crates/storage/src/foo.rs", same).is_empty());
        let above = "// lint:allow(default-hasher) keyed by small ints\nfn f() { let m = HashMap::new(); }\n";
        assert!(scan_file("crates/storage/src/foo.rs", above).is_empty());
        // The wrong id does not suppress.
        let wrong = "fn f() { let m = HashMap::new(); } // lint:allow(unsafe-code)\n";
        assert_eq!(scan_file("crates/storage/src/foo.rs", wrong).len(), 1);
        // An allow two lines up does not leak downward.
        let far = "// lint:allow(default-hasher)\n\nfn f() { let m = HashMap::new(); }\n";
        assert_eq!(scan_file("crates/storage/src/foo.rs", far).len(), 1);
    }

    #[test]
    fn fs_banned_outside_durability_bench_xtask_concheck() {
        let uses = "use std::fs;\nfn f() { let _ = std::fs::read(\"x\"); }\n";
        let v = scan_file("crates/core/src/durable.rs", uses);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|x| x.lint == "fs-outside-durability"));
        let file = "fn f() { let _ = File::open(\"x\"); }\n";
        assert_eq!(
            scan_file("crates/exec/src/foo.rs", file)[0].lint,
            "fs-outside-durability"
        );
        // Identifier boundary: FaultFile::new is not File::.
        let fault = "fn f() { let _ = FaultFile::new(inner, spec); }\n";
        assert!(scan_file("crates/testkit/src/fault.rs", fault).is_empty());
        // The allowlisted crates are exempt — including concheck, whose
        // workspace reader is a file scanner like xtask's.
        for path in [
            "crates/durability/src/vfs.rs",
            "crates/bench/src/bin/repro.rs",
            "crates/xtask/src/lint.rs",
            "crates/concheck/src/scan.rs",
        ] {
            assert!(scan_file(path, uses).is_empty(), "{path}");
        }
        // The escape hatch still works.
        let allowed = "use std::fs; // lint:allow(fs-outside-durability)\n";
        assert!(scan_file("crates/core/src/foo.rs", allowed).is_empty());
    }

    #[test]
    fn cast_banned_in_wal_framing() {
        let src = "fn f(n: usize) -> u32 { n as u32 }\nfn g(n: usize) -> u64 { n as u64 }\n";
        let v = scan_file("crates/durability/src/wal.rs", src);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|x| x.lint == "cast"));
        // Widening into usize is fine (cannot truncate).
        let widen = "fn f(n: u32) -> usize { n as usize }\n";
        assert!(scan_file("crates/durability/src/wal.rs", widen).is_empty());
        // Out of scope elsewhere.
        assert!(scan_file("crates/exec/src/eval.rs", src).is_empty());
        // Escape hatch.
        let allowed = "fn f(n: usize) -> u32 { n as u32 } // lint:allow(cast)\n";
        assert!(scan_file("crates/durability/src/wal.rs", allowed).is_empty());
    }

    #[test]
    fn plan_compile_confined_to_compile_and_analyze() {
        let src = "fn f(a: &ViewAnalysis) { let _ = a.primary_delta_plan(t, true, true); }\n";
        let v = scan_file("crates/core/src/maintain.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "plan-compile-confined");
        // The compile and analyze modules are the sanctioned homes.
        assert!(scan_file("crates/core/src/compile.rs", src).is_empty());
        assert!(scan_file("crates/core/src/analyze.rs", src).is_empty());
        // Other crates are out of scope (bench renders plans for reports).
        assert!(scan_file("crates/bench/src/bin/repro.rs", src).is_empty());
        // Every verifier entry point is covered.
        let verifiers = "fn g(a: &ViewAnalysis) {\n    a.verify_static(c);\n    a.verify_maintenance(t, true, true, &m, None);\n    a.verify_from_view(0);\n}\n";
        let v2 = scan_file("crates/core/src/sql.rs", verifiers);
        assert_eq!(v2.len(), 3);
        assert!(v2.iter().all(|x| x.lint == "plan-compile-confined"));
        // Tests may exercise the primitives directly.
        let tested = "#[cfg(test)]\nmod tests {\n    fn f(a: &ViewAnalysis) { a.primary_delta_plan(t, true, true); }\n}\n";
        assert!(scan_file("crates/core/src/sql.rs", tested).is_empty());
        // Escape hatch.
        let allowed =
            "fn f(a: &A) { a.primary_delta_plan(t, true, true); } // lint:allow(plan-compile-confined)\n";
        assert!(scan_file("crates/core/src/maintain.rs", allowed).is_empty());
        // Identifier boundary: verify_maintenance_graph is a different token.
        let other = "fn h() { ojv_analysis::verify_maintenance_graph(&g, &m, fks); }\n";
        assert!(scan_file("crates/core/src/maintain.rs", other).is_empty());
    }

    #[test]
    fn view_store_mutation_confined_to_commit_path() {
        let src = "fn f(v: &mut MaterializedView) { v.store_mut().insert(row, \"v\").unwrap(); }\n";
        let v = scan_file("crates/core/src/database.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "view-store-mutation");
        // The commit path and the store's own module are the sanctioned homes.
        for path in [
            "crates/core/src/materialize.rs",
            "crates/core/src/maintain.rs",
            "crates/core/src/baseline.rs",
        ] {
            assert!(scan_file(path, src).is_empty(), "{path}");
        }
        // Other crates are out of scope.
        assert!(scan_file("crates/bench/src/multiview.rs", src).is_empty());
        // Tests may poke stores directly.
        let tested =
            "#[cfg(test)]\nmod tests {\n    fn f(v: &mut MaterializedView) { v.store_mut(); }\n}\n";
        assert!(scan_file("crates/core/src/database.rs", tested).is_empty());
        // Escape hatch.
        let allowed = "fn f(v: &mut MaterializedView) { v.store_mut(); } // lint:allow(view-store-mutation)\n";
        assert!(scan_file("crates/core/src/database.rs", allowed).is_empty());
        // Identifier boundary: `restore_mutations` is a different token.
        let other = "fn g() { restore_mutations(); }\n";
        assert!(scan_file("crates/core/src/database.rs", other).is_empty());
    }

    #[test]
    fn mutex_banned_in_exec_outside_parallel() {
        let src = "use std::sync::Mutex;\nfn f() { let m: Mutex<u32> = Mutex::new(0); }\n";
        let v = scan_file("crates/exec/src/ops/join.rs", src);
        assert_eq!(v.len(), 3, "both the use and both mentions fire");
        assert!(v.iter().all(|x| x.lint == "mutex-in-exec-hot-path"));
        // RwLock and Condvar are lock types too.
        let rw = "fn f() { let l = RwLock::new(0); let c = Condvar::new(); }\n";
        assert_eq!(scan_file("crates/exec/src/hashtbl.rs", rw).len(), 2);
        // parallel.rs is the sanctioned synchronization point.
        assert!(scan_file("crates/exec/src/parallel.rs", src).is_empty());
        // Other crates are out of scope (core's snapshot registry is a Mutex).
        assert!(scan_file("crates/core/src/snapshot.rs", src).is_empty());
        // Identifier boundary: MutexGuard in a comment or FakeMutex do not
        // match — but the real `MutexGuard` type does not appear in exec.
        let other = "fn f(g: FakeMutex) {}\n";
        assert!(scan_file("crates/exec/src/ops/join.rs", other).is_empty());
        // Escape hatch.
        let allowed = "fn f() { let m = Mutex::new(0); } // lint:allow(mutex-in-exec-hot-path)\n";
        assert!(scan_file("crates/exec/src/ops/join.rs", allowed).is_empty());
    }

    #[test]
    fn feed_eval_confined_to_the_feed_crate() {
        let src = "fn f(fl: &FeedFilter, r: &[Datum]) -> bool { fl.matches_row(r, cols) }\n";
        let v = scan_file("crates/core/src/database.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "feed-eval-confined");
        // Integration suites are scanned too — a per-subscriber loop in a
        // test file is the same O(subscribers) bypass.
        assert_eq!(scan_file("tests/feed.rs", src).len(), 1);
        // The feed crate is the sanctioned home.
        assert!(scan_file("crates/feed/src/hub.rs", src).is_empty());
        assert!(scan_file("crates/feed/src/filter.rs", src).is_empty());
        // In-file test modules may exercise the predicate directly.
        let tested = "#[cfg(test)]\nmod tests {\n    fn f() { fl.matches_row(r, cols); }\n}\n";
        assert!(scan_file("crates/core/src/database.rs", tested).is_empty());
        // Escape hatch.
        let allowed = "fn f() { fl.matches_row(r, cols) } // lint:allow(feed-eval-confined)\n";
        assert!(scan_file("crates/bench/src/feedbench.rs", allowed).is_empty());
        // Identifier boundary: matches_rows / row_matches are different tokens.
        let other = "fn g() { matches_rows(); row_matches(); }\n";
        assert!(scan_file("crates/core/src/database.rs", other).is_empty());
    }

    #[test]
    fn shard_routing_confined_to_router_and_facade() {
        let ctor = "fn f() -> ShardId { ShardId::new(3) }\n";
        let v = scan_file("crates/core/src/database.rs", ctor);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "shard-routing-confined");
        // Building a private router is the same bypass.
        let router = "fn f() { let r = ShardRouter::new(4); }\n";
        assert_eq!(
            scan_file("crates/bench/src/shardbench.rs", router)[0].lint,
            "shard-routing-confined"
        );
        // Every route_* call site is covered.
        let routes = "fn g(r: ShardRouter) {\n    r.route(row, cols);\n    r.route_key(key);\n    r.route_ref(rr, cols);\n    r.route_with(cols, get);\n}\n";
        let v2 = scan_file("crates/core/src/durable.rs", routes);
        assert_eq!(v2.len(), 4);
        assert!(v2.iter().all(|x| x.lint == "shard-routing-confined"));
        // The router's module and core's shard facade are the sanctioned homes.
        for path in [
            "crates/storage/src/shard.rs",
            "crates/core/src/shard.rs",
            "crates/core/src/shard_durable.rs",
        ] {
            assert!(scan_file(path, ctor).is_empty(), "{path}");
            assert!(scan_file(path, routes).is_empty(), "{path}");
        }
        // In-file test modules may route directly.
        let tested = "#[cfg(test)]\nmod tests {\n    fn f() { let _ = ShardId::new(0); }\n}\n";
        assert!(scan_file("crates/core/src/database.rs", tested).is_empty());
        // Escape hatch.
        let allowed = "fn f() { ShardId::new(0); } // lint:allow(shard-routing-confined)\n";
        assert!(scan_file("crates/core/src/database.rs", allowed).is_empty());
        // Identifier boundary: shard_of_row / a struct field named route are
        // different tokens, and `ShardId` without `::new` (a type position)
        // is fine.
        let other = "fn h(id: ShardId) { db.shard_of_row(t, r); s.enroute(x); }\n";
        assert!(scan_file("crates/core/src/database.rs", other).is_empty());
    }

    /// A seeded routing violation under tests/ fails the gate — integration
    /// suites must go through the facade too.
    #[test]
    fn seeded_shard_routing_violation_fails_the_gate() {
        let root = std::env::temp_dir().join(format!("xtask-lint-shard-{}", std::process::id()));
        let dir = root.join("tests");
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join("seeded.rs"),
            "fn f() { let r = ShardRouter::new(2); let _ = r.route_key(&key); }\n",
        )
        .unwrap();
        let v = run(&root).unwrap();
        fs::remove_dir_all(&root).unwrap();
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|x| x.lint == "shard-routing-confined"));
        assert_eq!(v[0].file, "tests/seeded.rs");
    }

    /// A seeded feed-eval violation fails the gate like the older lints.
    #[test]
    fn seeded_feed_eval_violation_fails_the_gate() {
        let root = std::env::temp_dir().join(format!("xtask-lint-feed-{}", std::process::id()));
        let dir = root.join("crates/bench/src");
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join("seeded.rs"),
            "fn f() { for s in subs { s.filter.matches_row(row, cols); } }\n",
        )
        .unwrap();
        let v = run(&root).unwrap();
        fs::remove_dir_all(&root).unwrap();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "feed-eval-confined");
        assert_eq!(v[0].file, "crates/bench/src/seeded.rs");
    }

    #[test]
    fn sched_seed_must_be_logged() {
        // A seeded run whose assertions never mention the seed: violation.
        let bad = "#[test]\nfn t() {\n    let tr = run_seeded(7, &mut actors);\n    assert_eq!(a, b);\n}\n";
        let v = scan_file("tests/foo.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "sched-seed-logged");
        assert_eq!(v[0].line, 3);
        // Embedding the seed in an assert message satisfies the rule.
        let good = "#[test]\nfn t() {\n    let tr = run_seeded(7, &mut actors);\n    assert_eq!(a, b, \"diverged under seed {seed}\");\n}\n";
        assert!(scan_file("tests/foo.rs", good).is_empty());
        // `interleavings` drivers may name the trace instead.
        let tr = "#[test]\nfn t() {\n    for trace in interleavings(&[2, 2]) {\n        step();\n        assert_eq!(a, b, \"replay trace {trace:?}\");\n    }\n}\n";
        assert!(scan_file("tests/foo.rs", tr).is_empty());
        // The definition site and `use` imports are not call sites.
        let def = "pub fn run_seeded(seed: u64, actors: &mut [Actor]) -> Vec<usize> { vec![] }\n";
        assert!(scan_file("crates/testkit/src/sched.rs", def).is_empty());
        let import = "use ojv_testkit::sched::{interleavings, run_seeded};\n";
        assert!(scan_file("tests/foo.rs", import).is_empty());
        // Escape hatch.
        let allowed =
            "fn t() {\n    // lint:allow(sched-seed-logged)\n    run_seeded(7, &mut actors);\n}\n";
        assert!(scan_file("tests/foo.rs", allowed).is_empty());
    }

    /// A seeded fs violation fails the gate just like the older lints.
    #[test]
    fn seeded_fs_violation_fails_the_gate() {
        let root = std::env::temp_dir().join(format!("xtask-lint-fs-{}", std::process::id()));
        let dir = root.join("crates/core/src");
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join("seeded.rs"),
            "fn f() { let _ = std::fs::read(\"x\"); }\n",
        )
        .unwrap();
        let v = run(&root).unwrap();
        fs::remove_dir_all(&root).unwrap();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "fs-outside-durability");
        assert_eq!(v[0].file, "crates/core/src/seeded.rs");
    }

    /// The CI gate behavior: a seeded violation anywhere in the scanned tree
    /// makes `run` report it (and `main` turn that into a non-zero exit,
    /// which is what fails ci/check.sh).
    #[test]
    fn seeded_violation_fails_the_gate() {
        let root = std::env::temp_dir().join(format!("xtask-lint-seed-{}", std::process::id()));
        let dir = root.join("crates/exec/src");
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join("seeded.rs"),
            "fn f() { let rows: Vec<Vec<Datum>> = Vec::new(); }\n",
        )
        .unwrap();
        let v = run(&root).unwrap();
        fs::remove_dir_all(&root).unwrap();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "vec-vec-datum");
        assert_eq!(v[0].file, "crates/exec/src/seeded.rs");
    }

    /// A seeded mutex-in-worker violation under tests/ also fails the gate —
    /// `run` scans the workspace-root integration suites too.
    #[test]
    fn seeded_unlogged_seed_under_tests_fails_the_gate() {
        let root = std::env::temp_dir().join(format!("xtask-lint-sched-{}", std::process::id()));
        let dir = root.join("tests");
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join("seeded.rs"),
            "fn t() {\n    run_seeded(3, &mut actors);\n    assert!(ok);\n}\n",
        )
        .unwrap();
        let v = run(&root).unwrap();
        fs::remove_dir_all(&root).unwrap();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "sched-seed-logged");
        assert_eq!(v[0].file, "tests/seeded.rs");
    }

    /// The repo itself must scan clean — this is the in-tree mirror of the
    /// `cargo run -p xtask -- lint` gate in ci/check.sh.
    #[test]
    fn repo_scans_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let v = run(root).unwrap();
        assert!(
            v.is_empty(),
            "lint violations:\n{}",
            v.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
