//! Dependency-free token-level lint gate for the maintenance pipeline.
//!
//! The scanner masks string/char literals and comments (preserving newlines),
//! tokenizes what remains, and matches token sequences — so `FxHashMap::new()`
//! never matches the `default-hasher` lint and `"unsafe"` inside a string
//! never matches `unsafe-code`. Each lint has a stable id and a per-line
//! escape hatch: `// lint:allow(<id>)` on the offending line or the line
//! directly above suppresses the finding.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A lint rule known to the scanner.
pub struct LintDef {
    pub id: &'static str,
    pub desc: &'static str,
}

/// All lints, in the order `--list` prints them.
pub const LINTS: [LintDef; 8] = [
    LintDef {
        id: "vec-vec-datum",
        desc: "no Vec<Vec<Datum>> row batches in crates/exec (use RowBuf)",
    },
    LintDef {
        id: "default-hasher",
        desc:
            "no HashMap::new()/HashSet::new() default hasher in exec/storage (use ojv_rel fxhash)",
    },
    LintDef {
        id: "panic-hot-path",
        desc: "no unwrap()/expect()/panic! in eval/join/dedup hot paths outside tests",
    },
    LintDef {
        id: "unsafe-code",
        desc: "unsafe only in the allowlisted crates/rel/src/alloc.rs",
    },
    LintDef {
        id: "fs-outside-durability",
        desc: "no std::fs / File:: outside crates/durability, crates/bench, crates/xtask \
               (everything else goes through the Vfs trait)",
    },
    LintDef {
        id: "cast",
        desc: "no `as u32`/`as u64` in the WAL framing (crates/durability) — use try_from",
    },
    LintDef {
        id: "plan-compile-confined",
        desc: "plan derivation/verification (primary_delta_plan, verify_static, \
               verify_maintenance, verify_from_view) only in core's compile/analyze modules \
               — everything else consumes CompiledMaintenancePlan",
    },
    LintDef {
        id: "view-store-mutation",
        desc: "no direct ViewStore mutation (store_mut) outside the maintenance commit path \
               (core's materialize/maintain/baseline) — readers go through snapshots so the \
               registry's journaled tips never drift from the working stores",
    },
];

/// One finding: which lint fired, where, and the offending source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub lint: &'static str,
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    pub excerpt: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.excerpt
        )
    }
}

/// Does `lint` apply to the file at workspace-relative `path`?
fn applies(lint: &str, path: &str) -> bool {
    match lint {
        "vec-vec-datum" => path.starts_with("crates/exec/src/"),
        "default-hasher" => {
            path.starts_with("crates/exec/src/") || path.starts_with("crates/storage/src/")
        }
        "panic-hot-path" => matches!(
            path,
            "crates/exec/src/eval.rs"
                | "crates/exec/src/ops/join.rs"
                | "crates/exec/src/ops/dedup.rs"
        ),
        "unsafe-code" => path != "crates/rel/src/alloc.rs",
        // Durability is where the real filesystem is abstracted behind the
        // Vfs trait; bench needs to emit result files; xtask *is* the file
        // scanner. Everyone else must go through a Vfs so fault injection
        // covers them.
        "fs-outside-durability" => {
            !path.starts_with("crates/durability/")
                && !path.starts_with("crates/bench/")
                && !path.starts_with("crates/xtask/")
        }
        // Silent truncation in record framing corrupts the log; the WAL
        // code converts with try_from and handles the error.
        "cast" => path.starts_with("crates/durability/src/"),
        // Plans are compiled (and statically verified) exactly once, in the
        // compile module; analyze hosts the derivation primitives. The rest
        // of the crate must go through the cached CompiledMaintenancePlan so
        // the hot path never re-derives or re-verifies.
        "plan-compile-confined" => {
            path.starts_with("crates/core/src/")
                && path != "crates/core/src/compile.rs"
                && path != "crates/core/src/analyze.rs"
        }
        // Every ViewStore mutation must be journaled for the snapshot
        // registry; mutations are confined to the commit path (maintain,
        // the GK/recompute baselines) and the store's own module. Anything
        // else mutating a store would bypass the journal and desynchronize
        // the registry's version chains.
        "view-store-mutation" => {
            path.starts_with("crates/core/src/")
                && path != "crates/core/src/materialize.rs"
                && path != "crates/core/src/maintain.rs"
                && path != "crates/core/src/baseline.rs"
        }
        _ => false,
    }
}

/// Pull `lint:allow(<id>[, <id>...])` directives out of a comment and record
/// them against the line each directive appears on.
fn collect_allows(comment: &str, start_line: usize, allows: &mut Vec<Vec<String>>) {
    let mut search = 0;
    while let Some(pos) = comment[search..].find("lint:allow(") {
        let abs = search + pos;
        let line = start_line + comment[..abs].bytes().filter(|&b| b == b'\n').count();
        let rest = &comment[abs + "lint:allow(".len()..];
        if let Some(close) = rest.find(')') {
            while allows.len() <= line {
                allows.push(Vec::new());
            }
            for id in rest[..close].split(',') {
                allows[line].push(id.trim().to_string());
            }
        }
        search = abs + 1;
    }
}

/// Blank out comments and string/char literals, preserving newlines so line
/// numbers survive. Returns the masked text plus per-line allow directives.
fn mask(src: &str) -> (String, Vec<Vec<String>>) {
    let b = src.as_bytes();
    let n = b.len();
    let mut out: Vec<u8> = Vec::with_capacity(n);
    let mut allows: Vec<Vec<String>> = vec![Vec::new()];
    let mut line = 0usize;
    let mut i = 0usize;

    // Emit the byte range [start, end) as blanks, keeping newlines.
    macro_rules! blank {
        ($start:expr, $end:expr) => {
            for &bb in &b[$start..$end] {
                if bb == b'\n' {
                    out.push(b'\n');
                    line += 1;
                    if allows.len() <= line {
                        allows.push(Vec::new());
                    }
                } else {
                    out.push(b' ');
                }
            }
        };
    }

    while i < n {
        let c = b[i];
        // Line comment (also doc comments).
        if c == b'/' && i + 1 < n && b[i + 1] == b'/' {
            let start = i;
            while i < n && b[i] != b'\n' {
                i += 1;
            }
            collect_allows(&src[start..i], line, &mut allows);
            blank!(start, i);
            continue;
        }
        // Block comment, nested per Rust.
        if c == b'/' && i + 1 < n && b[i + 1] == b'*' {
            let start = i;
            let start_line = line;
            let mut depth = 1;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            collect_allows(&src[start..i], start_line, &mut allows);
            blank!(start, i);
            continue;
        }
        // Raw string literal: optional `b`, then `r`, hashes, quote.
        if c == b'r' || (c == b'b' && i + 1 < n && b[i + 1] == b'r') {
            let r_pos = if c == b'b' { i + 1 } else { i };
            let mut k = r_pos + 1;
            let mut hashes = 0usize;
            while k < n && b[k] == b'#' {
                hashes += 1;
                k += 1;
            }
            if k < n && b[k] == b'"' {
                let start = i;
                k += 1;
                'raw: while k < n {
                    if b[k] == b'"' {
                        let mut h = 0usize;
                        while h < hashes && k + 1 + h < n && b[k + 1 + h] == b'#' {
                            h += 1;
                        }
                        if h == hashes {
                            k += 1 + hashes;
                            break 'raw;
                        }
                    }
                    k += 1;
                }
                i = k;
                blank!(start, i);
                continue;
            }
        }
        // Ordinary string literal (a leading `b` stays an ordinary token).
        if c == b'"' {
            let start = i;
            i += 1;
            while i < n {
                if b[i] == b'\\' {
                    i += 2;
                    continue;
                }
                if b[i] == b'"' {
                    i += 1;
                    break;
                }
                i += 1;
            }
            blank!(start, i.min(n));
            continue;
        }
        // Char literal vs lifetime.
        if c == b'\'' {
            if i + 1 < n && b[i + 1] == b'\\' {
                // Escaped char literal, e.g. '\n', '\'', '\u{41}'.
                let start = i;
                i += 2;
                if i < n {
                    i += 1;
                }
                while i < n && b[i] != b'\'' && b[i] != b'\n' {
                    i += 1;
                }
                if i < n && b[i] == b'\'' {
                    i += 1;
                }
                blank!(start, i);
                continue;
            }
            let is_lifetime = i + 1 < n
                && (b[i + 1].is_ascii_alphabetic() || b[i + 1] == b'_')
                && !(i + 2 < n && b[i + 2] == b'\'');
            if is_lifetime {
                out.push(c);
                i += 1;
                continue;
            }
            // Plain (possibly multi-byte) char literal.
            let start = i;
            i += 1;
            while i < n && b[i] != b'\'' && b[i] != b'\n' {
                i += 1;
            }
            if i < n && b[i] == b'\'' {
                i += 1;
            }
            blank!(start, i);
            continue;
        }
        if c == b'\n' {
            out.push(b'\n');
            line += 1;
            if allows.len() <= line {
                allows.push(Vec::new());
            }
            i += 1;
            continue;
        }
        out.push(c);
        i += 1;
    }
    let text = String::from_utf8(out).expect("masking preserves UTF-8");
    (text, allows)
}

struct Tok<'a> {
    text: &'a str,
    line: usize,
}

/// Split masked source into identifier and single-character punct tokens.
fn tokenize(masked: &str) -> Vec<Tok<'_>> {
    let b = masked.as_bytes();
    let mut toks = Vec::new();
    let mut line = 0usize;
    let mut i = 0usize;
    let ident = |c: u8| c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80;
    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if ident(c) {
            let s = i;
            while i < b.len() && ident(b[i]) {
                i += 1;
            }
            toks.push(Tok {
                text: &masked[s..i],
                line,
            });
            continue;
        }
        toks.push(Tok {
            text: &masked[i..i + 1],
            line,
        });
        i += 1;
    }
    toks
}

fn line_of(masked: &str, byte: usize) -> usize {
    masked.as_bytes()[..byte.min(masked.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
}

/// Per-line flags marking `#[cfg(test)]` brace regions (the attribute line
/// through the matching closing brace).
fn test_lines(masked: &str) -> Vec<bool> {
    let nlines = masked.bytes().filter(|&b| b == b'\n').count() + 1;
    let mut flags = vec![false; nlines];
    let b = masked.as_bytes();
    let mut search = 0usize;
    while let Some(pos) = masked[search..].find("#[cfg(test)]") {
        let abs = search + pos;
        let start_line = line_of(masked, abs);
        let mut i = abs + "#[cfg(test)]".len();
        while i < b.len() && b[i] != b'{' {
            i += 1;
        }
        let mut depth = 0usize;
        while i < b.len() {
            match b[i] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        let end_line = line_of(masked, i).min(nlines - 1);
        for flag in flags.iter_mut().take(end_line + 1).skip(start_line) {
            *flag = true;
        }
        search = abs + 1;
    }
    flags
}

/// Scan one file's source. `rel_path` is workspace-relative with `/`
/// separators; it decides which lints apply.
pub fn scan_file(rel_path: &str, src: &str) -> Vec<Violation> {
    let path = rel_path.replace('\\', "/");
    let (masked, allows) = mask(src);
    let toks = tokenize(&masked);
    let in_test = test_lines(&masked);
    let src_lines: Vec<&str> = src.lines().collect();
    let mut out = Vec::new();

    let allowed = |line: usize, id: &str| {
        let has = |l: usize| allows.get(l).is_some_and(|v| v.iter().any(|a| a == id));
        has(line) || (line > 0 && has(line - 1))
    };
    let seq = |i: usize, pat: &[&str]| {
        pat.iter()
            .enumerate()
            .all(|(k, p)| toks.get(i + k).is_some_and(|t| t.text == *p))
    };

    let record = |lint: &'static str, line: usize, out: &mut Vec<Violation>| {
        if allowed(line, lint) {
            return;
        }
        out.push(Violation {
            lint,
            file: path.clone(),
            line: line + 1,
            excerpt: src_lines.get(line).map_or("", |l| l.trim()).to_string(),
        });
    };

    for (i, tok) in toks.iter().enumerate() {
        let line = tok.line;
        if applies("vec-vec-datum", &path) && seq(i, &["Vec", "<", "Vec", "<", "Datum", ">", ">"]) {
            record("vec-vec-datum", line, &mut out);
        }
        if applies("default-hasher", &path)
            && (tok.text == "HashMap" || tok.text == "HashSet")
            && seq(i + 1, &[":", ":", "new", "(", ")"])
        {
            record("default-hasher", line, &mut out);
        }
        if applies("panic-hot-path", &path)
            && !in_test.get(line).copied().unwrap_or(false)
            && (seq(i, &[".", "unwrap", "(", ")"])
                || seq(i, &[".", "expect", "("])
                || seq(i, &["panic", "!", "("]))
        {
            record("panic-hot-path", line, &mut out);
        }
        if applies("unsafe-code", &path) && tok.text == "unsafe" {
            record("unsafe-code", line, &mut out);
        }
        if applies("fs-outside-durability", &path)
            && (seq(i, &["std", ":", ":", "fs"]) || seq(i, &["File", ":", ":"]))
        {
            record("fs-outside-durability", line, &mut out);
        }
        if applies("cast", &path)
            && tok.text == "as"
            && toks
                .get(i + 1)
                .is_some_and(|t| t.text == "u32" || t.text == "u64")
        {
            record("cast", line, &mut out);
        }
        if applies("plan-compile-confined", &path)
            && !in_test.get(line).copied().unwrap_or(false)
            && matches!(
                tok.text,
                "primary_delta_plan" | "verify_static" | "verify_maintenance" | "verify_from_view"
            )
        {
            record("plan-compile-confined", line, &mut out);
        }
        if applies("view-store-mutation", &path)
            && !in_test.get(line).copied().unwrap_or(false)
            && tok.text == "store_mut"
        {
            record("view-store-mutation", line, &mut out);
        }
    }
    out
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let p = entry?.path();
        let name = p.file_name().and_then(|s| s.to_str()).unwrap_or("");
        if p.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            collect_rs(&p, out)?;
        } else if name.ends_with(".rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Scan every `.rs` file under `crates/` and `src/` of the workspace rooted
/// at `root`. Returns all findings, ordered by path.
pub fn run(root: &Path) -> io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    collect_rs(&root.join("crates"), &mut files)?;
    collect_rs(&root.join("src"), &mut files)?;
    files.sort();
    let mut all = Vec::new();
    for f in &files {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(f)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(f)?;
        all.extend(scan_file(&rel, &src));
    }
    Ok(all)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_ids_are_distinct() {
        for (i, a) in LINTS.iter().enumerate() {
            for b in &LINTS[i + 1..] {
                assert_ne!(a.id, b.id);
            }
        }
    }

    #[test]
    fn vec_vec_datum_detected_in_exec_only() {
        let src = "fn f() { let x: Vec<Vec<Datum>> = Vec::new(); }\n";
        let v = scan_file("crates/exec/src/ops/foo.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "vec-vec-datum");
        assert_eq!(v[0].line, 1);
        // Same code outside crates/exec is not in scope.
        assert!(scan_file("crates/core/src/foo.rs", src).is_empty());
    }

    #[test]
    fn vec_vec_datum_spanning_whitespace_still_matches() {
        let src = "fn f() { let x: Vec< Vec < Datum > > = make(); }\n";
        let v = scan_file("crates/exec/src/foo.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "vec-vec-datum");
    }

    #[test]
    fn default_hasher_detected_but_fxhash_is_fine() {
        let bad = "fn f() { return HashMap::new(); }\n";
        let v = scan_file("crates/storage/src/foo.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "default-hasher");
        // Identifier boundary: FxHashMap must NOT match HashMap.
        let good = "fn f() { let m: FxHashMap<u32, u32> = FxHashMap::default(); }\n";
        assert!(scan_file("crates/storage/src/foo.rs", good).is_empty());
        let set = "fn f() { let s = HashSet::new(); }\n";
        assert_eq!(
            scan_file("crates/exec/src/foo.rs", set)[0].lint,
            "default-hasher"
        );
    }

    #[test]
    fn panic_hot_path_skips_tests_and_out_of_scope_files() {
        let src = "fn f(o: Option<u32>) -> u32 { o.unwrap() }\n";
        let v = scan_file("crates/exec/src/eval.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "panic-hot-path");
        // The same code inside a #[cfg(test)] region is exempt.
        let tested =
            "#[cfg(test)]\nmod tests {\n    fn f(o: Option<u32>) -> u32 { o.unwrap() }\n}\n";
        assert!(scan_file("crates/exec/src/eval.rs", tested).is_empty());
        // Non-hot-path files are out of scope.
        assert!(scan_file("crates/exec/src/ops/agg.rs", src).is_empty());
        // expect and panic! also fire.
        let src2 = "fn g(o: Option<u32>) { o.expect(\"boom\"); panic!(\"no\"); }\n";
        let v2 = scan_file("crates/exec/src/ops/join.rs", src2);
        assert_eq!(v2.len(), 2);
    }

    #[test]
    fn unsafe_detected_everywhere_except_alloc() {
        let src = "fn f() { unsafe { std::hint::unreachable_unchecked() } }\n";
        let v = scan_file("crates/exec/src/foo.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "unsafe-code");
        assert!(scan_file("crates/rel/src/alloc.rs", src).is_empty());
        // Identifier boundary: `unsafe_code` (as in the forbid attribute) is
        // one token and must not match.
        let attr = "#![forbid(unsafe_code)]\n";
        assert!(scan_file("crates/core/src/lib.rs", attr).is_empty());
    }

    #[test]
    fn literals_and_comments_are_masked() {
        let src = concat!(
            "// unsafe HashMap::new() in a comment\n",
            "/* unsafe\n   Vec<Vec<Datum>> */\n",
            "fn f() -> &'static str { \"unsafe .unwrap() HashMap::new()\" }\n",
            "fn g() -> char { '\\'' }\n",
            "fn h() -> &'static str { r#\"unsafe \"quoted\" panic!(\"#  }\n",
        );
        assert!(scan_file("crates/exec/src/eval.rs", src).is_empty());
    }

    #[test]
    fn lint_allow_suppresses_on_same_or_previous_line() {
        let same = "fn f() { let m = HashMap::new(); } // lint:allow(default-hasher)\n";
        assert!(scan_file("crates/storage/src/foo.rs", same).is_empty());
        let above = "// lint:allow(default-hasher) keyed by small ints\nfn f() { let m = HashMap::new(); }\n";
        assert!(scan_file("crates/storage/src/foo.rs", above).is_empty());
        // The wrong id does not suppress.
        let wrong = "fn f() { let m = HashMap::new(); } // lint:allow(unsafe-code)\n";
        assert_eq!(scan_file("crates/storage/src/foo.rs", wrong).len(), 1);
        // An allow two lines up does not leak downward.
        let far = "// lint:allow(default-hasher)\n\nfn f() { let m = HashMap::new(); }\n";
        assert_eq!(scan_file("crates/storage/src/foo.rs", far).len(), 1);
    }

    #[test]
    fn fs_banned_outside_durability_bench_xtask() {
        let uses = "use std::fs;\nfn f() { let _ = std::fs::read(\"x\"); }\n";
        let v = scan_file("crates/core/src/durable.rs", uses);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|x| x.lint == "fs-outside-durability"));
        let file = "fn f() { let _ = File::open(\"x\"); }\n";
        assert_eq!(
            scan_file("crates/exec/src/foo.rs", file)[0].lint,
            "fs-outside-durability"
        );
        // Identifier boundary: FaultFile::new is not File::.
        let fault = "fn f() { let _ = FaultFile::new(inner, spec); }\n";
        assert!(scan_file("crates/testkit/src/fault.rs", fault).is_empty());
        // The allowlisted crates are exempt.
        for path in [
            "crates/durability/src/vfs.rs",
            "crates/bench/src/bin/repro.rs",
            "crates/xtask/src/lint.rs",
        ] {
            assert!(scan_file(path, uses).is_empty(), "{path}");
        }
        // The escape hatch still works.
        let allowed = "use std::fs; // lint:allow(fs-outside-durability)\n";
        assert!(scan_file("crates/core/src/foo.rs", allowed).is_empty());
    }

    #[test]
    fn cast_banned_in_wal_framing() {
        let src = "fn f(n: usize) -> u32 { n as u32 }\nfn g(n: usize) -> u64 { n as u64 }\n";
        let v = scan_file("crates/durability/src/wal.rs", src);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|x| x.lint == "cast"));
        // Widening into usize is fine (cannot truncate).
        let widen = "fn f(n: u32) -> usize { n as usize }\n";
        assert!(scan_file("crates/durability/src/wal.rs", widen).is_empty());
        // Out of scope elsewhere.
        assert!(scan_file("crates/exec/src/eval.rs", src).is_empty());
        // Escape hatch.
        let allowed = "fn f(n: usize) -> u32 { n as u32 } // lint:allow(cast)\n";
        assert!(scan_file("crates/durability/src/wal.rs", allowed).is_empty());
    }

    #[test]
    fn plan_compile_confined_to_compile_and_analyze() {
        let src = "fn f(a: &ViewAnalysis) { let _ = a.primary_delta_plan(t, true, true); }\n";
        let v = scan_file("crates/core/src/maintain.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "plan-compile-confined");
        // The compile and analyze modules are the sanctioned homes.
        assert!(scan_file("crates/core/src/compile.rs", src).is_empty());
        assert!(scan_file("crates/core/src/analyze.rs", src).is_empty());
        // Other crates are out of scope (bench renders plans for reports).
        assert!(scan_file("crates/bench/src/bin/repro.rs", src).is_empty());
        // Every verifier entry point is covered.
        let verifiers = "fn g(a: &ViewAnalysis) {\n    a.verify_static(c);\n    a.verify_maintenance(t, true, true, &m, None);\n    a.verify_from_view(0);\n}\n";
        let v2 = scan_file("crates/core/src/sql.rs", verifiers);
        assert_eq!(v2.len(), 3);
        assert!(v2.iter().all(|x| x.lint == "plan-compile-confined"));
        // Tests may exercise the primitives directly.
        let tested = "#[cfg(test)]\nmod tests {\n    fn f(a: &ViewAnalysis) { a.primary_delta_plan(t, true, true); }\n}\n";
        assert!(scan_file("crates/core/src/sql.rs", tested).is_empty());
        // Escape hatch.
        let allowed =
            "fn f(a: &A) { a.primary_delta_plan(t, true, true); } // lint:allow(plan-compile-confined)\n";
        assert!(scan_file("crates/core/src/maintain.rs", allowed).is_empty());
        // Identifier boundary: verify_maintenance_graph is a different token.
        let other = "fn h() { ojv_analysis::verify_maintenance_graph(&g, &m, fks); }\n";
        assert!(scan_file("crates/core/src/maintain.rs", other).is_empty());
    }

    #[test]
    fn view_store_mutation_confined_to_commit_path() {
        let src = "fn f(v: &mut MaterializedView) { v.store_mut().insert(row, \"v\").unwrap(); }\n";
        let v = scan_file("crates/core/src/database.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "view-store-mutation");
        // The commit path and the store's own module are the sanctioned homes.
        for path in [
            "crates/core/src/materialize.rs",
            "crates/core/src/maintain.rs",
            "crates/core/src/baseline.rs",
        ] {
            assert!(scan_file(path, src).is_empty(), "{path}");
        }
        // Other crates are out of scope.
        assert!(scan_file("crates/bench/src/multiview.rs", src).is_empty());
        // Tests may poke stores directly.
        let tested =
            "#[cfg(test)]\nmod tests {\n    fn f(v: &mut MaterializedView) { v.store_mut(); }\n}\n";
        assert!(scan_file("crates/core/src/database.rs", tested).is_empty());
        // Escape hatch.
        let allowed = "fn f(v: &mut MaterializedView) { v.store_mut(); } // lint:allow(view-store-mutation)\n";
        assert!(scan_file("crates/core/src/database.rs", allowed).is_empty());
        // Identifier boundary: `restore_mutations` is a different token.
        let other = "fn g() { restore_mutations(); }\n";
        assert!(scan_file("crates/core/src/database.rs", other).is_empty());
    }

    /// A seeded fs violation fails the gate just like the older lints.
    #[test]
    fn seeded_fs_violation_fails_the_gate() {
        let root = std::env::temp_dir().join(format!("xtask-lint-fs-{}", std::process::id()));
        let dir = root.join("crates/core/src");
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join("seeded.rs"),
            "fn f() { let _ = std::fs::read(\"x\"); }\n",
        )
        .unwrap();
        let v = run(&root).unwrap();
        fs::remove_dir_all(&root).unwrap();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "fs-outside-durability");
        assert_eq!(v[0].file, "crates/core/src/seeded.rs");
    }

    /// The CI gate behavior: a seeded violation anywhere in the scanned tree
    /// makes `run` report it (and `main` turn that into a non-zero exit,
    /// which is what fails ci/check.sh).
    #[test]
    fn seeded_violation_fails_the_gate() {
        let root = std::env::temp_dir().join(format!("xtask-lint-seed-{}", std::process::id()));
        let dir = root.join("crates/exec/src");
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join("seeded.rs"),
            "fn f() { let rows: Vec<Vec<Datum>> = Vec::new(); }\n",
        )
        .unwrap();
        let v = run(&root).unwrap();
        fs::remove_dir_all(&root).unwrap();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "vec-vec-datum");
        assert_eq!(v[0].file, "crates/exec/src/seeded.rs");
    }

    /// The repo itself must scan clean — this is the in-tree mirror of the
    /// `cargo run -p xtask -- lint` gate in ci/check.sh.
    #[test]
    fn repo_scans_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let v = run(root).unwrap();
        assert!(
            v.is_empty(),
            "lint violations:\n{}",
            v.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
