//! Golden tests for `xtask lint --list` and `xtask concheck --list`.
//!
//! The table (id, confinement scope, description; one rule per line, sorted
//! by id) is part of the gate's contract: documentation and CI output link
//! to rule ids, so adding, removing, or re-scoping a rule must show up here
//! as an intentional diff.

use std::process::Command;

fn list_output(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(args)
        .output()
        .expect("run xtask");
    assert!(out.status.success(), "{args:?} exited nonzero");
    String::from_utf8(out.stdout).expect("utf-8 output")
}

/// `(id, scope)` pairs per line, in printed order.
fn ids_and_scopes(listing: &str) -> Vec<(String, String)> {
    listing
        .lines()
        .map(|l| {
            let mut cols = l.split("  ").filter(|c| !c.trim().is_empty());
            let id = cols.next().expect("id column").trim().to_string();
            let scope = cols.next().expect("scope column").trim().to_string();
            (id, scope)
        })
        .collect()
}

#[test]
fn lint_list_is_sorted_and_scoped() {
    let listing = list_output(&["lint", "--list"]);
    let rows = ids_and_scopes(&listing);
    let golden = [
        ("cast", "crates/durability/src/"),
        ("default-hasher", "crates/exec/src/, crates/storage/src/"),
        ("feed-eval-confined", "everywhere but crates/feed/src/"),
        (
            "fs-outside-durability",
            "everywhere but crates/{durability,bench,xtask,concheck}/",
        ),
        (
            "mutex-in-exec-hot-path",
            "crates/exec/src/ except parallel.rs",
        ),
        (
            "panic-hot-path",
            "crates/exec/src/{eval,ops/join,ops/dedup}.rs",
        ),
        (
            "plan-compile-confined",
            "crates/core/src/ except {compile,analyze}.rs",
        ),
        ("sched-seed-logged", "all scanned files"),
        (
            "shard-routing-confined",
            "everywhere but crates/storage/src/shard.rs, crates/core/src/shard{,_durable}.rs",
        ),
        ("unsafe-code", "everywhere but crates/rel/src/alloc.rs"),
        ("vec-vec-datum", "crates/exec/src/"),
        (
            "view-store-mutation",
            "crates/core/src/ except {materialize,maintain,baseline}.rs",
        ),
    ];
    assert_eq!(
        rows,
        golden
            .iter()
            .map(|(i, s)| (i.to_string(), s.to_string()))
            .collect::<Vec<_>>(),
        "lint --list drifted from the golden table:\n{listing}"
    );
}

#[test]
fn concheck_list_is_sorted_and_scoped() {
    let listing = list_output(&["concheck", "--list"]);
    let rows = ids_and_scopes(&listing);
    let golden = [
        ("atomic-ordering", "crates/*/src, src (non-test code)"),
        ("guard-across-callback", "crates/*/src, src (non-test code)"),
        ("lock-in-worker", "crates/*/src, src (non-test code)"),
        (
            "lock-order-cycle",
            "workspace-wide graph over non-test code",
        ),
    ];
    assert_eq!(
        rows,
        golden
            .iter()
            .map(|(i, s)| (i.to_string(), s.to_string()))
            .collect::<Vec<_>>(),
        "concheck --list drifted from the golden table:\n{listing}"
    );
}

#[test]
fn both_lists_are_sorted_by_id() {
    for cmd in ["lint", "concheck"] {
        let listing = list_output(&[cmd, "--list"]);
        let ids: Vec<_> = ids_and_scopes(&listing)
            .into_iter()
            .map(|(i, _)| i)
            .collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted, "{cmd} --list ids are not sorted");
    }
}
