//! The batch layer: maintain every affected view of one base-table update
//! with cross-view sharing of common plan prefixes and a bounded worker
//! pool.
//!
//! Given one `Update`, [`maintain_batch`]:
//!
//! 1. collects the affected views and their cached
//!    [`CompiledMaintenancePlan`]s (compiling on first use),
//! 2. when [`MaintenancePolicy::share_plans`] is on, fingerprints the plans
//!    and factors shared leading subplans — the `ΔT` scan and common
//!    leftmost join prefixes — into a trie, so shared work executes once and
//!    fans its rows out into the per-view remainders,
//! 3. applies the per-view deltas on a worker pool capped by
//!    `MaintenancePolicy::parallel.threads`, catching panics at the job
//!    boundary and surfacing them as [`CoreError::MaintenancePanic`].
//!
//! Sharing is safe because primary-delta evaluation reads only the catalog
//! and the update's rows — never a view store — so evaluating all primaries
//! before applying any is byte-identical to the serial interleaved order.
//! Two plans may share rows only when their views' wide-row layouts agree
//! (equal `layout_sig`); within a layout group the trie is keyed by the
//! structural fingerprints of the spine steps.
//!
//! The bare `ΔT` leaf is **never** materialized for non-terminal sharing:
//! children of the trie root evaluate their prefix symbolically through the
//! ordinary executor, preserving its narrow-left delta index-join fast path.
//! From depth 1 on, a prefix with two or more interested parties (child
//! branches or views ending there) is materialized once and fanned out.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ojv_algebra::{fingerprint_expr, Expr, SpineStep, TableId, TableSet};
use ojv_exec::{
    apply_spine_step, eval_expr, eval_expr_buf, DeltaInput, ExecCtx, ExecStats, ParallelSpec,
    ViewLayout,
};
use ojv_rel::{FxHashMap, Relation, Row, RowBuf};
use ojv_storage::{Catalog, Update};

use crate::agg_view::MaterializedAggView;
use crate::analyze::ViewAnalysis;
use crate::compile::{CompiledMaintenancePlan, PlanConfig};
use crate::error::{CoreError, Result};
use crate::maintain::MaintenanceReport;
use crate::materialize::MaterializedView;
use crate::policy::MaintenancePolicy;

/// Which view a batch job maintains.
#[derive(Debug, Clone, Copy)]
enum JobTarget {
    View(usize),
    Agg(usize),
}

/// One unit of batched maintenance: a view, its compiled plan, and a clone
/// of its analysis (so execution can borrow the layout while the view store
/// is mutated).
struct Job {
    target: JobTarget,
    name: String,
    analysis: ViewAnalysis,
    compiled: Arc<CompiledMaintenancePlan>,
}

/// Maintain every affected view and aggregated view for `update`, which has
/// already been applied to the catalog. Returns one report per non-noop
/// view, in registration order (views first, then aggregated views).
///
/// `threads` caps the worker pool; `1` runs the jobs inline on the calling
/// thread.
pub fn maintain_batch(
    views: &mut [MaterializedView],
    agg_views: &mut [MaterializedAggView],
    catalog: &Catalog,
    update: &Update,
    policy: &MaintenancePolicy,
    threads: usize,
) -> Result<Vec<MaintenanceReport>> {
    let cfg = PlanConfig::of(policy);

    // Phase 1 (serial): resolve plans, skip unaffected views, run the cheap
    // per-run arity check.
    let mut jobs: Vec<Job> = Vec::new();
    for (i, v) in views.iter_mut().enumerate() {
        let Some(t) = v.analysis.layout.table_id(&update.table) else {
            continue;
        };
        let compiled = v.compiled_plan(catalog, t, cfg)?;
        if compiled.noop {
            continue;
        }
        ojv_analysis::verify_delta_arity(&v.analysis.layout, t, update.rows.schema().len())
            .map_err(CoreError::Plan)?;
        jobs.push(Job {
            target: JobTarget::View(i),
            name: v.name().to_string(),
            analysis: v.analysis.clone(),
            compiled,
        });
    }
    for (i, v) in agg_views.iter_mut().enumerate() {
        let Some(t) = v.analysis.layout.table_id(&update.table) else {
            continue;
        };
        let compiled = v.compiled_plan(catalog, t, cfg)?;
        if compiled.noop {
            continue;
        }
        ojv_analysis::verify_delta_arity(&v.analysis.layout, t, update.rows.schema().len())
            .map_err(CoreError::Plan)?;
        jobs.push(Job {
            target: JobTarget::Agg(i),
            name: v.name().to_string(),
            analysis: v.analysis.clone(),
            compiled,
        });
    }
    if jobs.is_empty() {
        return Ok(Vec::new());
    }

    // Per-job executor counters, shared between the shared-prefix evaluation
    // (attributed to each subtree's owner job) and the per-job remainder.
    let stats: Vec<ExecStats> = jobs.iter().map(|_| ExecStats::default()).collect();

    // Phase 2 (serial): evaluate shared primary deltas through the trie.
    let shared = if policy.share_plans {
        eval_shared(&jobs, catalog, update, policy, &stats)?
    } else {
        SharedPrimaries::unshared(jobs.len())
    };

    // Phase 3: per-view application on the bounded pool.
    let mut view_slots: Vec<Option<&mut MaterializedView>> = views.iter_mut().map(Some).collect();
    let mut agg_slots: Vec<Option<&mut MaterializedAggView>> =
        agg_views.iter_mut().map(Some).collect();
    let works: Vec<Work<'_>> = jobs
        .into_iter()
        .enumerate()
        .map(|(k, job)| Work {
            idx: k,
            name: job.name,
            analysis: job.analysis,
            compiled: job.compiled,
            target: match job.target {
                JobTarget::View(i) => {
                    WorkTarget::View(view_slots[i].take().expect("one job per view"))
                }
                JobTarget::Agg(i) => {
                    WorkTarget::Agg(agg_slots[i].take().expect("one job per view"))
                }
            },
            primary: shared.primaries[k].clone(),
            shared_compute: shared.durations[k],
            shared_with: shared.shared_with[k],
        })
        .collect();

    let p = threads.max(1).min(works.len());
    let mut results: Vec<(usize, Result<MaintenanceReport>)> = if p <= 1 {
        works
            .into_iter()
            .map(|w| {
                let s = &stats[w.idx];
                run_job(w, catalog, update, policy, s)
            })
            .collect()
    } else {
        let mut buckets: Vec<Vec<Work<'_>>> = (0..p).map(|_| Vec::new()).collect();
        for (k, w) in works.into_iter().enumerate() {
            buckets[k % p].push(w);
        }
        let stats = &stats;
        // Happens-before edges mirroring the morsel pool in `ojv-exec`:
        // spawn edge into every bucket worker, join edge back to the batch
        // driver before it merges the per-bucket result vectors.
        crate::trace::publish("core.batch.spawn");
        std::thread::scope(|scope| {
            let handles: Vec<_> = buckets
                .into_iter()
                .enumerate()
                .map(|(b, bucket)| {
                    scope.spawn(move || {
                        if crate::trace::active() {
                            crate::trace::register_thread(&format!("batch-worker-{b}"));
                        }
                        crate::trace::observe("core.batch.spawn");
                        let out = bucket
                            .into_iter()
                            .map(|w| {
                                let s = &stats[w.idx];
                                run_job(w, catalog, update, policy, s)
                            })
                            .collect::<Vec<_>>();
                        crate::trace::publish("core.batch.join");
                        out
                    })
                })
                .collect();
            let merged: Vec<_> = handles
                .into_iter()
                .flat_map(|h| match h.join() {
                    Ok(v) => v,
                    // Per-job panics are caught inside run_job; a panic here
                    // is in the pool plumbing itself. Surface it instead of
                    // poisoning the caller.
                    Err(p) => vec![(
                        usize::MAX,
                        Err(CoreError::MaintenancePanic {
                            view: "<batch worker>".to_string(),
                            detail: panic_detail(p.as_ref()),
                        }),
                    )],
                })
                .collect();
            // All workers are joined: pull their published clocks, then
            // stamp the merge buffer as a main-thread write.
            crate::trace::observe("core.batch.join");
            crate::trace::on_write("core.batch.merge");
            merged
        })
    };
    results.sort_by_key(|(i, _)| *i);
    let mut reports = Vec::with_capacity(results.len());
    for (_, r) in results {
        reports.push(r?);
    }
    Ok(reports)
}

/// Mutable handle on a job's view for the execution phase.
enum WorkTarget<'a> {
    View(&'a mut MaterializedView),
    Agg(&'a mut MaterializedAggView),
}

struct Work<'a> {
    idx: usize,
    name: String,
    analysis: ViewAnalysis,
    compiled: Arc<CompiledMaintenancePlan>,
    target: WorkTarget<'a>,
    /// Shared-precomputed primary delta, if phase 2 produced one.
    primary: Option<Arc<Vec<Row>>>,
    /// Primary-compute time attributed to this job by the shared evaluation
    /// (`ZERO` for jobs that rode along on another job's work).
    shared_compute: Duration,
    shared_with: usize,
}

/// Render a caught panic payload for error surfacing. Shared with the
/// change-feed fan-out pool (`ojv-feed`), which catches worker panics at the
/// same per-job boundary this module does.
pub fn panic_detail(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run one job: evaluate the primary (unless phase 2 already shared it),
/// then apply primary and secondary deltas to the view. Panics are caught at
/// this boundary so one broken view cannot take down its siblings' threads.
fn run_job(
    mut work: Work<'_>,
    catalog: &Catalog,
    update: &Update,
    policy: &MaintenancePolicy,
    stats: &ExecStats,
) -> (usize, Result<MaintenanceReport>) {
    let idx = work.idx;
    let name = work.name.clone();
    let result = catch_unwind(AssertUnwindSafe(|| -> Result<MaintenanceReport> {
        #[cfg(test)]
        test_panic::maybe_panic(&work.name);
        let mut report = MaintenanceReport {
            view: work.name.clone(),
            table: update.table.clone(),
            update_rows: update.rows.len(),
            ..Default::default()
        };
        let delta = DeltaInput {
            table: work.compiled.table,
            rows: &update.rows,
        };
        let exec = ExecCtx::with_delta(catalog, &work.analysis.layout, delta)
            .with_parallel(policy.parallel)
            .with_stats(stats);
        let (primary, compute) = match work.primary.take() {
            Some(p) => (p, work.shared_compute),
            None => {
                let start = Instant::now();
                let rows = match &work.compiled.plan {
                    None => Vec::new(),
                    Some(plan) => eval_expr(&exec, plan)?,
                };
                (Arc::new(rows), start.elapsed())
            }
        };
        match &mut work.target {
            WorkTarget::View(v) => crate::maintain::apply_with_primary(
                v,
                &exec,
                update,
                policy,
                &work.analysis,
                &work.compiled,
                &primary,
                &mut report,
            )?,
            WorkTarget::Agg(v) => v.apply_with_primary(
                &exec,
                update,
                &work.analysis,
                &work.compiled,
                &primary,
                &mut report,
            )?,
        }
        report.primary_compute = compute;
        report.shared_with = work.shared_with;
        report.exec = stats.snapshot();
        Ok(report)
    }));
    match result {
        Ok(r) => (idx, r),
        Err(p) => (
            idx,
            Err(CoreError::MaintenancePanic {
                view: name,
                detail: panic_detail(p.as_ref()),
            }),
        ),
    }
}

/// Output of the shared-prefix evaluation, indexed by job.
struct SharedPrimaries {
    /// `Some(rows)` when phase 2 evaluated this job's primary (shared or
    /// degenerate empty plan); `None` means the job evaluates its own.
    primaries: Vec<Option<Arc<Vec<Row>>>>,
    durations: Vec<Duration>,
    shared_with: Vec<usize>,
}

impl SharedPrimaries {
    fn unshared(n: usize) -> Self {
        SharedPrimaries {
            primaries: vec![None; n],
            durations: vec![Duration::ZERO; n],
            shared_with: vec![0; n],
        }
    }
}

/// A trie of spine steps over one layout group. The root is a shared leaf
/// (usually `ΔT`); each node is one step applied to its parent's prefix.
struct Trie {
    /// The leaf expression all plans in this trie start from.
    prefix: Expr,
    leaf_fp: u64,
    sources: TableSet,
    children: Vec<TrieNode>,
    /// Jobs whose whole plan is the bare leaf.
    terminals: Vec<usize>,
    owner: usize,
}

struct TrieNode {
    step: SpineStep,
    step_fp: u64,
    /// `leaf ∘ steps[..=this]` — evaluated directly when the parent stayed
    /// symbolic.
    prefix: Expr,
    prefix_fp: u64,
    /// Source set of the *input* rows (the parent prefix).
    sources_in: TableSet,
    sources_out: TableSet,
    children: Vec<TrieNode>,
    /// Jobs whose whole plan ends exactly here.
    terminals: Vec<usize>,
    /// First (lowest-index) job through this subtree — executor counters and
    /// compute time for shared work are attributed to it.
    owner: usize,
}

fn trie_insert(trie: &mut Trie, steps: &[SpineStep], job: usize) {
    trie.owner = trie.owner.min(job);
    let Trie {
        prefix,
        sources,
        children,
        terminals,
        ..
    } = trie;
    let Some((step, rest)) = steps.split_first() else {
        terminals.push(job);
        return;
    };
    let pos = find_or_create(children, prefix, *sources, step, job);
    trie_insert_node(&mut children[pos], rest, job);
}

fn trie_insert_node(node: &mut TrieNode, steps: &[SpineStep], job: usize) {
    node.owner = node.owner.min(job);
    let TrieNode {
        prefix,
        sources_out,
        children,
        terminals,
        ..
    } = node;
    let Some((step, rest)) = steps.split_first() else {
        terminals.push(job);
        return;
    };
    let pos = find_or_create(children, prefix, *sources_out, step, job);
    trie_insert_node(&mut children[pos], rest, job);
}

fn find_or_create(
    children: &mut Vec<TrieNode>,
    parent_prefix: &Expr,
    parent_sources: TableSet,
    step: &SpineStep,
    job: usize,
) -> usize {
    let fp = step.fingerprint();
    if let Some(pos) = children.iter().position(|c| c.step_fp == fp) {
        return pos;
    }
    let prefix = step.reapply(parent_prefix.clone());
    let prefix_fp = fingerprint_expr(&prefix);
    children.push(TrieNode {
        step: step.clone(),
        step_fp: fp,
        prefix,
        prefix_fp,
        sources_in: parent_sources,
        sources_out: step.apply_sources(parent_sources),
        children: Vec::new(),
        terminals: Vec::new(),
        owner: job,
    });
    children.len() - 1
}

/// Everything the trie evaluation needs to build per-node executor contexts.
struct BatchEnv<'a> {
    catalog: &'a Catalog,
    layout: &'a ViewLayout,
    table: TableId,
    rows: &'a Relation,
    parallel: ParallelSpec,
    stats: &'a [ExecStats],
}

impl BatchEnv<'_> {
    fn ctx(&self, owner: usize) -> ExecCtx<'_> {
        ExecCtx::with_delta(
            self.catalog,
            self.layout,
            DeltaInput {
                table: self.table,
                rows: self.rows,
            },
        )
        .with_parallel(self.parallel)
        .with_stats(&self.stats[owner])
    }
}

/// Build the layout-grouped tries and evaluate every shared primary delta.
fn eval_shared(
    jobs: &[Job],
    catalog: &Catalog,
    update: &Update,
    policy: &MaintenancePolicy,
    stats: &[ExecStats],
) -> Result<SharedPrimaries> {
    let n = jobs.len();
    let mut out = SharedPrimaries::unshared(n);
    let mut groups: FxHashMap<u64, Vec<usize>> = FxHashMap::default();
    for (i, job) in jobs.iter().enumerate() {
        if job.compiled.plan.is_none() {
            // No directly affected term: the primary delta is empty by
            // construction; nothing to evaluate or share.
            out.primaries[i] = Some(Arc::new(Vec::new()));
        } else {
            groups.entry(job.compiled.layout_sig).or_default().push(i);
        }
    }
    let mut group_list: Vec<Vec<usize>> = groups.into_values().collect();
    group_list.sort_by_key(|g| g[0]);
    for group in group_list {
        let tries = build_tries(jobs, &group);
        let lead = &jobs[group[0]];
        let env = BatchEnv {
            catalog,
            layout: &lead.analysis.layout,
            table: lead.compiled.table,
            rows: &update.rows,
            parallel: policy.parallel,
            stats,
        };
        for trie in &tries {
            // Views whose whole plan is the bare leaf share its scan; the
            // children always evaluate symbolically from the leaf so the
            // executor's delta index-join fast path keeps firing.
            if !trie.terminals.is_empty() {
                let exec = env.ctx(trie.owner);
                let start = Instant::now();
                let rows = eval_expr_buf(&exec, &trie.prefix)?;
                out.durations[trie.owner] += start.elapsed();
                share_rows(&rows, &trie.terminals, &mut out);
            }
            for child in &trie.children {
                eval_trie_node(child, None, &env, &mut out)?;
            }
        }
    }
    Ok(out)
}

fn build_tries(jobs: &[Job], group: &[usize]) -> Vec<Trie> {
    let mut tries: Vec<Trie> = Vec::new();
    for &j in group {
        let spine = jobs[j]
            .compiled
            .spine
            .as_ref()
            .expect("grouped jobs have a plan, hence a spine");
        let leaf_fp = spine.leaf_fingerprint();
        let pos = match tries.iter().position(|t| t.leaf_fp == leaf_fp) {
            Some(p) => p,
            None => {
                tries.push(Trie {
                    prefix: spine.leaf.clone(),
                    leaf_fp,
                    sources: spine.leaf.sources(),
                    children: Vec::new(),
                    terminals: Vec::new(),
                    owner: j,
                });
                tries.len() - 1
            }
        };
        trie_insert(&mut tries[pos], &spine.steps, j);
    }
    tries
}

fn share_rows(rows: &RowBuf, terminals: &[usize], out: &mut SharedPrimaries) {
    let shared = Arc::new(rows.to_rows());
    for &j in terminals {
        out.shared_with[j] = terminals.len();
        out.primaries[j] = Some(Arc::clone(&shared));
    }
}

fn eval_trie_node(
    node: &TrieNode,
    cur: Option<&RowBuf>,
    env: &BatchEnv<'_>,
    out: &mut SharedPrimaries,
) -> Result<()> {
    // Materialize this prefix when the parent handed rows down (one step to
    // apply), when a view's plan ends here, or when two or more branches
    // would otherwise re-evaluate it. A pass-through chain (one child, no
    // terminals, symbolic parent) stays symbolic and collapses into a single
    // evaluation at the next materialization point.
    let compute = cur.is_some() || !node.terminals.is_empty() || node.children.len() >= 2;
    let rows: Option<RowBuf> = if compute {
        let exec = env.ctx(node.owner);
        let start = Instant::now();
        let produced = match cur {
            Some(buf) => apply_spine_step(&exec, &node.step, buf.clone(), node.sources_in)?,
            None => eval_expr_buf(&exec, &node.prefix)?,
        };
        out.durations[node.owner] += start.elapsed();
        Some(produced)
    } else {
        None
    };
    if !node.terminals.is_empty() {
        share_rows(
            rows.as_ref().expect("computed when terminals exist"),
            &node.terminals,
            out,
        );
    }
    for child in &node.children {
        eval_trie_node(child, rows.as_ref(), env, out)?;
    }
    Ok(())
}

/// Render the batch plan for an update of `table` over the given compiled
/// plans: one line per view, then one `shared:` line per subplan that two or
/// more views have in common. Used by `Database::explain_batch`.
pub fn render_batch_plan(table: &str, plans: &[(String, CompiledMaintenancePlan)]) -> String {
    let mut s = format!("batch maintenance plan for Δ{table}:\n");
    let mut active: Vec<usize> = Vec::new();
    for (i, (name, p)) in plans.iter().enumerate() {
        if p.noop {
            s.push_str(&format!("  view {name}: noop\n"));
        } else if p.plan.is_none() {
            s.push_str(&format!(
                "  view {name}: no primary delta (indirect only)\n"
            ));
        } else {
            s.push_str(&format!("  view {name}: plan {:016x}\n", p.fingerprint));
            active.push(i);
        }
    }
    // Rebuild the same tries the batch executor would use and report every
    // shared prefix: `shared: <fingerprint> (k views)`.
    let mut groups: FxHashMap<u64, Vec<usize>> = FxHashMap::default();
    for &i in &active {
        groups.entry(plans[i].1.layout_sig).or_default().push(i);
    }
    let mut group_list: Vec<Vec<usize>> = groups.into_values().collect();
    group_list.sort_by_key(|g| g[0]);
    for group in group_list {
        let mut tries: Vec<Trie> = Vec::new();
        for &i in &group {
            let spine = plans[i].1.spine.as_ref().expect("active plans have spines");
            let leaf_fp = spine.leaf_fingerprint();
            let pos = match tries.iter().position(|t| t.leaf_fp == leaf_fp) {
                Some(p) => p,
                None => {
                    tries.push(Trie {
                        prefix: spine.leaf.clone(),
                        leaf_fp,
                        sources: spine.leaf.sources(),
                        children: Vec::new(),
                        terminals: Vec::new(),
                        owner: i,
                    });
                    tries.len() - 1
                }
            };
            trie_insert(&mut tries[pos], &spine.steps, i);
        }
        for trie in &tries {
            let root_terms = trie_terminal_count(trie);
            if root_terms >= 2 && (!trie.terminals.is_empty() || trie.children.len() >= 2) {
                s.push_str(&format!(
                    "  shared: {:016x} ({} views)\n",
                    trie.leaf_fp, root_terms
                ));
            }
            for child in &trie.children {
                render_shared_nodes(child, &mut s);
            }
        }
    }
    s
}

fn trie_terminal_count(trie: &Trie) -> usize {
    trie.terminals.len() + trie.children.iter().map(node_terminal_count).sum::<usize>()
}

fn node_terminal_count(node: &TrieNode) -> usize {
    node.terminals.len() + node.children.iter().map(node_terminal_count).sum::<usize>()
}

fn render_shared_nodes(node: &TrieNode, s: &mut String) {
    let subtree = node_terminal_count(node);
    if subtree >= 2 && (node.terminals.len() >= 2 || node.children.len() >= 2) {
        s.push_str(&format!(
            "  shared: {:016x} ({} views)\n",
            node.prefix_fp, subtree
        ));
    }
    for child in &node.children {
        render_shared_nodes(child, s);
    }
}

/// Test-only panic injection: arming makes any job maintaining a view named
/// `panic_me` panic inside the worker, exercising the catch-and-surface
/// path.
#[cfg(test)]
pub(crate) mod test_panic {
    use std::sync::atomic::{AtomicBool, Ordering};

    static ARMED: AtomicBool = AtomicBool::new(false);

    pub fn arm() {
        ARMED.store(true, Ordering::SeqCst);
    }

    pub fn disarm() {
        ARMED.store(false, Ordering::SeqCst);
    }

    pub fn maybe_panic(view: &str) {
        if view == "panic_me" && ARMED.load(Ordering::SeqCst) {
            panic!("injected maintenance panic");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::fixtures::*;
    use crate::maintain::verify_against_recompute;
    use ojv_rel::Datum;

    fn db_with_views(n: usize, share: bool) -> Database {
        let mut c = example1_catalog();
        populate_example1(&mut c, 8, 9);
        let mut db = Database::new(c);
        db.policy.share_plans = share;
        for i in 0..n {
            db.create_view(oj_view_def().with_name(&format!("v{i}")))
                .unwrap();
        }
        db
    }

    /// Shared-plan batching must be byte-identical to per-view serial
    /// maintenance across inserts and deletes.
    #[test]
    fn shared_batch_matches_unshared_serial() {
        let mut shared = db_with_views(4, true);
        let mut plain = db_with_views(4, false);
        let ops: Vec<(bool, i64, i64)> =
            vec![(true, 3, 1), (true, 6, 9), (false, 3, 1), (false, 2, 1)];
        for (insert, ok, ln) in ops {
            if insert {
                let row = lineitem_row(ok, ln, 2, 4, 42.0);
                shared.insert("lineitem", vec![row.clone()]).unwrap();
                plain.insert("lineitem", vec![row]).unwrap();
            } else {
                let key = vec![Datum::Int(ok), Datum::Int(ln)];
                shared
                    .delete("lineitem", std::slice::from_ref(&key))
                    .unwrap();
                plain.delete("lineitem", &[key]).unwrap();
            }
            for i in 0..4 {
                let a = shared.view(&format!("v{i}")).unwrap();
                let b = plain.view(&format!("v{i}")).unwrap();
                assert_eq!(a.wide_rows(), b.wide_rows(), "view v{i} diverged");
                assert!(verify_against_recompute(a, shared.catalog()));
            }
        }
    }

    /// Identical views share one primary evaluation: every report carries
    /// the same plan fingerprint and `shared_with == number of views`.
    #[test]
    fn identical_views_share_primary() {
        let mut db = db_with_views(3, true);
        let reports = db
            .insert("lineitem", vec![lineitem_row(3, 1, 2, 4, 42.0)])
            .unwrap();
        assert_eq!(reports.len(), 3);
        let fp = reports[0].plan_fingerprint;
        assert_ne!(fp, 0);
        for r in &reports {
            assert_eq!(r.plan_fingerprint, fp);
            assert_eq!(r.shared_with, 3);
            assert_eq!(r.primary_rows, reports[0].primary_rows);
        }
        // Exactly one job paid the primary compute; the others rode along.
        let paying = reports
            .iter()
            .filter(|r| r.primary_compute > Duration::ZERO)
            .count();
        assert_eq!(paying, 1);
    }

    /// With sharing off, every view evaluates its own primary.
    #[test]
    fn unshared_views_each_pay() {
        let mut db = db_with_views(3, false);
        let reports = db
            .insert("lineitem", vec![lineitem_row(3, 1, 2, 4, 42.0)])
            .unwrap();
        assert_eq!(reports.len(), 3);
        for r in &reports {
            assert_eq!(r.shared_with, 0);
        }
    }

    /// A panicking job surfaces as `MaintenancePanic` instead of taking the
    /// process down, on both the inline and the threaded path.
    #[test]
    fn job_panic_is_caught_and_surfaced() {
        for threads in [1usize, 4] {
            let mut c = example1_catalog();
            populate_example1(&mut c, 8, 9);
            let mut db = Database::new(c);
            db.parallel_maintenance = threads > 1;
            db.policy = MaintenancePolicy::with_threads(threads);
            db.create_view(oj_view_def().with_name("ok_view")).unwrap();
            db.create_view(oj_view_def().with_name("panic_me")).unwrap();
            test_panic::arm();
            let err = db.insert("lineitem", vec![lineitem_row(3, 1, 2, 4, 42.0)]);
            test_panic::disarm();
            match err {
                Err(CoreError::MaintenancePanic { view, detail }) => {
                    assert_eq!(view, "panic_me");
                    assert!(detail.contains("injected"), "detail: {detail}");
                }
                other => panic!("expected MaintenancePanic, got {other:?}"),
            }
        }
    }

    /// The worker pool is capped by `policy.parallel.threads`, and capped
    /// parallel maintenance matches serial output.
    #[test]
    fn bounded_pool_matches_serial() {
        let mut serial = db_with_views(5, true);
        let mut pooled = db_with_views(5, true);
        pooled.parallel_maintenance = true;
        pooled.policy = MaintenancePolicy {
            share_plans: true,
            ..MaintenancePolicy::with_threads(2)
        };
        for d in [&mut serial, &mut pooled] {
            d.insert("lineitem", vec![lineitem_row(3, 1, 2, 4, 42.0)])
                .unwrap();
        }
        for i in 0..5 {
            let a = serial.view(&format!("v{i}")).unwrap();
            let b = pooled.view(&format!("v{i}")).unwrap();
            assert_eq!(a.wide_rows(), b.wide_rows());
        }
    }

    /// Steady state compiles nothing: after view creation warms the caches,
    /// a 100-batch workload leaves the compile counter untouched.
    #[test]
    fn steady_state_never_compiles() {
        let mut db = db_with_views(4, true);
        // Warm-up round so every (view, table) pair in this workload is
        // compiled (creation already warmed them eagerly).
        db.insert("lineitem", vec![lineitem_row(3, 99, 2, 4, 1.0)])
            .unwrap();
        let before = crate::compile::compile_count();
        for i in 0..100i64 {
            db.insert("lineitem", vec![lineitem_row(6, 100 + i, 2, 4, 1.0)])
                .unwrap();
        }
        assert_eq!(
            crate::compile::compile_count(),
            before,
            "steady-state batches must not compile"
        );
    }

    fn db_with_family() -> Database {
        let mut c = example1_catalog();
        populate_example1(&mut c, 8, 9);
        let mut db = Database::new(c);
        db.create_view(oj_view_variant("qa", 10)).unwrap();
        db.create_view(oj_view_variant("qb", 10)).unwrap();
        db.create_view(oj_view_variant("qc", 20)).unwrap();
        db
    }

    fn compiled_for(db: &Database, view: &str, table: &str) -> CompiledMaintenancePlan {
        let v = db.view(view).unwrap();
        let t = v.analysis.layout.table_id(table).unwrap();
        crate::compile::compile_uncached(&v.analysis, db.catalog(), t, PlanConfig::of(&db.policy))
            .unwrap()
    }

    /// Golden EXPLAIN: three identical Example-1 views share the whole plan,
    /// the batch plan pins exactly one `shared:` line carrying the full plan
    /// fingerprint, and the snapshot footer reports the commit LSN (0 — no
    /// batch has committed yet).
    #[test]
    fn explain_batch_pins_full_sharing() {
        let db = db_with_views(3, true);
        let text = db.explain_batch("lineitem").unwrap();
        let fp = compiled_for(&db, "v0", "lineitem").fingerprint;
        let expected = format!(
            "batch maintenance plan for Δlineitem:\n\
             \x20 view v0: plan {fp:016x}\n\
             \x20 view v1: plan {fp:016x}\n\
             \x20 view v2: plan {fp:016x}\n\
             \x20 shared: {fp:016x} (3 views)\n\
             \x20 snapshot lsn=0\n"
        );
        assert_eq!(text, expected);
    }

    /// The snapshot footer tracks the commit LSN: after two maintenance
    /// batches the same plan renders with `snapshot lsn=2`.
    #[test]
    fn explain_batch_snapshot_footer_tracks_commits() {
        let mut db = db_with_views(1, true);
        db.insert(
            "lineitem",
            vec![crate::fixtures::lineitem_row(3, 1, 2, 4, 42.0)],
        )
        .unwrap();
        db.delete(
            "lineitem",
            &[vec![ojv_rel::Datum::Int(3), ojv_rel::Datum::Int(1)]],
        )
        .unwrap();
        let text = db.explain_batch("lineitem").unwrap();
        assert!(
            text.ends_with("  snapshot lsn=2\n"),
            "footer must carry the post-batch LSN:\n{text}"
        );
        assert_eq!(db.commit_lsn(), 2);
    }

    /// Golden EXPLAIN for the TPC-H view family: all three members share the
    /// `Δlineitem ⋈ orders` prefix (3 views), and the two identical members
    /// additionally share the whole plan (2 views).
    #[test]
    fn explain_batch_pins_prefix_sharing() {
        let db = db_with_family();
        let text = db.explain_batch("lineitem").unwrap();
        let pa = compiled_for(&db, "qa", "lineitem");
        let pb = compiled_for(&db, "qb", "lineitem");
        let pc = compiled_for(&db, "qc", "lineitem");
        assert_eq!(
            pa.fingerprint, pb.fingerprint,
            "equal constants, equal plans"
        );
        assert_ne!(
            pa.fingerprint, pc.fingerprint,
            "different constants diverge"
        );
        // The shared prefix is the longest common leading subplan of the
        // family's spines; pin the EXPLAIN lines to its fingerprint.
        let sa = pa.spine.as_ref().unwrap();
        let sc = pc.spine.as_ref().unwrap();
        assert_eq!(sa.leaf_fingerprint(), sc.leaf_fingerprint());
        let mut k = 0;
        while k < sa.steps.len()
            && k < sc.steps.len()
            && sa.steps[k].fingerprint() == sc.steps[k].fingerprint()
        {
            k += 1;
        }
        assert!(k >= 1, "family must share at least the first join step");
        let prefix_fp = fingerprint_expr(&sa.prefix_expr(k));
        assert!(
            text.contains(&format!("shared: {prefix_fp:016x} (3 views)")),
            "missing 3-view prefix line in:\n{text}"
        );
        assert!(
            text.contains(&format!("shared: {:016x} (2 views)", pa.fingerprint)),
            "missing 2-view full-plan line in:\n{text}"
        );
    }

    /// Prefix sharing must also be byte-identical: the family diverges after
    /// the shared prefix, and batched maintenance with sharing on matches
    /// sharing off on every member.
    #[test]
    fn family_prefix_sharing_matches_unshared() {
        let mut shared = db_with_family();
        let mut plain = db_with_family();
        plain.policy.share_plans = false;
        for (ok, ln, qty) in [(3i64, 1i64, 5i64), (6, 9, 15), (2, 7, 25)] {
            let row = lineitem_row(ok, ln, 2, qty, 7.0);
            let a = shared.insert("lineitem", vec![row.clone()]).unwrap();
            let b = plain.insert("lineitem", vec![row]).unwrap();
            assert_eq!(a.len(), b.len());
            // `shared_with` counts views consuming the same final primary
            // rows: qa and qb share theirs (2), qc finishes its tail alone
            // after the shared prefix (1).
            let shares: Vec<usize> = a.iter().map(|r| r.shared_with).collect();
            assert_eq!(shares, vec![2, 2, 1]);
            assert!(b.iter().all(|r| r.shared_with == 0));
        }
        for name in ["qa", "qb", "qc"] {
            let a = shared.view(name).unwrap();
            let b = plain.view(name).unwrap();
            assert_eq!(a.wide_rows(), b.wide_rows(), "view {name} diverged");
            assert!(verify_against_recompute(a, shared.catalog()));
        }
    }

    /// End-to-end byte identity through the durable layer: the same workload
    /// with shared-plan batching on and off serializes to identical state.
    #[test]
    fn durable_state_bytes_identical_shared_vs_unshared() {
        let run = |share: bool| {
            let policy = MaintenancePolicy {
                share_plans: share,
                ..MaintenancePolicy::default()
            };
            let mut c = example1_catalog();
            populate_example1(&mut c, 8, 9);
            let mut d =
                crate::durable::DurableDatabase::create(ojv_durability::MemVfs::new(), c, policy)
                    .unwrap();
            d.create_view(oj_view_variant("qa", 10)).unwrap();
            d.create_view(oj_view_variant("qb", 10)).unwrap();
            d.create_view(oj_view_variant("qc", 20)).unwrap();
            d.create_view(oj_view_def()).unwrap();
            for i in 0..10i64 {
                d.insert(
                    "lineitem",
                    vec![lineitem_row(6, 300 + i, 1 + (i % 8), i % 15, 1.0)],
                )
                .unwrap();
            }
            d.delete("lineitem", &[vec![Datum::Int(6), Datum::Int(300)]])
                .unwrap();
            d.state_bytes().unwrap()
        };
        assert_eq!(
            run(true),
            run(false),
            "state bytes must not depend on sharing"
        );
    }

    /// Views over different tables coexist in a batch: unaffected views are
    /// skipped, affected ones maintained.
    #[test]
    fn unaffected_views_are_skipped() {
        let mut c = example1_catalog();
        populate_example1(&mut c, 8, 9);
        let mut db = Database::new(c);
        db.create_view(oj_view_def()).unwrap();
        let reports = db
            .insert("lineitem", vec![lineitem_row(3, 1, 2, 4, 42.0)])
            .unwrap();
        assert_eq!(reports.len(), 1);
    }
}
