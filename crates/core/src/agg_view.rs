//! Aggregated outer-join views (paper §3.3).
//!
//! An aggregated outer-join view is an SPOJ view with a group-by on top. Per
//! the paper, the maintained state keeps, for every group, a regular row
//! count (zero ⇒ the group disappears) and not-null counts so aggregates
//! over a table's columns become `NULL` when no remaining row in the group
//! carries that table. The incremental step computes the same `ΔV^D`/`ΔV^I`
//! as a non-aggregated view, aggregates them, and merges the signed result —
//! with `ΔV^I` computed **from base tables** (§5.3), because the aggregated
//! view cannot expose its terms.
//!
//! As in SQL Server's indexed views, the maintainable aggregate set is
//! `COUNT(*)`, `COUNT(col)`, and `SUM(col)`.

use std::sync::Arc;

use ojv_algebra::TableId;
use ojv_exec::{eval_expr, DeltaInput, ExecCtx};
use ojv_rel::{key_of, Column, DataType, Datum, ExactFloatSum, FxHashMap, Relation, Row, Schema};
use ojv_storage::{Catalog, Update, UpdateOp};

use crate::analyze::{analyze, ViewAnalysis};
use crate::compile::{CompiledMaintenancePlan, PlanCache, PlanConfig};
use crate::error::{CoreError, Result};
use crate::maintain::{IndirectTermView, MaintenanceReport};
use crate::policy::MaintenancePolicy;
use crate::secondary::{self, SecondaryCtx};
use crate::view_def::ViewDef;

/// An aggregate over the inner view's columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggSpec {
    /// `COUNT(*)`.
    CountRows,
    /// `COUNT(table.column)`.
    CountNonNull { table: String, column: String },
    /// `SUM(table.column)`.
    Sum { table: String, column: String },
}

/// An aggregated view definition: group-by columns and named aggregates over
/// an inner SPOJ view.
#[derive(Debug, Clone, PartialEq)]
pub struct AggViewDef {
    pub name: String,
    pub inner: ViewDef,
    pub group_by: Vec<(String, String)>,
    pub aggs: Vec<(String, AggSpec)>,
}

impl AggViewDef {
    pub fn new(name: &str, inner: ViewDef) -> Self {
        AggViewDef {
            name: name.to_string(),
            inner,
            group_by: Vec::new(),
            aggs: Vec::new(),
        }
    }

    pub fn group_by(mut self, table: &str, column: &str) -> Self {
        self.group_by.push((table.to_string(), column.to_string()));
        self
    }

    pub fn agg(mut self, out_name: &str, spec: AggSpec) -> Self {
        self.aggs.push((out_name.to_string(), spec));
        self
    }
}

#[derive(Debug, Clone)]
enum AggAcc {
    Count(i64),
    SumInt {
        sum: i64,
        non_null: i64,
    },
    /// Float sums use an exact accumulator so that adding and removing
    /// contributions in maintenance order yields bit-identical results to a
    /// from-scratch recompute (plain `f64` addition is order-dependent).
    SumFloat {
        sum: Box<ExactFloatSum>,
        non_null: i64,
    },
}

#[derive(Debug, Clone)]
struct GroupState {
    /// `COUNT(*)` over the group — zero means the group row is deleted.
    count: i64,
    /// Per null-extendable table: rows in the group carrying that table.
    notnull: Vec<i64>,
    aggs: Vec<AggAcc>,
}

#[derive(Debug, Clone, Copy)]
enum AggCol {
    CountRows,
    CountNonNull(usize),
    SumInt(usize),
    SumFloat(usize),
}

/// A materialized aggregated outer-join view.
#[derive(Debug, Clone)]
pub struct MaterializedAggView {
    def: AggViewDef,
    pub analysis: ViewAnalysis,
    group_cols: Vec<usize>,
    agg_cols: Vec<AggCol>,
    /// Tables that are null-extended in at least one term (§3.3).
    notnull_tables: Vec<TableId>,
    groups: FxHashMap<Vec<Datum>, GroupState>,
    plans: PlanCache,
}

impl MaterializedAggView {
    /// Analyze the inner view and materialize the aggregated contents.
    pub fn create(catalog: &Catalog, def: AggViewDef) -> Result<Self> {
        let analysis = analyze(catalog, &def.inner)?;
        if def.group_by.is_empty() {
            return Err(CoreError::InvalidView {
                view: def.name.clone(),
                detail: "aggregated view requires at least one group-by column".into(),
            });
        }
        let mut group_cols = Vec::with_capacity(def.group_by.len());
        for (t, c) in &def.group_by {
            let cr = analysis
                .layout
                .col(t, c)
                .map_err(|_| CoreError::InvalidView {
                    view: def.name.clone(),
                    detail: format!("group-by column {t}.{c} not found"),
                })?;
            group_cols.push(analysis.layout.global(cr));
        }
        let mut agg_cols = Vec::with_capacity(def.aggs.len());
        for (out, spec) in &def.aggs {
            agg_cols.push(match spec {
                AggSpec::CountRows => AggCol::CountRows,
                AggSpec::CountNonNull { table, column } => {
                    let cr =
                        analysis
                            .layout
                            .col(table, column)
                            .map_err(|_| CoreError::InvalidView {
                                view: def.name.clone(),
                                detail: format!("aggregate {out}: column not found"),
                            })?;
                    AggCol::CountNonNull(analysis.layout.global(cr))
                }
                AggSpec::Sum { table, column } => {
                    let cr =
                        analysis
                            .layout
                            .col(table, column)
                            .map_err(|_| CoreError::InvalidView {
                                view: def.name.clone(),
                                detail: format!("aggregate {out}: column not found"),
                            })?;
                    let g = analysis.layout.global(cr);
                    match analysis.layout.wide_schema().column(g).ty {
                        DataType::Int => AggCol::SumInt(g),
                        DataType::Float => AggCol::SumFloat(g),
                        other => {
                            return Err(CoreError::InvalidView {
                                view: def.name.clone(),
                                detail: format!("SUM over non-numeric column of type {other}"),
                            })
                        }
                    }
                }
            });
        }
        // Tables null-extended in some term: not in every term's source set.
        let notnull_tables: Vec<TableId> = (0..analysis.layout.table_count())
            .map(|i| TableId(i as u8))
            .filter(|t| analysis.terms.iter().any(|term| !term.tables.contains(*t)))
            .collect();

        let mut view = MaterializedAggView {
            def,
            analysis,
            group_cols,
            agg_cols,
            notnull_tables,
            groups: FxHashMap::default(),
            plans: PlanCache::default(),
        };
        let ctx = ExecCtx::new(catalog, &view.analysis.layout);
        let rows = eval_expr(&ctx, &view.analysis.expr)?;
        view.apply_rows(&rows, 1);
        Ok(view)
    }

    pub fn name(&self) -> &str {
        &self.def.name
    }

    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Merge wide rows into the group states with the given sign.
    fn apply_rows(&mut self, rows: &[Row], sign: i64) {
        for row in rows {
            let key = key_of(row, &self.group_cols);
            let state = self
                .groups
                .entry(key.clone())
                .or_insert_with(|| GroupState {
                    count: 0,
                    notnull: vec![0; self.notnull_tables.len()],
                    aggs: self
                        .agg_cols
                        .iter()
                        .map(|a| match a {
                            AggCol::CountRows | AggCol::CountNonNull(_) => AggAcc::Count(0),
                            AggCol::SumInt(_) => AggAcc::SumInt {
                                sum: 0,
                                non_null: 0,
                            },
                            AggCol::SumFloat(_) => AggAcc::SumFloat {
                                sum: Box::new(ExactFloatSum::new()),
                                non_null: 0,
                            },
                        })
                        .collect(),
                });
            state.count += sign;
            for (slot, t) in self.notnull_tables.iter().enumerate() {
                if !self.analysis.layout.is_null_on(*t, row) {
                    state.notnull[slot] += sign;
                }
            }
            for (acc, col) in state.aggs.iter_mut().zip(&self.agg_cols) {
                match (acc, col) {
                    (AggAcc::Count(c), AggCol::CountRows) => *c += sign,
                    (AggAcc::Count(c), AggCol::CountNonNull(g)) => {
                        if !row[*g].is_null() {
                            *c += sign;
                        }
                    }
                    (AggAcc::SumInt { sum, non_null }, AggCol::SumInt(g)) => {
                        if let Some(v) = row[*g].as_int() {
                            *sum += sign * v;
                            *non_null += sign;
                        }
                    }
                    (AggAcc::SumFloat { sum, non_null }, AggCol::SumFloat(g)) => {
                        if let Some(v) = row[*g].as_float() {
                            if sign > 0 {
                                sum.add(v);
                            } else {
                                sum.sub(v);
                            }
                            *non_null += sign;
                        }
                    }
                    _ => unreachable!("accumulator/column shape mismatch"),
                }
            }
            if state.count == 0 {
                self.groups.remove(&key);
            }
        }
    }

    /// The compiled maintenance plan for updates of `t` under `cfg`,
    /// compiling on first use.
    pub fn compiled_plan(
        &mut self,
        catalog: &Catalog,
        t: TableId,
        cfg: PlanConfig,
    ) -> Result<Arc<CompiledMaintenancePlan>> {
        self.plans.get_or_compile(&self.analysis, catalog, t, cfg)
    }

    /// Eagerly compile the maintenance plan for every referenced table under
    /// `policy` — called at view creation so steady-state maintenance never
    /// compiles.
    pub fn warm_plans(&mut self, catalog: &Catalog, policy: &MaintenancePolicy) -> Result<()> {
        let cfg = PlanConfig::of(policy);
        for i in 0..self.analysis.layout.table_count() {
            self.compiled_plan(catalog, TableId(i as u8), cfg)?;
        }
        Ok(())
    }

    /// Incrementally maintain after `update` was applied to the catalog.
    pub fn maintain(
        &mut self,
        catalog: &Catalog,
        update: &Update,
        policy: &MaintenancePolicy,
    ) -> Result<MaintenanceReport> {
        let mut report = MaintenanceReport {
            view: self.def.name.clone(),
            table: update.table.clone(),
            update_rows: update.rows.len(),
            ..Default::default()
        };
        let Some(t) = self.analysis.layout.table_id(&update.table) else {
            report.noop = true;
            return Ok(report);
        };
        let compiled = self.compiled_plan(catalog, t, PlanConfig::of(policy))?;
        if compiled.noop {
            report.noop = true;
            return Ok(report);
        }
        // The aggregated store is independent of the delta computations
        // (the secondary delta always comes from base tables, §3.3), so
        // compute both deltas first, then merge.
        let analysis = self.analysis.clone();
        ojv_analysis::verify_delta_arity(&analysis.layout, t, update.rows.schema().len())
            .map_err(CoreError::Plan)?;
        let delta_input = DeltaInput {
            table: t,
            rows: &update.rows,
        };
        let exec = ExecCtx::with_delta(catalog, &analysis.layout, delta_input)
            .with_parallel(policy.parallel);

        let start = std::time::Instant::now();
        let primary: Vec<Row> = match &compiled.plan {
            None => Vec::new(),
            Some(plan) => eval_expr(&exec, plan)?,
        };
        let primary_compute = start.elapsed();
        self.apply_with_primary(&exec, update, &analysis, &compiled, &primary, &mut report)?;
        report.primary_compute = primary_compute;
        Ok(report)
    }

    /// Compute the secondary delta and merge both deltas into the group
    /// states, given an already-evaluated primary delta. Factored out so the
    /// batch layer can feed a shared primary delta in.
    pub(crate) fn apply_with_primary(
        &mut self,
        exec: &ExecCtx<'_>,
        update: &Update,
        analysis: &ViewAnalysis,
        compiled: &CompiledMaintenancePlan,
        primary: &[Row],
        report: &mut MaintenanceReport,
    ) -> Result<()> {
        let t = compiled.table;
        report.direct_terms = compiled.mgraph.direct.len();
        report.indirect_terms = compiled.indirect.len();
        report.verified_checks = compiled.verified_checks;
        report.plan_fingerprint = compiled.fingerprint;
        report.primary_rows = primary.len();
        let sign = match update.op {
            UpdateOp::Insert => 1,
            UpdateOp::Delete => -1,
        };

        let start = std::time::Instant::now();
        let mut secondary_rows: Vec<Row> = Vec::new();
        if !compiled.indirect.is_empty() && !primary.is_empty() {
            let sctx = SecondaryCtx {
                layout: &analysis.layout,
                terms: &analysis.terms,
                updated: t,
            };
            for ind in &compiled.indirect {
                let ind_view = IndirectTermView {
                    term: ind.term,
                    pard: &ind.pard,
                    all_parents: &ind.all_parents,
                };
                let insert = update.op == UpdateOp::Insert;
                secondary_rows.extend(secondary::from_base(
                    &sctx, exec, &ind_view, primary, insert,
                )?);
            }
        }
        report.secondary_rows = secondary_rows.len();
        report.secondary_time = start.elapsed();

        let start = std::time::Instant::now();
        self.apply_rows(primary, sign);
        self.apply_rows(&secondary_rows, -sign);
        report.primary_apply = start.elapsed();
        Ok(())
    }

    /// The aggregated output: group-by columns followed by the aggregates.
    pub fn output(&self) -> Relation {
        let layout = &self.analysis.layout;
        let mut cols: Vec<Column> = self
            .group_cols
            .iter()
            .map(|&g| layout.wide_schema().column(g).clone())
            .collect();
        for (name, spec) in &self.def.aggs {
            let ty = match spec {
                AggSpec::CountRows | AggSpec::CountNonNull { .. } => DataType::Int,
                AggSpec::Sum { .. } => match self.agg_cols[cols.len() - self.group_cols.len()] {
                    AggCol::SumInt(_) => DataType::Int,
                    _ => DataType::Float,
                },
            };
            cols.push(Column::new("agg", name, ty, true));
        }
        let schema = Schema::shared(cols).expect("aggregate output columns are distinct");
        let mut rows: Vec<Row> = self
            .groups
            .iter()
            .map(|(key, state)| {
                let mut row = key.clone();
                for acc in &state.aggs {
                    row.push(match acc {
                        AggAcc::Count(c) => Datum::Int(*c),
                        AggAcc::SumInt { non_null: 0, .. }
                        | AggAcc::SumFloat { non_null: 0, .. } => Datum::Null,
                        AggAcc::SumInt { sum, .. } => Datum::Int(*sum),
                        AggAcc::SumFloat { sum, .. } => Datum::Float(sum.to_f64()),
                    });
                }
                row
            })
            .collect();
        rows.sort();
        Relation::new(schema, rows)
    }

    /// Per-group not-null count for a table (the §3.3 bookkeeping), for
    /// inspection and tests.
    pub fn notnull_count(&self, group: &[Datum], table: &str) -> Option<i64> {
        let t = self.analysis.layout.table_id(table)?;
        let slot = self.notnull_tables.iter().position(|x| *x == t)?;
        self.groups.get(group).map(|g| g.notnull[slot])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::*;

    fn agg_def() -> AggViewDef {
        AggViewDef::new("agg_view", oj_view_def())
            .group_by("part", "p_partkey")
            .agg("cnt", AggSpec::CountRows)
            .agg(
                "line_cnt",
                AggSpec::CountNonNull {
                    table: "lineitem".into(),
                    column: "l_orderkey".into(),
                },
            )
            .agg(
                "qty_sum",
                AggSpec::Sum {
                    table: "lineitem".into(),
                    column: "l_quantity".into(),
                },
            )
    }

    /// Recompute the aggregate from scratch and compare outputs.
    fn assert_matches_recompute(view: &MaterializedAggView, catalog: &Catalog) {
        let fresh = MaterializedAggView::create(catalog, view.def.clone()).unwrap();
        let a = view.output();
        let b = fresh.output();
        assert!(
            a.bag_eq(&b),
            "aggregated view diverged:\nmaintained:\n{a}\nrecomputed:\n{b}"
        );
    }

    #[test]
    fn create_and_group() {
        let mut c = example1_catalog();
        populate_example1(&mut c, 6, 9);
        let view = MaterializedAggView::create(&c, agg_def()).unwrap();
        // One group per part (+ the NULL-part group for orphaned orders).
        assert!(view.group_count() >= 6);
        assert_matches_recompute(&view, &c);
    }

    #[test]
    fn maintain_under_lineitem_inserts_and_deletes() {
        let mut c = example1_catalog();
        populate_example1(&mut c, 6, 9);
        let mut view = MaterializedAggView::create(&c, agg_def()).unwrap();
        let up = c
            .insert("lineitem", vec![lineitem_row(3, 1, 2, 4, 42.0)])
            .unwrap();
        let report = view.maintain(&c, &up, &MaintenancePolicy::paper()).unwrap();
        assert!(report.primary_rows > 0);
        assert_matches_recompute(&view, &c);

        let down = c
            .delete("lineitem", &[vec![Datum::Int(3), Datum::Int(1)]])
            .unwrap();
        view.maintain(&c, &down, &MaintenancePolicy::paper())
            .unwrap();
        assert_matches_recompute(&view, &c);
    }

    #[test]
    fn maintain_under_part_inserts() {
        let mut c = example1_catalog();
        populate_example1(&mut c, 6, 9);
        let mut view = MaterializedAggView::create(&c, agg_def()).unwrap();
        let before = view.group_count();
        let up = c.insert("part", vec![part_row(50, "new", 9.0)]).unwrap();
        view.maintain(&c, &up, &MaintenancePolicy::paper()).unwrap();
        assert_eq!(view.group_count(), before + 1);
        assert_matches_recompute(&view, &c);
    }

    #[test]
    fn group_disappears_at_zero_count() {
        let mut c = example1_catalog();
        c.insert("part", vec![part_row(1, "only", 1.0)]).unwrap();
        let mut view = MaterializedAggView::create(&c, agg_def()).unwrap();
        assert_eq!(view.group_count(), 1);
        let down = c.delete("part", &[vec![Datum::Int(1)]]).unwrap();
        view.maintain(&c, &down, &MaintenancePolicy::paper())
            .unwrap();
        assert_eq!(view.group_count(), 0);
        assert_matches_recompute(&view, &c);
    }

    #[test]
    fn sum_becomes_null_when_contributors_vanish() {
        let mut c = example1_catalog();
        populate_example1(&mut c, 4, 4);
        let mut view = MaterializedAggView::create(&c, agg_def()).unwrap();
        // Delete all lineitems of part 2's group: the group's qty_sum must
        // become NULL while the part row keeps the group alive.
        let l = c.table("lineitem").unwrap();
        let part_col = l.schema().index_of("lineitem", "l_partkey").unwrap();
        let keys: Vec<Vec<Datum>> = l
            .iter_refs()
            .filter(|r| r.datum(part_col) == Datum::Int(2))
            .map(|r| vec![r.datum(0), r.datum(1)])
            .collect();
        if keys.is_empty() {
            return; // fixture produced no such lines; nothing to test
        }
        let down = c.delete("lineitem", &keys).unwrap();
        view.maintain(&c, &down, &MaintenancePolicy::paper())
            .unwrap();
        assert_matches_recompute(&view, &c);
        let group = vec![Datum::Int(2)];
        assert_eq!(view.notnull_count(&group, "lineitem"), Some(0));
        let out = view.output();
        let row = out
            .rows()
            .iter()
            .find(|r| r[0] == Datum::Int(2))
            .expect("part 2 group survives via the part row");
        // qty_sum (last column) must be NULL.
        assert_eq!(row[row.len() - 1], Datum::Null);
    }

    #[test]
    fn rejects_missing_group_by() {
        let c = example1_catalog();
        let def = AggViewDef::new("bad", oj_view_def()).agg("cnt", AggSpec::CountRows);
        assert!(MaterializedAggView::create(&c, def).is_err());
    }

    #[test]
    fn rejects_sum_over_strings() {
        let c = example1_catalog();
        let def = agg_def().agg(
            "bad",
            AggSpec::Sum {
                table: "part".into(),
                column: "p_name".into(),
            },
        );
        assert!(MaterializedAggView::create(&c, def).is_err());
    }
}
