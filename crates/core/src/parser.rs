//! A small SQL parser for view definitions.
//!
//! Accepts the dialect the paper writes its views in:
//!
//! ```sql
//! SELECT p.partkey, ...        -- or SELECT *
//! FROM part
//!   FULL OUTER JOIN (orders LEFT OUTER JOIN lineitem
//!                    ON l_orderkey = o_orderkey)
//!   ON p_partkey = l_partkey AND p_retailprice < 2000
//! [WHERE <conjunction>]
//! ```
//!
//! Supported: the four SPOJ join kinds (`JOIN`/`INNER JOIN`, `LEFT/RIGHT/
//! FULL [OUTER] JOIN`), parenthesized join subtrees, `ON`/`WHERE`
//! conjunctions of column–column comparisons, column–literal comparisons and
//! `BETWEEN`, with integer, float, string (`'...'`), and `DATE 'YYYY-MM-DD'`
//! literals. Column references may be bare (`l_orderkey`) — resolved against
//! the referenced tables, erroring on ambiguity — or qualified
//! (`lineitem.l_orderkey`).
//!
//! The parser produces a [`ViewDef`]; catalog resolution and the paper's §2
//! restrictions are checked later by [`crate::analyze::analyze`].

use ojv_algebra::CmpOp;
use ojv_rel::datum::days_from_date;
use ojv_rel::Datum;
use ojv_storage::Catalog;

use crate::error::{CoreError, Result};
use crate::view_def::{NamedAtom, ViewDef, ViewExpr};

/// Parse a `SELECT ... FROM ... [WHERE ...]` statement into a view
/// definition named `name`.
///
/// The catalog is used to resolve unqualified column names to their tables.
pub fn parse_view(catalog: &Catalog, name: &str, sql: &str) -> Result<ViewDef> {
    let tokens = tokenize(sql).map_err(|detail| CoreError::InvalidView {
        view: name.to_string(),
        detail,
    })?;
    let mut p = Parser {
        catalog,
        view: name,
        tokens,
        pos: 0,
    };
    let def = p.statement()?;
    Ok(def)
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Symbol(char), // ( ) , . *
    Op(String),   // = <> < <= > >=
}

fn keyword(t: &Tok, kw: &str) -> bool {
    matches!(t, Tok::Ident(s) if s.eq_ignore_ascii_case(kw))
}

fn tokenize(sql: &str) -> std::result::Result<Vec<Tok>, String> {
    let mut out = Vec::new();
    let chars: Vec<char> = sql.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '(' | ')' | ',' | '.' | '*' => {
                out.push(Tok::Symbol(c));
                i += 1;
            }
            '=' => {
                out.push(Tok::Op("=".into()));
                i += 1;
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Tok::Op("<=".into()));
                    i += 2;
                } else if chars.get(i + 1) == Some(&'>') {
                    out.push(Tok::Op("<>".into()));
                    i += 2;
                } else {
                    out.push(Tok::Op("<".into()));
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Tok::Op(">=".into()));
                    i += 2;
                } else {
                    out.push(Tok::Op(">".into()));
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match chars.get(i) {
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(&c) => {
                            s.push(c);
                            i += 1;
                        }
                        None => return Err("unterminated string literal".into()),
                    }
                }
                out.push(Tok::Str(s));
            }
            c if c.is_ascii_digit()
                || (c == '-' && matches!(chars.get(i + 1), Some(d) if d.is_ascii_digit())) =>
            {
                let start = i;
                i += 1;
                let mut is_float = false;
                while let Some(&c) = chars.get(i) {
                    if c.is_ascii_digit() {
                        i += 1;
                    } else if c == '.'
                        && matches!(chars.get(i + 1), Some(d) if d.is_ascii_digit())
                        && !is_float
                    {
                        is_float = true;
                        i += 2;
                    } else {
                        break;
                    }
                }
                let text: String = chars[start..i].iter().collect();
                if is_float {
                    out.push(Tok::Float(text.parse().map_err(|e| format!("{e}"))?));
                } else {
                    out.push(Tok::Int(text.parse().map_err(|e| format!("{e}"))?));
                }
            }
            c if c.is_alphabetic() || c == '_' || c == '#' => {
                let start = i;
                i += 1;
                while matches!(chars.get(i), Some(&c) if c.is_alphanumeric() || c == '_') {
                    i += 1;
                }
                out.push(Tok::Ident(chars[start..i].iter().collect()));
            }
            other => return Err(format!("unexpected character '{other}'")),
        }
    }
    Ok(out)
}

struct Parser<'a> {
    catalog: &'a Catalog,
    view: &'a str,
    tokens: Vec<Tok>,
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, detail: impl Into<String>) -> CoreError {
        CoreError::InvalidView {
            view: self.view.to_string(),
            detail: detail.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(t) if keyword(t, kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kw} at token {:?}", self.peek())))
        }
    }

    fn statement(&mut self) -> Result<ViewDef> {
        let (expr, projection) = self.statement_body()?;
        if let Some(t) = self.peek() {
            return Err(self.err(format!("trailing tokens starting at {t:?}")));
        }
        let mut def = ViewDef::new(self.view, expr.clone());
        if let Some(cols) = projection {
            // Resolve unqualified projection columns against the FROM tables.
            let tables = expr.tables();
            let resolved: Result<Vec<(String, String)>> = cols
                .into_iter()
                .map(|(t, c)| match t {
                    Some(t) => Ok((t, c)),
                    None => self.resolve_table_of(&tables, &c).map(|t| (t, c)),
                })
                .collect();
            let resolved = resolved?;
            def = def.with_projection(
                resolved
                    .iter()
                    .map(|(t, c)| (t.as_str(), c.as_str()))
                    .collect(),
            );
        }
        Ok(def)
    }

    /// `SELECT <list> FROM <joins> [WHERE <conjunction>]`, stopping at the
    /// first token that cannot extend the statement (so it can be nested in
    /// parentheses as a derived table).
    #[allow(clippy::type_complexity)]
    fn statement_body(&mut self) -> Result<(ViewExpr, Option<Vec<(Option<String>, String)>>)> {
        self.expect_keyword("SELECT")?;
        let projection = self.select_list()?;
        self.expect_keyword("FROM")?;
        let mut expr = self.join_expr()?;
        if self.eat_keyword("WHERE") {
            let atoms = self.conjunction(&expr)?;
            expr = ViewExpr::select(atoms, expr);
        }
        Ok((expr, projection))
    }

    /// `*` or a comma-separated list of (possibly qualified) columns.
    #[allow(clippy::type_complexity)]
    fn select_list(&mut self) -> Result<Option<Vec<(Option<String>, String)>>> {
        if matches!(self.peek(), Some(Tok::Symbol('*'))) {
            self.pos += 1;
            return Ok(None);
        }
        let mut cols = Vec::new();
        loop {
            let first = match self.next() {
                Some(Tok::Ident(s)) => s,
                other => return Err(self.err(format!("expected column name, got {other:?}"))),
            };
            if matches!(self.peek(), Some(Tok::Symbol('.'))) {
                self.pos += 1;
                let col = match self.next() {
                    Some(Tok::Ident(s)) => s,
                    other => {
                        return Err(self.err(format!("expected column after '.', got {other:?}")))
                    }
                };
                cols.push((Some(first), col));
            } else {
                cols.push((None, first));
            }
            if matches!(self.peek(), Some(Tok::Symbol(','))) {
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok(Some(cols))
    }

    /// Left-associative join expression.
    fn join_expr(&mut self) -> Result<ViewExpr> {
        let mut left = self.join_operand()?;
        loop {
            let kind = if self.eat_keyword("JOIN") {
                Some(JoinKw::Inner)
            } else if self.eat_keyword("INNER") {
                self.expect_keyword("JOIN")?;
                Some(JoinKw::Inner)
            } else if self.eat_keyword("LEFT") {
                self.eat_keyword("OUTER");
                self.expect_keyword("JOIN")?;
                Some(JoinKw::Left)
            } else if self.eat_keyword("RIGHT") {
                self.eat_keyword("OUTER");
                self.expect_keyword("JOIN")?;
                Some(JoinKw::Right)
            } else if self.eat_keyword("FULL") {
                self.eat_keyword("OUTER");
                self.expect_keyword("JOIN")?;
                Some(JoinKw::Full)
            } else {
                None
            };
            let Some(kind) = kind else { break };
            let right = self.join_operand()?;
            self.expect_keyword("ON")?;
            // Atoms may reference tables from either side.
            let combined = ViewExpr::inner(vec![], left.clone(), right.clone());
            let atoms = self.conjunction(&combined)?;
            let kind = match kind {
                JoinKw::Inner => ojv_algebra::JoinKind::Inner,
                JoinKw::Left => ojv_algebra::JoinKind::LeftOuter,
                JoinKw::Right => ojv_algebra::JoinKind::RightOuter,
                JoinKw::Full => ojv_algebra::JoinKind::FullOuter,
            };
            left = ViewExpr::join(kind, atoms, left, right);
        }
        Ok(left)
    }

    fn join_operand(&mut self) -> Result<ViewExpr> {
        match self.next() {
            Some(Tok::Symbol('(')) => {
                // Either a parenthesized join subtree or a derived table
                // (`SELECT * FROM … [WHERE …]`).
                let inner = if matches!(self.peek(), Some(t) if keyword(t, "SELECT")) {
                    let (expr, projection) = self.statement_body()?;
                    if projection.is_some() {
                        return Err(self.err(
                            "derived tables must select * (projections only at the top level)",
                        ));
                    }
                    expr
                } else {
                    self.join_expr()?
                };
                match self.next() {
                    Some(Tok::Symbol(')')) => {
                        // Optional `AS alias` — accepted and validated to
                        // match a referenced table (the engine has no
                        // renaming).
                        if self.eat_keyword("AS") {
                            match self.next() {
                                Some(Tok::Ident(alias)) => {
                                    if !inner.tables().contains(&alias) {
                                        return Err(self.err(format!(
                                            "alias {alias} must name a referenced table"
                                        )));
                                    }
                                }
                                other => {
                                    return Err(self.err(format!("expected alias, got {other:?}")))
                                }
                            }
                        }
                        Ok(inner)
                    }
                    other => Err(self.err(format!("expected ')', got {other:?}"))),
                }
            }
            Some(Tok::Ident(name)) => Ok(ViewExpr::table(&name)),
            other => Err(self.err(format!("expected table or '(', got {other:?}"))),
        }
    }

    /// `atom (AND atom)*`.
    fn conjunction(&mut self, scope: &ViewExpr) -> Result<Vec<NamedAtom>> {
        let tables = scope.tables();
        let mut atoms = vec![self.atom(&tables)?];
        while self.eat_keyword("AND") {
            atoms.push(self.atom(&tables)?);
        }
        Ok(atoms)
    }

    fn atom(&mut self, tables: &[String]) -> Result<NamedAtom> {
        let left = self.column_ref(tables)?;
        if self.eat_keyword("BETWEEN") {
            let lo = self.literal()?;
            self.expect_keyword("AND")?;
            let hi = self.literal()?;
            return Ok(NamedAtom::Between { col: left, lo, hi });
        }
        let op = match self.next() {
            Some(Tok::Op(op)) => match op.as_str() {
                "=" => CmpOp::Eq,
                "<>" => CmpOp::Ne,
                "<" => CmpOp::Lt,
                "<=" => CmpOp::Le,
                ">" => CmpOp::Gt,
                ">=" => CmpOp::Ge,
                other => return Err(self.err(format!("unknown operator {other}"))),
            },
            other => return Err(self.err(format!("expected comparison operator, got {other:?}"))),
        };
        // Right side: column reference or literal.
        match self.peek() {
            Some(Tok::Ident(s)) if !s.eq_ignore_ascii_case("DATE") => {
                let right = self.column_ref(tables)?;
                Ok(NamedAtom::Cols { left, op, right })
            }
            _ => {
                let value = self.literal()?;
                Ok(NamedAtom::Const {
                    col: left,
                    op,
                    value,
                })
            }
        }
    }

    /// `table.column` or a bare `column` resolved against `tables`.
    fn column_ref(&mut self, tables: &[String]) -> Result<(String, String)> {
        let first = match self.next() {
            Some(Tok::Ident(s)) => s,
            other => return Err(self.err(format!("expected column reference, got {other:?}"))),
        };
        if matches!(self.peek(), Some(Tok::Symbol('.'))) {
            self.pos += 1;
            match self.next() {
                Some(Tok::Ident(col)) => Ok((first, col)),
                other => Err(self.err(format!("expected column after '.', got {other:?}"))),
            }
        } else {
            let table = self.resolve_table_of(tables, &first)?;
            Ok((table, first))
        }
    }

    /// Find the unique table among `tables` that has a column named `col`.
    fn resolve_table_of(&self, tables: &[String], col: &str) -> Result<String> {
        let mut found: Option<&String> = None;
        for t in tables {
            let table = self
                .catalog
                .table(t)
                .map_err(|_| self.err(format!("unknown table {t}")))?;
            if table.schema().index_of(t, col).is_ok() {
                if found.is_some() {
                    return Err(self.err(format!("column {col} is ambiguous")));
                }
                found = Some(t);
            }
        }
        found
            .cloned()
            .ok_or_else(|| self.err(format!("column {col} not found in any referenced table")))
    }

    fn literal(&mut self) -> Result<Datum> {
        match self.next() {
            Some(Tok::Int(v)) => Ok(Datum::Int(v)),
            Some(Tok::Float(v)) => Ok(Datum::Float(v)),
            Some(Tok::Str(s)) => Ok(Datum::str(s)),
            Some(Tok::Ident(kw)) if kw.eq_ignore_ascii_case("DATE") => match self.next() {
                Some(Tok::Str(s)) => parse_date(&s).ok_or_else(|| {
                    self.err(format!("malformed date literal '{s}' (want YYYY-MM-DD)"))
                }),
                other => Err(self.err(format!("expected date string, got {other:?}"))),
            },
            other => Err(self.err(format!("expected literal, got {other:?}"))),
        }
    }
}

enum JoinKw {
    Inner,
    Left,
    Right,
    Full,
}

fn parse_date(s: &str) -> Option<Datum> {
    let mut parts = s.splitn(3, '-');
    let y: i32 = parts.next()?.parse().ok()?;
    let m: u32 = parts.next()?.parse().ok()?;
    let d: u32 = parts.next()?.parse().ok()?;
    if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    Some(Datum::Date(days_from_date(y, m, d)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::fixtures::{example1_catalog, oj_view_def};

    #[test]
    fn parses_example_1_verbatim() {
        let catalog = example1_catalog();
        let def = parse_view(
            &catalog,
            "oj_view",
            "select * from part \
             full outer join (orders left outer join lineitem \
                              on l_orderkey = o_orderkey) \
             on p_partkey = l_partkey",
        )
        .unwrap();
        // The parsed definition must be semantically identical to the
        // hand-built fixture (same tables, same normal form).
        let a = analyze(&catalog, &def).unwrap();
        let b = analyze(&catalog, &oj_view_def()).unwrap();
        assert_eq!(a.terms.len(), b.terms.len());
        for (x, y) in a.terms.iter().zip(&b.terms) {
            assert_eq!(x.tables, y.tables);
        }
    }

    #[test]
    fn parses_qualified_columns_projection_and_where() {
        let catalog = example1_catalog();
        let def = parse_view(
            &catalog,
            "v",
            "SELECT part.p_partkey, p_name, l_quantity \
             FROM part LEFT OUTER JOIN lineitem ON part.p_partkey = lineitem.l_partkey \
             WHERE p_retailprice >= 10.5",
        )
        .unwrap();
        assert_eq!(def.projection().unwrap().len(), 3);
        assert_eq!(def.projection().unwrap()[1].0, "part");
        let a = analyze(&catalog, &def).unwrap();
        assert_eq!(a.projection.len(), 3);
        // WHERE over the left-outer join: null-rejecting on part is fine;
        // terms: {P,L} and {P} both keep the part filter.
        assert_eq!(a.terms.len(), 2);
    }

    #[test]
    fn parses_between_and_date_literals() {
        let catalog = ojv_tpch_like_catalog();
        let def = parse_view(
            &catalog,
            "v",
            "select * from li join ord on li.ok = ord.ok \
             and ord.odate between date '1994-06-01' and date '1994-12-31'",
        )
        .unwrap();
        let tables = def.expr().tables();
        assert_eq!(tables, vec!["li", "ord"]);
    }

    fn ojv_tpch_like_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create_table(
            "li",
            vec![
                ojv_rel::Column::new("li", "id", ojv_rel::DataType::Int, false),
                ojv_rel::Column::new("li", "ok", ojv_rel::DataType::Int, false),
            ],
            &["id"],
        )
        .unwrap();
        c.create_table(
            "ord",
            vec![
                ojv_rel::Column::new("ord", "ok", ojv_rel::DataType::Int, false),
                ojv_rel::Column::new("ord", "odate", ojv_rel::DataType::Date, false),
            ],
            &["ok"],
        )
        .unwrap();
        c
    }

    #[test]
    fn ambiguous_bare_column_rejected() {
        let catalog = ojv_tpch_like_catalog();
        let err = parse_view(&catalog, "v", "select * from li join ord on ok = ok");
        assert!(matches!(err, Err(CoreError::InvalidView { .. })));
    }

    #[test]
    fn unknown_column_rejected() {
        let catalog = example1_catalog();
        let err = parse_view(
            &catalog,
            "v",
            "select * from part join lineitem on nonexistent = l_partkey",
        );
        assert!(err.is_err());
    }

    #[test]
    fn trailing_tokens_rejected() {
        let catalog = example1_catalog();
        let err = parse_view(
            &catalog,
            "v",
            "select * from part join lineitem on p_partkey = l_partkey garbage",
        );
        assert!(err.is_err());
    }

    #[test]
    fn unterminated_string_rejected() {
        let catalog = example1_catalog();
        assert!(parse_view(&catalog, "v", "select * from part where p_name = 'oops").is_err());
    }

    #[test]
    fn end_to_end_parsed_view_maintains() {
        use crate::database::Database;
        use crate::fixtures::*;
        let mut catalog = example1_catalog();
        populate_example1(&mut catalog, 6, 6);
        let def = parse_view(
            &catalog,
            "parsed",
            "select * from part \
             full outer join (orders left outer join lineitem \
                              on l_orderkey = o_orderkey) \
             on p_partkey = l_partkey",
        )
        .unwrap();
        let mut db = Database::new(catalog);
        db.create_view(def).unwrap();
        db.insert("lineitem", vec![lineitem_row(3, 1, 2, 4, 42.0)])
            .unwrap();
        assert!(crate::maintain::verify_against_recompute(
            db.view("parsed").unwrap(),
            db.catalog()
        ));
    }

    #[test]
    fn tokenizer_handles_operators_and_numbers() {
        let toks = tokenize("a <= 1.5 AND b <> -2").unwrap();
        assert!(toks.contains(&Tok::Op("<=".into())));
        assert!(toks.contains(&Tok::Float(1.5)));
        assert!(toks.contains(&Tok::Op("<>".into())));
        assert!(toks.contains(&Tok::Int(-2)));
    }
}
