//! The compile layer: typed physical maintenance plans, built and verified
//! **once** per (view, updated table, policy configuration) and cached on the
//! view.
//!
//! Before this layer existed, every `maintain()` call re-derived the primary
//! delta plan (§4), re-built the maintenance graph (§3.1), re-ran the static
//! verifier, and re-evaluated the §5.2 column-availability condition — all of
//! which depend only on the view definition, the catalog schema, and the
//! policy, not on the update at hand. A [`CompiledMaintenancePlan`] captures
//! those artifacts; the hot path keeps only the cheap per-run delta arity
//! check.
//!
//! Cache invalidation is by construction: every compiled plan records the
//! [`Catalog::schema_version`] and the [`PlanConfig`] it was built under, and
//! [`PlanCache::get_or_compile`] discards entries whose version or config no
//! longer match. Schema-changing DDL bumps the version; policy flips change
//! the config; either forces a recompile on the next maintenance run.
//!
//! This module is the **only** place (outside `analyze`, where the derivation
//! primitives live) allowed to call `primary_delta_plan` or the compile-time
//! verifiers — enforced by the `plan-compile-confined` lint in `xtask`.

use std::cell::Cell;
use std::sync::Arc;

use ojv_algebra::{fingerprint_expr, Expr, MaintenanceGraph, Spine, TableId};
use ojv_storage::Catalog;

use crate::analyze::ViewAnalysis;
use crate::error::Result;
use crate::policy::MaintenancePolicy;

thread_local! {
    /// Count of physical-plan compilations (cache misses) on this thread.
    /// Plan resolution always happens on the thread driving the database
    /// (the batch layer resolves plans in its serial phase, before fanning
    /// out), so a thread-local counter sees every compile a workload causes
    /// while staying immune to concurrently running tests.
    static COMPILE_COUNT: Cell<usize> = const { Cell::new(0) };
}

/// Total [`PlanCache`] compilations on the calling thread since it started.
/// Monotone; compare before/after a workload rather than against an absolute
/// value.
pub fn compile_count() -> usize {
    COMPILE_COUNT.with(Cell::get)
}

/// The policy-derived knobs a compiled plan depends on. Two maintenance runs
/// with equal `PlanConfig`s (and an unchanged catalog schema) can share one
/// compiled plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanConfig {
    /// Effective FK usage (`policy.fk_enabled()`, i.e. `use_fk` minus the
    /// update-decomposition override).
    pub use_fk: bool,
    /// §4.1 left-deep conversion.
    pub left_deep: bool,
    /// The raw `verify_plans` flag. Kept in the key so a policy flip
    /// recompiles (and re-verifies) even in debug builds where verification
    /// is unconditional.
    pub verify_plans: bool,
}

impl PlanConfig {
    pub fn of(policy: &MaintenancePolicy) -> Self {
        PlanConfig {
            use_fk: policy.fk_enabled(),
            left_deep: policy.left_deep,
            verify_plans: policy.verify_plans,
        }
    }
}

/// An indirectly affected term with everything the §5 secondary-delta
/// strategies need, resolved at compile time.
#[derive(Debug, Clone)]
pub struct CompiledIndirect {
    /// Term index in the view's normal form.
    pub term: usize,
    /// Directly affected parents.
    pub pard: Vec<usize>,
    /// All minimal-superset parents (for the `Q_i` null filter).
    pub all_parents: Vec<usize>,
    /// §5.2 column availability, evaluated once: can this term's secondary
    /// delta be computed from the view's output?
    pub from_view_ok: bool,
}

/// A fully compiled physical maintenance plan for one (view, updated table)
/// pair under one [`PlanConfig`]: maintenance graph, primary-delta operator
/// tree with its canonical fingerprint and left-spine decomposition, and the
/// per-term secondary-delta artifacts. Built by [`PlanCache::get_or_compile`]
/// at view creation (or first use) and reused verbatim by every subsequent
/// maintenance run until DDL or a policy flip invalidates it.
#[derive(Debug, Clone)]
pub struct CompiledMaintenancePlan {
    /// The updated table this plan maintains against.
    pub table: TableId,
    /// Policy configuration the plan was compiled under.
    pub cfg: PlanConfig,
    /// Catalog schema version at compile time; a mismatch means stale.
    pub schema_version: u64,
    /// True when the maintenance graph is empty — updates of `table` cannot
    /// affect the view and the run is a no-op.
    pub noop: bool,
    /// The (possibly FK-reduced) maintenance graph (§3.1, §6.2).
    pub mgraph: MaintenanceGraph,
    /// The `ΔV^D` operator tree (§4), or `None` when no term is directly
    /// affected.
    pub plan: Option<Expr>,
    /// Canonical structural fingerprint of `plan` (0 when `plan` is `None`).
    /// Equal fingerprints ⇒ structurally identical operator trees, the unit
    /// of cross-view sharing in the batch layer.
    pub fingerprint: u64,
    /// Left-spine decomposition of `plan`, for shared-prefix factoring.
    pub spine: Option<Spine>,
    /// Fingerprint of the view's wide-row layout. Views can only share
    /// materialized rows when their layouts agree.
    pub layout_sig: u64,
    /// Indirectly affected terms with compile-time-resolved parent sets and
    /// §5.2 availability.
    pub indirect: Vec<CompiledIndirect>,
    /// Whether the §9 combined one-pass secondary computation is legal:
    /// every indirect term passes the §5.2 availability condition.
    pub combine_ok: bool,
    /// Static-verifier checks passed at compile time (0 when verification
    /// was off: release build without `verify_plans`).
    pub verified_checks: usize,
}

/// Structural fingerprint of a view layout: table names, widths, and key
/// columns. Two views over the same tables in the same order share one
/// signature (their wide rows are interchangeable).
pub fn layout_signature(analysis: &ViewAnalysis) -> u64 {
    let mut f = ojv_algebra::Fingerprinter::new();
    let layout = &analysis.layout;
    f.write_usize(layout.table_count());
    for slot in layout.slots() {
        f.write_str(slot.schema.column(0).qualifier.as_str());
        f.write_usize(slot.schema.len());
        f.write_usize(slot.key_cols.len());
        for &k in &slot.key_cols {
            f.write_usize(k);
        }
    }
    f.finish()
}

/// Compile the maintenance plan for updates of `t` under `cfg`, without
/// touching any cache or counter. The `explain`/`sql` read-only paths use
/// this directly.
pub fn compile_uncached(
    analysis: &ViewAnalysis,
    catalog: &Catalog,
    t: TableId,
    cfg: PlanConfig,
) -> Result<CompiledMaintenancePlan> {
    let mgraph = analysis.maintenance_graph(t, cfg.use_fk);
    let noop = mgraph.is_empty();
    let plan = if noop || mgraph.direct.is_empty() {
        None
    } else {
        Some(analysis.primary_delta_plan(t, cfg.use_fk, cfg.left_deep))
    };
    // Compile-time verification: unconditional in debug builds, opt-in via
    // the policy in release. A violation fails the compile, so a bad plan is
    // rejected before any maintenance run can touch the view store.
    let mut verified_checks = 0;
    if cfg.verify_plans || cfg!(debug_assertions) {
        verified_checks += analysis.verify_static(catalog)?;
        verified_checks +=
            analysis.verify_maintenance(t, cfg.use_fk, cfg.left_deep, &mgraph, plan.as_ref())?;
    }
    let fingerprint = plan.as_ref().map_or(0, fingerprint_expr);
    let spine = plan.as_ref().map(Spine::of);
    let mut indirect = Vec::with_capacity(mgraph.indirect.len());
    for ind in &mgraph.indirect {
        let from_view_ok = analysis.from_view_available(ind.term);
        if from_view_ok && (cfg.verify_plans || cfg!(debug_assertions)) {
            verified_checks += analysis.verify_from_view(ind.term)?;
        }
        indirect.push(CompiledIndirect {
            term: ind.term,
            pard: ind.pard.clone(),
            all_parents: analysis.graph.parents(ind.term).to_vec(),
            from_view_ok,
        });
    }
    let combine_ok = indirect.iter().all(|i| i.from_view_ok);
    Ok(CompiledMaintenancePlan {
        table: t,
        cfg,
        schema_version: catalog.schema_version(),
        noop,
        mgraph,
        plan,
        fingerprint,
        spine,
        layout_sig: layout_signature(analysis),
        indirect,
        combine_ok,
        verified_checks,
    })
}

/// Derive just the `ΔV^D` operator tree, uncached and unverified — for the
/// SQL script generator and EXPLAIN, which render plans without executing
/// them.
pub fn derive_plan(analysis: &ViewAnalysis, t: TableId, use_fk: bool, left_deep: bool) -> Expr {
    analysis.primary_delta_plan(t, use_fk, left_deep)
}

/// Per-view cache of compiled maintenance plans, keyed by (updated table,
/// [`PlanConfig`]). Entries are `Arc`-shared so cloning a view (checkpoints,
/// tests) is cheap and the batch layer can hold plans across jobs.
#[derive(Debug, Clone, Default)]
pub struct PlanCache {
    entries: Vec<Arc<CompiledMaintenancePlan>>,
}

impl PlanCache {
    /// Look up the compiled plan for `(t, cfg)`, compiling (and counting a
    /// cache miss) when absent or stale. Stale entries — compiled under an
    /// older catalog schema version — are evicted for every table, not just
    /// `t`, so DDL invalidates the whole cache at once.
    pub fn get_or_compile(
        &mut self,
        analysis: &ViewAnalysis,
        catalog: &Catalog,
        t: TableId,
        cfg: PlanConfig,
    ) -> Result<Arc<CompiledMaintenancePlan>> {
        let version = catalog.schema_version();
        self.entries.retain(|p| p.schema_version == version);
        if let Some(hit) = self.entries.iter().find(|p| p.table == t && p.cfg == cfg) {
            return Ok(Arc::clone(hit));
        }
        COMPILE_COUNT.with(|c| c.set(c.get() + 1));
        let compiled = Arc::new(compile_uncached(analysis, catalog, t, cfg)?);
        // One entry per (table, cfg): drop any same-key entry left over from
        // a different config era before inserting.
        self.entries.retain(|p| !(p.table == t && p.cfg == cfg));
        self.entries.push(Arc::clone(&compiled));
        Ok(compiled)
    }

    /// Number of cached plans (for tests).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop every cached plan (explicit invalidation).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::fixtures::*;

    fn cfg() -> PlanConfig {
        PlanConfig {
            use_fk: true,
            left_deep: true,
            verify_plans: true,
        }
    }

    #[test]
    fn compile_produces_plan_and_fingerprint() {
        let c = example1_catalog();
        let a = analyze(&c, &oj_view_def()).unwrap();
        let t = a.layout.table_id("lineitem").unwrap();
        let p = compile_uncached(&a, &c, t, cfg()).unwrap();
        assert!(!p.noop);
        assert!(p.plan.is_some());
        assert_ne!(p.fingerprint, 0);
        assert!(p.verified_checks > 0);
        let spine = p.spine.as_ref().unwrap();
        assert_eq!(
            &spine.prefix_expr(spine.steps.len()),
            p.plan.as_ref().unwrap()
        );
    }

    #[test]
    fn identical_views_share_fingerprints() {
        let c = example1_catalog();
        let a1 = analyze(&c, &oj_view_def()).unwrap();
        let a2 = analyze(&c, &oj_view_def().with_name("other")).unwrap();
        let t = a1.layout.table_id("lineitem").unwrap();
        let p1 = compile_uncached(&a1, &c, t, cfg()).unwrap();
        let p2 = compile_uncached(&a2, &c, t, cfg()).unwrap();
        assert_eq!(p1.fingerprint, p2.fingerprint);
        assert_eq!(p1.layout_sig, p2.layout_sig);
    }

    #[test]
    fn cache_hits_do_not_recompile() {
        let c = example1_catalog();
        let a = analyze(&c, &oj_view_def()).unwrap();
        let t = a.layout.table_id("lineitem").unwrap();
        let mut cache = PlanCache::default();
        let before = compile_count();
        let p1 = cache.get_or_compile(&a, &c, t, cfg()).unwrap();
        assert_eq!(compile_count(), before + 1);
        let p2 = cache.get_or_compile(&a, &c, t, cfg()).unwrap();
        assert_eq!(compile_count(), before + 1, "second lookup must hit");
        assert!(Arc::ptr_eq(&p1, &p2));
    }

    #[test]
    fn config_flip_recompiles() {
        let c = example1_catalog();
        let a = analyze(&c, &oj_view_def()).unwrap();
        let t = a.layout.table_id("lineitem").unwrap();
        let mut cache = PlanCache::default();
        cache.get_or_compile(&a, &c, t, cfg()).unwrap();
        let before = compile_count();
        let flipped = PlanConfig {
            left_deep: false,
            ..cfg()
        };
        cache.get_or_compile(&a, &c, t, flipped).unwrap();
        assert_eq!(compile_count(), before + 1, "config flip must recompile");
        assert_eq!(cache.len(), 2, "both configs stay cached");
    }

    #[test]
    fn ddl_invalidates_whole_cache() {
        let mut c = example1_catalog();
        let a = analyze(&c, &oj_view_def()).unwrap();
        let t = a.layout.table_id("lineitem").unwrap();
        let o = a.layout.table_id("orders").unwrap();
        let mut cache = PlanCache::default();
        cache.get_or_compile(&a, &c, t, cfg()).unwrap();
        cache.get_or_compile(&a, &c, o, cfg()).unwrap();
        assert_eq!(cache.len(), 2);
        c.create_table(
            "unrelated",
            vec![ojv_rel::Column::new(
                "unrelated",
                "id",
                ojv_rel::DataType::Int,
                false,
            )],
            &["id"],
        )
        .unwrap();
        let before = compile_count();
        cache.get_or_compile(&a, &c, t, cfg()).unwrap();
        assert_eq!(compile_count(), before + 1, "schema bump must recompile");
        assert_eq!(cache.len(), 1, "stale entries for all tables evicted");
    }

    fn fresh_db(views: usize) -> crate::database::Database {
        let mut c = example1_catalog();
        populate_example1(&mut c, 8, 9);
        let mut db = crate::database::Database::new(c);
        for i in 0..views {
            db.create_view(oj_view_def().with_name(&format!("v{i}")))
                .unwrap();
        }
        db
    }

    /// View creation compiles exactly one plan per (view, base table), and a
    /// 100-batch steady-state workload compiles nothing more.
    #[test]
    fn exactly_one_compile_per_view_table_pair() {
        let before = compile_count();
        let mut db = fresh_db(3);
        let tables = 3; // part, orders, lineitem
        assert_eq!(
            compile_count(),
            before + 3 * tables,
            "creation compiles one plan per (view, table)"
        );
        for i in 0..100i64 {
            db.insert("lineitem", vec![lineitem_row(6, 200 + i, 2, 4, 1.0)])
                .unwrap();
        }
        assert_eq!(
            compile_count(),
            before + 3 * tables,
            "steady-state maintenance must be compile-free"
        );
    }

    /// DDL through the database bumps the schema version; the next
    /// maintenance run recompiles and the view stays correct.
    #[test]
    fn database_ddl_recompiles() {
        let mut db = fresh_db(1);
        db.insert("lineitem", vec![lineitem_row(3, 50, 2, 4, 1.0)])
            .unwrap();
        let before = compile_count();
        db.catalog_mut()
            .create_table(
                "unrelated",
                vec![ojv_rel::Column::new(
                    "unrelated",
                    "id",
                    ojv_rel::DataType::Int,
                    false,
                )],
                &["id"],
            )
            .unwrap();
        db.insert("lineitem", vec![lineitem_row(3, 51, 2, 4, 1.0)])
            .unwrap();
        assert_eq!(compile_count(), before + 1, "DDL must force a recompile");
        assert!(crate::maintain::verify_against_recompute(
            db.view("v0").unwrap(),
            db.catalog()
        ));
    }

    /// Flipping each plan-relevant policy knob (`left_deep`, `use_fk`,
    /// `verify_plans`) recompiles exactly once; repeating the same update
    /// under the flipped policy hits the cache.
    #[test]
    fn database_policy_flips_recompile() {
        let mut db = fresh_db(1);
        db.insert("lineitem", vec![lineitem_row(3, 60, 2, 4, 1.0)])
            .unwrap();
        let mut key = 61i64;
        let mut insert = |db: &mut crate::database::Database| {
            db.insert("lineitem", vec![lineitem_row(3, key, 2, 4, 1.0)])
                .unwrap();
            key += 1;
        };
        for flip in 0..3usize {
            match flip {
                0 => db.policy.left_deep = !db.policy.left_deep,
                1 => db.policy.use_fk = !db.policy.use_fk,
                _ => db.policy.verify_plans = !db.policy.verify_plans,
            }
            let before = compile_count();
            insert(&mut db);
            assert_eq!(
                compile_count(),
                before + 1,
                "policy flip {flip} must recompile exactly once"
            );
            insert(&mut db);
            assert_eq!(
                compile_count(),
                before + 1,
                "repeat under flipped policy {flip} must hit the cache"
            );
            assert!(crate::maintain::verify_against_recompute(
                db.view("v0").unwrap(),
                db.catalog()
            ));
        }
    }

    #[test]
    fn fk_reduced_part_plan_is_bare_delta() {
        let c = example1_catalog();
        let a = analyze(&c, &oj_view_def()).unwrap();
        let t = a.layout.table_id("part").unwrap();
        let p = compile_uncached(&a, &c, t, cfg()).unwrap();
        let spine = p.spine.as_ref().unwrap();
        assert_eq!(spine.leaf, Expr::Delta(t));
        assert!(spine.steps.is_empty());
        assert!(p.indirect.is_empty());
    }
}
