//! Deferred view maintenance: queue update batches, refresh on demand.
//!
//! Production systems often maintain expensive views lazily — updates are
//! logged and the view is refreshed when read (or on a schedule), trading
//! staleness for update latency.
//!
//! Replaying a queued delta through the incremental procedure evaluates its
//! `ΔV^D` against the *current* (final) base-table state, so replay is only
//! equivalent to eager maintenance when later queued updates cannot have
//! changed the tables that delta joins with. [`DeferredView::refresh`]
//! therefore distinguishes two cases:
//!
//! * **single-table window** — every queued batch updates the same base
//!   table: the other tables are untouched, and the view-based secondary
//!   strategy only consults the view's own (sequentially maintained) state,
//!   so in-order incremental replay is exact;
//! * **multi-table window** — replay could double-count combinations that
//!   two queued deltas both see (e.g. a queued order insert followed by a
//!   queued lineitem insert referencing it), so the refresh falls back to
//!   the recompute-and-diff baseline, which is also typically the cheaper
//!   plan for large pending windows.
//!
//! The §6 caveat carries over to the incremental path: a queued delete +
//! insert pair on the same table may be an UPDATE decomposition, so FK fast
//! paths are disabled conservatively for such windows.

use std::collections::HashSet;

use ojv_storage::{Catalog, Update, UpdateOp};

use crate::error::Result;
use crate::maintain::{maintain, MaintenanceReport};
use crate::materialize::MaterializedView;
use crate::policy::MaintenancePolicy;

/// A materialized view with a pending-update queue.
#[derive(Debug, Clone)]
pub struct DeferredView {
    view: MaterializedView,
    pending: Vec<Update>,
}

impl DeferredView {
    pub fn new(view: MaterializedView) -> Self {
        DeferredView {
            view,
            pending: Vec::new(),
        }
    }

    /// Queue an applied base-table update for later maintenance. Cheap:
    /// clones the delta relation, touches nothing else.
    pub fn enqueue(&mut self, update: &Update) {
        if self.view.analysis.layout.table_id(&update.table).is_some() {
            self.pending.push(update.clone());
        }
    }

    /// Number of queued update batches.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// True iff the view reflects the catalog (nothing queued).
    pub fn is_fresh(&self) -> bool {
        self.pending.is_empty()
    }

    /// Bring the view up to date. The catalog must already contain every
    /// queued update (which the [`crate::database::Database`]-style flow
    /// guarantees: base updates are applied before enqueueing).
    ///
    /// Single-table windows replay incrementally; multi-table windows use
    /// the recompute-and-diff fallback (see the module docs for why).
    pub fn refresh(
        &mut self,
        catalog: &Catalog,
        policy: &MaintenancePolicy,
    ) -> Result<Vec<MaintenanceReport>> {
        if self.pending.is_empty() {
            return Ok(Vec::new());
        }
        let single_table = self
            .pending
            .iter()
            .all(|u| u.table == self.pending[0].table);
        // The incremental path forces the view-based secondary strategy; if
        // the view's output cannot support it (§5.2 column availability),
        // the per-term fallback would consult the *final* base-table state
        // for every replayed step — unsound for multi-batch windows. Use the
        // recompute path instead.
        let from_view_ok =
            (0..self.view.analysis.terms.len()).all(|i| self.view.analysis.from_view_available(i));
        if !single_table || (!from_view_ok && self.pending.len() > 1) {
            let last = self.pending.last().expect("non-empty queue").clone();
            self.pending.clear();
            let report =
                crate::baseline::maintain_recompute(&mut self.view, catalog, &last, policy)?;
            return Ok(vec![report]);
        }

        // Conservative §6 check: a table that sees a Delete and later an
        // Insert inside the window could be an UPDATE decomposition.
        let mut deleted: HashSet<&str> = HashSet::new();
        let mut suspicious = false;
        for u in &self.pending {
            match u.op {
                UpdateOp::Delete => {
                    deleted.insert(u.table.as_str());
                }
                UpdateOp::Insert => {
                    if deleted.contains(u.table.as_str()) {
                        suspicious = true;
                    }
                }
            }
        }
        let mut effective = *policy;
        if suspicious {
            effective.update_decomposition = true;
        }
        // The view-based secondary strategy only depends on state the replay
        // maintains itself (the view); the base-table strategy would read
        // the final T± for every step.
        effective.secondary = crate::policy::SecondaryStrategy::FromView;

        let mut reports = Vec::with_capacity(self.pending.len());
        for update in std::mem::take(&mut self.pending) {
            reports.push(maintain(&mut self.view, catalog, &update, &effective)?);
        }
        Ok(reports)
    }

    /// The (possibly stale) view. Call [`Self::refresh`] first for fresh
    /// reads.
    pub fn view(&self) -> &MaterializedView {
        &self.view
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::*;
    use crate::maintain::verify_against_recompute;
    use ojv_rel::Datum;

    #[test]
    fn single_table_window_replays_incrementally() {
        let mut c = example1_catalog();
        populate_example1(&mut c, 8, 9);
        let mut dv = DeferredView::new(MaterializedView::create(&c, oj_view_def()).unwrap());

        // Three lineitem updates without refreshing in between.
        let u1 = c
            .insert("lineitem", vec![lineitem_row(3, 1, 2, 4, 42.0)])
            .unwrap();
        dv.enqueue(&u1);
        let u2 = c
            .insert("lineitem", vec![lineitem_row(6, 9, 5, 1, 2.0)])
            .unwrap();
        dv.enqueue(&u2);
        let u3 = c
            .delete("lineitem", &[vec![Datum::Int(3), Datum::Int(1)]])
            .unwrap();
        dv.enqueue(&u3);

        assert_eq!(dv.pending_len(), 3);
        assert!(!dv.is_fresh());
        // The stale view does not yet reflect the updates.
        assert!(!verify_against_recompute(dv.view(), &c));

        let reports = dv.refresh(&c, &MaintenancePolicy::paper()).unwrap();
        assert_eq!(reports.len(), 3, "incremental replay, one report per batch");
        assert!(dv.is_fresh());
        assert!(verify_against_recompute(dv.view(), &c));
    }

    /// A multi-table window where naive replay would double-count: a queued
    /// order insert followed by a queued lineitem insert referencing it.
    /// The recompute fallback handles it.
    #[test]
    fn multi_table_window_falls_back_to_recompute() {
        let mut c = example1_catalog();
        populate_example1(&mut c, 8, 9);
        let mut dv = DeferredView::new(MaterializedView::create(&c, oj_view_def()).unwrap());

        let u1 = c.insert("orders", vec![order_row(100, 1)]).unwrap();
        dv.enqueue(&u1);
        let u2 = c
            .insert("lineitem", vec![lineitem_row(100, 1, 2, 4, 42.0)])
            .unwrap();
        dv.enqueue(&u2);

        let reports = dv.refresh(&c, &MaintenancePolicy::paper()).unwrap();
        assert_eq!(reports.len(), 1, "one recompute-style refresh");
        assert!(dv.is_fresh());
        assert!(verify_against_recompute(dv.view(), &c));
    }

    #[test]
    fn updates_to_unreferenced_tables_are_not_queued() {
        let mut c = example1_catalog();
        c.create_table(
            "other",
            vec![ojv_rel::Column::new(
                "other",
                "id",
                ojv_rel::DataType::Int,
                false,
            )],
            &["id"],
        )
        .unwrap();
        populate_example1(&mut c, 4, 4);
        let mut dv = DeferredView::new(MaterializedView::create(&c, oj_view_def()).unwrap());
        let u = c.insert("other", vec![vec![Datum::Int(1)]]).unwrap();
        dv.enqueue(&u);
        assert!(dv.is_fresh());
    }

    #[test]
    fn delete_then_insert_window_disables_fk_fast_paths() {
        let mut c = example1_catalog();
        populate_example1(&mut c, 8, 9);
        let mut dv = DeferredView::new(MaterializedView::create(&c, oj_view_def()).unwrap());
        // Modify part 100 via delete + reinsert inside one window.
        let u0 = c.insert("part", vec![part_row(100, "v1", 5.0)]).unwrap();
        dv.enqueue(&u0);
        dv.refresh(&c, &MaintenancePolicy::paper()).unwrap();

        let u1 = c.delete("part", &[vec![Datum::Int(100)]]).unwrap();
        dv.enqueue(&u1);
        let u2 = c.insert("part", vec![part_row(100, "v2", 6.0)]).unwrap();
        dv.enqueue(&u2);
        dv.refresh(&c, &MaintenancePolicy::paper()).unwrap();
        assert!(verify_against_recompute(dv.view(), &c));
        // The renamed part is present.
        let p = dv.view().analysis.layout.table_id("part").unwrap();
        let name_col = dv.view().analysis.layout.slot(p).offset + 1;
        assert!(dv
            .view()
            .wide_rows()
            .iter()
            .any(|r| r[name_col] == Datum::str("v2")));
    }

    #[test]
    fn interleaved_refreshes_stay_consistent() {
        let mut c = example1_catalog();
        populate_example1(&mut c, 6, 9);
        let mut dv = DeferredView::new(MaterializedView::create(&c, oj_view_def()).unwrap());
        for i in 0..4i64 {
            let u = c
                .insert("lineitem", vec![lineitem_row(3, i + 1, 2, 1, 1.0)])
                .unwrap();
            dv.enqueue(&u);
            if i % 2 == 1 {
                dv.refresh(&c, &MaintenancePolicy::paper()).unwrap();
                assert!(verify_against_recompute(dv.view(), &c));
            }
        }
        dv.refresh(&c, &MaintenancePolicy::paper()).unwrap();
        assert!(verify_against_recompute(dv.view(), &c));
    }
}
