//! View definitions: a name-based SPOJ AST, resolved against the catalog at
//! creation time.
//!
//! Users express views with table and column *names* (mirroring the paper's
//! SQL examples); [`crate::analyze::analyze`] resolves them into the
//! positional vocabulary of `ojv-algebra`.
//!
//! ```
//! use ojv_core::view_def::{ViewDef, ViewExpr, col_eq};
//!
//! // The paper's Example 1: part FULL OUTER JOIN
//! //   (orders LEFT OUTER JOIN lineitem ON l_orderkey = o_orderkey)
//! //   ON p_partkey = l_partkey
//! let def = ViewDef::new(
//!     "oj_view",
//!     ViewExpr::full_outer(
//!         vec![col_eq("part", "p_partkey", "lineitem", "l_partkey")],
//!         ViewExpr::table("part"),
//!         ViewExpr::left_outer(
//!             vec![col_eq("orders", "o_orderkey", "lineitem", "l_orderkey")],
//!             ViewExpr::table("orders"),
//!             ViewExpr::table("lineitem"),
//!         ),
//!     ),
//! );
//! assert_eq!(def.name(), "oj_view");
//! ```

use ojv_algebra::{CmpOp, JoinKind};
use ojv_rel::Datum;

/// A predicate atom in name-based form.
#[derive(Debug, Clone, PartialEq)]
pub enum NamedAtom {
    /// `left_table.left_col ⋈ right_table.right_col`.
    Cols {
        left: (String, String),
        op: CmpOp,
        right: (String, String),
    },
    /// `table.col ⋈ literal`.
    Const {
        col: (String, String),
        op: CmpOp,
        value: Datum,
    },
    /// `table.col BETWEEN lo AND hi`.
    Between {
        col: (String, String),
        lo: Datum,
        hi: Datum,
    },
}

impl NamedAtom {
    /// Render as SQL (dates as `DATE 'YYYY-MM-DD'`, strings quoted).
    pub fn to_sql(&self) -> String {
        fn lit(d: &Datum) -> String {
            match d {
                Datum::Date(_) => format!("DATE '{d}'"),
                other => other.to_string(),
            }
        }
        match self {
            NamedAtom::Cols { left, op, right } => {
                format!("{}.{} {op} {}.{}", left.0, left.1, right.0, right.1)
            }
            NamedAtom::Const { col, op, value } => {
                format!("{}.{} {op} {}", col.0, col.1, lit(value))
            }
            NamedAtom::Between { col, lo, hi } => {
                format!("{}.{} BETWEEN {} AND {}", col.0, col.1, lit(lo), lit(hi))
            }
        }
    }
}

/// Equijoin atom `lt.lc = rt.rc`.
pub fn col_eq(lt: &str, lc: &str, rt: &str, rc: &str) -> NamedAtom {
    NamedAtom::Cols {
        left: (lt.to_string(), lc.to_string()),
        op: CmpOp::Eq,
        right: (rt.to_string(), rc.to_string()),
    }
}

/// Column-vs-constant comparison atom.
pub fn col_cmp(t: &str, c: &str, op: CmpOp, value: impl Into<Datum>) -> NamedAtom {
    NamedAtom::Const {
        col: (t.to_string(), c.to_string()),
        op,
        value: value.into(),
    }
}

/// `BETWEEN` atom (inclusive bounds).
pub fn col_between(t: &str, c: &str, lo: impl Into<Datum>, hi: impl Into<Datum>) -> NamedAtom {
    NamedAtom::Between {
        col: (t.to_string(), c.to_string()),
        lo: lo.into(),
        hi: hi.into(),
    }
}

/// The name-based SPOJ operator tree.
#[derive(Debug, Clone, PartialEq)]
pub enum ViewExpr {
    Table(String),
    Select(Vec<NamedAtom>, Box<ViewExpr>),
    Join(JoinKind, Vec<NamedAtom>, Box<ViewExpr>, Box<ViewExpr>),
}

impl ViewExpr {
    pub fn table(name: &str) -> ViewExpr {
        ViewExpr::Table(name.to_string())
    }

    pub fn select(atoms: Vec<NamedAtom>, input: ViewExpr) -> ViewExpr {
        ViewExpr::Select(atoms, Box::new(input))
    }

    pub fn join(kind: JoinKind, on: Vec<NamedAtom>, left: ViewExpr, right: ViewExpr) -> ViewExpr {
        ViewExpr::Join(kind, on, Box::new(left), Box::new(right))
    }

    pub fn inner(on: Vec<NamedAtom>, left: ViewExpr, right: ViewExpr) -> ViewExpr {
        ViewExpr::join(JoinKind::Inner, on, left, right)
    }

    pub fn left_outer(on: Vec<NamedAtom>, left: ViewExpr, right: ViewExpr) -> ViewExpr {
        ViewExpr::join(JoinKind::LeftOuter, on, left, right)
    }

    pub fn right_outer(on: Vec<NamedAtom>, left: ViewExpr, right: ViewExpr) -> ViewExpr {
        ViewExpr::join(JoinKind::RightOuter, on, left, right)
    }

    pub fn full_outer(on: Vec<NamedAtom>, left: ViewExpr, right: ViewExpr) -> ViewExpr {
        ViewExpr::join(JoinKind::FullOuter, on, left, right)
    }

    /// Render as a SQL `FROM`-clause fragment (joins parenthesized on the
    /// right, selections as derived-table `WHERE`s).
    pub fn to_sql(&self) -> String {
        fn atoms_sql(atoms: &[NamedAtom]) -> String {
            atoms
                .iter()
                .map(NamedAtom::to_sql)
                .collect::<Vec<_>>()
                .join(" AND ")
        }
        match self {
            ViewExpr::Table(n) => n.clone(),
            ViewExpr::Select(atoms, input) => {
                // A derived table; the parser accepts the same shape back.
                format!(
                    "(SELECT * FROM {} WHERE {})",
                    input.to_sql(),
                    atoms_sql(atoms)
                )
            }
            ViewExpr::Join(kind, on, l, r) => {
                let kw = match kind {
                    JoinKind::Inner => "JOIN",
                    JoinKind::LeftOuter => "LEFT OUTER JOIN",
                    JoinKind::RightOuter => "RIGHT OUTER JOIN",
                    JoinKind::FullOuter => "FULL OUTER JOIN",
                    other => panic!("join kind {other} not renderable as SQL"),
                };
                format!("({} {kw} {} ON {})", l.to_sql(), r.to_sql(), atoms_sql(on))
            }
        }
    }

    /// Table names in left-to-right leaf order — this order defines the
    /// view's [`ojv_algebra::TableId`] assignment.
    pub fn tables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_tables(&mut out);
        out
    }

    fn collect_tables(&self, out: &mut Vec<String>) {
        match self {
            ViewExpr::Table(n) => out.push(n.clone()),
            ViewExpr::Select(_, e) => e.collect_tables(out),
            ViewExpr::Join(_, _, l, r) => {
                l.collect_tables(out);
                r.collect_tables(out);
            }
        }
    }
}

/// A named view definition: the SPOJ tree plus an optional output projection
/// (`None` means all columns of all tables).
#[derive(Debug, Clone, PartialEq)]
pub struct ViewDef {
    name: String,
    expr: ViewExpr,
    projection: Option<Vec<(String, String)>>,
}

impl ViewDef {
    pub fn new(name: &str, expr: ViewExpr) -> Self {
        ViewDef {
            name: name.to_string(),
            expr,
            projection: None,
        }
    }

    /// Restrict the view's output columns (the paper's `π`). Key columns of
    /// every table should normally be kept — §5.2's *column availability*
    /// analysis reports whether view-based secondary maintenance remains
    /// possible.
    pub fn with_projection(mut self, cols: Vec<(&str, &str)>) -> Self {
        self.projection = Some(
            cols.into_iter()
                .map(|(t, c)| (t.to_string(), c.to_string()))
                .collect(),
        );
        self
    }

    /// Rename the definition — handy when creating several structurally
    /// identical views (the plan-sharing tests and benches do).
    pub fn with_name(mut self, name: &str) -> Self {
        self.name = name.to_string();
        self
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn expr(&self) -> &ViewExpr {
        &self.expr
    }

    pub fn projection(&self) -> Option<&[(String, String)]> {
        self.projection.as_deref()
    }

    /// Render the whole definition as a `SELECT` statement, the inverse of
    /// [`crate::parser::parse_view`] (selections above the top join become
    /// the `WHERE` clause; deeper selections are not renderable and panic —
    /// the paper's views only select over scans or at the top).
    pub fn to_sql(&self) -> String {
        let select = match &self.projection {
            None => "*".to_string(),
            Some(cols) => cols
                .iter()
                .map(|(t, c)| format!("{t}.{c}"))
                .collect::<Vec<_>>()
                .join(", "),
        };
        // Peel top-level selections into WHERE.
        let mut wheres: Vec<String> = Vec::new();
        let mut expr = &self.expr;
        while let ViewExpr::Select(atoms, input) = expr {
            wheres.extend(atoms.iter().map(NamedAtom::to_sql));
            expr = input;
        }
        let mut sql = format!("SELECT {select} FROM {}", expr.to_sql());
        if !wheres.is_empty() {
            sql.push_str(&format!(" WHERE {}", wheres.join(" AND ")));
        }
        sql
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_in_leaf_order() {
        let v = ViewExpr::full_outer(
            vec![col_eq("a", "x", "c", "y")],
            ViewExpr::table("a"),
            ViewExpr::left_outer(
                vec![col_eq("b", "x", "c", "y")],
                ViewExpr::table("b"),
                ViewExpr::table("c"),
            ),
        );
        assert_eq!(v.tables(), vec!["a", "b", "c"]);
    }

    #[test]
    fn builder_helpers() {
        let a = col_cmp("t", "v", CmpOp::Lt, 5i64);
        assert!(matches!(a, NamedAtom::Const { .. }));
        let b = col_between("t", "d", 1i64, 2i64);
        assert!(matches!(b, NamedAtom::Between { .. }));
        let def = ViewDef::new("v", ViewExpr::table("t")).with_projection(vec![("t", "v")]);
        assert_eq!(def.projection().unwrap().len(), 1);
        assert_eq!(def.name(), "v");
    }
}
