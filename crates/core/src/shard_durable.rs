//! Durable sharding: per-shard WAL streams under a group-commit
//! coordinator.
//!
//! # Log topology
//!
//! Every shard owns a private WAL (its own [`Vfs`] directory) holding that
//! shard's applied delta batches, appended **without** fsync
//! ([`FsyncPolicy::Never`]). A separate **coordinator** stream holds one
//! [`REC_GROUP`] record per logical commit: the vector of per-shard local
//! last-LSNs as of that commit. The coordinator record's own LSN *is* the
//! global commit LSN — the same LSN every shard's snapshot registry
//! publishes at, so durable LSNs and snapshot LSNs are one clock.
//!
//! # Group commit
//!
//! A logical commit touching K of N shards costs:
//!
//! 1. append the K per-shard deltas to their WALs (buffered, no fsync),
//! 2. **one fsync per touched shard** — the cross-shard barrier,
//! 3. one coordinator append + fsync of the group record.
//!
//! That is K+1 fsyncs per commit batch, not one per (shard, record): a
//! batch of M rows fanning out to K shards still pays K+1, which is the
//! "group" in group commit. The group record is the commit point — shard
//! records above the newest durable group record are, by definition, from
//! commits that never happened.
//!
//! # Recovery
//!
//! [`ShardedDurableDatabase::open`] converges on the **group-commit LSN
//! floor**: it reads the newest durable group record (global LSN `G`, local
//! floor vector `F`), restores each shard from its own checkpoint, and
//! replays that shard's WAL records with local LSN ≤ `F[s]` — records
//! *above* the floor (shard WALs that were fsynced when the crash hit
//! before the coordinator record became durable) are discarded, and a fresh
//! shard checkpoint is written over them so they can never resurface. A
//! shard record *missing* below the floor is real corruption (the group
//! record vouched for it) and fails recovery. Either way, all N shards land
//! on exactly the commits `≤ G` — byte-identical, via the canonical
//! [`ShardedDatabase::state_bytes`], to an uncrashed twin that stopped at
//! `G`.

use ojv_durability::{
    prune_checkpoints, read_latest_checkpoint, write_checkpoint, DurabilityError, FsyncPolicy, Lsn,
    Vfs, Wal, WalOptions, WalRecord,
};
use ojv_rel::{put_u32, put_u64, ByteReader, Datum, Row};
use ojv_storage::{decode_update, encode_update, Catalog, Update, UpdateOp};

use crate::durable::{encode_shard_state, restore_shard_state, REC_UPDATE};
use crate::error::{CoreError, Result};
use crate::maintain::MaintenanceReport;
use crate::policy::MaintenancePolicy;
use crate::shard::{RoutingSpec, ShardedDatabase, ShardedSnapshot};
use crate::view_def::ViewDef;

/// Coordinator WAL record kind: one group commit.
/// Payload: `[u32 shard_count][u64 local last-LSN per shard]`.
pub const REC_GROUP: u8 = 3;

/// `REC_UPDATE` flag bit mirrored from the single-node durable layer: this
/// shard batch is half of an SQL `UPDATE` decomposition.
const FLAG_UPDATE_DECOMPOSITION: u8 = 1;

fn codec_err(detail: impl Into<String>) -> CoreError {
    CoreError::Rel(ojv_rel::RelError::Codec {
        detail: detail.into(),
    })
}

fn corrupt(file: impl Into<String>, detail: impl Into<String>) -> CoreError {
    CoreError::Durability(DurabilityError::Corrupt {
        file: file.into(),
        detail: detail.into(),
    })
}

// ---------------------------------------------------------------------------
// Coordinator codecs
// ---------------------------------------------------------------------------

fn encode_group(floors: &[Lsn]) -> Result<Vec<u8>> {
    let mut buf = Vec::with_capacity(4 + 8 * floors.len());
    let n = u32::try_from(floors.len()).map_err(|_| codec_err("shard count exceeds u32"))?;
    put_u32(&mut buf, n);
    for &f in floors {
        put_u64(&mut buf, f);
    }
    Ok(buf)
}

fn decode_group(rec: &WalRecord, shards: usize) -> Result<Vec<Lsn>> {
    let mut r = ByteReader::new(&rec.payload);
    let n = r.u32("group shard count").map_err(CoreError::Rel)? as usize; // lint:allow(cast) — u32 widens into usize
    if n != shards {
        return Err(corrupt(
            "coordinator wal",
            format!(
                "group record at lsn {} names {n} shards, directory has {shards}",
                rec.lsn
            ),
        ));
    }
    let mut floors = Vec::with_capacity(n);
    for _ in 0..n {
        floors.push(r.u64("group shard floor").map_err(CoreError::Rel)?);
    }
    Ok(floors)
}

/// Coordinator checkpoint payload: the constraint flag, the floor vector as
/// of the checkpoint, and the routing spec (the one piece of façade state
/// that lives in no shard).
fn encode_coord_state(enforce: bool, floors: &[Lsn], routing: &RoutingSpec) -> Result<Vec<u8>> {
    let mut buf = Vec::new();
    buf.push(u8::from(enforce));
    let n = u32::try_from(floors.len()).map_err(|_| codec_err("shard count exceeds u32"))?;
    put_u32(&mut buf, n);
    for &f in floors {
        put_u64(&mut buf, f);
    }
    let entries: Vec<(&str, &[String])> = routing.entries().collect();
    let n = u32::try_from(entries.len()).map_err(|_| codec_err("table count exceeds u32"))?;
    put_u32(&mut buf, n);
    for (table, cols) in entries {
        ojv_rel::put_str(&mut buf, table).map_err(CoreError::Rel)?;
        let n = u32::try_from(cols.len()).map_err(|_| codec_err("column count exceeds u32"))?;
        put_u32(&mut buf, n);
        for c in cols {
            ojv_rel::put_str(&mut buf, c).map_err(CoreError::Rel)?;
        }
    }
    Ok(buf)
}

fn decode_coord_state(data: &[u8]) -> Result<(bool, Vec<Lsn>, RoutingSpec)> {
    let mut r = ByteReader::new(data);
    let enforce = r.u8("enforce flag").map_err(CoreError::Rel)? != 0;
    let n = r.u32("shard count").map_err(CoreError::Rel)? as usize; // lint:allow(cast) — u32 widens into usize
    let mut floors = Vec::with_capacity(n.min(r.remaining()));
    for _ in 0..n {
        floors.push(r.u64("shard floor").map_err(CoreError::Rel)?);
    }
    let n_tables = r.u32("table count").map_err(CoreError::Rel)? as usize; // lint:allow(cast) — u32 widens into usize
    let mut routing = RoutingSpec::new();
    for _ in 0..n_tables {
        let table = r.str("routing table").map_err(CoreError::Rel)?.to_string();
        let n_cols = r.u32("routing column count").map_err(CoreError::Rel)? as usize; // lint:allow(cast) — u32 widens into usize
        let mut cols = Vec::with_capacity(n_cols.min(r.remaining()));
        for _ in 0..n_cols {
            cols.push(r.str("routing column").map_err(CoreError::Rel)?.to_string());
        }
        let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
        routing = routing.table(&table, &col_refs);
    }
    if !r.is_empty() {
        return Err(codec_err(format!(
            "{} trailing bytes after coordinator state",
            r.remaining()
        )));
    }
    Ok((enforce, floors, routing))
}

// ---------------------------------------------------------------------------
// ShardedDurableDatabase
// ---------------------------------------------------------------------------

/// One shard's private log: its directory and WAL stream.
struct ShardLog<V: Vfs> {
    vfs: V,
    wal: Wal,
}

/// What sharded recovery found and did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedRecoveryReport {
    /// Global LSN of the newest durable group record — the commit floor all
    /// shards converged on.
    pub group_lsn: Lsn,
    /// High-water LSN of the coordinator checkpoint.
    pub checkpoint_lsn: Lsn,
    /// Shard WAL records re-applied (across all shards).
    pub replayed_updates: usize,
    /// Shard WAL records above the group floor, discarded: their shard WAL
    /// was fsynced but the crash hit before the group record was.
    pub discarded_records: usize,
    /// Per-stream torn/corrupt-tail reasons (index N = coordinator).
    pub truncated: Vec<Option<String>>,
}

/// A [`ShardedDatabase`] whose commits survive crashes: per-shard WALs,
/// group-commit coordinator, per-shard checkpoints (see module docs).
pub struct ShardedDurableDatabase<V: Vfs> {
    db: ShardedDatabase,
    shards: Vec<ShardLog<V>>,
    coord_vfs: V,
    coord_wal: Wal,
    policy: MaintenancePolicy,
    /// Set when a durable write failed after an in-memory mutation — RAM is
    /// ahead of the group-committed log, so every later durable operation
    /// is refused (mirrors [`crate::durable::DurableDatabase`] poisoning).
    poisoned: Option<String>,
}

impl<V: Vfs> ShardedDurableDatabase<V> {
    /// Initialize a fresh sharded durable database: one directory per shard
    /// plus the coordinator's. Shard count = `shard_vfs.len()`; the
    /// template's rows are routed to their owner shards and every directory
    /// gets its genesis checkpoint.
    pub fn create(
        shard_vfs: Vec<V>,
        coord_vfs: V,
        template: &Catalog,
        routing: RoutingSpec,
        policy: MaintenancePolicy,
    ) -> Result<Self> {
        let db = ShardedDatabase::new(template, shard_vfs.len(), routing.clone())?;
        let mut shards = Vec::with_capacity(shard_vfs.len());
        for (mut vfs, shard_db) in shard_vfs.into_iter().zip(db.shards()) {
            // Shard appends never fsync themselves: durability comes from
            // the group-commit barrier below.
            let wal = Wal::create(
                &mut vfs,
                WalOptions {
                    policy: FsyncPolicy::Never,
                    ..WalOptions::default()
                },
                1,
            )?;
            write_checkpoint(&mut vfs, 0, &encode_shard_state(shard_db)?)?;
            shards.push(ShardLog { vfs, wal });
        }
        let mut coord_vfs = coord_vfs;
        let coord_wal = Wal::create(
            &mut coord_vfs,
            WalOptions {
                policy: policy.fsync,
                ..WalOptions::default()
            },
            1,
        )?;
        let floors = vec![0; shards.len()];
        write_checkpoint(
            &mut coord_vfs,
            0,
            &encode_coord_state(db.enforce_constraints, &floors, &routing)?,
        )?;
        let mut this = ShardedDurableDatabase {
            db,
            shards,
            coord_vfs,
            coord_wal,
            policy,
            poisoned: None,
        };
        this.db.set_policy(policy);
        Ok(this)
    }

    /// Open an existing sharded durable database, converging every shard on
    /// the group-commit LSN floor (see module docs).
    pub fn open(
        shard_vfs: Vec<V>,
        coord_vfs: V,
        policy: MaintenancePolicy,
    ) -> Result<(Self, ShardedRecoveryReport)> {
        let n_shards = shard_vfs.len();
        let mut coord_vfs = coord_vfs;
        let ckpt = read_latest_checkpoint(&mut coord_vfs)?.ok_or_else(|| {
            corrupt(
                "coordinator checkpoint",
                "no valid coordinator checkpoint found (directory never initialized?)",
            )
        })?;
        let (enforce, ckpt_floors, routing) = decode_coord_state(&ckpt.payload)?;
        if ckpt_floors.len() != n_shards {
            return Err(corrupt(
                "coordinator checkpoint",
                format!(
                    "checkpoint names {} shards, caller supplied {n_shards} directories",
                    ckpt_floors.len()
                ),
            ));
        }
        let (mut coord_wal, coord_scan) = Wal::open(
            &mut coord_vfs,
            WalOptions {
                policy: policy.fsync,
                ..WalOptions::default()
            },
            ckpt.lsn + 1,
        )?;
        if coord_wal.next_lsn() <= ckpt.lsn {
            // Same guard as the single-node layer: a corrupt record below
            // the checkpoint LSN must not make the log re-issue LSNs the
            // replay filter would skip.
            coord_wal.begin_after(&mut coord_vfs, ckpt.lsn + 1)?;
        }
        // Fold the group records into the final floor: the newest durable
        // group record defines both the global commit LSN and each shard's
        // local replay ceiling.
        let mut group_lsn = ckpt.lsn;
        let mut floors = ckpt_floors;
        for rec in &coord_scan.records {
            if rec.kind != REC_GROUP {
                return Err(corrupt(
                    "coordinator wal",
                    format!("unknown record kind {} at lsn {}", rec.kind, rec.lsn),
                ));
            }
            if rec.lsn <= ckpt.lsn {
                continue; // already reflected in the checkpointed floor
            }
            floors = decode_group(rec, n_shards)?;
            group_lsn = rec.lsn;
        }

        let mut report = ShardedRecoveryReport {
            group_lsn,
            checkpoint_lsn: ckpt.lsn,
            replayed_updates: 0,
            discarded_records: 0,
            truncated: Vec::with_capacity(n_shards + 1),
        };

        let mut shard_dbs = Vec::with_capacity(n_shards);
        let mut shard_logs = Vec::with_capacity(n_shards);
        for (s, mut vfs) in shard_vfs.into_iter().enumerate() {
            let label = format!("shard{s} wal");
            let ckpt = read_latest_checkpoint(&mut vfs)?
                .ok_or_else(|| corrupt(&label, "no valid shard checkpoint found"))?;
            // The shard checkpoint is stamped with a *local* WAL LSN, but
            // the snapshot registry runs on the *global* commit clock —
            // anchor the restored chains at 0 and publish once at the group
            // floor below; pins below the floor die with the crash anyway.
            let mut db = restore_shard_state(&ckpt.payload, policy, 0)?;
            let (mut wal, scan) = Wal::open(
                &mut vfs,
                WalOptions {
                    policy: FsyncPolicy::Never,
                    ..WalOptions::default()
                },
                ckpt.lsn + 1,
            )?;
            if wal.next_lsn() <= ckpt.lsn {
                wal.begin_after(&mut vfs, ckpt.lsn + 1)?;
            }
            report.truncated.push(scan.truncated.map(|t| t.reason));
            // Replay this shard's committed tail: records in
            // (checkpoint, floor]. Anything above the floor was never group
            // committed; anything missing below it is corruption the group
            // record vouched against.
            let floor = floors[s];
            let mut next_expected = ckpt.lsn + 1;
            let mut discarded = 0usize;
            for rec in &scan.records {
                if rec.lsn <= ckpt.lsn {
                    continue; // pre-checkpoint record in an unpruned segment
                }
                if rec.lsn > floor {
                    discarded += 1;
                    continue;
                }
                if rec.lsn != next_expected {
                    return Err(corrupt(
                        &label,
                        format!("gap before lsn {} (expected {next_expected})", rec.lsn),
                    ));
                }
                next_expected += 1;
                Self::replay_shard_record(&mut db, rec)?;
                report.replayed_updates += 1;
            }
            if next_expected <= floor {
                return Err(corrupt(
                    &label,
                    format!(
                        "log ends at lsn {} but the durable group record vouches for {floor}",
                        next_expected - 1
                    ),
                ));
            }
            // Converge the shard's registry on the global commit LSN so
            // cross-shard snapshots pin cleanly at `group_lsn`.
            if group_lsn > 0 {
                db.publish_commit(group_lsn)?;
            }
            db.set_commit_lsn(group_lsn);
            if discarded > 0 {
                // Bury the uncommitted records: a fresh checkpoint stamped
                // at the log head covers their LSNs with the *committed*
                // state, so no later recovery can replay them.
                wal.sync(&mut vfs)?;
                let head = wal.last_lsn();
                write_checkpoint(&mut vfs, head, &encode_shard_state(&db)?)?;
                wal.prune_below(&mut vfs, head + 1)?;
                prune_checkpoints(&mut vfs, head)?;
            }
            report.discarded_records += discarded;
            shard_dbs.push(db);
            shard_logs.push(ShardLog { vfs, wal });
        }
        report
            .truncated
            .push(coord_scan.truncated.map(|t| t.reason));

        let db = ShardedDatabase::from_recovered(shard_dbs, &routing, enforce, group_lsn)?;
        Ok((
            ShardedDurableDatabase {
                db,
                shards: shard_logs,
                coord_vfs,
                coord_wal,
                policy,
                poisoned: None,
            },
            report,
        ))
    }

    fn replay_shard_record(db: &mut crate::database::Database, rec: &WalRecord) -> Result<()> {
        if rec.kind != REC_UPDATE {
            return Err(corrupt(
                "shard wal",
                format!("unknown record kind {} at lsn {}", rec.kind, rec.lsn),
            ));
        }
        let mut r = ByteReader::new(&rec.payload);
        let flags = r.u8("update flags").map_err(CoreError::Rel)?;
        let update = decode_update(rec.payload.get(1..).unwrap_or(&[]), db.catalog())?;
        match update.op {
            UpdateOp::Insert => {
                db.catalog_mut()
                    .insert(&update.table, update.rows.rows().to_vec())?;
            }
            UpdateOp::Delete => {
                let key_cols = db.catalog().table(&update.table)?.key_cols().to_vec();
                let keys: Vec<Vec<Datum>> = update
                    .rows
                    .rows()
                    .iter()
                    .map(|row| ojv_rel::key_of(row, &key_cols))
                    .collect();
                db.catalog_mut().delete(&update.table, &keys)?;
            }
        }
        let saved = db.policy;
        if flags & FLAG_UPDATE_DECOMPOSITION != 0 {
            db.policy.update_decomposition = true;
        }
        let maintained = db.maintain_views_only(&update);
        db.policy = saved;
        maintained?;
        Ok(())
    }

    fn check_usable(&self) -> Result<()> {
        match &self.poisoned {
            Some(detail) => Err(CoreError::Poisoned {
                detail: detail.clone(),
            }),
            None => Ok(()),
        }
    }

    fn poison(&mut self, during: &str, err: CoreError) -> CoreError {
        if self.poisoned.is_none() {
            self.poisoned = Some(format!("{during} failed: {err}"));
        }
        err
    }

    /// The group-commit barrier: log the routed per-shard deltas, fsync the
    /// touched shard WALs, make the group record durable, then maintain and
    /// publish every shard at the group record's LSN.
    fn group_commit(
        &mut self,
        updates: &[Option<Update>],
        flags: u8,
    ) -> Result<Vec<MaintenanceReport>> {
        // 1. Buffered appends to the owner shards' WALs (no fsync). The
        // catalog mutation has already happened, so failures poison.
        let logged = (|| -> Result<()> {
            for (log, up) in self.shards.iter_mut().zip(updates) {
                let Some(up) = up else { continue };
                let body = encode_update(up)?;
                let mut payload = Vec::with_capacity(1 + body.len());
                payload.push(flags);
                payload.extend_from_slice(&body);
                log.wal.append(&mut log.vfs, REC_UPDATE, &payload)?;
            }
            Ok(())
        })();
        logged.map_err(|e| self.poison("shard WAL append of an applied update", e))?;
        // 2 + 3. The cross-shard fsync barrier, then the commit point. The
        // group record names every shard's log head (touched or not).
        let committed = (|| -> Result<Lsn> {
            for (log, up) in self.shards.iter_mut().zip(updates) {
                if up.is_some() {
                    log.wal.sync(&mut log.vfs)?;
                }
            }
            let floors: Vec<Lsn> = self.shards.iter().map(|l| l.wal.last_lsn()).collect();
            let payload = encode_group(&floors)?;
            Ok(self
                .coord_wal
                .append(&mut self.coord_vfs, REC_GROUP, &payload)?)
        })();
        let lsn = committed.map_err(|e| self.poison("group-commit barrier", e))?;
        // 4. Maintain + publish at the global commit LSN. Maintenance
        // failures do not poison: the deltas are durable, and recovery
        // replays maintenance from them.
        self.db.maintain_and_publish_at(updates, lsn)
    }

    /// Durable insert: route + apply, group-commit, maintain (see
    /// [`ShardedDatabase::insert`] for the constraint semantics).
    pub fn insert(&mut self, table: &str, rows: Vec<Row>) -> Result<Vec<MaintenanceReport>> {
        self.check_usable()?;
        let updates = self.db.apply_insert_routed(table, rows)?;
        self.group_commit(&updates, 0)
    }

    /// Durable delete by unique key.
    pub fn delete(&mut self, table: &str, keys: &[Vec<Datum>]) -> Result<Vec<MaintenanceReport>> {
        self.check_usable()?;
        let updates = self.db.apply_delete_routed(table, keys)?;
        self.group_commit(&updates, 0)
    }

    /// Durable SQL-style `UPDATE` (delete + insert, two group commits, both
    /// logged with the decomposition flag so replay disables the §6 fast
    /// paths exactly as the original run did).
    pub fn update(
        &mut self,
        table: &str,
        keys: &[Vec<Datum>],
        new_rows: Vec<Row>,
    ) -> Result<Vec<MaintenanceReport>> {
        self.check_usable()?;
        let saved = self.policy;
        let mut decomposed = self.policy;
        decomposed.update_decomposition = true;
        self.db.set_policy(decomposed);
        let result = (|| {
            let del = self.db.apply_delete_routed(table, keys)?;
            let mut reports = self.group_commit(&del, FLAG_UPDATE_DECOMPOSITION)?;
            let ins = self.db.apply_insert_routed(table, new_rows)?;
            reports.extend(self.group_commit(&ins, FLAG_UPDATE_DECOMPOSITION)?);
            Ok(reports)
        })();
        self.db.set_policy(saved);
        result
    }

    /// Create a routing-aligned view on every shard and checkpoint
    /// immediately — view definitions live in shard checkpoints, not logs.
    pub fn create_view(&mut self, def: ViewDef) -> Result<()> {
        self.check_usable()?;
        self.db.create_view(def)?;
        self.checkpoint()
            .map_err(|e| self.poison("checkpoint after view creation", e))?;
        Ok(())
    }

    /// Checkpoint every shard and the coordinator, then prune the logs:
    /// each shard's state is serialized at its current log head, and the
    /// coordinator checkpoint pins the matching floor vector.
    pub fn checkpoint(&mut self) -> Result<Lsn> {
        self.check_usable()?;
        let mut floors = Vec::with_capacity(self.shards.len());
        for (log, shard_db) in self.shards.iter_mut().zip(self.db.shards()) {
            log.wal.sync(&mut log.vfs)?;
            let head = log.wal.last_lsn();
            write_checkpoint(&mut log.vfs, head, &encode_shard_state(shard_db)?)?;
            log.wal.prune_below(&mut log.vfs, head + 1)?;
            prune_checkpoints(&mut log.vfs, head)?;
            floors.push(head);
        }
        self.coord_wal.sync(&mut self.coord_vfs)?;
        let lsn = self.coord_wal.last_lsn();
        let payload =
            encode_coord_state(self.db.enforce_constraints, &floors, &self.routing_spec())?;
        write_checkpoint(&mut self.coord_vfs, lsn, &payload)?;
        self.coord_wal.prune_below(&mut self.coord_vfs, lsn + 1)?;
        prune_checkpoints(&mut self.coord_vfs, lsn)?;
        Ok(lsn)
    }

    fn routing_spec(&self) -> RoutingSpec {
        self.db.routing_spec()
    }

    /// Flush every stream to stable storage (useful under
    /// [`FsyncPolicy::EveryN`] before an intentional stop).
    pub fn sync(&mut self) -> Result<()> {
        for log in &mut self.shards {
            log.wal.sync(&mut log.vfs)?;
        }
        self.coord_wal.sync(&mut self.coord_vfs)?;
        Ok(())
    }

    /// The wrapped in-memory façade.
    pub fn database(&self) -> &ShardedDatabase {
        &self.db
    }

    /// Canonical cross-shard state encoding (see
    /// [`ShardedDatabase::state_bytes`]) — recovery compares against an
    /// uncrashed twin with exactly this.
    pub fn state_bytes(&self) -> Result<Vec<u8>> {
        self.db.state_bytes()
    }

    /// Pin a consistent cross-shard snapshot at the newest group commit.
    pub fn snapshot(&self) -> Result<ShardedSnapshot> {
        self.db.snapshot()
    }

    /// Global commit LSN (== coordinator WAL LSN of the newest group
    /// record).
    pub fn commit_lsn(&self) -> Lsn {
        self.db.commit_lsn()
    }

    /// Why durable operations are refused, if a durable write failed after
    /// an in-memory mutation.
    pub fn poison_reason(&self) -> Option<&str> {
        self.poisoned.as_deref()
    }

    /// Tear the database apart into its filesystems (`N` shard directories
    /// + coordinator) — crash tests keep only the bytes.
    pub fn into_vfs(self) -> (Vec<V>, V) {
        (
            self.shards.into_iter().map(|l| l.vfs).collect(),
            self.coord_vfs,
        )
    }

    /// Per-shard VFS access for fault inspection.
    pub fn shard_vfs(&self, shard: usize) -> &V {
        &self.shards[shard].vfs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::*;
    use crate::view_def::{col_eq, ViewExpr};
    use ojv_durability::MemVfs;

    fn routing() -> RoutingSpec {
        RoutingSpec::new()
            .table("part", &["p_partkey"])
            .table("orders", &["o_orderkey"])
            .table("lineitem", &["l_orderkey"])
    }

    fn ol_view() -> ViewDef {
        ViewDef::new(
            "ol_view",
            ViewExpr::left_outer(
                vec![col_eq("orders", "o_orderkey", "lineitem", "l_orderkey")],
                ViewExpr::table("orders"),
                ViewExpr::table("lineitem"),
            ),
        )
    }

    fn fresh(n: usize) -> ShardedDurableDatabase<MemVfs> {
        let mut c = example1_catalog();
        populate_example1(&mut c, 8, 9);
        let vfs: Vec<MemVfs> = (0..n).map(|_| MemVfs::new()).collect();
        let mut d = ShardedDurableDatabase::create(
            vfs,
            MemVfs::new(),
            &c,
            routing(),
            MaintenancePolicy::default(),
        )
        .unwrap();
        d.create_view(ol_view()).unwrap();
        d
    }

    /// "Crash": keep only each stream's durable (synced) bytes.
    fn crash(d: ShardedDurableDatabase<MemVfs>) -> (Vec<MemVfs>, MemVfs) {
        let (shards, coord) = d.into_vfs();
        (shards.iter().map(MemVfs::crash).collect(), coord.crash())
    }

    #[test]
    fn commit_crash_reopen_is_byte_identical() {
        for n in [1usize, 2, 4] {
            let mut d = fresh(n);
            d.insert("lineitem", vec![lineitem_row(3, 7, 2, 4, 42.0)])
                .unwrap();
            d.insert("lineitem", vec![lineitem_row(5, 8, 1, 1, 7.0)])
                .unwrap();
            d.delete("lineitem", &[vec![Datum::Int(3), Datum::Int(7)]])
                .unwrap();
            let expected = d.state_bytes().unwrap();
            let lsn = d.commit_lsn();
            let (shards, coord) = crash(d);
            let (r, report) =
                ShardedDurableDatabase::open(shards, coord, MaintenancePolicy::default()).unwrap();
            assert_eq!(report.group_lsn, lsn, "{n} shards");
            assert_eq!(r.state_bytes().unwrap(), expected, "{n} shards");
            assert_eq!(r.commit_lsn(), lsn);
        }
    }

    #[test]
    fn unsynced_shard_tail_rolls_back_to_group_floor() {
        let mut d = fresh(3);
        d.insert("lineitem", vec![lineitem_row(3, 7, 2, 4, 42.0)])
            .unwrap();
        let committed = d.state_bytes().unwrap();
        let floor = d.commit_lsn();

        // A half-finished commit: the owner shard's WAL gets the record and
        // even an fsync, but the coordinator record never lands (crash
        // between barrier steps 2 and 3).
        let row = lineitem_row(5, 8, 1, 1, 7.0);
        let ups = d.db.apply_insert_routed("lineitem", vec![row]).unwrap();
        for (log, up) in d.shards.iter_mut().zip(&ups) {
            let Some(up) = up else { continue };
            let mut payload = vec![0u8];
            payload.extend_from_slice(&encode_update(up).unwrap());
            log.wal.append(&mut log.vfs, REC_UPDATE, &payload).unwrap();
            log.wal.sync(&mut log.vfs).unwrap();
        }
        let (shards, coord) = crash(d);

        let (r, report) =
            ShardedDurableDatabase::open(shards, coord, MaintenancePolicy::default()).unwrap();
        assert_eq!(report.group_lsn, floor);
        assert_eq!(report.discarded_records, 1, "the orphaned shard record");
        assert_eq!(r.state_bytes().unwrap(), committed);

        // And the discarded record must stay dead across ANOTHER cycle.
        let (shards, coord) = crash(r);
        let (r2, rep2) =
            ShardedDurableDatabase::open(shards, coord, MaintenancePolicy::default()).unwrap();
        assert_eq!(rep2.discarded_records, 0);
        assert_eq!(r2.state_bytes().unwrap(), committed);
    }

    #[test]
    fn checkpoint_bounds_replay() {
        let mut d = fresh(2);
        d.insert("lineitem", vec![lineitem_row(3, 7, 2, 4, 42.0)])
            .unwrap();
        d.checkpoint().unwrap();
        d.insert("lineitem", vec![lineitem_row(5, 8, 1, 1, 7.0)])
            .unwrap();
        let expected = d.state_bytes().unwrap();
        let (shards, coord) = crash(d);
        let (r, report) =
            ShardedDurableDatabase::open(shards, coord, MaintenancePolicy::default()).unwrap();
        assert_eq!(report.replayed_updates, 1, "only the post-checkpoint batch");
        assert_eq!(r.state_bytes().unwrap(), expected);
    }

    #[test]
    fn update_decomposition_survives_replay() {
        let mut d = fresh(4);
        d.update(
            "lineitem",
            &[vec![Datum::Int(2), Datum::Int(1)]],
            vec![lineitem_row(2, 1, 3, 99, 1.0)],
        )
        .unwrap();
        let expected = d.state_bytes().unwrap();
        let (shards, coord) = crash(d);
        let (r, _) =
            ShardedDurableDatabase::open(shards, coord, MaintenancePolicy::default()).unwrap();
        assert_eq!(r.state_bytes().unwrap(), expected);
        for s in r.database().shards() {
            assert!(crate::maintain::verify_against_recompute(
                s.view("ol_view").unwrap(),
                s.catalog()
            ));
        }
    }

    #[test]
    fn recovered_database_keeps_committing() {
        let mut d = fresh(2);
        d.insert("lineitem", vec![lineitem_row(3, 7, 2, 4, 42.0)])
            .unwrap();
        let (shards, coord) = crash(d);
        let (mut r, _) =
            ShardedDurableDatabase::open(shards, coord, MaintenancePolicy::default()).unwrap();
        r.insert("lineitem", vec![lineitem_row(5, 8, 1, 1, 7.0)])
            .unwrap();
        let expected = r.state_bytes().unwrap();
        let (shards, coord) = crash(r);
        let (r2, _) =
            ShardedDurableDatabase::open(shards, coord, MaintenancePolicy::default()).unwrap();
        assert_eq!(r2.state_bytes().unwrap(), expected);
    }
}
