//! A small façade owning the catalog and all materialized views: every
//! update flows through it, constraints are enforced, and all registered
//! views are maintained incrementally.

use ojv_durability::Lsn;
use ojv_rel::{Datum, Row};
use ojv_storage::{Catalog, Update};

use crate::agg_view::{AggViewDef, MaterializedAggView};
use crate::compile::PlanConfig;
use crate::error::{CoreError, Result};
use crate::maintain::MaintenanceReport;
use crate::materialize::MaterializedView;
use crate::policy::MaintenancePolicy;
use crate::snapshot::{CommitObserver, Snapshot, SnapshotRegistry};
use crate::view_def::ViewDef;

use std::sync::Arc;

/// The catalog plus registered materialized (and aggregated) views.
#[derive(Debug)]
pub struct Database {
    catalog: Catalog,
    views: Vec<MaterializedView>,
    agg_views: Vec<MaterializedAggView>,
    /// LSN of the last committed maintenance batch. Standalone databases
    /// number commits 1, 2, … themselves; under a durable database this is
    /// driven by the WAL so snapshot LSNs are durable LSNs.
    commit_lsn: Lsn,
    /// Versioned images of every (non-aggregate, non-deferred) view for
    /// concurrent snapshot reads. Aggregate views keep their own stores and
    /// are not versioned (a documented limitation of the snapshot layer).
    snapshots: SnapshotRegistry,
    /// Downstream consumer of committed deltas (e.g. the `ojv-feed` hub),
    /// invoked once per commit after the registry has published the batch.
    observer: Option<Arc<dyn CommitObserver>>,
    /// Per-view `(name, inserts, deletes)` of the last commit's journaled
    /// delta, for `explain_batch`'s `delta` lines. Only touched views appear.
    last_deltas: Vec<(String, usize, usize)>,
    /// Maintenance policy applied to every view on every update.
    pub policy: MaintenancePolicy,
    /// Maintain independent views on separate threads. Views never share
    /// mutable state (each owns its store; the catalog is read-only during
    /// maintenance), so this is a pure fan-out.
    pub parallel_maintenance: bool,
}

impl Clone for Database {
    /// Cloning forks the database: the clone gets its *own* snapshot
    /// registry (re-seeded from the cloned view stores at the same commit
    /// LSN), so pins against the original never retain the clone's versions
    /// and vice versa. For the same reason the clone carries *no* commit
    /// observer — a feed hub subscribed to the original must not receive
    /// the fork's commits.
    fn clone(&self) -> Self {
        let snapshots = SnapshotRegistry::new();
        for v in &self.views {
            snapshots
                .register(v, self.commit_lsn)
                .expect("re-registering a registered view cannot fail");
        }
        Database {
            catalog: self.catalog.clone(),
            views: self.views.clone(),
            agg_views: self.agg_views.clone(),
            commit_lsn: self.commit_lsn,
            snapshots,
            observer: None,
            last_deltas: self.last_deltas.clone(),
            policy: self.policy,
            parallel_maintenance: self.parallel_maintenance,
        }
    }
}

impl Database {
    pub fn new(catalog: Catalog) -> Self {
        Database {
            catalog,
            views: Vec::new(),
            agg_views: Vec::new(),
            commit_lsn: 0,
            snapshots: SnapshotRegistry::new(),
            observer: None,
            last_deltas: Vec::new(),
            policy: MaintenancePolicy::default(),
            parallel_maintenance: false,
        }
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable catalog access for the durable layer's recovery replay,
    /// which re-applies logged updates without re-running maintenance
    /// bookkeeping through the public `insert`/`delete` wrappers.
    pub(crate) fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Create and materialize an outer-join view.
    pub fn create_view(&mut self, def: ViewDef) -> Result<&MaterializedView> {
        if self.views.iter().any(|v| v.name() == def.name())
            || self.agg_views.iter().any(|v| v.name() == def.name())
        {
            return Err(CoreError::DuplicateView {
                view: def.name().to_string(),
            });
        }
        let mut view = MaterializedView::create(&self.catalog, def)?;
        // Compile (and statically verify) the maintenance plans once, at
        // creation time, so the update hot path only hits the cache.
        view.warm_plans(&self.catalog, &self.policy)?;
        view.enable_journal();
        self.snapshots.register(&view, self.commit_lsn)?;
        self.views.push(view);
        Ok(self.views.last().expect("just pushed"))
    }

    /// Create a view from a SQL `SELECT` statement (see [`crate::parser`])
    /// and materialize it.
    pub fn create_view_sql(&mut self, name: &str, sql: &str) -> Result<&MaterializedView> {
        let def = crate::parser::parse_view(&self.catalog, name, sql)?;
        self.create_view(def)
    }

    /// Render the maintenance procedure the engine would run for an update
    /// of `table` against the named view, as SQL (the paper's Q1–Q4 form).
    pub fn explain_maintenance(
        &self,
        view: &str,
        table: &str,
        op: ojv_storage::UpdateOp,
    ) -> Result<String> {
        let v = self.view(view).ok_or_else(|| CoreError::UnknownView {
            view: view.to_string(),
        })?;
        Ok(crate::sql::maintenance_script(
            &v.analysis,
            view,
            table,
            op,
            self.policy.fk_enabled(),
            self.policy.left_deep,
        ))
    }

    /// Create and materialize an aggregated outer-join view.
    pub fn create_agg_view(&mut self, def: AggViewDef) -> Result<&MaterializedAggView> {
        if self.views.iter().any(|v| v.name() == def.name)
            || self.agg_views.iter().any(|v| v.name() == def.name)
        {
            return Err(CoreError::DuplicateView { view: def.name });
        }
        let mut view = MaterializedAggView::create(&self.catalog, def)?;
        view.warm_plans(&self.catalog, &self.policy)?;
        self.agg_views.push(view);
        Ok(self.agg_views.last().expect("just pushed"))
    }

    /// Drop a view by name. Snapshots pinned before the drop keep their
    /// image of the view; new snapshots no longer include it.
    pub fn drop_view(&mut self, name: &str) -> Result<()> {
        let before = self.views.len() + self.agg_views.len();
        self.views.retain(|v| v.name() != name);
        self.agg_views.retain(|v| v.name() != name);
        if self.views.len() + self.agg_views.len() == before {
            return Err(CoreError::UnknownView {
                view: name.to_string(),
            });
        }
        self.snapshots.unregister(name);
        Ok(())
    }

    pub fn view(&self, name: &str) -> Option<&MaterializedView> {
        self.views.iter().find(|v| v.name() == name)
    }

    pub fn agg_view(&self, name: &str) -> Option<&MaterializedAggView> {
        self.agg_views.iter().find(|v| v.name() == name)
    }

    pub fn views(&self) -> impl Iterator<Item = &MaterializedView> {
        self.views.iter()
    }

    /// Insert rows into a base table (constraints enforced) and maintain
    /// every registered view. Returns one report per non-noop view.
    pub fn insert(&mut self, table: &str, rows: Vec<Row>) -> Result<Vec<MaintenanceReport>> {
        let update = self.apply_insert(table, rows)?;
        self.maintain_update(&update)
    }

    /// Delete rows by unique key and maintain every registered view.
    pub fn delete(&mut self, table: &str, keys: &[Vec<Datum>]) -> Result<Vec<MaintenanceReport>> {
        let update = self.apply_delete(table, keys)?;
        self.maintain_update(&update)
    }

    /// Apply an insert to the catalog only — no view maintenance — and
    /// return the applied delta. The durable layer uses this to log the
    /// delta to the WAL *before* maintenance runs, so a crash mid-maintain
    /// replays the whole batch.
    pub fn apply_insert(&mut self, table: &str, rows: Vec<Row>) -> Result<Update> {
        Ok(self.catalog.insert(table, rows)?)
    }

    /// Apply a delete to the catalog only (see [`Database::apply_insert`]).
    pub fn apply_delete(&mut self, table: &str, keys: &[Vec<Datum>]) -> Result<Update> {
        Ok(self.catalog.delete(table, keys)?)
    }

    /// Maintain every registered view for an update that has already been
    /// applied to the catalog (via [`Database::apply_insert`] /
    /// [`Database::apply_delete`] or recovery replay). Returns one report
    /// per non-noop view. The commit is numbered `commit_lsn + 1`; the
    /// durable layer assigns WAL LSNs via [`Database::maintain_update_at`]
    /// instead.
    pub fn maintain_update(&mut self, update: &Update) -> Result<Vec<MaintenanceReport>> {
        self.maintain_update_at(update, self.commit_lsn + 1)
    }

    /// Maintain every registered view and publish the resulting view deltas
    /// to the snapshot registry as one atomic commit at `lsn` (a WAL LSN
    /// under the durable layer). Journals are drained and published even
    /// when maintenance errors, so the registry's tips always track the
    /// working stores.
    pub fn maintain_update_at(
        &mut self,
        update: &Update,
        lsn: Lsn,
    ) -> Result<Vec<MaintenanceReport>> {
        let result = self.maintain_all(update);
        let published = self.publish_commit(lsn);
        let reports = result?;
        published?;
        Ok(reports)
    }

    /// The worker half of [`Database::maintain_update_at`]: run maintenance
    /// for every view *without* publishing to the snapshot registry. The
    /// sharded facade fans this out per shard (each shard owns its stores,
    /// so the fan-out shares nothing) and publishes every shard afterwards
    /// — on the coordinator thread — via [`Database::publish_commit`].
    pub(crate) fn maintain_views_only(
        &mut self,
        update: &Update,
    ) -> Result<Vec<MaintenanceReport>> {
        self.maintain_all(update)
    }

    /// The coordinator half of [`Database::maintain_update_at`]: drain the
    /// view journals and publish them to the snapshot registry as one
    /// atomic commit at `lsn`. Journals are drained and published even when
    /// maintenance errored, so the registry's tips always track the working
    /// stores. Safe to call with nothing journaled — an empty commit just
    /// advances the registry to `lsn` (how untouched shards join a group
    /// commit).
    pub(crate) fn publish_commit(&mut self, lsn: Lsn) -> Result<()> {
        let drained: Vec<(String, Vec<crate::snapshot::ViewOp>)> = self
            .views
            .iter_mut()
            .map(|v| (v.name().to_string(), v.take_journal()))
            .collect();
        let published = self.snapshots.commit(lsn, &drained);
        self.commit_lsn = self.commit_lsn.max(lsn);
        self.last_deltas = drained
            .iter()
            .filter(|(_, ops)| !ops.is_empty())
            .map(|(name, ops)| {
                let (ins, del) = crate::snapshot::delta_counts(ops);
                (name.clone(), ins, del)
            })
            .collect();
        // Notified even when maintenance errored: the journals above were
        // drained and published regardless, and a feed that skipped them
        // would drift from the registry tips it mirrors.
        if let Some(obs) = &self.observer {
            obs.on_commit(lsn, &drained);
        }
        published
    }

    /// Attach a commit observer: from now on every commit hands its
    /// LSN-stamped view deltas to `obs` after the snapshot registry has
    /// published them. One observer at a time; attaching replaces any
    /// previous one. A change-feed hub attaches itself here.
    pub fn attach_commit_observer(&mut self, obs: Arc<dyn CommitObserver>) {
        self.observer = Some(obs);
    }

    /// Detach the commit observer, if any.
    pub fn detach_commit_observer(&mut self) {
        self.observer = None;
    }

    /// Per-view `(name, inserts, deletes)` journaled by the last commit
    /// (touched views only, in registration order).
    pub fn last_commit_deltas(&self) -> &[(String, usize, usize)] {
        &self.last_deltas
    }

    /// Register an already-materialized view (recovery restores view stores
    /// from a checkpoint instead of re-evaluating the definition).
    pub(crate) fn install_view(&mut self, mut view: MaterializedView) -> Result<()> {
        if self.views.iter().any(|v| v.name() == view.name())
            || self.agg_views.iter().any(|v| v.name() == view.name())
        {
            return Err(CoreError::DuplicateView {
                view: view.name().to_string(),
            });
        }
        view.warm_plans(&self.catalog, &self.policy)?;
        view.enable_journal();
        self.snapshots.register(&view, self.commit_lsn)?;
        self.views.push(view);
        Ok(())
    }

    /// The shared snapshot registry. Clone the handle onto reader threads;
    /// pins taken there stay consistent while this database keeps
    /// committing.
    pub fn snapshots(&self) -> &SnapshotRegistry {
        &self.snapshots
    }

    /// Pin a consistent snapshot of every registered view at the newest
    /// committed LSN.
    pub fn snapshot(&self) -> Result<Snapshot> {
        self.snapshots.pin()
    }

    /// Pin a consistent snapshot as of LSN `lsn` (fails with
    /// [`CoreError::SnapshotUnavailable`] once reclamation has freed that
    /// version).
    pub fn snapshot_at(&self, lsn: Lsn) -> Result<Snapshot> {
        self.snapshots.pin_at(lsn)
    }

    /// LSN of the last committed maintenance batch.
    pub fn commit_lsn(&self) -> Lsn {
        self.commit_lsn
    }

    /// Recovery hook: re-anchor the commit LSN (and the registry) at a
    /// checkpoint LSN before replay, so replayed batches land on the same
    /// LSNs the original run produced.
    pub(crate) fn set_commit_lsn(&mut self, lsn: Lsn) {
        self.commit_lsn = lsn;
        self.snapshots
            .commit(lsn, &[])
            .expect("an empty commit only advances the registry LSN and cannot fail");
    }

    /// SQL-style `UPDATE`, modeled as a delete followed by an insert (paper
    /// §3). The §6 foreign-key fast paths are disabled for the pair, per the
    /// paper's caveat list.
    pub fn update(
        &mut self,
        table: &str,
        keys: &[Vec<Datum>],
        new_rows: Vec<Row>,
    ) -> Result<Vec<MaintenanceReport>> {
        let saved = self.policy;
        self.policy.update_decomposition = true;
        let result = (|| {
            let mut reports = self.delete(table, keys)?;
            reports.extend(self.insert(table, new_rows)?);
            Ok(reports)
        })();
        self.policy = saved;
        result
    }

    /// Render the batched physical maintenance plan the engine would run for
    /// an update of `table`: one line per affected view plus `shared:` lines
    /// for every subplan factored out across views.
    pub fn explain_batch(&self, table: &str) -> Result<String> {
        let cfg = PlanConfig::of(&self.policy);
        let mut plans = Vec::new();
        for v in &self.views {
            if let Some(t) = v.analysis.layout.table_id(table) {
                plans.push((
                    v.name().to_string(),
                    crate::compile::compile_uncached(&v.analysis, &self.catalog, t, cfg)?,
                ));
            }
        }
        for v in &self.agg_views {
            if let Some(t) = v.analysis.layout.table_id(table) {
                plans.push((
                    v.name().to_string(),
                    crate::compile::compile_uncached(&v.analysis, &self.catalog, t, cfg)?,
                ));
            }
        }
        let mut rendered = crate::batch::render_batch_plan(table, &plans);
        // Observability lines: what the last commit changed per view, and —
        // when a feed hub is attached — how wide the fan-out is and how much
        // of it dedup collapsed. Both render only when present, so a fresh
        // database's explain output is unchanged.
        for (name, ins, del) in &self.last_deltas {
            rendered.push_str(&format!("  delta {name}: +{ins}/-{del} rows\n"));
        }
        if let Some(stats) = self.observer.as_ref().and_then(|o| o.fanout_stats()) {
            rendered.push_str(&format!(
                "  subscribers: {} ({} shared evals)\n",
                stats.subscribers, stats.shared_evals
            ));
        }
        rendered.push_str(&format!("  snapshot lsn={}\n", self.commit_lsn));
        Ok(rendered)
    }

    fn maintain_all(&mut self, update: &Update) -> Result<Vec<MaintenanceReport>> {
        let threads = if self.parallel_maintenance {
            self.policy.parallel.threads.max(1)
        } else {
            1
        };
        crate::batch::maintain_batch(
            &mut self.views,
            &mut self.agg_views,
            &self.catalog,
            update,
            &self.policy,
            threads,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg_view::AggSpec;
    use crate::fixtures::*;
    use crate::maintain::verify_against_recompute;

    fn db() -> Database {
        let mut c = example1_catalog();
        populate_example1(&mut c, 8, 9);
        Database::new(c)
    }

    #[test]
    fn create_insert_delete_roundtrip() {
        let mut db = db();
        db.create_view(oj_view_def()).unwrap();
        let reports = db
            .insert("lineitem", vec![lineitem_row(3, 1, 2, 4, 42.0)])
            .unwrap();
        assert_eq!(reports.len(), 1);
        assert!(verify_against_recompute(
            db.view("oj_view").unwrap(),
            db.catalog()
        ));
        let reports = db
            .delete("lineitem", &[vec![Datum::Int(3), Datum::Int(1)]])
            .unwrap();
        assert_eq!(reports.len(), 1);
        assert!(verify_against_recompute(
            db.view("oj_view").unwrap(),
            db.catalog()
        ));
    }

    #[test]
    fn duplicate_view_names_rejected() {
        let mut db = db();
        db.create_view(oj_view_def()).unwrap();
        assert!(matches!(
            db.create_view(oj_view_def()),
            Err(CoreError::DuplicateView { .. })
        ));
    }

    #[test]
    fn drop_view() {
        let mut db = db();
        db.create_view(oj_view_def()).unwrap();
        db.drop_view("oj_view").unwrap();
        assert!(db.view("oj_view").is_none());
        assert!(db.drop_view("oj_view").is_err());
    }

    #[test]
    fn multiple_views_maintained_together() {
        let mut db = db();
        db.create_view(oj_view_def()).unwrap();
        let agg = crate::agg_view::AggViewDef::new("agg", oj_view_def())
            .group_by("part", "p_partkey")
            .agg("cnt", AggSpec::CountRows);
        db.create_agg_view(agg).unwrap();
        let reports = db
            .insert("lineitem", vec![lineitem_row(3, 1, 2, 4, 42.0)])
            .unwrap();
        assert_eq!(reports.len(), 2);
    }

    #[test]
    fn update_decomposition_is_correct_without_fk_fast_path() {
        let mut db = db();
        db.create_view(oj_view_def()).unwrap();
        // Modify lineitem (2,1): change quantity. Update = delete + insert
        // of the same key, which must not trigger FK shortcuts.
        let reports = db
            .update(
                "lineitem",
                &[vec![Datum::Int(2), Datum::Int(1)]],
                vec![lineitem_row(2, 1, 3, 99, 1.0)],
            )
            .unwrap();
        assert_eq!(reports.len(), 2);
        assert!(verify_against_recompute(
            db.view("oj_view").unwrap(),
            db.catalog()
        ));
        // Policy restored afterwards.
        assert!(!db.policy.update_decomposition);
    }

    #[test]
    fn create_view_from_sql_and_explain() {
        let mut db = db();
        db.create_view_sql(
            "sql_view",
            "select * from part \
             full outer join (orders left outer join lineitem \
                              on l_orderkey = o_orderkey) \
             on p_partkey = l_partkey",
        )
        .unwrap();
        db.insert("lineitem", vec![lineitem_row(3, 1, 2, 4, 42.0)])
            .unwrap();
        assert!(verify_against_recompute(
            db.view("sql_view").unwrap(),
            db.catalog()
        ));
        let script = db
            .explain_maintenance("sql_view", "lineitem", ojv_storage::UpdateOp::Insert)
            .unwrap();
        assert!(script.contains("-- Q1: compute primary delta"));
        let noop = db
            .explain_maintenance("sql_view", "part", ojv_storage::UpdateOp::Insert)
            .unwrap();
        assert!(noop.contains("delta_part"));
        assert!(db
            .explain_maintenance("missing", "part", ojv_storage::UpdateOp::Insert)
            .is_err());
    }

    #[test]
    fn parallel_maintenance_matches_sequential() {
        let mut seq = db();
        let mut par = db();
        par.parallel_maintenance = true;
        par.policy = MaintenancePolicy::with_threads(4);
        for d in [&mut seq, &mut par] {
            d.create_view(oj_view_def()).unwrap();
            let agg = crate::agg_view::AggViewDef::new("agg", oj_view_def())
                .group_by("part", "p_partkey")
                .agg("cnt", AggSpec::CountRows);
            d.create_agg_view(agg).unwrap();
        }
        for (ok, ln, pk) in [(3i64, 1i64, 2i64), (3, 2, 4), (6, 3, 1)] {
            let row = lineitem_row(ok, ln, pk, 1, 2.0);
            let a = seq.insert("lineitem", vec![row.clone()]).unwrap();
            let b = par.insert("lineitem", vec![row]).unwrap();
            assert_eq!(a.len(), b.len());
        }
        let va = seq.view("oj_view").unwrap().output().unwrap();
        let vb = par.view("oj_view").unwrap().output().unwrap();
        assert!(va.bag_eq(&vb));
        assert!(seq
            .agg_view("agg")
            .unwrap()
            .output()
            .bag_eq(&par.agg_view("agg").unwrap().output()));
    }

    /// Test observer: counts the ops it was handed and reports fixed
    /// fan-out stats, so the golden below pins the explain wiring without
    /// pulling in the real feed hub (which lives downstream in `ojv-feed`).
    #[derive(Debug, Default)]
    struct Probe {
        ops_seen: std::sync::Mutex<usize>,
        commits: std::sync::Mutex<Vec<ojv_durability::Lsn>>,
    }

    impl crate::snapshot::CommitObserver for Probe {
        fn on_commit(
            &self,
            lsn: ojv_durability::Lsn,
            updates: &[(String, Vec<crate::snapshot::ViewOp>)],
        ) {
            *self.ops_seen.lock().unwrap() +=
                updates.iter().map(|(_, ops)| ops.len()).sum::<usize>();
            self.commits.lock().unwrap().push(lsn);
        }

        fn fanout_stats(&self) -> Option<crate::snapshot::FanoutStats> {
            Some(crate::snapshot::FanoutStats {
                subscribers: 12,
                shared_evals: 3,
            })
        }
    }

    /// Golden: after a commit, `explain_batch` renders the last commit's
    /// per-view delta counts and the attached observer's fan-out line, in
    /// that order, above the snapshot footer.
    #[test]
    fn explain_batch_reports_deltas_and_subscribers() {
        let mut db = db();
        db.create_view(oj_view_def()).unwrap();
        let probe = std::sync::Arc::new(Probe::default());
        db.attach_commit_observer(probe.clone());
        // A brand-new part matches no lineitem: the full outer join gains
        // exactly one null-extended row, so the delta is exactly +1/-0.
        db.insert("part", vec![part_row(100, "probe", 1.0)])
            .unwrap();
        assert!(
            *probe.ops_seen.lock().unwrap() >= 1,
            "observer received the commit's journaled ops"
        );
        assert_eq!(*probe.commits.lock().unwrap(), vec![1]);
        let text = db.explain_batch("part").unwrap();
        assert!(
            text.ends_with(
                "  delta oj_view: +1/-0 rows\n\
                 \x20 subscribers: 12 (3 shared evals)\n\
                 \x20 snapshot lsn=1\n"
            ),
            "explain must render delta and subscriber lines:\n{text}"
        );
        // Detaching removes the subscribers line but keeps the delta lines.
        db.detach_commit_observer();
        let text = db.explain_batch("part").unwrap();
        assert!(!text.contains("subscribers:"), "{text}");
        assert!(text.contains("  delta oj_view: +1/-0 rows\n"), "{text}");
        assert_eq!(db.last_commit_deltas(), &[("oj_view".to_string(), 1, 0)]);
    }

    /// An update that touches no view journals nothing: no delta lines.
    #[test]
    fn explain_batch_omits_delta_lines_without_commits() {
        let mut db = db();
        db.create_view(oj_view_def()).unwrap();
        let text = db.explain_batch("part").unwrap();
        assert!(!text.contains("delta "), "{text}");
        assert!(!text.contains("subscribers:"), "{text}");
    }

    #[test]
    fn constraint_violations_propagate() {
        let mut db = db();
        db.create_view(oj_view_def()).unwrap();
        let err = db.insert("lineitem", vec![lineitem_row(999, 1, 1, 1, 1.0)]);
        assert!(err.is_err()); // order 999 does not exist
    }
}
