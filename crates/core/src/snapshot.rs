//! LSN-versioned view storage: consistent snapshot reads concurrent with
//! maintenance.
//!
//! The working [`ViewStore`] inside each [`MaterializedView`] is still
//! mutated in place by the maintenance commit path — that keeps the paper's
//! delta-application hot path untouched — but every mutation is journaled as
//! a [`ViewOp`]. When a batch commits, [`crate::database::Database`] drains
//! the journals of *all* registered views and publishes them into a shared
//! [`SnapshotRegistry`] under a single commit LSN, atomically: readers can
//! never observe view A at LSN n and view B at LSN n−1.
//!
//! # Version-chain layout
//!
//! Per view the registry holds:
//!
//! * `tip` — an [`Arc<ViewStore>`] image at the newest committed LSN. At
//!   commit it is advanced by replaying the journaled ops through
//!   [`Arc::make_mut`]: in place when nobody else holds the `Arc` (the
//!   pin-free steady state — zero copies, bounded memory), copy-on-write
//!   when a reader does.
//! * `hist` — present only while pins retain older versions: a `base` image
//!   at the oldest retained LSN plus one redo delta (the journaled ops) per
//!   later commit. A version at LSN `v` is materialized by cloning `base`
//!   and replaying the deltas with `lsn <= v` — the *same* `insert`/`delete`
//!   calls (and therefore the same `swap_remove` heap order) a serially
//!   maintained twin would have executed, so a snapshot at LSN `v` is
//!   byte-identical to that twin, not merely set-equal. Materializations are
//!   memoized per LSN, so repeated pins of the same version are `Arc`
//!   clones.
//!
//! # Epoch-based reclamation
//!
//! Every pin registers its LSN; the *floor* is the smallest pinned LSN.
//! After each commit and each unpin the registry trims: with no pins the
//! whole history is dropped (`hist = None`) and only `tip` survives;
//! otherwise `base` is advanced up to the floor by replaying (and then
//! discarding) the deltas below it. A pinned version is never reclaimed — it
//! is either at or above the floor, and the snapshot additionally holds its
//! own `Arc` on the materialized image. An unpinned dead version is always
//! reclaimed by the next trim.
//!
//! # LSN ↔ WAL mapping
//!
//! A plain in-memory [`crate::database::Database`] numbers commits 1, 2, …
//! itself. Under [`crate::durable::DurableDatabase`] every update batch is
//! first appended to the WAL and the *WAL LSN* is passed down into the
//! commit, so a snapshot at LSN `n` is exactly "the view as of durable LSN
//! `n`" and crash recovery replays land the registry on the same LSNs the
//! original run produced.

use std::sync::{Arc, Mutex};

use ojv_durability::Lsn;
use ojv_rel::{key_of, put_row, put_str, put_u32, put_u64, Datum, Relation, Row, SchemaRef};

use crate::error::{CoreError, Result};
use crate::materialize::{MaterializedView, ViewStore};

/// One journaled mutation of a view store, in apply order. Replaying a
/// store's ops reproduces its exact state *including heap order*, because
/// the replay goes through the same `insert`/`delete` (swap-remove) code.
#[derive(Debug, Clone, PartialEq)]
pub enum ViewOp {
    /// A wide row inserted by the commit path.
    Insert(Row),
    /// A deletion by view key.
    Delete(Vec<Datum>),
}

/// Count the journaled ops in one view's commit delta: `(inserts, deletes)`.
/// These are the raw per-commit counts `explain_batch` renders as
/// `+N/-M rows`; net-effect cancellation across a batch is the change-feed
/// layer's job (`ojv-feed`), not the registry's.
pub fn delta_counts(ops: &[ViewOp]) -> (usize, usize) {
    let inserts = ops
        .iter()
        .filter(|o| matches!(o, ViewOp::Insert(_)))
        .count();
    (inserts, ops.len() - inserts)
}

/// Fan-out statistics a [`CommitObserver`] exposes for `explain_batch`:
/// how many subscriptions are registered and how many *distinct* evaluations
/// actually run per commit after identical subscriptions are deduplicated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FanoutStats {
    /// Registered subscriptions across all views.
    pub subscribers: usize,
    /// Deduplicated evaluation groups (≤ `subscribers`).
    pub shared_evals: usize,
}

/// Observer of committed view deltas. The database invokes it once per
/// commit, *after* the registry has published the batch at `lsn`, with the
/// exact journaled ops that advanced each view's tip — the hand-off point
/// for downstream consumers such as the change-feed hub in `ojv-feed`.
/// Implementations must tolerate empty per-view op lists (untouched views)
/// and commits for views they have never seen.
pub trait CommitObserver: Send + Sync + std::fmt::Debug {
    /// A batch committed at `lsn`; `updates` holds one `(view, ops)` entry
    /// per registered view (ops empty when the batch left it untouched).
    fn on_commit(&self, lsn: Lsn, updates: &[(String, Vec<ViewOp>)]);

    /// Current fan-out statistics, if the observer tracks subscriptions.
    fn fanout_stats(&self) -> Option<FanoutStats> {
        None
    }
}

/// One commit's redo delta for a single view.
#[derive(Debug, Clone)]
struct CommitDelta {
    lsn: Lsn,
    ops: Arc<Vec<ViewOp>>,
}

/// Retained history of one view: the oldest pinnable image plus the redo
/// deltas that advance it to the tip. Present only while pins require it.
#[derive(Debug, Clone)]
struct ChainHist {
    base_lsn: Lsn,
    base: Arc<ViewStore>,
    /// Ascending LSNs, all `> base_lsn`.
    deltas: Vec<CommitDelta>,
    /// Memoized materializations at mid-chain LSNs.
    cache: Vec<(Lsn, Arc<ViewStore>)>,
}

/// Version chain of one registered view.
#[derive(Debug, Clone)]
struct ViewChain {
    name: Arc<str>,
    /// Global wide-row column indexes of the view's projection.
    projection: Arc<[usize]>,
    /// Schema of the projected output.
    schema: SchemaRef,
    /// Image at the registry's current LSN.
    tip: Arc<ViewStore>,
    hist: Option<ChainHist>,
}

impl ViewChain {
    /// Smallest LSN this chain can still materialize.
    fn floor(&self, current: Lsn) -> Lsn {
        self.hist.as_ref().map_or(current, |h| h.base_lsn)
    }

    /// Materialize the view image at `lsn` (callers have validated
    /// `lsn >= self.floor(current)`).
    fn materialize(&mut self, lsn: Lsn, current: Lsn) -> Result<Arc<ViewStore>> {
        if lsn >= current {
            return Ok(Arc::clone(&self.tip));
        }
        let Some(hist) = &mut self.hist else {
            // floor() == current, so a validated lsn is >= current.
            return Ok(Arc::clone(&self.tip));
        };
        // Deltas ascend, so if the first one is already above `lsn` the base
        // image *is* the image at `lsn` — no replay, no copy (this is every
        // materialization of a view the pinned-over commits never touched).
        let replay_needed = hist.deltas.first().is_some_and(|d| d.lsn <= lsn);
        if !replay_needed {
            return Ok(Arc::clone(&hist.base));
        }
        if let Some((_, store)) = hist.cache.iter().find(|(l, _)| *l == lsn) {
            return Ok(Arc::clone(store));
        }
        let mut store = hist.base.unjournaled_clone();
        for delta in hist.deltas.iter().filter(|d| d.lsn <= lsn) {
            for op in delta.ops.iter() {
                store.apply_op(op, &self.name)?;
            }
        }
        let store = Arc::new(store);
        hist.cache.push((lsn, Arc::clone(&store)));
        Ok(store)
    }
}

/// Point-in-time metrics of the registry (tests and benches read these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Newest committed LSN.
    pub current_lsn: Lsn,
    /// Oldest LSN any chain can still serve.
    pub floor_lsn: Lsn,
    /// Active pins across all snapshots.
    pub active_pins: usize,
    /// Redo ops currently retained across all chains (0 when no history).
    pub retained_ops: usize,
    /// Materialized historical images retained (bases + memoized versions).
    pub retained_versions: usize,
    /// High-water mark of `retained_ops` since the registry was created.
    pub high_water_ops: usize,
}

#[derive(Debug)]
struct Inner {
    lsn: Lsn,
    chains: Vec<ViewChain>,
    /// Active pin counts, keyed by pinned LSN (unordered, few entries).
    pins: Vec<(Lsn, usize)>,
    high_water_ops: usize,
}

impl Inner {
    fn pin_floor(&self) -> Option<Lsn> {
        self.pins.iter().map(|&(l, _)| l).min()
    }

    fn retained_ops(&self) -> usize {
        self.chains
            .iter()
            .filter_map(|c| c.hist.as_ref())
            .map(|h| h.deltas.iter().map(|d| d.ops.len()).sum::<usize>())
            .sum()
    }

    /// Reclaim every version no pin can reach. With no pins the entire
    /// history drops; otherwise each chain's base advances to the pin floor
    /// by replaying (then discarding) the deltas at or below it.
    fn trim(&mut self) {
        let floor = self.pin_floor();
        for chain in &mut self.chains {
            match floor {
                Some(f) if f < self.lsn => {
                    if let Some(hist) = &mut chain.hist {
                        if hist.base_lsn < f {
                            hist.cache.retain(|(l, _)| *l >= f);
                            let base = Arc::make_mut(&mut hist.base);
                            for delta in hist.deltas.iter().take_while(|d| d.lsn <= f) {
                                for op in delta.ops.iter() {
                                    base.apply_op(op, &chain.name).expect(
                                        "redo replay onto the base cannot fail: the same ops \
                                         already applied to the tip in this order",
                                    );
                                }
                            }
                            hist.deltas.retain(|d| d.lsn > f);
                            hist.base_lsn = f;
                        }
                    }
                }
                // No pins below the tip: only the tip needs to survive.
                _ => chain.hist = None,
            }
        }
        self.high_water_ops = self.high_water_ops.max(self.retained_ops());
    }
}

/// Shared, thread-safe registry of versioned view images. Clone the handle
/// freely — readers on other threads pin snapshots through their own clone
/// while the owning [`crate::database::Database`] commits new versions.
#[derive(Debug, Clone)]
pub struct SnapshotRegistry {
    inner: Arc<Mutex<Inner>>,
}

/// Lock label and traced-cell name for the registry's single mutex and the
/// chain state it protects (see DESIGN.md §11 for the lock hierarchy).
const REGISTRY_LOCK: &str = "core.snapshot-registry.inner";
const REGISTRY_CHAINS: &str = "core.snapshot-registry.chains";

/// Guard over the registry state. A thin wrapper around the `MutexGuard`
/// that reports release to the happens-before detector, so lock-protected
/// chain accesses carry release→acquire edges in race-detector runs.
struct RegistryGuard<'a> {
    guard: std::sync::MutexGuard<'a, Inner>,
}

impl std::ops::Deref for RegistryGuard<'_> {
    type Target = Inner;
    fn deref(&self) -> &Inner {
        &self.guard
    }
}

impl std::ops::DerefMut for RegistryGuard<'_> {
    fn deref_mut(&mut self) -> &mut Inner {
        &mut self.guard
    }
}

impl Drop for RegistryGuard<'_> {
    fn drop(&mut self) {
        crate::trace::lock_released(REGISTRY_LOCK);
    }
}

impl Default for SnapshotRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl SnapshotRegistry {
    pub fn new() -> Self {
        SnapshotRegistry {
            inner: Arc::new(Mutex::new(Inner {
                lsn: 0,
                chains: Vec::new(),
                pins: Vec::new(),
                high_water_ops: 0,
            })),
        }
    }

    fn lock(&self) -> RegistryGuard<'_> {
        let guard = self.inner.lock().expect("snapshot registry mutex poisoned");
        // Recorded *after* the real mutex is held so the detector transfers
        // the releasing thread's clock to us (release -> acquire HB edge).
        crate::trace::lock_acquired(REGISTRY_LOCK);
        RegistryGuard { guard }
    }

    /// Register a view's current image as the tip of a new chain. Called
    /// when a view is created or installed; the store clone is the one-time
    /// DDL cost of making the view snapshottable.
    pub(crate) fn register(&self, view: &MaterializedView, at: Lsn) -> Result<()> {
        let cols: Vec<ojv_rel::Column> = view
            .analysis
            .projection
            .iter()
            .map(|&g| view.analysis.layout.wide_schema().column(g).clone())
            .collect();
        let schema = ojv_rel::Schema::shared(cols)?;
        let mut inner = self.lock();
        crate::trace::on_write(REGISTRY_CHAINS);
        inner.lsn = inner.lsn.max(at);
        inner.chains.push(ViewChain {
            name: Arc::from(view.name()),
            projection: Arc::from(view.analysis.projection.as_slice()),
            schema,
            tip: Arc::new(view.store().unjournaled_clone()),
            hist: None,
        });
        Ok(())
    }

    /// Drop a view's chain. Outstanding snapshots keep their own `Arc`s and
    /// stay readable; new pins no longer include the view.
    pub(crate) fn unregister(&self, name: &str) {
        let mut inner = self.lock();
        crate::trace::on_write(REGISTRY_CHAINS);
        inner.chains.retain(|c| c.name.as_ref() != name);
    }

    /// Publish one commit: advance every named chain's tip by its journaled
    /// ops and stamp the registry at `lsn` — atomically for all views. While
    /// pins retain older versions, the pre-commit tip becomes (or extends)
    /// the chain's history so those versions stay materializable.
    pub(crate) fn commit(&self, lsn: Lsn, updates: &[(String, Vec<ViewOp>)]) -> Result<()> {
        let mut inner = self.lock();
        crate::trace::on_write(REGISTRY_CHAINS);
        let prev = inner.lsn;
        let retain_history = !inner.pins.is_empty();
        if retain_history {
            // Anchor *every* chain's history at the pre-commit LSN — also
            // views this batch leaves untouched (empty delta): a held pin
            // below `lsn` must keep each view's old version materializable,
            // and an unanchored chain's floor would jump to the new LSN.
            // The base is the pre-commit tip: an Arc clone, not a copy;
            // make_mut below pays the one O(n) copy only for touched views.
            for chain in &mut inner.chains {
                chain.hist.get_or_insert_with(|| ChainHist {
                    base_lsn: prev,
                    base: Arc::clone(&chain.tip),
                    deltas: Vec::new(),
                    cache: Vec::new(),
                });
            }
        }
        for (name, ops) in updates {
            if ops.is_empty() {
                continue;
            }
            let Some(chain) = inner
                .chains
                .iter_mut()
                .find(|c| c.name.as_ref() == name.as_str())
            else {
                continue; // dropped concurrently with the batch
            };
            if retain_history {
                let hist = chain.hist.as_mut().expect("anchored above");
                hist.deltas.push(CommitDelta {
                    lsn,
                    ops: Arc::new(ops.clone()),
                });
            }
            let tip = Arc::make_mut(&mut chain.tip);
            for op in ops {
                tip.apply_op(op, name)?;
            }
        }
        inner.lsn = inner.lsn.max(lsn);
        inner.trim();
        Ok(())
    }

    /// Pin a consistent snapshot of every registered view at the newest
    /// committed LSN.
    pub fn pin(&self) -> Result<Snapshot> {
        self.pin_inner(None)
    }

    /// Pin a consistent snapshot at `lsn`. Every view is materialized at its
    /// newest version `<= lsn`; fails with [`CoreError::SnapshotUnavailable`]
    /// when reclamation has already freed that version.
    pub fn pin_at(&self, lsn: Lsn) -> Result<Snapshot> {
        self.pin_inner(Some(lsn))
    }

    fn pin_inner(&self, at: Option<Lsn>) -> Result<Snapshot> {
        let mut inner = self.lock();
        // A pin *writes*: it bumps the pin table and may fill version
        // caches, so it conflicts with concurrent pins absent the lock.
        crate::trace::on_write(REGISTRY_CHAINS);
        let current = inner.lsn;
        let lsn = at.unwrap_or(current);
        let floor = inner
            .chains
            .iter()
            .map(|c| c.floor(current))
            .max()
            .unwrap_or(current);
        if lsn < floor {
            return Err(CoreError::SnapshotUnavailable {
                requested: lsn,
                floor,
            });
        }
        let mut views = Vec::with_capacity(inner.chains.len());
        // Split-borrow: materialize needs &mut chains while `current` is a
        // copied scalar.
        let chains = &mut inner.chains;
        for chain in chains.iter_mut() {
            // Arc bumps only — pinning allocates nothing per view beyond
            // the `views` vec itself.
            views.push(SnapshotView {
                name: Arc::clone(&chain.name),
                projection: Arc::clone(&chain.projection),
                schema: Arc::clone(&chain.schema),
                store: chain.materialize(lsn, current)?,
            });
        }
        // Pins are keyed by the version they hold alive: a request above the
        // current LSN only ever reads the tip.
        let key = lsn.min(current);
        match inner.pins.iter_mut().find(|(l, _)| *l == key) {
            Some((_, n)) => *n += 1,
            None => inner.pins.push((key, 1)),
        }
        Ok(Snapshot {
            lsn,
            pin_key: key,
            views,
            registry: self.clone(),
        })
    }

    fn unpin(&self, key: Lsn) {
        let mut inner = self.lock();
        crate::trace::on_write(REGISTRY_CHAINS);
        if let Some(pos) = inner.pins.iter().position(|(l, _)| *l == key) {
            inner.pins[pos].1 -= 1;
            if inner.pins[pos].1 == 0 {
                inner.pins.swap_remove(pos);
            }
        }
        inner.trim();
    }

    /// Newest committed LSN.
    pub fn current_lsn(&self) -> Lsn {
        let inner = self.lock();
        crate::trace::on_read(REGISTRY_CHAINS);
        inner.lsn
    }

    /// Current registry metrics.
    pub fn stats(&self) -> SnapshotStats {
        let inner = self.lock();
        crate::trace::on_read(REGISTRY_CHAINS);
        let current = inner.lsn;
        SnapshotStats {
            current_lsn: current,
            floor_lsn: inner
                .chains
                .iter()
                .map(|c| c.floor(current))
                .max()
                .unwrap_or(current),
            active_pins: inner.pins.iter().map(|&(_, n)| n).sum(),
            retained_ops: inner.retained_ops(),
            retained_versions: inner
                .chains
                .iter()
                .filter_map(|c| c.hist.as_ref())
                .map(|h| 1 + h.cache.len())
                .sum(),
            high_water_ops: inner.high_water_ops,
        }
    }
}

/// One view inside a pinned [`Snapshot`]: an immutable image plus the
/// projection needed to render the view's output.
#[derive(Debug, Clone)]
pub struct SnapshotView {
    name: Arc<str>,
    projection: Arc<[usize]>,
    schema: SchemaRef,
    store: Arc<ViewStore>,
}

impl SnapshotView {
    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn len(&self) -> usize {
        self.store.len()
    }

    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// The stored wide rows (internal representation, heap order).
    pub fn wide_rows(&self) -> &[Row] {
        self.store.rows()
    }

    /// The underlying store image — the sharded snapshot's canonical
    /// encoder reads rows *and* count indexes through this.
    pub(crate) fn store(&self) -> &ViewStore {
        &self.store
    }

    /// Global wide-row column indexes of the view's projected output.
    /// Subscription filters and projections in `ojv-feed` are declared over
    /// output columns and mapped through this onto the stored wide rows, so
    /// evaluation never widens or re-projects a row it rejects.
    pub fn projection(&self) -> &[usize] {
        &self.projection
    }

    /// Wide-row column indexes of the view's unique key (the identity a
    /// [`ViewOp::Delete`] names).
    pub fn key_cols(&self) -> &[usize] {
        self.store.key_cols()
    }

    /// Schema of the projected output.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Look up a stored row by view key.
    pub fn get_by_key(&self, key: &[Datum]) -> Option<&Row> {
        self.store.get_by_key(key)
    }

    pub fn contains(&self, key: &[Datum]) -> bool {
        self.store.contains(key)
    }

    /// Indexed multiplicity lookup (see [`ViewStore::count_by_key`]).
    pub fn count_by_key(&self, cols: &[usize], key: &[Datum]) -> Option<usize> {
        self.store.count_by_key(cols, key)
    }

    /// The view's projected output, as of the snapshot's LSN.
    pub fn output(&self) -> Result<Relation> {
        let rows = self
            .store
            .rows()
            .iter()
            .map(|r| key_of(r, &self.projection))
            .collect();
        Ok(Relation::new(Arc::clone(&self.schema), rows))
    }
}

/// A pinned, immutable image of every registered view at one LSN. Holding
/// it keeps that version materializable; dropping it releases the pin and
/// lets reclamation advance.
#[derive(Debug)]
pub struct Snapshot {
    lsn: Lsn,
    pin_key: Lsn,
    views: Vec<SnapshotView>,
    registry: SnapshotRegistry,
}

impl Snapshot {
    /// The LSN this snapshot was pinned at.
    pub fn lsn(&self) -> Lsn {
        self.lsn
    }

    pub fn view(&self, name: &str) -> Option<&SnapshotView> {
        self.views.iter().find(|v| v.name.as_ref() == name)
    }

    pub fn views(&self) -> impl Iterator<Item = &SnapshotView> {
        self.views.iter()
    }

    /// Canonical encoding of every view image in this snapshot (name, rows
    /// in heap order, sorted count-index entries) — the per-snapshot
    /// differential instrument: two snapshots at the same LSN of identically
    /// maintained databases are byte-equal, and a snapshot is byte-equal to
    /// a serially maintained twin paused at the same LSN.
    pub fn state_bytes(&self) -> Result<Vec<u8>> {
        let mut buf = Vec::new();
        put_u64(&mut buf, self.lsn);
        let n =
            u32::try_from(self.views.len()).map_err(|_| crate::error::CoreError::InvalidView {
                view: "<snapshot>".to_string(),
                detail: "view count exceeds u32 framing".to_string(),
            })?;
        put_u32(&mut buf, n);
        for v in &self.views {
            put_str(&mut buf, &v.name).map_err(CoreError::Rel)?;
            encode_store(&mut buf, &v.store)?;
        }
        Ok(buf)
    }
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        self.registry.unpin(self.pin_key);
    }
}

/// Canonical store section: rows in heap order plus the sorted count-index
/// snapshot (the same shape the durable checkpoint codec uses).
fn encode_store(buf: &mut Vec<u8>, store: &ViewStore) -> Result<()> {
    let fit = |n: usize, what: &str| -> Result<u32> {
        u32::try_from(n).map_err(|_| CoreError::InvalidView {
            view: "<snapshot>".to_string(),
            detail: format!("{what} of {n} exceeds u32 framing"),
        })
    };
    let rows = store.rows();
    put_u32(buf, fit(rows.len(), "row count")?);
    for row in rows {
        put_row(buf, row).map_err(CoreError::Rel)?;
    }
    let indexes = store.count_index_snapshot();
    put_u32(buf, fit(indexes.len(), "index count")?);
    for (cols, entries) in &indexes {
        put_u32(buf, fit(cols.len(), "index column count")?);
        for &c in cols {
            put_u32(buf, fit(c, "index column")?);
        }
        put_u32(buf, fit(entries.len(), "index entry count")?);
        for (key, count) in entries {
            put_row(buf, key).map_err(CoreError::Rel)?;
            put_u64(buf, *count as u64); // lint:allow(cast) — usize widens into u64 on 64-bit
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::fixtures::*;

    fn db() -> Database {
        let mut c = example1_catalog();
        populate_example1(&mut c, 8, 9);
        let mut db = Database::new(c);
        db.create_view(oj_view_def()).unwrap();
        db
    }

    #[test]
    fn pin_latest_tracks_commits() {
        let mut db = db();
        let reg = db.snapshots().clone();
        assert_eq!(reg.current_lsn(), 0);
        let s0 = reg.pin().unwrap();
        assert_eq!(s0.lsn(), 0);
        let len0 = s0.view("oj_view").unwrap().len();

        db.insert("lineitem", vec![lineitem_row(3, 1, 2, 4, 42.0)])
            .unwrap();
        assert_eq!(reg.current_lsn(), 1);
        let s1 = reg.pin().unwrap();
        assert_eq!(s1.lsn(), 1);
        // The old pin still sees the old image.
        assert_eq!(s0.view("oj_view").unwrap().len(), len0);
        assert_eq!(
            s1.view("oj_view").unwrap().wide_rows(),
            db.view("oj_view").unwrap().wide_rows()
        );
    }

    #[test]
    fn pinned_version_survives_later_commits_byte_exactly() {
        let mut live = db();
        let mut twin = db();
        live.insert("lineitem", vec![lineitem_row(3, 1, 2, 4, 42.0)])
            .unwrap();
        twin.insert("lineitem", vec![lineitem_row(3, 1, 2, 4, 42.0)])
            .unwrap();
        let pinned = live.snapshots().pin().unwrap(); // lsn 1
        let expect = twin.snapshots().pin().unwrap().state_bytes().unwrap();

        // Keep mutating the live database; the pin must not move.
        live.insert("lineitem", vec![lineitem_row(6, 9, 5, 1, 2.0)])
            .unwrap();
        live.delete("lineitem", &[vec![Datum::Int(3), Datum::Int(1)]])
            .unwrap();
        assert_eq!(pinned.state_bytes().unwrap(), expect);
        // And a fresh pin at the old LSN materializes the same bytes.
        let repinned = live.snapshots().pin_at(1).unwrap();
        assert_eq!(repinned.state_bytes().unwrap(), expect);
    }

    #[test]
    fn unpinned_history_is_reclaimed() {
        let mut db = db();
        let reg = db.snapshots().clone();
        let pin = reg.pin().unwrap(); // lsn 0
        db.insert("lineitem", vec![lineitem_row(3, 1, 2, 4, 42.0)])
            .unwrap();
        db.insert("lineitem", vec![lineitem_row(6, 9, 5, 1, 2.0)])
            .unwrap();
        let stats = reg.stats();
        assert_eq!(stats.active_pins, 1);
        assert_eq!(stats.floor_lsn, 0);
        assert!(stats.retained_ops > 0, "history retained while pinned");

        drop(pin);
        let stats = reg.stats();
        assert_eq!(stats.active_pins, 0);
        assert_eq!(stats.retained_ops, 0, "history reclaimed on last unpin");
        assert_eq!(stats.floor_lsn, stats.current_lsn);
        // The reclaimed version is now unavailable.
        assert!(matches!(
            reg.pin_at(0),
            Err(CoreError::SnapshotUnavailable { .. })
        ));
    }

    #[test]
    fn pin_free_workload_retains_nothing() {
        let mut db = db();
        for i in 0..6i64 {
            db.insert("lineitem", vec![lineitem_row(3, 10 + i, 2, 1, 1.0)])
                .unwrap();
        }
        let stats = db.snapshots().stats();
        assert_eq!(stats.retained_ops, 0);
        assert_eq!(stats.retained_versions, 0);
        assert_eq!(stats.high_water_ops, 0, "no pins, no history ever built");
    }

    #[test]
    fn mid_chain_pin_materializes_and_memoizes() {
        let mut db = db();
        let reg = db.snapshots().clone();
        let hold = reg.pin().unwrap(); // keeps lsn 0 alive
        let mut per_lsn = vec![reg.pin().unwrap().state_bytes().unwrap()];
        for i in 0..4i64 {
            db.insert("lineitem", vec![lineitem_row(3, 10 + i, 2, 1, 1.0)])
                .unwrap();
            per_lsn.push(reg.pin().unwrap().state_bytes().unwrap());
        }
        // Pin every retained LSN again; bytes must match what was seen live.
        for (lsn, expect) in per_lsn.iter().enumerate() {
            let s = reg.pin_at(lsn as u64).unwrap();
            let mut got = s.state_bytes().unwrap();
            // state_bytes embeds the pinned LSN; both were pinned at `lsn`.
            assert_eq!(&mut got, expect, "lsn {lsn}");
        }
        let stats = reg.stats();
        assert!(stats.retained_versions >= 1);
        drop(hold);
        assert_eq!(reg.stats().retained_ops, 0);
    }

    #[test]
    fn snapshot_output_matches_view_output() {
        let mut db = db();
        db.insert("lineitem", vec![lineitem_row(3, 1, 2, 4, 42.0)])
            .unwrap();
        let snap = db.snapshots().pin().unwrap();
        let out = snap.view("oj_view").unwrap().output().unwrap();
        let live = db.view("oj_view").unwrap().output().unwrap();
        assert_eq!(out.schema().len(), live.schema().len());
        assert!(out.bag_eq(&live));
    }

    #[test]
    fn dropped_view_leaves_existing_snapshots_readable() {
        let mut db = db();
        let snap = db.snapshots().pin().unwrap();
        db.drop_view("oj_view").unwrap();
        assert!(snap.view("oj_view").is_some());
        let fresh = db.snapshots().pin().unwrap();
        assert!(fresh.view("oj_view").is_none());
    }
}
