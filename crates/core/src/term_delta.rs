//! Extraction of per-term deltas from `ΔV^D` (paper §5.1, Theorem 2).

use ojv_algebra::TableSet;
use ojv_exec::{ops, ViewLayout};
use ojv_rel::Row;

/// `∆D_i = π_{T_i.*} σ_{nn(T_i) ∧ n(U−T_i)} ∆V^D` — the net-contribution
/// delta of the term with source set `tables`: delta rows whose source set
/// is *exactly* `tables`.
pub fn term_net_delta(layout: &ViewLayout, tables: TableSet, delta: &[Row]) -> Vec<Row> {
    delta
        .iter()
        .filter(|r| layout.row_matches_term(tables, r))
        .cloned()
        .collect()
}

/// `∆E_i = δ π_{T_i.*} σ_{nn(T_i)} ∆V^D` — the complete delta of the term:
/// projections (onto `tables`) of all delta rows non-null on `tables`,
/// duplicates removed (a `T_i` tuple may have joined several tuples of other
/// tables).
pub fn term_full_delta(layout: &ViewLayout, tables: TableSet, delta: &[Row]) -> Vec<Row> {
    let projected: Vec<Row> = delta
        .iter()
        .filter(|r| tables.iter().all(|t| !layout.is_null_on(t, r)))
        .map(|r| {
            let mut out = r.clone();
            layout.null_out(layout.all_tables().difference(tables), &mut out);
            out
        })
        .collect();
    ops::distinct(projected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ojv_algebra::TableId;
    use ojv_rel::{Column, DataType, Datum};
    use ojv_storage::Catalog;

    fn layout() -> ViewLayout {
        let mut c = Catalog::new();
        for name in ["x", "y", "z"] {
            c.create_table(
                name,
                vec![Column::new(name, "id", DataType::Int, false)],
                &["id"],
            )
            .unwrap();
        }
        ViewLayout::new(&c, &["x", "y", "z"]).unwrap()
    }

    fn row(x: Option<i64>, y: Option<i64>, z: Option<i64>) -> Row {
        [x, y, z]
            .iter()
            .map(|v| v.map(Datum::Int).unwrap_or(Datum::Null))
            .collect()
    }

    fn ts(ids: &[u8]) -> TableSet {
        TableSet::from_iter(ids.iter().map(|&i| TableId(i)))
    }

    #[test]
    fn net_delta_matches_exact_pattern() {
        let l = layout();
        let delta = vec![
            row(Some(1), Some(2), None),
            row(Some(1), Some(2), Some(3)),
            row(Some(9), None, None),
        ];
        let net = term_net_delta(&l, ts(&[0, 1]), &delta);
        assert_eq!(net.len(), 1);
        assert_eq!(net[0], row(Some(1), Some(2), None));
    }

    #[test]
    fn full_delta_projects_and_dedups() {
        let l = layout();
        // Two xyz rows sharing the same xy part (x=1,y=2 joined two z's),
        // plus one xy-only row with the same xy part.
        let delta = vec![
            row(Some(1), Some(2), Some(3)),
            row(Some(1), Some(2), Some(4)),
            row(Some(1), Some(2), None),
        ];
        let full = term_full_delta(&l, ts(&[0, 1]), &delta);
        assert_eq!(full.len(), 1);
        assert_eq!(full[0], row(Some(1), Some(2), None));
    }

    #[test]
    fn full_delta_requires_non_null_sources() {
        let l = layout();
        let delta = vec![row(Some(1), None, None)];
        assert!(term_full_delta(&l, ts(&[0, 1]), &delta).is_empty());
        assert_eq!(term_full_delta(&l, ts(&[0]), &delta).len(), 1);
    }
}
