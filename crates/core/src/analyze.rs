//! Resolution of a [`ViewDef`] against the catalog, and the static analysis
//! the maintenance procedure is driven by: normal form, subsumption graph,
//! and cached delta plans.

use ojv_algebra::{
    derive_primary_delta, normalize, simplify_tree, to_left_deep, Atom, Expr, FkEdge,
    MaintenanceGraph, Pred, SubsumptionGraph, TableId, Term,
};
use ojv_exec::ViewLayout;
use ojv_storage::Catalog;

use crate::error::{CoreError, Result};
use crate::view_def::{NamedAtom, ViewDef, ViewExpr};

/// The resolved, analyzed form of a view: everything the maintenance
/// procedure needs that does not depend on a particular update.
#[derive(Debug, Clone)]
pub struct ViewAnalysis {
    /// Wide-row layout over the view's tables, in leaf order.
    pub layout: ViewLayout,
    /// The view's operator tree in positional form.
    pub expr: Expr,
    /// Usable foreign-key edges among the view's tables.
    pub fks: Vec<FkEdge>,
    /// The FK-pruned join-disjunctive normal form (§2.2, §6).
    pub terms: Vec<Term>,
    /// Subsumption graph over `terms` (§2.3).
    pub graph: SubsumptionGraph,
    /// Wide-row indexes of the view's unique key: the concatenated keys of
    /// all referenced tables.
    pub view_key: Vec<usize>,
    /// Wide-row indexes of the output columns.
    pub projection: Vec<usize>,
}

/// Resolve and analyze a view definition.
pub fn analyze(catalog: &Catalog, def: &ViewDef) -> Result<ViewAnalysis> {
    let tables = def.expr().tables();
    // §2: a view can reference the same table only once.
    for (i, t) in tables.iter().enumerate() {
        if tables[..i].contains(t) {
            return Err(CoreError::InvalidView {
                view: def.name().to_string(),
                detail: format!("table {t} referenced more than once"),
            });
        }
    }
    if tables.len() > ojv_algebra::TableSet::MAX_TABLES {
        return Err(CoreError::InvalidView {
            view: def.name().to_string(),
            detail: format!(
                "view references more than {} tables",
                ojv_algebra::TableSet::MAX_TABLES
            ),
        });
    }
    let table_refs: Vec<&str> = tables.iter().map(String::as_str).collect();
    let layout = ViewLayout::new(catalog, &table_refs)?;

    let expr = resolve_expr(def, &layout, def.expr())?;
    let fks = resolve_fks(catalog, &layout);
    let terms = normalize(&expr, &fks);
    let graph = SubsumptionGraph::new(terms.clone());

    let view_key = layout.term_key_cols(layout.all_tables());
    let projection = match def.projection() {
        None => (0..layout.width()).collect(),
        Some(cols) => {
            let mut out = Vec::with_capacity(cols.len());
            for (t, c) in cols {
                let col = layout.col(t, c).map_err(|_| CoreError::InvalidView {
                    view: def.name().to_string(),
                    detail: format!("projection column {t}.{c} not found"),
                })?;
                out.push(layout.global(col));
            }
            out
        }
    };

    let analysis = ViewAnalysis {
        layout,
        expr,
        fks,
        terms,
        graph,
        view_key,
        projection,
    };
    // Debug builds verify every analysis at build time, turning the whole
    // test suite into a sweep over the §2 invariants. Release callers opt in
    // per run via `MaintenancePolicy::verify_plans`.
    if cfg!(debug_assertions) {
        analysis.verify_static(catalog)?;
    }
    Ok(analysis)
}

impl ViewAnalysis {
    /// Static verification of the update-independent artifacts: layout
    /// strides against the catalog, JDNF/subsumption well-formedness, and
    /// the resolved view expression. Returns the number of checks passed.
    pub fn verify_static(&self, catalog: &Catalog) -> Result<usize> {
        let mut checks = ojv_analysis::verify_layout(&self.layout, Some(catalog))?;
        checks += ojv_analysis::verify_jdnf(&self.graph)?;
        checks += ojv_analysis::verify_plan(&self.layout, &self.expr, None)?;
        Ok(checks)
    }

    /// Verify one update's compiled maintenance artifacts: the (possibly
    /// reduced) maintenance graph, the primary-delta plan with its left-deep
    /// side conditions, and — for terms maintained from the view — the §5.2
    /// key-projection requirement. Returns the number of checks passed.
    pub fn verify_maintenance(
        &self,
        t: TableId,
        use_fk: bool,
        left_deep: bool,
        mgraph: &MaintenanceGraph,
        plan: Option<&Expr>,
    ) -> Result<usize> {
        let fks: &[FkEdge] = if use_fk { &self.fks } else { &[] };
        let mut checks = ojv_analysis::verify_maintenance_graph(&self.graph, mgraph, fks)?;
        if let Some(plan) = plan {
            checks += ojv_analysis::verify_plan(&self.layout, plan, Some(t))?;
            if left_deep {
                checks += ojv_analysis::verify_left_deep(plan)?;
            }
        }
        Ok(checks)
    }

    /// Verify the §5.2 availability condition behind a from-view secondary
    /// delta of `term_idx`. Returns the number of checks passed.
    pub fn verify_from_view(&self, term_idx: usize) -> Result<usize> {
        Ok(ojv_analysis::verify_secondary_from_view(
            &self.layout,
            &self.terms[term_idx],
            &self.projection,
        )?)
    }

    /// The (possibly FK-reduced) maintenance graph for an update of `t`.
    pub fn maintenance_graph(&self, t: TableId, use_fk: bool) -> MaintenanceGraph {
        let fks: &[FkEdge] = if use_fk { &self.fks } else { &[] };
        MaintenanceGraph::build(&self.graph, t, fks)
    }

    /// The `ΔV^D` plan for an update of `t`: derivation (§4), optional
    /// `SimplifyTree` (§6.1), optional left-deep conversion (§4.1).
    pub fn primary_delta_plan(&self, t: TableId, use_fk: bool, left_deep: bool) -> Expr {
        let mut plan = derive_primary_delta(&self.expr, t);
        if use_fk {
            plan = simplify_tree(plan, t, &self.fks);
        }
        if left_deep {
            plan = to_left_deep(plan);
        }
        plan
    }

    /// §5.2 column availability: can the secondary delta of term `term_idx`
    /// be computed from the view's *output*?
    ///
    /// Requires (a) a non-nullable base column of every view table in the
    /// output (to evaluate the `null(X)`/`¬null(X)` pattern predicates) and
    /// (b) the key columns of the term's source tables (for `eq(T_i)`).
    pub fn from_view_available(&self, term_idx: usize) -> bool {
        let term = &self.terms[term_idx];
        for (i, slot) in self.layout.slots().iter().enumerate() {
            let t = TableId(i as u8);
            let has_non_nullable = slot
                .schema
                .columns()
                .iter()
                .enumerate()
                .any(|(ci, c)| !c.nullable && self.projection.contains(&(slot.offset + ci)));
            if !has_non_nullable {
                return false;
            }
            if term.tables.contains(t) {
                let keys_out = slot.key_cols.iter().all(|k| self.projection.contains(k));
                if !keys_out {
                    return false;
                }
            }
        }
        true
    }
}

fn resolve_atom(def: &ViewDef, layout: &ViewLayout, atom: &NamedAtom) -> Result<Atom> {
    let col = |t: &str, c: &str| {
        layout.col(t, c).map_err(|_| CoreError::InvalidView {
            view: def.name().to_string(),
            detail: format!("column {t}.{c} not found"),
        })
    };
    Ok(match atom {
        NamedAtom::Cols { left, op, right } => {
            Atom::Cols(col(&left.0, &left.1)?, *op, col(&right.0, &right.1)?)
        }
        NamedAtom::Const { col: c, op, value } => Atom::Const(col(&c.0, &c.1)?, *op, value.clone()),
        NamedAtom::Between { col: c, lo, hi } => {
            Atom::Between(col(&c.0, &c.1)?, lo.clone(), hi.clone())
        }
    })
}

fn resolve_pred(def: &ViewDef, layout: &ViewLayout, atoms: &[NamedAtom]) -> Result<Pred> {
    let mut out = Vec::with_capacity(atoms.len());
    for a in atoms {
        out.push(resolve_atom(def, layout, a)?);
    }
    Ok(Pred::new(out))
}

fn resolve_expr(def: &ViewDef, layout: &ViewLayout, e: &ViewExpr) -> Result<Expr> {
    Ok(match e {
        ViewExpr::Table(name) => {
            let t = layout
                .table_id(name)
                .ok_or_else(|| CoreError::InvalidView {
                    view: def.name().to_string(),
                    detail: format!("table {name} not in layout"),
                })?;
            Expr::Table(t)
        }
        ViewExpr::Select(atoms, input) => Expr::select(
            resolve_pred(def, layout, atoms)?,
            resolve_expr(def, layout, input)?,
        ),
        ViewExpr::Join(kind, atoms, l, r) => {
            if !kind.is_spoj() {
                return Err(CoreError::InvalidView {
                    view: def.name().to_string(),
                    detail: format!("join kind {kind} not allowed in view definitions"),
                });
            }
            if atoms.is_empty() {
                return Err(CoreError::InvalidView {
                    view: def.name().to_string(),
                    detail: "join without predicate (cross joins not supported)".to_string(),
                });
            }
            Expr::join(
                *kind,
                resolve_pred(def, layout, atoms)?,
                resolve_expr(def, layout, l)?,
                resolve_expr(def, layout, r)?,
            )
        }
    })
}

fn resolve_fks(catalog: &Catalog, layout: &ViewLayout) -> Vec<FkEdge> {
    let mut out = Vec::new();
    for fk in catalog.foreign_keys() {
        let (Some(child), Some(parent)) = (layout.table_id(&fk.child), layout.table_id(&fk.parent))
        else {
            continue;
        };
        let child_schema = &layout.slot(child).schema;
        let child_cols_non_null = fk
            .child_cols
            .iter()
            .all(|&c| !child_schema.column(c).nullable);
        out.push(FkEdge {
            child,
            child_cols: fk.child_cols.clone(),
            parent,
            parent_cols: fk.parent_key.clone(),
            child_cols_non_null,
            cascade_delete: fk.cascade_delete,
            deferrable: fk.deferrable,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{example1_catalog, oj_view_def};
    use ojv_algebra::TableSet;

    #[test]
    fn analyze_example_1() {
        let catalog = example1_catalog();
        let a = analyze(&catalog, &oj_view_def()).unwrap();
        assert_eq!(a.layout.table_count(), 3);
        // FK pruning leaves {P,O,L}, {O}, {P}.
        assert_eq!(a.terms.len(), 3);
        assert_eq!(a.fks.len(), 2);
        // View key = p_partkey, o_orderkey, l_orderkey, l_linenumber.
        assert_eq!(a.view_key.len(), 4);
        // Full projection.
        assert_eq!(a.projection.len(), a.layout.width());
    }

    #[test]
    fn duplicate_table_rejected() {
        let catalog = example1_catalog();
        let def = crate::view_def::ViewDef::new(
            "dup",
            ViewExpr::inner(
                vec![crate::view_def::col_eq(
                    "part",
                    "p_partkey",
                    "part",
                    "p_partkey",
                )],
                ViewExpr::table("part"),
                ViewExpr::table("part"),
            ),
        );
        assert!(matches!(
            analyze(&catalog, &def),
            Err(CoreError::InvalidView { .. })
        ));
    }

    #[test]
    fn unknown_column_rejected() {
        let catalog = example1_catalog();
        let def = crate::view_def::ViewDef::new(
            "bad",
            ViewExpr::inner(
                vec![crate::view_def::col_eq(
                    "part",
                    "nope",
                    "orders",
                    "o_orderkey",
                )],
                ViewExpr::table("part"),
                ViewExpr::table("orders"),
            ),
        );
        assert!(analyze(&catalog, &def).is_err());
    }

    #[test]
    fn maintenance_graph_for_lineitem_update() {
        let catalog = example1_catalog();
        let a = analyze(&catalog, &oj_view_def()).unwrap();
        let t = a.layout.table_id("lineitem").unwrap();
        let m = a.maintenance_graph(t, true);
        // Direct: {P,O,L}; indirect: {O} and {P}.
        assert_eq!(m.direct.len(), 1);
        assert_eq!(m.indirect.len(), 2);
    }

    #[test]
    fn part_insert_graph_is_fk_reduced() {
        let catalog = example1_catalog();
        let a = analyze(&catalog, &oj_view_def()).unwrap();
        let t = a.layout.table_id("part").unwrap();
        let with_fk = a.maintenance_graph(t, true);
        // {P,O,L} is FK-reduced; only the {P} term remains, no indirect.
        assert_eq!(with_fk.direct.len(), 1);
        let d = &a.terms[with_fk.direct[0]];
        assert_eq!(d.tables, TableSet::singleton(t));
        assert!(with_fk.indirect.is_empty());
        let without = a.maintenance_graph(t, false);
        assert_eq!(without.direct.len(), 2);
    }

    #[test]
    fn primary_plan_for_part_insert_collapses_to_delta_scan() {
        let catalog = example1_catalog();
        let a = analyze(&catalog, &oj_view_def()).unwrap();
        let t = a.layout.table_id("part").unwrap();
        let plan = a.primary_delta_plan(t, true, true);
        assert_eq!(plan, Expr::Delta(t));
        let unoptimized = a.primary_delta_plan(t, false, true);
        assert_ne!(unoptimized, Expr::Delta(t));
    }

    #[test]
    fn column_availability_full_projection() {
        let catalog = example1_catalog();
        let a = analyze(&catalog, &oj_view_def()).unwrap();
        for i in 0..a.terms.len() {
            assert!(a.from_view_available(i));
        }
    }

    #[test]
    fn column_availability_with_restricted_projection() {
        let catalog = example1_catalog();
        // Project away lineitem's key columns: terms containing lineitem can
        // no longer be maintained from the view.
        let def = oj_view_def().with_projection(vec![
            ("part", "p_partkey"),
            ("orders", "o_orderkey"),
            ("lineitem", "l_quantity"),
        ]);
        let a = analyze(&catalog, &def).unwrap();
        for (i, term) in a.terms.iter().enumerate() {
            let has_lineitem = term.tables.contains(a.layout.table_id("lineitem").unwrap());
            // l_quantity is nullable, so lineitem lacks a non-nullable
            // output column entirely → nothing is available from the view.
            assert!(!a.from_view_available(i) || !has_lineitem);
        }
    }
}
