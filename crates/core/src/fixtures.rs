//! Shared fixtures: small catalogs and views mirroring the paper's running
//! examples. Used by unit tests, integration tests, and examples.

use ojv_rel::{Column, DataType, Datum, Row};
use ojv_storage::Catalog;

use crate::view_def::{col_cmp, col_eq, ViewDef, ViewExpr};

/// The Example 1 schema: `part`, `orders`, `lineitem` with foreign keys
/// `lineitem → orders` and `lineitem → part`.
pub fn example1_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.create_table(
        "part",
        vec![
            Column::new("part", "p_partkey", DataType::Int, false),
            Column::new("part", "p_name", DataType::Str, true),
            Column::new("part", "p_retailprice", DataType::Float, true),
        ],
        &["p_partkey"],
    )
    .expect("fixture schema");
    c.create_table(
        "orders",
        vec![
            Column::new("orders", "o_orderkey", DataType::Int, false),
            Column::new("orders", "o_custkey", DataType::Int, true),
        ],
        &["o_orderkey"],
    )
    .expect("fixture schema");
    c.create_table(
        "lineitem",
        vec![
            Column::new("lineitem", "l_orderkey", DataType::Int, false),
            Column::new("lineitem", "l_linenumber", DataType::Int, false),
            Column::new("lineitem", "l_partkey", DataType::Int, false),
            Column::new("lineitem", "l_quantity", DataType::Int, true),
            Column::new("lineitem", "l_extendedprice", DataType::Float, true),
        ],
        &["l_orderkey", "l_linenumber"],
    )
    .expect("fixture schema");
    c.add_foreign_key("fk_lineitem_orders", "lineitem", &["l_orderkey"], "orders")
        .expect("fixture fk");
    c.add_foreign_key("fk_lineitem_part", "lineitem", &["l_partkey"], "part")
        .expect("fixture fk");
    c
}

/// A part row.
pub fn part_row(pk: i64, name: &str, price: f64) -> Row {
    vec![Datum::Int(pk), Datum::str(name), Datum::Float(price)]
}

/// An orders row.
pub fn order_row(ok: i64, custkey: i64) -> Row {
    vec![Datum::Int(ok), Datum::Int(custkey)]
}

/// A lineitem row.
pub fn lineitem_row(ok: i64, ln: i64, pk: i64, qty: i64, price: f64) -> Row {
    vec![
        Datum::Int(ok),
        Datum::Int(ln),
        Datum::Int(pk),
        Datum::Int(qty),
        Datum::Float(price),
    ]
}

/// Populate the Example 1 catalog with a small deterministic data set:
/// `n_parts` parts, `n_orders` orders, and one lineitem for every
/// (order, order % n_parts) pair plus extras for even orders.
pub fn populate_example1(c: &mut Catalog, n_parts: i64, n_orders: i64) {
    let parts: Vec<Row> = (1..=n_parts)
        .map(|i| part_row(i, &format!("part{i}"), 100.0 + i as f64))
        .collect();
    c.insert("part", parts).expect("fixture parts");
    let orders: Vec<Row> = (1..=n_orders).map(|i| order_row(i, 1000 + i)).collect();
    c.insert("orders", orders).expect("fixture orders");
    let mut lines = Vec::new();
    for o in 1..=n_orders {
        // Orders divisible by 3 stay empty (orphaned orders).
        if o % 3 == 0 {
            continue;
        }
        lines.push(lineitem_row(o, 1, 1 + (o % n_parts), 5, 10.0 * o as f64));
        if o % 2 == 0 {
            lines.push(lineitem_row(
                o,
                2,
                1 + ((o + 1) % n_parts),
                7,
                5.0 * o as f64,
            ));
        }
    }
    c.insert("lineitem", lines).expect("fixture lineitems");
}

/// The paper's Example 1 view:
/// `part fo (orders lo lineitem on l_orderkey=o_orderkey) on p_partkey=l_partkey`.
pub fn oj_view_def() -> ViewDef {
    ViewDef::new(
        "oj_view",
        ViewExpr::full_outer(
            vec![col_eq("part", "p_partkey", "lineitem", "l_partkey")],
            ViewExpr::table("part"),
            ViewExpr::left_outer(
                vec![col_eq("orders", "o_orderkey", "lineitem", "l_orderkey")],
                ViewExpr::table("orders"),
                ViewExpr::table("lineitem"),
            ),
        ),
    )
}

/// A member of the Example 1 view family: same shape as [`oj_view_def`] but
/// with an extra `l_quantity < max_qty` predicate on the part join. Family
/// members share the `Δlineitem ⋈ orders` prefix of their maintenance plans
/// and diverge at the part join, so batched maintenance shares the common
/// prefix without sharing whole plans. Members with equal `max_qty` have
/// identical plans.
pub fn oj_view_variant(name: &str, max_qty: i64) -> ViewDef {
    ViewDef::new(
        name,
        ViewExpr::full_outer(
            vec![
                col_eq("part", "p_partkey", "lineitem", "l_partkey"),
                col_cmp("lineitem", "l_quantity", ojv_algebra::CmpOp::Lt, max_qty),
            ],
            ViewExpr::table("part"),
            ViewExpr::left_outer(
                vec![col_eq("orders", "o_orderkey", "lineitem", "l_orderkey")],
                ViewExpr::table("orders"),
                ViewExpr::table("lineitem"),
            ),
        ),
    )
}

/// The running-example view V1 over four generic tables
/// `(R fo S) lo (T fo U)`, with single-column keys and integer join columns.
pub fn v1_catalog() -> Catalog {
    let mut c = Catalog::new();
    for name in ["r", "s", "t", "u"] {
        c.create_table(
            name,
            vec![
                Column::new(name, "id", DataType::Int, false),
                Column::new(name, "jc", DataType::Int, false),
                Column::new(name, "payload", DataType::Int, true),
            ],
            &["id"],
        )
        .expect("fixture schema");
    }
    c
}

/// `V1 = (R fo_{r.jc=s.jc} S) lo_{r.jc=t.jc} (T fo_{t.jc=u.jc} U)`.
pub fn v1_view_def() -> ViewDef {
    ViewDef::new(
        "v1",
        ViewExpr::left_outer(
            vec![col_eq("r", "jc", "t", "jc")],
            ViewExpr::full_outer(
                vec![col_eq("r", "jc", "s", "jc")],
                ViewExpr::table("r"),
                ViewExpr::table("s"),
            ),
            ViewExpr::full_outer(
                vec![col_eq("t", "jc", "u", "jc")],
                ViewExpr::table("t"),
                ViewExpr::table("u"),
            ),
        ),
    )
}

/// A generic row for the V1 tables.
pub fn v1_row(id: i64, jc: i64, payload: i64) -> Row {
    vec![Datum::Int(id), Datum::Int(jc), Datum::Int(payload)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example1_fixture_is_consistent() {
        let mut c = example1_catalog();
        populate_example1(&mut c, 10, 12);
        assert_eq!(c.table("part").unwrap().len(), 10);
        assert_eq!(c.table("orders").unwrap().len(), 12);
        assert!(!c.table("lineitem").unwrap().is_empty());
    }

    #[test]
    fn v1_fixture_builds() {
        let c = v1_catalog();
        assert_eq!(c.tables().count(), 4);
        assert_eq!(v1_view_def().expr().tables(), vec!["r", "s", "t", "u"]);
    }
}
