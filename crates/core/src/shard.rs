//! `ShardedDatabase`: hash-partitioned engine façade.
//!
//! The engine is partitioned into N independent [`Database`] shards, each
//! owning a hash partition of every base table and every view. Routing is
//! **strictly key-aligned** (the only partitioning under which outer-join
//! maintenance stays shard-local — broadcast or replicated schemes are
//! unsound for outer joins because a null-extended row must exist on
//! *exactly one* shard):
//!
//! * every table declares routing columns that are a **subset of its unique
//!   key**, so equal keys route identically and shard-local unique
//!   enforcement is globally sound;
//! * a view is accepted only if the routing columns of all its tables are
//!   pairwise connected through the view's equijoin atoms (checked by
//!   equivalence-class closure at creation). Rows that can ever join then
//!   agree on their routing values and live on one shard, so every
//!   maintenance plan — primary and secondary deltas included — runs
//!   entirely within the delta's owner shard.
//!
//! An update routes its delta batch to owner shards, fans maintenance out
//! (optionally on scoped worker threads — each shard owns its stores, so
//! workers share nothing and take no locks), and then the **coordinator**
//! thread publishes every shard's snapshot registry at one global commit
//! LSN — untouched shards publish an empty commit — so cross-shard snapshot
//! reads are atomic: [`ShardedDatabase::snapshot`] pins all shards at the
//! same LSN.
//!
//! Because per-shard heap orders depend on the partitioning, cross-shard
//! comparisons use the *canonical* [`ShardedDatabase::state_bytes`]: rows
//! sorted by encoded bytes, count indexes merged by key. An N-shard façade
//! is byte-identical to a 1-shard façade (and to a freshly recomputed twin)
//! over the same logical content — the differential property suites pin
//! exactly this.

use std::collections::BTreeMap;

use ojv_durability::Lsn;
use ojv_rel::{key_of, put_row, put_str, put_u32, put_u64, Datum, FxHashSet, Relation, Row};
use ojv_storage::{Catalog, ShardId, ShardRouter, StorageError, Update};

use crate::database::Database;
use crate::error::{CoreError, Result};
use crate::maintain::MaintenanceReport;
use crate::policy::MaintenancePolicy;
use crate::snapshot::Snapshot;
use crate::view_def::{NamedAtom, ViewDef, ViewExpr};

/// Per-table routing declaration: table name → routing column names.
///
/// Routing columns must be a subset of the table's unique key (validated by
/// [`ShardedDatabase::new`]).
#[derive(Debug, Clone, Default)]
pub struct RoutingSpec {
    entries: Vec<(String, Vec<String>)>,
}

impl RoutingSpec {
    pub fn new() -> Self {
        RoutingSpec::default()
    }

    /// Declare `table` as routed by `cols` (in order).
    pub fn table(mut self, table: &str, cols: &[&str]) -> Self {
        self.entries.push((
            table.to_string(),
            cols.iter().map(|c| c.to_string()).collect(),
        ));
        self
    }

    /// The declared `(table, routing columns)` pairs, in declaration order
    /// (the durable layer serializes these into its coordinator checkpoint).
    pub fn entries(&self) -> impl Iterator<Item = (&str, &[String])> {
        self.entries.iter().map(|(t, c)| (t.as_str(), c.as_slice()))
    }
}

/// Resolved routing for one table.
#[derive(Debug, Clone)]
struct TableRouting {
    /// Routing column names (for view-alignment checks).
    col_names: Vec<String>,
    /// Routing column indexes into the table's rows.
    cols: Vec<usize>,
    /// Position of each routing column inside the table's `key_cols` order —
    /// extracts routing values from a delete key without touching the row.
    key_pos: Vec<usize>,
}

/// Resolve and validate `routing` against a catalog's schema: every table
/// must have a declaration, and routing columns must exist and be a subset
/// of the table's unique key (equal keys must route identically or
/// shard-local unique enforcement would be unsound globally).
fn resolve_routing(
    catalog: &Catalog,
    routing: &RoutingSpec,
) -> Result<BTreeMap<String, TableRouting>> {
    let mut resolved: BTreeMap<String, TableRouting> = BTreeMap::new();
    for t in catalog.tables() {
        let (_, names) = routing
            .entries
            .iter()
            .find(|(n, _)| n == t.name())
            .ok_or_else(|| CoreError::InvalidView {
                view: "<sharding>".to_string(),
                detail: format!("table {} has no routing declaration", t.name()),
            })?;
        if names.is_empty() {
            return Err(CoreError::InvalidView {
                view: "<sharding>".to_string(),
                detail: format!("table {} declares no routing columns", t.name()),
            });
        }
        let schema = t.schema();
        let mut cols = Vec::with_capacity(names.len());
        let mut key_pos = Vec::with_capacity(names.len());
        for c in names {
            let idx = schema
                .index_of(t.name(), c)
                .map_err(|_| StorageError::UnknownColumn {
                    table: t.name().to_string(),
                    column: c.clone(),
                })?;
            let pos = t.key_cols().iter().position(|&k| k == idx).ok_or_else(|| {
                CoreError::InvalidView {
                    view: "<sharding>".to_string(),
                    detail: format!(
                        "routing column {}.{c} is not part of the unique key; \
                         equal keys could land on different shards",
                        t.name()
                    ),
                }
            })?;
            cols.push(idx);
            key_pos.push(pos);
        }
        resolved.insert(
            t.name().to_string(),
            TableRouting {
                col_names: names.clone(),
                cols,
                key_pos,
            },
        );
    }
    Ok(resolved)
}

/// The hash-partitioned engine façade (see module docs).
#[derive(Debug)]
pub struct ShardedDatabase {
    shards: Vec<Database>,
    router: ShardRouter,
    routing: BTreeMap<String, TableRouting>,
    /// Names of created views, in creation order.
    views: Vec<String>,
    /// Global commit LSN — every shard's registry is published at this.
    commit_lsn: Lsn,
    /// Enforce FK constraints across shards (mirrors
    /// [`Catalog::enforce_constraints`]; per-shard catalogs always run with
    /// enforcement off because the façade checks globally).
    pub enforce_constraints: bool,
    /// Fan per-shard maintenance out on scoped worker threads. Results are
    /// merged in shard order either way, so this never changes any state —
    /// the differential suites run both settings.
    pub parallel_shards: bool,
}

impl ShardedDatabase {
    /// Partition `template` into `shards` shards under `routing`.
    ///
    /// The template's schema (tables, keys, secondary FK indexes, flags) is
    /// replicated into every shard and its rows are routed to their owners.
    /// Every table must have a routing entry whose columns are a subset of
    /// the table's unique key.
    pub fn new(template: &Catalog, shards: usize, routing: RoutingSpec) -> Result<Self> {
        if shards == 0 {
            return Err(CoreError::InvalidView {
                view: "<sharding>".to_string(),
                detail: "shard count must be at least 1".to_string(),
            });
        }
        let router = ShardRouter::new(shards);
        let resolved = resolve_routing(template, &routing)?;
        // Replicate the schema into per-shard catalogs and route the
        // template's rows to their owners. Shard catalogs never enforce
        // constraints themselves — children need not be colocated with the
        // parents they reference, so the façade checks globally instead.
        let mut shard_dbs = Vec::with_capacity(shards);
        for _ in 0..shards {
            let mut c = Catalog::new();
            for t in template.tables() {
                let key_names: Vec<&str> = t
                    .key_cols()
                    .iter()
                    .map(|&k| t.schema().columns()[k].name.as_str())
                    .collect();
                c.create_table(t.name(), t.schema().columns().to_vec(), &key_names)?;
            }
            for fk in template.foreign_keys() {
                let child = template.table(&fk.child)?;
                let child_cols: Vec<&str> = fk
                    .child_cols
                    .iter()
                    .map(|&i| child.schema().columns()[i].name.as_str())
                    .collect();
                c.add_foreign_key(&fk.name, &fk.child, &child_cols, &fk.parent)?;
                let mirrored = c
                    .foreign_keys_mut()
                    .last_mut()
                    .expect("foreign key was just added");
                mirrored.cascade_delete = fk.cascade_delete;
                mirrored.deferrable = fk.deferrable;
            }
            c.enforce_constraints = false;
            shard_dbs.push(Database::new(c));
        }
        for t in template.tables() {
            let tr = &resolved[t.name()];
            let mut parts: Vec<Vec<Row>> = vec![Vec::new(); shards];
            for r in t.iter_refs() {
                parts[router.route_ref(r, &tr.cols).index()].push(r.to_row());
            }
            for (db, rows) in shard_dbs.iter_mut().zip(parts) {
                if !rows.is_empty() {
                    db.apply_insert(t.name(), rows)?;
                }
            }
        }
        Ok(ShardedDatabase {
            shards: shard_dbs,
            router,
            routing: resolved,
            views: Vec::new(),
            commit_lsn: 0,
            enforce_constraints: template.enforce_constraints,
            parallel_shards: false,
        })
    }

    /// Reassemble a façade from recovered per-shard databases (the durable
    /// layer restores each shard from its own checkpoint + WAL tail). The
    /// shards must share one schema and one view list; `routing` is
    /// re-resolved against it, re-running the key-alignment validation.
    pub(crate) fn from_recovered(
        shards: Vec<Database>,
        routing: &RoutingSpec,
        enforce_constraints: bool,
        commit_lsn: Lsn,
    ) -> Result<Self> {
        assert!(!shards.is_empty(), "recovered shard set cannot be empty");
        let resolved = resolve_routing(shards[0].catalog(), routing)?;
        let views = shards[0]
            .views()
            .map(|v| v.name().to_string())
            .collect::<Vec<_>>();
        let router = ShardRouter::new(shards.len());
        Ok(ShardedDatabase {
            shards,
            router,
            routing: resolved,
            views,
            commit_lsn,
            enforce_constraints,
            parallel_shards: false,
        })
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The routing declarations this façade was built with, reconstructed
    /// (table-name order) — the durable layer persists these.
    pub fn routing_spec(&self) -> RoutingSpec {
        let mut spec = RoutingSpec::new();
        for (table, tr) in &self.routing {
            let cols: Vec<&str> = tr.col_names.iter().map(String::as_str).collect();
            spec = spec.table(table, &cols);
        }
        spec
    }

    /// Read-only access to one shard (benches and tests introspect through
    /// this; all mutation flows through the façade).
    pub fn shard(&self, id: ShardId) -> &Database {
        &self.shards[id.index()]
    }

    /// The shards in shard order (read-only).
    pub fn shards(&self) -> impl Iterator<Item = &Database> {
        self.shards.iter()
    }

    /// The owner shard of a `table` row.
    pub fn shard_of_row(&self, table: &str, row: &[Datum]) -> Result<ShardId> {
        let tr = self.table_routing(table)?;
        Ok(self.router.route(row, &tr.cols))
    }

    /// Global commit LSN — every shard's registry has published up to this.
    pub fn commit_lsn(&self) -> Lsn {
        self.commit_lsn
    }

    /// Apply `policy` to every shard.
    pub fn set_policy(&mut self, policy: MaintenancePolicy) {
        for s in &mut self.shards {
            s.policy = policy;
        }
    }

    fn table_routing(&self, table: &str) -> Result<&TableRouting> {
        self.routing.get(table).ok_or_else(|| {
            CoreError::Storage(StorageError::UnknownTable {
                name: table.to_string(),
            })
        })
    }

    /// Create an outer-join view on every shard, after checking that the
    /// view is **routing-aligned**: the routing columns of all referenced
    /// tables must be pairwise connected through the view's equijoin atoms.
    /// Misaligned views are rejected — their joins would cross shards.
    pub fn create_view(&mut self, def: ViewDef) -> Result<()> {
        self.check_alignment(&def)?;
        for s in &mut self.shards {
            s.create_view(def.clone())?;
        }
        self.views.push(def.name().to_string());
        Ok(())
    }

    /// Create a view from SQL (see [`crate::parser`]) on every shard.
    pub fn create_view_sql(&mut self, name: &str, sql: &str) -> Result<()> {
        let def = crate::parser::parse_view(self.shards[0].catalog(), name, sql)?;
        self.create_view(def)
    }

    /// Drop a view from every shard.
    pub fn drop_view(&mut self, name: &str) -> Result<()> {
        for s in &mut self.shards {
            s.drop_view(name)?;
        }
        self.views.retain(|v| v != name);
        Ok(())
    }

    /// Created view names, in creation order.
    pub fn view_names(&self) -> &[String] {
        &self.views
    }

    /// Total stored rows of a view across all shards.
    pub fn view_len(&self, name: &str) -> Result<usize> {
        let mut n = 0;
        for s in &self.shards {
            n += s
                .view(name)
                .ok_or_else(|| CoreError::UnknownView {
                    view: name.to_string(),
                })?
                .len();
        }
        Ok(n)
    }

    /// The view's merged output: shard outputs concatenated in shard order
    /// (bag semantics — canonical comparisons go through
    /// [`ShardedDatabase::state_bytes`]).
    pub fn output(&self, name: &str) -> Result<Relation> {
        let mut merged: Option<Relation> = None;
        for s in &self.shards {
            let v = s.view(name).ok_or_else(|| CoreError::UnknownView {
                view: name.to_string(),
            })?;
            let part = v.output()?;
            merged = Some(match merged {
                None => part,
                Some(acc) => {
                    let schema = acc.schema().clone();
                    let mut rows = acc.into_rows();
                    rows.extend(part.into_rows());
                    Relation::new(schema, rows)
                }
            });
        }
        merged.ok_or_else(|| CoreError::UnknownView {
            view: name.to_string(),
        })
    }

    /// Insert rows into a base table: constraints are checked globally,
    /// rows route to their owner shards, per-shard maintenance runs, and
    /// all shards publish at one global commit LSN.
    pub fn insert(&mut self, table: &str, rows: Vec<Row>) -> Result<Vec<MaintenanceReport>> {
        let updates = self.apply_insert_routed(table, rows)?;
        self.maintain_and_publish(&updates)
    }

    /// Validate, route, and apply an insert batch to its owner shards
    /// *without* maintaining views — the durable layer logs the returned
    /// per-shard deltas before maintenance runs (WAL protocol). One entry
    /// per shard, `None` for untouched shards.
    pub(crate) fn apply_insert_routed(
        &mut self,
        table: &str,
        rows: Vec<Row>,
    ) -> Result<Vec<Option<Update>>> {
        let tr = self.table_routing(table)?.clone();
        let schema = self.shards[0].catalog().table(table)?.schema().clone();
        let key_cols = self.shards[0].catalog().table(table)?.key_cols().to_vec();
        // Canonicalize before anything else so validation, routing, and the
        // per-shard applied deltas all see the stored representation.
        let mut rows = rows;
        for row in &mut rows {
            schema.canonicalize_row(row);
        }
        // Global pre-validation: the per-shard appliers below must not fail,
        // or shards applied earlier would keep their half of the batch.
        let mut batch_keys: FxHashSet<Vec<Datum>> = FxHashSet::default();
        for row in &rows {
            schema.check_row(row).map_err(StorageError::Rel)?;
            let key = key_of(row, &key_cols);
            if key.iter().any(Datum::is_null) {
                return Err(CoreError::Storage(StorageError::NullInKey {
                    table: table.to_string(),
                }));
            }
            let owner = self.router.route(row, &tr.cols);
            if self.shards[owner.index()]
                .catalog()
                .table(table)?
                .contains_key(&key)
                || !batch_keys.insert(key.clone())
            {
                return Err(CoreError::Storage(StorageError::DuplicateKey {
                    table: table.to_string(),
                    key: ojv_rel::row_display(&key),
                }));
            }
        }
        if self.enforce_constraints {
            self.check_fk_parents(table, &rows)?;
        }
        // Route and apply per owner shard.
        let mut parts: Vec<Vec<Row>> = vec![Vec::new(); self.shards.len()];
        for row in rows {
            let owner = self.router.route(&row, &tr.cols);
            parts[owner.index()].push(row);
        }
        let mut updates: Vec<Option<Update>> = Vec::with_capacity(self.shards.len());
        for (db, part) in self.shards.iter_mut().zip(parts) {
            updates.push(if part.is_empty() {
                None
            } else {
                Some(db.apply_insert(table, part)?)
            });
        }
        Ok(updates)
    }

    /// Delete rows by unique key (checked and routed like
    /// [`ShardedDatabase::insert`]).
    pub fn delete(&mut self, table: &str, keys: &[Vec<Datum>]) -> Result<Vec<MaintenanceReport>> {
        let updates = self.apply_delete_routed(table, keys)?;
        self.maintain_and_publish(&updates)
    }

    /// Validate, route, and apply a delete batch to its owner shards
    /// *without* maintaining views (see
    /// [`ShardedDatabase::apply_insert_routed`]).
    pub(crate) fn apply_delete_routed(
        &mut self,
        table: &str,
        keys: &[Vec<Datum>],
    ) -> Result<Vec<Option<Update>>> {
        let tr = self.table_routing(table)?.clone();
        // Global pre-validation: every key must exist on its owner shard,
        // and no child row anywhere may still reference a deleted parent.
        let mut owners = Vec::with_capacity(keys.len());
        for key in keys {
            let routed: Vec<Datum> = tr.key_pos.iter().map(|&p| key[p].clone()).collect();
            let owner = self.router.route_key(&routed);
            if !self.shards[owner.index()]
                .catalog()
                .table(table)?
                .contains_key(key)
            {
                return Err(CoreError::Storage(StorageError::KeyNotFound {
                    table: table.to_string(),
                    key: ojv_rel::row_display(key),
                }));
            }
            if self.enforce_constraints {
                for s in &self.shards {
                    if let Some(fk) = s.catalog().fk_restricting(table, key)? {
                        return Err(CoreError::Storage(StorageError::ForeignKeyViolation {
                            constraint: fk.name.clone(),
                            detail: format!(
                                "rows in {} still reference {table} key {}",
                                fk.child,
                                ojv_rel::row_display(key)
                            ),
                        }));
                    }
                }
            }
            owners.push(owner);
        }
        let mut parts: Vec<Vec<Vec<Datum>>> = vec![Vec::new(); self.shards.len()];
        for (key, owner) in keys.iter().zip(owners) {
            parts[owner.index()].push(key.clone());
        }
        let mut updates: Vec<Option<Update>> = Vec::with_capacity(self.shards.len());
        for (db, part) in self.shards.iter_mut().zip(parts) {
            updates.push(if part.is_empty() {
                None
            } else {
                Some(db.apply_delete(table, &part)?)
            });
        }
        Ok(updates)
    }

    /// SQL-style `UPDATE` (delete + insert, §3): the §6 FK fast paths are
    /// disabled for the pair, exactly like [`Database::update`]. Commits
    /// twice (one global LSN per half).
    pub fn update(
        &mut self,
        table: &str,
        keys: &[Vec<Datum>],
        new_rows: Vec<Row>,
    ) -> Result<Vec<MaintenanceReport>> {
        let saved: Vec<MaintenancePolicy> = self.shards.iter().map(|s| s.policy).collect();
        for s in &mut self.shards {
            s.policy.update_decomposition = true;
        }
        let result = (|| {
            let mut reports = self.delete(table, keys)?;
            reports.extend(self.insert(table, new_rows)?);
            Ok(reports)
        })();
        for (s, p) in self.shards.iter_mut().zip(saved) {
            s.policy = p;
        }
        result
    }

    /// Run per-shard maintenance for the routed updates and publish every
    /// shard's registry at one global commit LSN. Untouched shards publish
    /// an empty commit, so all registries advance in lockstep and
    /// [`ShardedDatabase::snapshot`] can pin them at the same LSN.
    fn maintain_and_publish(
        &mut self,
        updates: &[Option<Update>],
    ) -> Result<Vec<MaintenanceReport>> {
        self.maintain_and_publish_at(updates, self.commit_lsn + 1)
    }

    /// [`ShardedDatabase::maintain_and_publish`] at an explicit global LSN —
    /// the durable layer stamps commits with coordinator WAL LSNs.
    pub(crate) fn maintain_and_publish_at(
        &mut self,
        updates: &[Option<Update>],
        lsn: Lsn,
    ) -> Result<Vec<MaintenanceReport>> {
        let results: Vec<Option<Result<Vec<MaintenanceReport>>>> = if self.parallel_shards {
            // Shards own their stores outright: workers share nothing and
            // acquire no locks (registry publication stays on this thread,
            // below). Bounded by the shard count; each worker's own
            // maintenance fans out further on the batch pool when the
            // shard's policy asks for it.
            crate::trace::publish("core.shard.spawn");
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter_mut()
                    .zip(updates)
                    .enumerate()
                    .map(|(i, (db, up))| {
                        scope.spawn(move || {
                            if crate::trace::active() {
                                crate::trace::register_thread(&format!("shard-worker-{i}"));
                            }
                            crate::trace::observe("core.shard.spawn");
                            let out = up.as_ref().map(|u| db.maintain_views_only(u));
                            crate::trace::publish("core.shard.join");
                            out
                        })
                    })
                    .collect();
                let joined: Vec<_> = handles
                    .into_iter()
                    .map(|h| h.join().expect("shard maintenance worker panicked"))
                    .collect();
                // All workers joined: pull their published clocks before the
                // coordinator publishes registries and merges reports here.
                crate::trace::observe("core.shard.join");
                crate::trace::on_write("core.shard.merge");
                joined
            })
        } else {
            self.shards
                .iter_mut()
                .zip(updates)
                .map(|(db, up)| up.as_ref().map(|u| db.maintain_views_only(u)))
                .collect()
        };
        // Coordinator-side group publish: every shard commits at `lsn`.
        let mut publish_err = None;
        for db in &mut self.shards {
            if let Err(e) = db.publish_commit(lsn) {
                publish_err.get_or_insert(e);
            }
        }
        self.commit_lsn = lsn;
        // Deterministic shard-order merge of the per-shard reports.
        let mut reports = Vec::new();
        for r in results.into_iter().flatten() {
            reports.extend(r?);
        }
        match publish_err {
            Some(e) => Err(e),
            None => Ok(reports),
        }
    }

    fn check_fk_parents(&self, table: &str, rows: &[Row]) -> Result<()> {
        let catalog = self.shards[0].catalog();
        for fk in catalog.fks_from(table) {
            for row in rows {
                let fkv = key_of(row, &fk.child_cols);
                if fkv.iter().any(Datum::is_null) {
                    continue; // SQL semantics: null FK values are not checked
                }
                let exists = self.shards.iter().any(|s| {
                    s.catalog()
                        .table(&fk.parent)
                        .is_ok_and(|t| t.contains_key(&fkv))
                });
                if !exists {
                    return Err(CoreError::Storage(StorageError::ForeignKeyViolation {
                        constraint: fk.name.clone(),
                        detail: format!(
                            "no {} row with key {}",
                            fk.parent,
                            ojv_rel::row_display(&fkv)
                        ),
                    }));
                }
            }
        }
        Ok(())
    }

    /// Pin a consistent cross-shard snapshot at the newest global LSN: one
    /// pinned [`Snapshot`] per shard, all at the same LSN.
    pub fn snapshot(&self) -> Result<ShardedSnapshot> {
        self.snapshot_at(self.commit_lsn)
    }

    /// Pin a consistent cross-shard snapshot as of global LSN `lsn`.
    pub fn snapshot_at(&self, lsn: Lsn) -> Result<ShardedSnapshot> {
        let parts = self
            .shards
            .iter()
            .map(|s| s.snapshot_at(lsn))
            .collect::<Result<Vec<Snapshot>>>()?;
        Ok(ShardedSnapshot { lsn, parts })
    }

    /// Canonical encoding of the full logical state: global LSN, every
    /// table's rows (sorted by encoded bytes, merged across shards), and
    /// every view's rows plus count indexes (merged by key). Two façades
    /// with the same logical content are byte-equal regardless of shard
    /// count — N-shard == 1-shard == recomputed twin.
    pub fn state_bytes(&self) -> Result<Vec<u8>> {
        let fit = |n: usize, what: &str| -> Result<u32> {
            u32::try_from(n).map_err(|_| CoreError::InvalidView {
                view: "<sharding>".to_string(),
                detail: format!("{what} of {n} exceeds u32 framing"),
            })
        };
        let mut buf = Vec::new();
        put_u64(&mut buf, self.commit_lsn);
        // Base tables, sorted by name, rows merged + sorted canonically.
        let mut table_names: Vec<String> = self.shards[0]
            .catalog()
            .tables()
            .map(|t| t.name().to_string())
            .collect();
        table_names.sort_unstable();
        put_u32(&mut buf, fit(table_names.len(), "table count")?);
        for name in &table_names {
            put_str(&mut buf, name).map_err(CoreError::Rel)?;
            let mut encoded: Vec<Vec<u8>> = Vec::new();
            for s in &self.shards {
                for row in s.catalog().table(name)?.iter_rows() {
                    let mut e = Vec::new();
                    put_row(&mut e, &row).map_err(CoreError::Rel)?;
                    encoded.push(e);
                }
            }
            encoded.sort_unstable();
            put_u32(&mut buf, fit(encoded.len(), "row count")?);
            for e in encoded {
                buf.extend_from_slice(&e);
            }
        }
        // Views, sorted by name.
        let mut view_names = self.views.clone();
        view_names.sort_unstable();
        put_u32(&mut buf, fit(view_names.len(), "view count")?);
        for name in &view_names {
            put_str(&mut buf, name).map_err(CoreError::Rel)?;
            let stores: Vec<&crate::materialize::ViewStore> = self
                .shards
                .iter()
                .map(|s| {
                    s.view(name)
                        .map(|v| v.store())
                        .ok_or_else(|| CoreError::UnknownView { view: name.clone() })
                })
                .collect::<Result<_>>()?;
            encode_merged_stores(&mut buf, &stores)?;
        }
        Ok(buf)
    }

    /// Reject views whose joins would cross shards: every referenced
    /// table's routing columns must be pairwise connected to the first
    /// table's through the view's equijoin atoms.
    fn check_alignment(&self, def: &ViewDef) -> Result<()> {
        let tables = def.expr().tables();
        let mut atoms = Vec::new();
        collect_eq_atoms(def.expr(), &mut atoms);
        let mut uf = UnionFind::default();
        for (a, b) in &atoms {
            uf.union(a, b);
        }
        let first = &tables[0];
        let first_routing = self.table_routing(first)?;
        for t in tables.iter().skip(1) {
            let tr = self.table_routing(t)?;
            if tr.col_names.len() != first_routing.col_names.len() {
                return Err(misaligned(
                    def.name(),
                    format!(
                        "{t} routes by {} column(s) but {first} routes by {}",
                        tr.col_names.len(),
                        first_routing.col_names.len()
                    ),
                ));
            }
            for (j, c) in tr.col_names.iter().enumerate() {
                let a = (first.clone(), first_routing.col_names[j].clone());
                let b = (t.clone(), c.clone());
                if !uf.connected(&a, &b) {
                    return Err(misaligned(
                        def.name(),
                        format!(
                            "routing column {t}.{c} is not connected to {first}.{} \
                             by the view's equijoin atoms; maintaining this view \
                             would require cross-shard joins",
                            first_routing.col_names[j]
                        ),
                    ));
                }
            }
        }
        Ok(())
    }
}

fn misaligned(view: &str, detail: String) -> CoreError {
    CoreError::InvalidView {
        view: view.to_string(),
        detail: format!("shard-misaligned: {detail}"),
    }
}

/// Canonical merged encoding of one view's per-shard stores: rows sorted by
/// encoded bytes; count indexes merged by key (index column sets are
/// identical across shards — every shard analyzed the same definition).
fn encode_merged_stores(
    buf: &mut Vec<u8>,
    stores: &[&crate::materialize::ViewStore],
) -> Result<()> {
    let fit = |n: usize, what: &str| -> Result<u32> {
        u32::try_from(n).map_err(|_| CoreError::InvalidView {
            view: "<sharding>".to_string(),
            detail: format!("{what} of {n} exceeds u32 framing"),
        })
    };
    let mut encoded: Vec<Vec<u8>> = Vec::new();
    for store in stores {
        for row in store.rows() {
            let mut e = Vec::new();
            put_row(&mut e, row).map_err(CoreError::Rel)?;
            encoded.push(e);
        }
    }
    encoded.sort_unstable();
    put_u32(buf, fit(encoded.len(), "view row count")?);
    for e in encoded {
        buf.extend_from_slice(&e);
    }
    // Merge count indexes by column set, in the first store's order.
    let first_snapshot = stores[0].count_index_snapshot();
    put_u32(buf, fit(first_snapshot.len(), "index count")?);
    for (cols, _) in &first_snapshot {
        let mut merged: BTreeMap<Vec<Datum>, usize> = BTreeMap::new();
        for store in stores {
            for (c, entries) in store.count_index_snapshot() {
                if &c == cols {
                    for (key, count) in entries {
                        *merged.entry(key).or_insert(0) += count;
                    }
                }
            }
        }
        put_u32(buf, fit(cols.len(), "index column count")?);
        for &c in cols {
            put_u32(buf, fit(c, "index column")?);
        }
        put_u32(buf, fit(merged.len(), "index entry count")?);
        for (key, count) in merged {
            put_row(buf, &key).map_err(CoreError::Rel)?;
            put_u64(buf, count as u64); // lint:allow(cast) — usize widens into u64 on 64-bit
        }
    }
    Ok(())
}

/// A pinned cross-shard snapshot: one [`Snapshot`] per shard, all at the
/// same global LSN. Holding it pins every shard's version chains.
#[derive(Debug)]
pub struct ShardedSnapshot {
    lsn: Lsn,
    parts: Vec<Snapshot>,
}

impl ShardedSnapshot {
    pub fn lsn(&self) -> Lsn {
        self.lsn
    }

    /// The per-shard pinned snapshots, in shard order.
    pub fn parts(&self) -> &[Snapshot] {
        &self.parts
    }

    /// Total rows of a view across all shards, as of this snapshot.
    pub fn view_len(&self, name: &str) -> usize {
        self.parts
            .iter()
            .filter_map(|p| p.view(name))
            .map(|v| v.len())
            .sum()
    }

    /// Canonical encoding of every view image across shards (same shape as
    /// [`ShardedDatabase::state_bytes`]'s view section): two cross-shard
    /// snapshots of identical logical content are byte-equal regardless of
    /// shard count.
    pub fn state_bytes(&self) -> Result<Vec<u8>> {
        let mut buf = Vec::new();
        put_u64(&mut buf, self.lsn);
        let mut names: Vec<&str> = self
            .parts
            .first()
            .map(|p| p.views().map(|v| v.name()).collect())
            .unwrap_or_default();
        names.sort_unstable();
        let n = u32::try_from(names.len()).map_err(|_| CoreError::InvalidView {
            view: "<sharded-snapshot>".to_string(),
            detail: "view count exceeds u32 framing".to_string(),
        })?;
        put_u32(&mut buf, n);
        for name in names {
            put_str(&mut buf, name).map_err(CoreError::Rel)?;
            let stores: Vec<&crate::materialize::ViewStore> = self
                .parts
                .iter()
                .filter_map(|p| p.view(name))
                .map(|v| v.store())
                .collect();
            encode_merged_stores(&mut buf, &stores)?;
        }
        Ok(buf)
    }
}

/// A `(table, column)` name pair, as equality atoms name columns.
type NamedCol = (String, String);

/// Equality atoms of the whole view expression, as `(table, col)` pairs.
fn collect_eq_atoms(expr: &ViewExpr, out: &mut Vec<(NamedCol, NamedCol)>) {
    let grab = |atoms: &[NamedAtom], out: &mut Vec<(NamedCol, NamedCol)>| {
        for a in atoms {
            if let NamedAtom::Cols {
                left,
                op: ojv_algebra::CmpOp::Eq,
                right,
            } = a
            {
                out.push((left.clone(), right.clone()));
            }
        }
    };
    match expr {
        ViewExpr::Table(_) => {}
        ViewExpr::Select(atoms, input) => {
            grab(atoms, out);
            collect_eq_atoms(input, out);
        }
        ViewExpr::Join(_, atoms, l, r) => {
            grab(atoms, out);
            collect_eq_atoms(l, out);
            collect_eq_atoms(r, out);
        }
    }
}

/// Union-find over `(table, column)` name pairs — the equivalence closure of
/// the view's equijoin atoms.
#[derive(Default)]
struct UnionFind {
    ids: BTreeMap<(String, String), usize>,
    parent: Vec<usize>,
}

impl UnionFind {
    fn id(&mut self, key: &(String, String)) -> usize {
        if let Some(&i) = self.ids.get(key) {
            return i;
        }
        let i = self.parent.len();
        self.ids.insert(key.clone(), i);
        self.parent.push(i);
        i
    }

    fn find(&mut self, mut i: usize) -> usize {
        while self.parent[i] != i {
            self.parent[i] = self.parent[self.parent[i]];
            i = self.parent[i];
        }
        i
    }

    fn union(&mut self, a: &(String, String), b: &(String, String)) {
        let (ia, ib) = (self.id(a), self.id(b));
        let (ra, rb) = (self.find(ia), self.find(ib));
        self.parent[ra] = rb;
    }

    fn connected(&mut self, a: &(String, String), b: &(String, String)) -> bool {
        a == b || {
            let (ia, ib) = (self.id(a), self.id(b));
            self.find(ia) == self.find(ib)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::*;
    use crate::maintain::verify_against_recompute;

    /// Example-1 routing aligned on the part⟷lineitem join: part by
    /// p_partkey, lineitem by l_partkey… which is NOT part of lineitem's
    /// key. The alignable family for example 1 is orders⟕lineitem on
    /// orderkey, so most tests use the two-table view below.
    fn orderkey_routing() -> RoutingSpec {
        RoutingSpec::new()
            .table("part", &["p_partkey"])
            .table("orders", &["o_orderkey"])
            .table("lineitem", &["l_orderkey"])
    }

    /// orders ⟕ lineitem ON l_orderkey = o_orderkey: every table routes by
    /// the join key, so the view is alignable at any shard count.
    fn ol_view_def() -> ViewDef {
        ViewDef::new(
            "ol_view",
            ViewExpr::left_outer(
                vec![crate::view_def::col_eq(
                    "orders",
                    "o_orderkey",
                    "lineitem",
                    "l_orderkey",
                )],
                ViewExpr::table("orders"),
                ViewExpr::table("lineitem"),
            ),
        )
    }

    fn sharded(n: usize) -> ShardedDatabase {
        let mut c = example1_catalog();
        populate_example1(&mut c, 8, 9);
        let mut db = ShardedDatabase::new(&c, n, orderkey_routing()).unwrap();
        db.create_view(ol_view_def()).unwrap();
        db
    }

    #[test]
    fn single_shard_facade_matches_plain_database() {
        let mut c = example1_catalog();
        populate_example1(&mut c, 8, 9);
        let mut plain = Database::new(c.clone());
        plain.create_view(ol_view_def()).unwrap();
        let mut sharded = ShardedDatabase::new(&c, 1, orderkey_routing()).unwrap();
        sharded.create_view(ol_view_def()).unwrap();
        let row = lineitem_row(3, 7, 2, 4, 42.0);
        plain.insert("lineitem", vec![row.clone()]).unwrap();
        sharded.insert("lineitem", vec![row]).unwrap();
        assert_eq!(
            plain.view("ol_view").unwrap().len(),
            sharded.view_len("ol_view").unwrap()
        );
        assert!(plain
            .view("ol_view")
            .unwrap()
            .output()
            .unwrap()
            .bag_eq(&sharded.output("ol_view").unwrap()));
    }

    #[test]
    fn n_shard_state_bytes_match_one_shard() {
        for n in [2usize, 3, 8] {
            let mut one = sharded(1);
            let mut many = sharded(n);
            many.parallel_shards = true;
            for (ok, ln) in [(3i64, 7i64), (5, 7), (6, 8)] {
                let row = lineitem_row(ok, ln, 2, 4, 42.0);
                one.insert("lineitem", vec![row.clone()]).unwrap();
                many.insert("lineitem", vec![row]).unwrap();
            }
            one.delete("lineitem", &[vec![Datum::Int(3), Datum::Int(7)]])
                .unwrap();
            many.delete("lineitem", &[vec![Datum::Int(3), Datum::Int(7)]])
                .unwrap();
            assert_eq!(
                one.state_bytes().unwrap(),
                many.state_bytes().unwrap(),
                "{n}-shard façade diverged from 1-shard"
            );
        }
    }

    #[test]
    fn every_shard_view_verifies_against_its_own_recompute() {
        let mut db = sharded(4);
        db.insert("lineitem", vec![lineitem_row(3, 7, 2, 4, 1.0)])
            .unwrap();
        db.delete("lineitem", &[vec![Datum::Int(3), Datum::Int(7)]])
            .unwrap();
        for s in db.shards() {
            assert!(verify_against_recompute(
                s.view("ol_view").unwrap(),
                s.catalog()
            ));
        }
    }

    #[test]
    fn misaligned_view_is_rejected() {
        let mut c = example1_catalog();
        populate_example1(&mut c, 4, 4);
        let mut db = ShardedDatabase::new(&c, 4, orderkey_routing()).unwrap();
        // oj_view joins part⟷lineitem on p_partkey = l_partkey, but
        // lineitem routes by l_orderkey: misaligned, must be rejected.
        let err = db.create_view(oj_view_def()).unwrap_err();
        match err {
            CoreError::InvalidView { detail, .. } => {
                assert!(detail.contains("shard-misaligned"), "{detail}")
            }
            other => panic!("expected InvalidView, got {other:?}"),
        }
        // …but it IS accepted when every table routes by the partkey class.
        let mut db = ShardedDatabase::new(
            &c,
            4,
            RoutingSpec::new()
                .table("part", &["p_partkey"])
                .table("orders", &["o_orderkey"])
                .table("lineitem", &["l_orderkey"]),
        )
        .unwrap();
        assert!(db.create_view(ol_view_def()).is_ok());
    }

    #[test]
    fn routing_must_be_key_aligned() {
        let c = example1_catalog();
        // lineitem routed by l_partkey (not in its key) must be rejected:
        // two rows with the same (orderkey, linenumber) key but different
        // partkeys would land on different shards.
        let err = ShardedDatabase::new(
            &c,
            2,
            RoutingSpec::new()
                .table("part", &["p_partkey"])
                .table("orders", &["o_orderkey"])
                .table("lineitem", &["l_partkey"]),
        )
        .unwrap_err();
        match err {
            CoreError::InvalidView { detail, .. } => {
                assert!(detail.contains("not part of the unique key"), "{detail}")
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn cross_shard_constraints_enforced() {
        let mut db = sharded(4);
        // Unique keys are global: re-inserting an existing lineitem fails
        // even when the duplicate would land on a different shard than the
        // probe (routing is key-aligned, so it cannot).
        let err = db.insert("lineitem", vec![lineitem_row(2, 1, 1, 1, 1.0)]);
        assert!(matches!(
            err,
            Err(CoreError::Storage(StorageError::DuplicateKey { .. }))
        ));
        // FK parents are checked across shards: order 999 exists nowhere.
        let err = db.insert("lineitem", vec![lineitem_row(999, 1, 1, 1, 1.0)]);
        assert!(matches!(
            err,
            Err(CoreError::Storage(StorageError::ForeignKeyViolation { .. }))
        ));
        // FK restrict on delete: order 2 still has lineitems (on possibly
        // other shards than the order row itself). Order 3 is orphaned by
        // the fixture, so deleting it must succeed afterwards.
        let err = db.delete("orders", &[vec![Datum::Int(2)]]);
        assert!(matches!(
            err,
            Err(CoreError::Storage(StorageError::ForeignKeyViolation { .. }))
        ));
        // Deleting a missing key reports KeyNotFound before touching state.
        let err = db.delete("lineitem", &[vec![Datum::Int(777), Datum::Int(1)]]);
        assert!(matches!(
            err,
            Err(CoreError::Storage(StorageError::KeyNotFound { .. }))
        ));
        // Childless parents delete cleanly.
        db.delete("orders", &[vec![Datum::Int(3)]]).unwrap();
    }

    #[test]
    fn snapshots_pin_all_shards_at_one_lsn() {
        let mut db = sharded(3);
        db.insert("lineitem", vec![lineitem_row(3, 7, 2, 4, 1.0)])
            .unwrap();
        let snap1 = db.snapshot().unwrap();
        assert_eq!(snap1.lsn(), 1);
        assert!(snap1.parts().iter().all(|p| p.lsn() == 1));
        let before = snap1.view_len("ol_view");
        db.insert("lineitem", vec![lineitem_row(5, 9, 2, 4, 1.0)])
            .unwrap();
        // The pinned snapshot still reads the old version on every shard.
        assert_eq!(snap1.view_len("ol_view"), before);
        let snap2 = db.snapshot().unwrap();
        assert_eq!(snap2.lsn(), 2);
        assert_eq!(snap2.view_len("ol_view"), before + 1);
        // Historical pin at LSN 1 matches the still-held snap1, byte for
        // byte, across shard counts.
        let historic = db.snapshot_at(1).unwrap();
        assert_eq!(
            historic.state_bytes().unwrap(),
            snap1.state_bytes().unwrap()
        );
    }

    #[test]
    fn updates_route_and_decompose() {
        let mut one = sharded(1);
        let mut many = sharded(8);
        for db in [&mut one, &mut many] {
            db.update(
                "lineitem",
                &[vec![Datum::Int(2), Datum::Int(1)]],
                vec![lineitem_row(2, 1, 3, 99, 1.0)],
            )
            .unwrap();
        }
        assert_eq!(one.state_bytes().unwrap(), many.state_bytes().unwrap());
        // Policy restored afterwards.
        assert!(many.shards().all(|s| !s.policy.update_decomposition));
    }
}
