//! Baselines the paper compares against.
//!
//! * [`maintain_recompute`] — recompute the view from scratch and diff; the
//!   correctness oracle and an upper-bound baseline.
//! * [`maintain_gk`] — a Griffin–Kumar-style change-propagation baseline
//!   (reference \[2\] in the paper). It is faithful to the three cost characteristics
//!   the paper attributes to GK (§8): (a) delta and fix-up expressions join
//!   **base tables only**, with no index-aware left-deep plans, so
//!   intermediate results scale with the database rather than the delta;
//!   (b) the maintained view itself is never consulted; (c) no
//!   null-rejection or foreign-key reasoning prunes unaffected terms, so
//!   (empty) deltas are computed for every term of the *unpruned* normal
//!   form.

use std::time::Instant;

use ojv_algebra::{
    normalize_unpruned, Atom, Expr, Pred, SubsumptionGraph, TableId, TableSet, Term,
};
use ojv_exec::{eval_expr, DeltaInput, ExecCtx};
use ojv_rel::{key_of, Datum, FxHashSet, Row};
use ojv_storage::{Catalog, Update, UpdateOp};

use crate::error::Result;
use crate::maintain::MaintenanceReport;
use crate::materialize::MaterializedView;
use crate::policy::MaintenancePolicy;

/// Recompute the view from scratch, diff against the stored contents by
/// view key, and apply the difference.
pub fn maintain_recompute(
    view: &mut MaterializedView,
    catalog: &Catalog,
    update: &Update,
    policy: &MaintenancePolicy,
) -> Result<MaintenanceReport> {
    let mut report = MaintenanceReport {
        view: view.name().to_string(),
        table: update.table.clone(),
        update_rows: update.rows.len(),
        ..Default::default()
    };
    let start = Instant::now();
    let ctx = ExecCtx::new(catalog, &view.analysis.layout).with_parallel(policy.parallel);
    let fresh = eval_expr(&ctx, &view.analysis.expr)?;
    report.primary_compute = start.elapsed();

    let start = Instant::now();
    let name = view.name().to_string();
    let fresh_keys: FxHashSet<Vec<Datum>> =
        fresh.iter().map(|r| view.store().key_of_row(r)).collect();
    let stale: Vec<Vec<Datum>> = view
        .wide_rows()
        .iter()
        .map(|r| view.store().key_of_row(r))
        .filter(|k| !fresh_keys.contains(k))
        .collect();
    for key in stale {
        view.store_mut().delete(&key, &name)?;
        report.secondary_rows += 1;
    }
    for row in fresh {
        let key = view.store().key_of_row(&row);
        if !view.store().contains(&key) {
            view.store_mut().insert(row, &name)?;
            report.primary_rows += 1;
        }
    }
    report.primary_apply = start.elapsed();
    Ok(report)
}

/// Griffin–Kumar-style maintenance: per-term change propagation computed
/// from base tables only.
pub fn maintain_gk(
    view: &mut MaterializedView,
    catalog: &Catalog,
    update: &Update,
    policy: &MaintenancePolicy,
) -> Result<MaintenanceReport> {
    let mut report = MaintenanceReport {
        view: view.name().to_string(),
        table: update.table.clone(),
        update_rows: update.rows.len(),
        ..Default::default()
    };
    let Some(t) = view.analysis.layout.table_id(&update.table) else {
        report.noop = true;
        return Ok(report);
    };
    // GK works over the unpruned normal form: no FK or null-rejection
    // shortcuts (cost characteristic (c)).
    let terms = normalize_unpruned(&view.analysis.expr);
    let graph = SubsumptionGraph::new(terms.clone());
    // Cloned so the execution context can borrow it while the store mutates.
    let layout = view.analysis.layout.clone();

    let delta_input = DeltaInput {
        table: t,
        rows: &update.rows,
    };
    let mut exec =
        ExecCtx::with_delta(catalog, &layout, delta_input).with_parallel(policy.parallel);
    // Cost characteristic (a): no index-aware plans.
    exec.prefer_index_joins = false;

    let direct: Vec<usize> = (0..terms.len())
        .filter(|&i| terms[i].tables.contains(t))
        .collect();
    report.direct_terms = direct.len();

    // Phase 1: full per-term deltas ∆E_i for every direct term, computed
    // from base tables (hash joins over full scans).
    let start = Instant::now();
    let mut term_deltas: Vec<Option<Vec<Row>>> = vec![None; terms.len()];
    for &i in &direct {
        let expr = term_expr(&terms[i], t, TermLeaf::Delta);
        let rows = eval_expr(&exec, &expr)?;
        term_deltas[i] = Some(rows);
    }
    // Net deltas: a direct term's delta row is net unless a parent's delta
    // covers its key (parents of direct terms are direct).
    let name = view.name().to_string();
    let mut primary_rows = 0usize;
    for &i in &direct {
        let ti_keys = layout.term_key_cols(terms[i].tables);
        let mut covered: FxHashSet<Vec<Datum>> = FxHashSet::default();
        for &p in graph.parents(i) {
            if let Some(rows) = &term_deltas[p] {
                for r in rows {
                    covered.insert(key_of(r, &ti_keys));
                }
            }
        }
        let rows = term_deltas[i].as_ref().expect("computed above");
        for row in rows {
            if covered.contains(&key_of(row, &ti_keys)) {
                continue;
            }
            // Project onto the term's tables: ∆E_i rows may carry no other
            // slots by construction, but keep this defensive.
            let mut net = row.clone();
            layout.null_out(layout.all_tables().difference(terms[i].tables), &mut net);
            primary_rows += 1;
            match update.op {
                UpdateOp::Insert => {
                    view.store_mut().insert(net, &name)?;
                }
                UpdateOp::Delete => {
                    let key = view.store().key_of_row(&net);
                    view.store_mut().delete(&key, &name)?;
                }
            }
        }
    }
    report.primary_rows = primary_rows;
    report.primary_compute = start.elapsed();

    // Phase 2: orphan fix-ups for indirect terms, with orphan status decided
    // by recomputing parent term extents from base tables (cost
    // characteristic (b): the view is never consulted).
    let start = Instant::now();
    for i in 0..terms.len() {
        if terms[i].tables.contains(t) {
            continue;
        }
        let pard: Vec<usize> = graph
            .parents(i)
            .iter()
            .copied()
            .filter(|&p| terms[p].tables.contains(t))
            .collect();
        if pard.is_empty() {
            continue;
        }
        report.indirect_terms += 1;
        let ti = terms[i].tables;
        let ti_keys = layout.term_key_cols(ti);

        // Candidates: key projections of the direct parents' deltas.
        let mut candidates: Vec<Row> = Vec::new();
        let mut seen: FxHashSet<Vec<Datum>> = FxHashSet::default();
        for &p in &pard {
            for row in term_deltas[p].as_ref().expect("parents are direct") {
                let key = key_of(row, &ti_keys);
                if seen.insert(key) {
                    let mut c = row.clone();
                    layout.null_out(layout.all_tables().difference(ti), &mut c);
                    candidates.push(c);
                }
            }
        }
        if candidates.is_empty() {
            continue;
        }

        // Coverage check against every parent's extent, computed from base
        // tables: the OLD state for insertions ("was it an orphan?"), the
        // NEW state for deletions ("is it an orphan now?").
        let mut covered: FxHashSet<Vec<Datum>> = FxHashSet::default();
        for &p in graph.parents(i) {
            let leaf = if terms[p].tables.contains(t) {
                match update.op {
                    UpdateOp::Insert => TermLeaf::OldState,
                    UpdateOp::Delete => TermLeaf::Table,
                }
            } else {
                TermLeaf::Table
            };
            let expr = term_expr(&terms[p], t, leaf);
            for row in eval_expr(&exec, &expr)? {
                covered.insert(key_of(&row, &ti_keys));
            }
        }
        for c in candidates {
            if covered.contains(&key_of(&c, &ti_keys)) {
                continue;
            }
            report.secondary_rows += 1;
            match update.op {
                UpdateOp::Insert => {
                    // Was an orphan, now subsumed: delete from the view.
                    let key = view.store().key_of_row(&c);
                    view.store_mut().delete(&key, &name)?;
                }
                UpdateOp::Delete => {
                    // Newly orphaned: insert into the view.
                    view.store_mut().insert(c, &name)?;
                }
            }
        }
    }
    report.secondary_time = start.elapsed();
    Ok(report)
}

/// Which leaf stands in for the updated table in a term expression.
#[derive(Clone, Copy, PartialEq)]
enum TermLeaf {
    /// `ΔT` — computing the term's delta.
    Delta,
    /// `T` current state.
    Table,
    /// `T ▷ ΔT` — the pre-insert state.
    OldState,
}

/// Build an inner-join tree evaluating term `σ_{p}(T_{i1} × … × T_{im})`
/// from base tables, with `leaf` standing in for table `t`.
///
/// Tables are joined greedily along connecting conjuncts starting from the
/// updated table (or the first source table when `t` is not a source).
fn term_expr(term: &Term, t: TableId, leaf: TermLeaf) -> Expr {
    let mut atoms: Vec<Atom> = term.pred.atoms().to_vec();
    let has_t = term.tables.contains(t);
    let start = if has_t {
        t
    } else {
        term.tables.iter().next().expect("terms are non-empty")
    };
    let mut expr = if has_t {
        match leaf {
            TermLeaf::Delta => Expr::Delta(t),
            TermLeaf::Table => Expr::Table(t),
            TermLeaf::OldState => Expr::OldState(t),
        }
    } else {
        Expr::Table(start)
    };
    let mut joined = TableSet::singleton(start);
    // Single-table atoms on the start table become a selection on the leaf.
    let (applicable, rest): (Vec<_>, Vec<_>) = atoms
        .into_iter()
        .partition(|a| a.tables().is_subset_of(joined));
    if !applicable.is_empty() {
        expr = Expr::select(Pred::new(applicable), expr);
    }
    atoms = rest;

    let mut remaining: Vec<TableId> = term.tables.remove(start).iter().collect();
    while !remaining.is_empty() {
        let pick = remaining
            .iter()
            .position(|&x| {
                atoms
                    .iter()
                    .any(|a| a.tables().contains(x) && a.tables().is_subset_of(joined.insert(x)))
            })
            .unwrap_or(0);
        let x = remaining.swap_remove(pick);
        let next = joined.insert(x);
        let (applicable, rest): (Vec<_>, Vec<_>) = atoms
            .into_iter()
            .partition(|a| a.tables().is_subset_of(next) && a.tables().contains(x));
        atoms = rest;
        expr = Expr::inner(Pred::new(applicable), expr, Expr::Table(x));
        joined = next;
    }
    debug_assert!(atoms.is_empty(), "unplaced term atoms");
    expr
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::*;
    use crate::maintain::{maintain, verify_against_recompute};
    use crate::policy::MaintenancePolicy;

    #[test]
    fn recompute_baseline_is_correct() {
        let mut c = example1_catalog();
        populate_example1(&mut c, 8, 9);
        let mut view = MaterializedView::create(&c, oj_view_def()).unwrap();
        let up = c
            .insert("lineitem", vec![lineitem_row(3, 1, 2, 4, 42.0)])
            .unwrap();
        maintain_recompute(&mut view, &c, &up, &MaintenancePolicy::paper()).unwrap();
        assert!(verify_against_recompute(&view, &c));
        let down = c
            .delete(
                "lineitem",
                &[vec![ojv_rel::Datum::Int(3), ojv_rel::Datum::Int(1)]],
            )
            .unwrap();
        maintain_recompute(&mut view, &c, &down, &MaintenancePolicy::paper()).unwrap();
        assert!(verify_against_recompute(&view, &c));
    }

    #[test]
    fn gk_matches_our_maintenance_on_example_1() {
        let mut c = example1_catalog();
        populate_example1(&mut c, 8, 9);
        let mut ours = MaterializedView::create(&c, oj_view_def()).unwrap();
        let mut gk = ours.clone();
        let up = c
            .insert("lineitem", vec![lineitem_row(3, 1, 2, 4, 42.0)])
            .unwrap();
        maintain(&mut ours, &c, &up, &MaintenancePolicy::paper()).unwrap();
        maintain_gk(&mut gk, &c, &up, &MaintenancePolicy::paper()).unwrap();
        assert!(verify_against_recompute(&gk, &c));
        let mut a: Vec<Row> = ours.wide_rows().to_vec();
        let mut b: Vec<Row> = gk.wide_rows().to_vec();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn gk_handles_deletes() {
        let mut c = example1_catalog();
        populate_example1(&mut c, 8, 9);
        let mut view = MaterializedView::create(&c, oj_view_def()).unwrap();
        for ln in [1i64, 2] {
            let up = c
                .delete(
                    "lineitem",
                    &[vec![ojv_rel::Datum::Int(2), ojv_rel::Datum::Int(ln)]],
                )
                .unwrap();
            maintain_gk(&mut view, &c, &up, &MaintenancePolicy::paper()).unwrap();
            assert!(verify_against_recompute(&view, &c));
        }
    }

    #[test]
    fn gk_handles_part_and_orders_updates() {
        let mut c = example1_catalog();
        populate_example1(&mut c, 8, 9);
        let mut view = MaterializedView::create(&c, oj_view_def()).unwrap();
        let up = c.insert("part", vec![part_row(100, "p", 1.0)]).unwrap();
        maintain_gk(&mut view, &c, &up, &MaintenancePolicy::paper()).unwrap();
        assert!(verify_against_recompute(&view, &c));
        let up = c.insert("orders", vec![order_row(100, 5)]).unwrap();
        maintain_gk(&mut view, &c, &up, &MaintenancePolicy::paper()).unwrap();
        assert!(verify_against_recompute(&view, &c));
        let down = c
            .delete("orders", &[vec![ojv_rel::Datum::Int(100)]])
            .unwrap();
        maintain_gk(&mut view, &c, &down, &MaintenancePolicy::paper()).unwrap();
        assert!(verify_against_recompute(&view, &c));
    }

    #[test]
    fn gk_on_v1_update_sequences() {
        let mut c = v1_catalog();
        for (name, n) in [("r", 6i64), ("s", 5), ("t", 7), ("u", 4)] {
            let rows: Vec<Row> = (1..=n).map(|i| v1_row(i, i % 4, i)).collect();
            c.insert(name, rows).unwrap();
        }
        let mut view = MaterializedView::create(&c, v1_view_def()).unwrap();
        for (name, id, jc) in [
            ("t", 100i64, 1i64),
            ("r", 101, 2),
            ("s", 102, 3),
            ("u", 103, 0),
        ] {
            let up = c.insert(name, vec![v1_row(id, jc, 0)]).unwrap();
            maintain_gk(&mut view, &c, &up, &MaintenancePolicy::paper()).unwrap();
            assert!(
                verify_against_recompute(&view, &c),
                "GK diverged after insert into {name}"
            );
        }
        for (name, id) in [("t", 100i64), ("u", 2), ("s", 1), ("r", 3)] {
            let up = c.delete(name, &[vec![ojv_rel::Datum::Int(id)]]).unwrap();
            maintain_gk(&mut view, &c, &up, &MaintenancePolicy::paper()).unwrap();
            assert!(
                verify_against_recompute(&view, &c),
                "GK diverged after delete from {name}"
            );
        }
    }
}
