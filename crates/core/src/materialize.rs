//! Materialized view storage and initial materialization.

use std::sync::Arc;

use ojv_rel::{key_of, Datum, FxHashMap, Relation, Row};
use ojv_storage::Catalog;

use crate::analyze::{analyze, ViewAnalysis};
use crate::compile::{CompiledMaintenancePlan, PlanCache, PlanConfig};
use crate::error::{CoreError, Result};
use crate::policy::MaintenancePolicy;
use crate::snapshot::ViewOp;
use crate::view_def::ViewDef;

/// One count index in canonical form: `(cols, entries sorted by key)`.
pub type CountIndexSnapshot = (Vec<usize>, Vec<(Vec<Datum>, usize)>);

/// A non-unique count index over a subset of the view's key columns.
///
/// The secondary-delta anti-joins (§5.2) only need *existence* of a view row
/// with a given term key, so the index stores multiplicities rather than row
/// positions — the analogue of the paper's secondary index `V4_idx` on the
/// view. Rows with a null in the indexed columns are not indexed (the
/// equijoin `eq(T_i)` is null-rejecting).
#[derive(Debug, Clone)]
struct KeyCountIndex {
    cols: Vec<usize>,
    counts: FxHashMap<Vec<Datum>, usize>,
}

impl KeyCountIndex {
    fn key_of(&self, row: &[Datum]) -> Option<Vec<Datum>> {
        let key = key_of(row, &self.cols);
        if key.iter().any(Datum::is_null) {
            None
        } else {
            Some(key)
        }
    }

    fn add(&mut self, row: &[Datum]) {
        if let Some(key) = self.key_of(row) {
            *self.counts.entry(key).or_insert(0) += 1;
        }
    }

    fn remove(&mut self, row: &[Datum]) {
        if let Some(key) = self.key_of(row) {
            match self.counts.get_mut(&key) {
                Some(1) => {
                    self.counts.remove(&key);
                }
                Some(n) => *n -= 1,
                None => debug_assert!(false, "count index out of sync"),
            }
        }
    }
}

/// Row storage for a materialized view: wide rows indexed by the view's
/// unique key (the concatenated, null-padded keys of all referenced tables —
/// the same shape as the paper's clustered index on V3), plus optional
/// term-key count indexes (the paper's `V4_idx`).
///
/// Unlike base tables, the view key *contains nulls* (a `{part}`-term row is
/// null on every other table's key), so this store treats null as an
/// ordinary key value.
#[derive(Debug, Clone)]
pub struct ViewStore {
    key_cols: Vec<usize>,
    rows: Vec<Row>,
    /// view key -> position in `rows`. Probes borrow (`&[Datum]`) over the
    /// deterministic fx hasher — no owned key is built on the lookup path.
    index: FxHashMap<Vec<Datum>, usize>,
    secondary: Vec<KeyCountIndex>,
    /// When enabled, every successful `insert`/`delete` is recorded as a
    /// [`ViewOp`] for the snapshot registry's redo chains. `None` (the
    /// default) costs nothing on the maintenance hot path.
    journal: Option<Vec<ViewOp>>,
}

impl ViewStore {
    pub fn new(key_cols: Vec<usize>) -> Self {
        ViewStore {
            key_cols,
            rows: Vec::new(),
            index: FxHashMap::default(),
            secondary: Vec::new(),
            journal: None,
        }
    }

    /// Start journaling mutations (idempotent; keeps pending ops).
    pub(crate) fn enable_journal(&mut self) {
        if self.journal.is_none() {
            self.journal = Some(Vec::new());
        }
    }

    /// Drain the pending journaled ops. Empty when journaling is disabled.
    pub(crate) fn take_journal(&mut self) -> Vec<ViewOp> {
        match &mut self.journal {
            Some(j) => std::mem::take(j),
            None => Vec::new(),
        }
    }

    /// A deep copy with journaling disabled — the image the snapshot
    /// registry replays redo ops onto (replays must not re-journal).
    pub(crate) fn unjournaled_clone(&self) -> ViewStore {
        let mut clone = self.clone();
        clone.journal = None;
        clone
    }

    /// Re-execute a journaled op. Replay goes through the same
    /// `insert`/`delete` (swap-remove) code that produced the op, so a
    /// replayed store is byte-identical to the original — heap order and
    /// index contents included.
    pub(crate) fn apply_op(&mut self, op: &ViewOp, view: &str) -> Result<()> {
        match op {
            ViewOp::Insert(row) => self.insert(row.clone(), view),
            ViewOp::Delete(key) => self.delete(key, view).map(|_| ()),
        }
    }

    /// Add a count index over `cols` (deduplicated; adding the view key
    /// itself or an existing column set is a no-op). Existing rows are
    /// indexed immediately.
    pub fn add_count_index(&mut self, cols: Vec<usize>) {
        if cols == self.key_cols || self.secondary.iter().any(|i| i.cols == cols) {
            return;
        }
        let mut idx = KeyCountIndex {
            cols,
            counts: FxHashMap::default(),
        };
        for row in &self.rows {
            idx.add(row);
        }
        self.secondary.push(idx);
    }

    /// Number of stored rows whose (non-null) projection onto `cols` equals
    /// `key`, using a count index if one exists. Returns `None` when no
    /// index covers `cols` (callers fall back to a scan).
    pub fn count_by_key(&self, cols: &[usize], key: &[Datum]) -> Option<usize> {
        if cols == self.key_cols.as_slice() {
            return Some(usize::from(self.index.contains_key(key)));
        }
        self.secondary
            .iter()
            .find(|i| i.cols == cols)
            .map(|i| i.counts.get(key).copied().unwrap_or(0))
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Wide-row column indexes forming the view's unique key.
    pub fn key_cols(&self) -> &[usize] {
        &self.key_cols
    }

    pub fn key_of_row(&self, row: &[Datum]) -> Vec<Datum> {
        key_of(row, &self.key_cols)
    }

    pub fn contains(&self, key: &[Datum]) -> bool {
        self.index.contains_key(key)
    }

    /// Look up a stored row by view key without building an owned key.
    pub fn get_by_key(&self, key: &[Datum]) -> Option<&Row> {
        self.index.get(key).map(|&pos| &self.rows[pos])
    }

    /// Insert a wide row. A duplicate view key indicates a maintenance bug
    /// and is reported as an error.
    pub fn insert(&mut self, row: Row, view: &str) -> Result<()> {
        let key = key_of(&row, &self.key_cols);
        if self.index.contains_key(&key) {
            return Err(CoreError::InvalidView {
                view: view.to_string(),
                detail: format!(
                    "maintenance produced duplicate view key {}",
                    ojv_rel::row_display(&key)
                ),
            });
        }
        for idx in &mut self.secondary {
            idx.add(&row);
        }
        if let Some(journal) = &mut self.journal {
            journal.push(ViewOp::Insert(row.clone()));
        }
        self.index.insert(key, self.rows.len());
        self.rows.push(row);
        Ok(())
    }

    /// Canonical snapshot of every count index: `(cols, entries)` with the
    /// entries sorted by key. The fx hash map's iteration order is
    /// seed-stable but insertion-order dependent, so sorting is what makes
    /// the encoding — and the byte-level differential tests built on it —
    /// independent of the path that produced the index.
    pub fn count_index_snapshot(&self) -> Vec<CountIndexSnapshot> {
        self.secondary
            .iter()
            .map(|idx| {
                let mut entries: Vec<(Vec<Datum>, usize)> =
                    idx.counts.iter().map(|(k, &c)| (k.clone(), c)).collect();
                entries.sort_by(|a, b| a.0.cmp(&b.0));
                (idx.cols.clone(), entries)
            })
            .collect()
    }

    /// Delete by view key, returning the removed row. Missing keys indicate
    /// a maintenance bug.
    pub fn delete(&mut self, key: &[Datum], view: &str) -> Result<Row> {
        let pos = self
            .index
            .remove(key)
            .ok_or_else(|| CoreError::InvalidView {
                view: view.to_string(),
                detail: format!(
                    "maintenance tried to delete missing view key {}",
                    ojv_rel::row_display(key)
                ),
            })?;
        let row = self.rows.swap_remove(pos);
        for idx in &mut self.secondary {
            idx.remove(&row);
        }
        if pos < self.rows.len() {
            let moved_key = key_of(&self.rows[pos], &self.key_cols);
            self.index.insert(moved_key, pos);
        }
        if let Some(journal) = &mut self.journal {
            journal.push(ViewOp::Delete(key.to_vec()));
        }
        Ok(row)
    }
}

/// A materialized outer-join view: definition, analysis, stored rows, and
/// the cache of compiled maintenance plans.
#[derive(Debug, Clone)]
pub struct MaterializedView {
    def: ViewDef,
    pub analysis: ViewAnalysis,
    store: ViewStore,
    plans: PlanCache,
}

impl MaterializedView {
    /// Analyze the definition and materialize the initial contents by
    /// directly evaluating the view's operator tree.
    pub fn create(catalog: &Catalog, def: ViewDef) -> Result<Self> {
        let analysis = analyze(catalog, &def)?;
        let ctx = ojv_exec::ExecCtx::new(catalog, &analysis.layout);
        let rows = ojv_exec::eval_expr(&ctx, &analysis.expr)?;
        Self::from_rows(def, analysis, rows)
    }

    /// Rebuild a view from checkpointed wide rows instead of re-evaluating
    /// the definition. Rows must be in store (heap) order — inserting them
    /// in that order reproduces the exact store state, so a recovered view
    /// is byte-identical to the one that was checkpointed.
    pub fn restore(catalog: &Catalog, def: ViewDef, rows: Vec<Row>) -> Result<Self> {
        let analysis = analyze(catalog, &def)?;
        Self::from_rows(def, analysis, rows)
    }

    fn from_rows(def: ViewDef, analysis: ViewAnalysis, rows: Vec<Row>) -> Result<Self> {
        let mut store = ViewStore::new(analysis.view_key.clone());
        // One count index per term that can ever be indirectly affected
        // (i.e. has a parent in the subsumption graph) — the §5.2 anti-joins
        // probe these instead of scanning the view (the paper's `V4_idx`).
        for (i, term) in analysis.terms.iter().enumerate() {
            if !analysis.graph.parents(i).is_empty() {
                store.add_count_index(analysis.layout.term_key_cols(term.tables));
            }
        }
        for row in rows {
            store.insert(row, def.name())?;
        }
        Ok(MaterializedView {
            def,
            analysis,
            store,
            plans: PlanCache::default(),
        })
    }

    /// The compiled maintenance plan for updates of `t` under the policy
    /// configuration `cfg`, compiling on first use (or after DDL / a policy
    /// flip invalidated the cached entry).
    pub fn compiled_plan(
        &mut self,
        catalog: &Catalog,
        t: ojv_algebra::TableId,
        cfg: PlanConfig,
    ) -> Result<Arc<CompiledMaintenancePlan>> {
        self.plans.get_or_compile(&self.analysis, catalog, t, cfg)
    }

    /// Eagerly compile the maintenance plan for every referenced table under
    /// `policy` — called at view creation so steady-state maintenance never
    /// compiles (the compile counter stays flat).
    pub fn warm_plans(&mut self, catalog: &Catalog, policy: &MaintenancePolicy) -> Result<()> {
        let cfg = PlanConfig::of(policy);
        for i in 0..self.analysis.layout.table_count() {
            self.compiled_plan(catalog, ojv_algebra::TableId(i as u8), cfg)?;
        }
        Ok(())
    }

    /// Number of cached compiled plans (for tests).
    pub fn cached_plan_count(&self) -> usize {
        self.plans.len()
    }

    pub fn name(&self) -> &str {
        self.def.name()
    }

    pub fn def(&self) -> &ViewDef {
        &self.def
    }

    pub fn len(&self) -> usize {
        self.store.len()
    }

    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// The stored wide rows (internal representation).
    pub fn wide_rows(&self) -> &[Row] {
        self.store.rows()
    }

    pub(crate) fn store_mut(&mut self) -> &mut ViewStore {
        &mut self.store
    }

    pub(crate) fn store(&self) -> &ViewStore {
        &self.store
    }

    /// Start journaling this view's mutations for the snapshot registry.
    pub(crate) fn enable_journal(&mut self) {
        self.store.enable_journal();
    }

    /// Drain the ops journaled since the last drain.
    pub(crate) fn take_journal(&mut self) -> Vec<ViewOp> {
        self.store.take_journal()
    }

    /// The view's *output*: the projected relation a reader sees.
    ///
    /// Errors if the projected columns do not form a valid schema (e.g. a
    /// duplicate-name collision), instead of panicking.
    pub fn output(&self) -> crate::error::Result<Relation> {
        let cols: Vec<ojv_rel::Column> = self
            .analysis
            .projection
            .iter()
            .map(|&g| self.analysis.layout.wide_schema().column(g).clone())
            .collect();
        let schema = ojv_rel::Schema::shared(cols)?;
        let rows = self
            .store
            .rows()
            .iter()
            .map(|r| key_of(r, &self.analysis.projection))
            .collect();
        Ok(Relation::new(schema, rows))
    }

    /// Count stored rows per term (source-set pattern) — the paper's
    /// Table 1 "Cardinality" column.
    pub fn term_cardinalities(&self) -> Vec<(ojv_algebra::TableSet, usize)> {
        // Count by source-set first — O(rows), not O(rows × terms) — then
        // read the tally back out in term order.
        let mut by_set: FxHashMap<ojv_algebra::TableSet, usize> = FxHashMap::default();
        for row in self.store.rows() {
            *by_set
                .entry(self.analysis.layout.sources_of_row(row))
                .or_insert(0) += 1;
        }
        self.analysis
            .terms
            .iter()
            .map(|t| (t.tables, by_set.get(&t.tables).copied().unwrap_or(0)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::*;
    use ojv_algebra::TableSet;

    #[test]
    fn materialize_example_1() {
        let mut c = example1_catalog();
        populate_example1(&mut c, 6, 9);
        let view = MaterializedView::create(&c, oj_view_def()).unwrap();
        // Sanity: every lineitem appears exactly once in a full tuple.
        let full = view
            .term_cardinalities()
            .into_iter()
            .find(|(s, _)| s.len() == 3)
            .unwrap();
        assert_eq!(full.1, c.table("lineitem").unwrap().len());
        // Orphaned orders: multiples of 3 (9/3 = 3 of them).
        let orders_only = view
            .term_cardinalities()
            .into_iter()
            .find(|(s, _)| s.only() == view.analysis.layout.table_id("orders"))
            .unwrap();
        assert_eq!(orders_only.1, 3);
        assert_eq!(
            view.len(),
            view.term_cardinalities()
                .iter()
                .map(|(_, n)| n)
                .sum::<usize>()
        );
    }

    #[test]
    fn view_store_insert_delete_roundtrip() {
        let mut s = ViewStore::new(vec![0, 1]);
        s.insert(vec![Datum::Int(1), Datum::Null, Datum::Int(5)], "v")
            .unwrap();
        s.insert(vec![Datum::Int(1), Datum::Int(2), Datum::Int(6)], "v")
            .unwrap();
        assert_eq!(s.len(), 2);
        assert!(s.contains(&[Datum::Int(1), Datum::Null]));
        let dup = s.insert(vec![Datum::Int(1), Datum::Null, Datum::Int(9)], "v");
        assert!(dup.is_err());
        let row = s.delete(&[Datum::Int(1), Datum::Null], "v").unwrap();
        assert_eq!(row[2], Datum::Int(5));
        assert!(!s.contains(&[Datum::Int(1), Datum::Null]));
        assert!(s.delete(&[Datum::Int(9), Datum::Null], "v").is_err());
        // The swap-removed survivor is still findable.
        assert!(s.contains(&[Datum::Int(1), Datum::Int(2)]));
    }

    #[test]
    fn output_projects_columns() {
        let mut c = example1_catalog();
        populate_example1(&mut c, 4, 4);
        let def =
            oj_view_def().with_projection(vec![("part", "p_partkey"), ("orders", "o_orderkey")]);
        let view = MaterializedView::create(&c, def).unwrap();
        let out = view.output().unwrap();
        assert_eq!(out.schema().len(), 2);
        assert_eq!(out.len(), view.len());
    }

    #[test]
    fn empty_tables_give_empty_view() {
        let c = example1_catalog();
        let view = MaterializedView::create(&c, oj_view_def()).unwrap();
        assert!(view.is_empty());
        let _ = TableSet::EMPTY;
    }
}
