//! Maintenance policy knobs — the paper's optimizations, individually
//! switchable (used by the ablation benchmarks).

use ojv_durability::FsyncPolicy;
use ojv_exec::ParallelSpec;

/// How the secondary delta `ΔV^I` is computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SecondaryStrategy {
    /// Pick per term, cost-based: the view when it is usable and the
    /// estimated orphan-scan cost is lower, otherwise base tables. The paper
    /// notes "the optimizer should choose in a cost-based manner" (§5).
    #[default]
    Auto,
    /// Always compute from the view and the primary delta (§5.2).
    FromView,
    /// Always compute from base tables, `ΔT`, and the primary delta (§5.3).
    FromBase,
}

/// Policy for one maintenance run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaintenancePolicy {
    /// Exploit foreign keys (§6): `SimplifyTree` on the primary delta and
    /// the Theorem 3 reduced maintenance graph.
    pub use_fk: bool,
    /// Convert the primary delta to a left-deep tree (§4.1).
    pub left_deep: bool,
    /// Secondary delta computation strategy (§5.2 vs §5.3).
    pub secondary: SecondaryStrategy,
    /// True when this insert/delete pair is the decomposition of an SQL
    /// `UPDATE` — the §6 caveat list forbids the FK optimizations then
    /// (the "deleted" keys may be re-inserted by the paired statement).
    pub update_decomposition: bool,
    /// §9 (future work): combine the secondary-delta computations of all
    /// indirect terms into one pass over the primary delta. Only applies to
    /// the view-based strategy; results are identical either way.
    pub combine_secondary: bool,
    /// Degree of parallelism for the delta executor (threads, morsel size,
    /// serial/parallel cutover). Results are bit-identical at any setting;
    /// this only trades wall-clock for cores.
    pub parallel: ParallelSpec,
    /// Run the `ojv-analysis` static plan verifier on every compiled
    /// maintenance plan. Debug builds verify unconditionally; this knob
    /// opts release builds in.
    pub verify_plans: bool,
    /// Factor shared leading subplans out of batched multi-view maintenance
    /// so common work (the `ΔT` scan, shared join prefixes) executes once per
    /// batch instead of once per view. Off = each view evaluates its own
    /// plan end to end (the A/B baseline). Results are identical either way.
    pub share_plans: bool,
    /// When the database is opened durably ([`crate::DurableDatabase`]),
    /// how often WAL appends are flushed to stable storage. Ignored by the
    /// purely in-memory [`crate::Database`].
    pub fsync: FsyncPolicy,
}

impl Default for MaintenancePolicy {
    fn default() -> Self {
        MaintenancePolicy {
            use_fk: true,
            left_deep: true,
            secondary: SecondaryStrategy::Auto,
            update_decomposition: false,
            combine_secondary: false,
            parallel: ParallelSpec::serial(),
            verify_plans: false,
            share_plans: true,
            fsync: FsyncPolicy::Always,
        }
    }
}

impl MaintenancePolicy {
    /// The full paper configuration (all optimizations on).
    pub fn paper() -> Self {
        Self::default()
    }

    /// All optimizations off — the naive two-step procedure.
    pub fn naive() -> Self {
        MaintenancePolicy {
            use_fk: false,
            left_deep: false,
            secondary: SecondaryStrategy::FromBase,
            ..Default::default()
        }
    }

    /// The paper configuration with `n` executor threads.
    pub fn with_threads(n: usize) -> Self {
        MaintenancePolicy {
            parallel: ParallelSpec::threads(n),
            ..Default::default()
        }
    }

    /// Whether FK optimizations apply to this run (§6 caveats).
    pub fn fk_enabled(&self) -> bool {
        self.use_fk && !self.update_decomposition
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_enable_everything() {
        let p = MaintenancePolicy::default();
        assert!(p.use_fk && p.left_deep);
        assert_eq!(p.secondary, SecondaryStrategy::Auto);
        assert!(p.fk_enabled());
    }

    #[test]
    fn update_decomposition_disables_fk() {
        let p = MaintenancePolicy {
            update_decomposition: true,
            ..Default::default()
        };
        assert!(!p.fk_enabled());
    }

    #[test]
    fn naive_policy() {
        let p = MaintenancePolicy::naive();
        assert!(!p.use_fk && !p.left_deep);
        assert_eq!(p.secondary, SecondaryStrategy::FromBase);
    }
}
