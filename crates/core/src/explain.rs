//! `EXPLAIN`-style rendering of maintenance plans with coarse cardinality
//! estimates.
//!
//! The estimates use only what the storage layer tracks for free — table
//! row counts and index fan-outs (rows per distinct key) — and a fixed
//! default selectivity for non-equijoin conjuncts. They are deliberately
//! coarse: their purpose is to show *why* a plan is delta-proportional (the
//! left-deep spine carries `|ΔT| × fan-out` rows) or not (a bushy right
//! operand carries `|R ⋈ S|` rows), mirroring the discussion around the
//! paper's Example 4.

use ojv_algebra::{Expr, JoinKind, TableId};
use ojv_exec::ExecStatsSnapshot;
use ojv_storage::Catalog;

use crate::analyze::ViewAnalysis;

/// Default selectivity for residual (non-key) conjuncts.
const RESIDUAL_SELECTIVITY: f64 = 0.3;

/// One line of an explain tree.
struct Line {
    depth: usize,
    text: String,
    est_rows: f64,
}

/// Render an expression with estimated output cardinalities, assuming the
/// delta contains `delta_rows` rows.
///
/// The footer reports the static verifier's verdict on the plan — `verified:
/// ok (N invariants)` or the first violation — so a plan dump doubles as
/// verification evidence.
pub fn explain_plan(
    catalog: &Catalog,
    analysis: &ViewAnalysis,
    expr: &Expr,
    delta_rows: usize,
) -> String {
    let mut lines = Vec::new();
    let total = walk(catalog, analysis, expr, delta_rows as f64, 0, &mut lines);
    let mut out = String::new();
    out.push_str(&format!("estimated output rows: {:.0}\n", total));
    for l in &lines {
        out.push_str(&format!(
            "{}{}  [~{:.0} rows]\n",
            "  ".repeat(l.depth),
            l.text,
            l.est_rows
        ));
    }
    let verdict = ojv_analysis::verify_layout(&analysis.layout, Some(catalog))
        .and_then(|n| Ok(n + ojv_analysis::verify_jdnf(&analysis.graph)?))
        .and_then(|n| Ok(n + ojv_analysis::verify_plan(&analysis.layout, expr, find_delta(expr))?));
    match verdict {
        Ok(n) => out.push_str(&format!("verified: ok ({n} invariants)\n")),
        Err(v) => out.push_str(&format!("verified: FAILED {v}\n")),
    }
    out
}

/// The table whose Δ/old-state leaves appear in the plan, if any — what the
/// plan is a maintenance expression *for*.
fn find_delta(expr: &Expr) -> Option<TableId> {
    match expr {
        Expr::Delta(t) | Expr::OldState(t) => Some(*t),
        Expr::Table(_) | Expr::Empty => None,
        Expr::Select(_, i) | Expr::NullIf { input: i, .. } | Expr::CleanDup(i) => find_delta(i),
        Expr::Join { left, right, .. } => find_delta(left).or_else(|| find_delta(right)),
    }
}

fn table_len(catalog: &Catalog, analysis: &ViewAnalysis, t: TableId) -> f64 {
    let name = &analysis.layout.slot(t).name;
    catalog.table(name).map(|t| t.len() as f64).unwrap_or(0.0)
}

fn walk(
    catalog: &Catalog,
    analysis: &ViewAnalysis,
    expr: &Expr,
    delta_rows: f64,
    depth: usize,
    lines: &mut Vec<Line>,
) -> f64 {
    let layout = &analysis.layout;
    match expr {
        Expr::Table(t) => {
            let n = table_len(catalog, analysis, *t);
            lines.push(Line {
                depth,
                text: format!("scan {}", layout.slot(*t).name),
                est_rows: n,
            });
            n
        }
        Expr::Delta(t) => {
            lines.push(Line {
                depth,
                text: format!("scan Δ{}", layout.slot(*t).name),
                est_rows: delta_rows,
            });
            delta_rows
        }
        Expr::OldState(t) => {
            let n = (table_len(catalog, analysis, *t) - delta_rows).max(0.0);
            lines.push(Line {
                depth,
                text: format!("scan old({})", layout.slot(*t).name),
                est_rows: n,
            });
            n
        }
        Expr::Empty => {
            lines.push(Line {
                depth,
                text: "∅ (proved empty by foreign keys)".to_string(),
                est_rows: 0.0,
            });
            0.0
        }
        Expr::Select(p, input) => {
            let idx = lines.len();
            let inner = walk(catalog, analysis, input, delta_rows, depth + 1, lines);
            let est = inner * RESIDUAL_SELECTIVITY.powi(p.atoms().len() as i32);
            lines.insert(
                idx,
                Line {
                    depth,
                    text: format!("σ [{p}]"),
                    est_rows: est,
                },
            );
            est
        }
        Expr::Join {
            kind,
            pred,
            left,
            right,
        } => {
            let idx = lines.len();
            let left_est = walk(catalog, analysis, left, delta_rows, depth + 1, lines);
            // Describe the right operand's access path.
            let (right_est, access, per_probe) = describe_right(catalog, analysis, expr, right);
            let right_idx = lines.len();
            let right_rows = walk(catalog, analysis, right, delta_rows, depth + 1, lines);
            let _ = right_rows;
            let est = match kind {
                JoinKind::Inner => left_est * per_probe * RESIDUAL_SELECTIVITY.max(0.3),
                JoinKind::LeftOuter => (left_est * per_probe).max(left_est),
                JoinKind::RightOuter => (left_est * per_probe).max(right_est),
                JoinKind::FullOuter => (left_est * per_probe).max(left_est + right_est),
                JoinKind::LeftSemi | JoinKind::LeftAnti => left_est,
            };
            let _ = right_idx;
            lines.insert(
                idx,
                Line {
                    depth,
                    text: format!("{kind} ON {pred} via {access}"),
                    est_rows: est,
                },
            );
            est
        }
        Expr::NullIf {
            null_tables,
            pred,
            input,
        } => {
            let idx = lines.len();
            let inner = walk(catalog, analysis, input, delta_rows, depth + 1, lines);
            lines.insert(
                idx,
                Line {
                    depth,
                    text: format!("λ null {null_tables} unless {pred}"),
                    est_rows: inner,
                },
            );
            inner
        }
        Expr::CleanDup(input) => {
            let idx = lines.len();
            let inner = walk(catalog, analysis, input, delta_rows, depth + 1, lines);
            lines.insert(
                idx,
                Line {
                    depth,
                    text: "δ↓ cleanup".to_string(),
                    est_rows: inner,
                },
            );
            inner
        }
    }
}

/// Render the per-operator executor counters a maintenance run collected
/// (see [`crate::maintain::MaintenanceReport::exec`]) — actual rows in/out,
/// morsel counts, wall-clock, and heap allocations per operator, the
/// measured counterpart to [`explain_plan`]'s estimates. Operators that
/// never ran are omitted; the allocation columns read 0 unless the process
/// installed the counting allocator (`ojv_rel::CountingAlloc`).
pub fn render_exec_stats(stats: &ExecStatsSnapshot) -> String {
    let ops = [
        ("filter", &stats.filter),
        ("join build", &stats.join_build),
        ("join probe", &stats.join_probe),
        ("index join", &stats.index_join),
        ("dedup", &stats.dedup),
        ("subsume", &stats.subsume),
    ];
    let mut out = String::from("operator counters:\n");
    let mut any = false;
    for (name, op) in ops {
        if op.morsels == 0 {
            continue;
        }
        any = true;
        out.push_str(&format!(
            "  {name:<11} {:>8} rows in  {:>8} rows out  {:>5} morsels  {:>9.3} ms  {:>7} allocs  {:>10} B\n",
            op.rows_in,
            op.rows_out,
            op.morsels,
            op.time_ns as f64 / 1e6,
            op.allocs,
            op.alloc_bytes,
        ));
    }
    if !any {
        out.push_str("  (no operators ran)\n");
    }
    out
}

/// Estimate the right operand: `(base cardinality, access-path label,
/// rows per probe)`.
fn describe_right(
    catalog: &Catalog,
    analysis: &ViewAnalysis,
    join: &Expr,
    right: &Expr,
) -> (f64, String, f64) {
    let Expr::Join { pred, left, .. } = join else {
        unreachable!("describe_right is called on joins");
    };
    let scan_table = match right {
        Expr::Table(t) | Expr::OldState(t) => Some(*t),
        Expr::Select(_, inner) => match inner.as_ref() {
            Expr::Table(t) | Expr::OldState(t) => Some(*t),
            _ => None,
        },
        _ => None,
    };
    if let Some(t) = scan_table {
        let name = analysis.layout.slot(t).name.clone();
        if let Ok(table) = catalog.table(&name) {
            let (keys, _) = pred.equi_split(left.sources(), right.sources());
            if !keys.is_empty() {
                let offset = analysis.layout.slot(t).offset;
                let local: Vec<usize> = keys
                    .iter()
                    .map(|(_, r)| analysis.layout.global(*r) - offset)
                    .collect();
                if let Some((index, _)) = table.index_on(&local) {
                    let fanout = table.index_fanout(index);
                    let label = match index {
                        ojv_storage::IndexRef::Unique => {
                            format!("unique index on {name} (fan-out 1)")
                        }
                        ojv_storage::IndexRef::Secondary(_) => {
                            format!("secondary index on {name} (fan-out ~{fanout:.1})")
                        }
                    };
                    return (table.len() as f64, label, fanout);
                }
            }
            return (
                table.len() as f64,
                format!("hash build over {name} ({} rows)", table.len()),
                1.0,
            );
        }
    }
    (0.0, "hash build over subplan".to_string(), 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::fixtures::*;

    #[test]
    fn explain_shows_index_paths_and_delta_scaling() {
        let mut c = example1_catalog();
        populate_example1(&mut c, 20, 30);
        let a = analyze(&c, &oj_view_def()).unwrap();
        let l = a.layout.table_id("lineitem").unwrap();
        let plan = a.primary_delta_plan(l, true, true);
        let text = explain_plan(&c, &a, &plan, 100);
        assert!(text.contains("scan Δlineitem"));
        assert!(text.contains("unique index on orders"));
        assert!(text.contains("unique index on part"));
        assert!(text.contains("[~100 rows]"));
        assert!(text.contains("verified: ok ("), "got:\n{text}");
    }

    #[test]
    fn explain_reports_the_first_violation() {
        let c = example1_catalog();
        let a = analyze(&c, &oj_view_def()).unwrap();
        // A λ with no δ above it: the footer must carry the violation id.
        let t = a.layout.table_id("lineitem").unwrap();
        let bad = ojv_algebra::Expr::NullIf {
            null_tables: ojv_algebra::TableSet::singleton(t),
            pred: ojv_algebra::Pred::true_(),
            input: Box::new(ojv_algebra::Expr::Delta(t)),
        };
        let text = explain_plan(&c, &a, &bad, 5);
        assert!(
            text.contains("verified: FAILED [LEFTDEEP-MISSING-DELTA]"),
            "got:\n{text}"
        );
    }

    #[test]
    fn explain_marks_fk_proved_empty_plans() {
        let c = example1_catalog();
        let a = analyze(&c, &oj_view_def()).unwrap();
        // Build an artificial empty plan.
        let text = explain_plan(&c, &a, &ojv_algebra::Expr::Empty, 5);
        assert!(text.contains("proved empty by foreign keys"));
        assert!(text.contains("estimated output rows: 0"));
    }

    #[test]
    fn exec_stats_render_actual_counters() {
        let mut c = example1_catalog();
        populate_example1(&mut c, 8, 9);
        let mut view = crate::materialize::MaterializedView::create(&c, oj_view_def()).unwrap();
        let up = c
            .insert("lineitem", vec![lineitem_row(3, 1, 2, 4, 42.0)])
            .unwrap();
        let report = crate::maintain::maintain(
            &mut view,
            &c,
            &up,
            &crate::policy::MaintenancePolicy::paper(),
        )
        .unwrap();
        let text = render_exec_stats(&report.exec);
        // The lineitem insert probes part and orders through their indexes.
        assert!(text.contains("index join"), "got:\n{text}");
        assert!(!text.contains("no operators ran"));
        let empty = render_exec_stats(&ExecStatsSnapshot::default());
        assert!(empty.contains("no operators ran"));
    }

    #[test]
    fn explain_contrasts_bushy_and_left_deep() {
        let mut c = v1_catalog();
        for (name, n) in [("r", 50i64), ("s", 60), ("t", 70), ("u", 80)] {
            let rows: Vec<ojv_rel::Row> = (1..=n).map(|i| v1_row(i, i % 10, i)).collect();
            c.insert(name, rows).unwrap();
        }
        let a = analyze(&c, &v1_view_def()).unwrap();
        let t = a.layout.table_id("t").unwrap();
        let bushy = a.primary_delta_plan(t, false, false);
        let left_deep = a.primary_delta_plan(t, false, true);
        let b = explain_plan(&c, &a, &bushy, 2);
        let ld = explain_plan(&c, &a, &left_deep, 2);
        // The bushy plan hash-builds over a subplan (the R fo S join);
        // the left-deep plan probes base tables only.
        assert!(b.contains("hash build over subplan"));
        assert!(!ld.contains("hash build over subplan"));
    }
}
