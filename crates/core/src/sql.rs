//! Rendering of maintenance plans as SQL — the form the paper presents its
//! procedure in (§1's oj_view statements and §7's Q1–Q4).
//!
//! The engine executes [`ojv_algebra::Expr`] trees directly; this module
//! pretty-prints those trees (and the secondary-delta statements) as the SQL
//! a trigger-based implementation would run, for inspection, documentation,
//! and the `repro` binary.

use ojv_algebra::{Atom, Expr, JoinKind, Pred, TableId, TableSet};
use ojv_exec::ViewLayout;
use ojv_storage::UpdateOp;

use crate::analyze::ViewAnalysis;

/// Render a column reference as `table.column`.
fn col_sql(layout: &ViewLayout, c: ojv_algebra::ColRef) -> String {
    let slot = layout.slot(c.table);
    format!("{}.{}", slot.name, slot.schema.column(c.col).name)
}

/// Render one atom.
pub fn atom_sql(layout: &ViewLayout, atom: &Atom) -> String {
    match atom {
        Atom::Cols(a, op, b) => format!("{} {op} {}", col_sql(layout, *a), col_sql(layout, *b)),
        Atom::Const(c, op, v) => format!("{} {op} {v}", col_sql(layout, *c)),
        Atom::Between(c, lo, hi) => {
            format!("{} BETWEEN {lo} AND {hi}", col_sql(layout, *c))
        }
    }
}

/// Render a conjunction (`1=1` for the empty conjunction).
pub fn pred_sql(layout: &ViewLayout, pred: &Pred) -> String {
    if pred.is_true() {
        return "1=1".to_string();
    }
    pred.atoms()
        .iter()
        .map(|a| atom_sql(layout, a))
        .collect::<Vec<_>>()
        .join(" AND ")
}

fn join_kind_sql(kind: JoinKind) -> &'static str {
    match kind {
        JoinKind::Inner => "JOIN",
        JoinKind::LeftOuter => "LEFT OUTER JOIN",
        JoinKind::RightOuter => "RIGHT OUTER JOIN",
        JoinKind::FullOuter => "FULL OUTER JOIN",
        JoinKind::LeftSemi => "LEFT SEMI JOIN",
        JoinKind::LeftAnti => "LEFT ANTI JOIN",
    }
}

/// Render an expression as a SQL `FROM` clause fragment.
///
/// Selections over scans become inline predicates; selections over joins
/// become derived tables; the null-if/cleanup wrappers (which plain SQL has
/// no operator for) are rendered as annotated derived tables, matching the
/// paper's remark that `λ` "can be implemented using a project with the case
/// statement of SQL".
pub fn from_clause_sql(layout: &ViewLayout, expr: &Expr, indent: usize) -> String {
    let pad = "  ".repeat(indent);
    match expr {
        Expr::Table(t) => format!("{pad}{}", layout.slot(*t).name),
        Expr::Delta(t) => format!("{pad}delta_{}", layout.slot(*t).name),
        Expr::OldState(t) => {
            let name = &layout.slot(*t).name;
            format!("{pad}(SELECT * FROM {name} WHERE key NOT IN (SELECT key FROM delta_{name})) AS old_{name}")
        }
        Expr::Empty => format!("{pad}(SELECT * FROM (VALUES (NULL)) v WHERE 1=0) AS empty"),
        Expr::Select(p, input) => match input.as_ref() {
            Expr::Table(t) => format!(
                "{pad}(SELECT * FROM {} WHERE {}) AS f_{}",
                layout.slot(*t).name,
                pred_sql(layout, p),
                layout.slot(*t).name
            ),
            _ => format!(
                "{pad}(SELECT * FROM\n{}\n{pad} WHERE {}) AS filtered",
                from_clause_sql(layout, input, indent + 1),
                pred_sql(layout, p)
            ),
        },
        Expr::Join {
            kind,
            pred,
            left,
            right,
        } => {
            format!(
                "{}\n{pad}{} (\n{}\n{pad}) ON {}",
                from_clause_sql(layout, left, indent),
                join_kind_sql(*kind),
                from_clause_sql(layout, right, indent + 1),
                pred_sql(layout, pred)
            )
        }
        Expr::NullIf {
            null_tables,
            pred,
            input,
        } => {
            let tables: Vec<String> = null_tables
                .iter()
                .map(|t| layout.slot(t).name.clone())
                .collect();
            format!(
                "{pad}-- λ: CASE WHEN NOT ({}) THEN NULL all columns of {} END\n{}",
                pred_sql(layout, pred),
                tables.join(", "),
                from_clause_sql(layout, input, indent)
            )
        }
        Expr::CleanDup(input) => format!(
            "{pad}-- δ↓: remove duplicates and subsumed rows\n{}",
            from_clause_sql(layout, input, indent)
        ),
    }
}

/// The `IS NULL` / `IS NOT NULL` pattern predicate identifying a term's rows
/// in the view (the paper's `null(T)`/`¬null(T)` via a key column).
pub fn term_pattern_sql(layout: &ViewLayout, tables: TableSet) -> String {
    let mut parts = Vec::new();
    for i in 0..layout.table_count() {
        let t = TableId(i as u8);
        let slot = layout.slot(t);
        let key = &slot.schema.column(slot.key_cols[0] - slot.offset).name;
        if tables.contains(t) {
            parts.push(format!("{}.{key} IS NOT NULL", slot.name));
        } else {
            parts.push(format!("{}.{key} IS NULL", slot.name));
        }
    }
    parts.join(" AND ")
}

/// Render the full maintenance script for an update of `table` — the
/// equivalent of the paper's Q1–Q4 sequence for V3 (§7).
pub fn maintenance_script(
    analysis: &ViewAnalysis,
    view_name: &str,
    table: &str,
    op: UpdateOp,
    use_fk: bool,
    left_deep: bool,
) -> String {
    let layout = &analysis.layout;
    let Some(t) = layout.table_id(table) else {
        return format!("-- view {view_name} does not reference {table}; nothing to do\n");
    };
    let mgraph = analysis.maintenance_graph(t, use_fk);
    if mgraph.is_empty() {
        return format!(
            "-- maintenance graph for {view_name} / update {table} is empty\n-- (foreign keys prove the view is unaffected); nothing to do\n"
        );
    }
    let mut out = String::new();
    let plan = crate::compile::derive_plan(analysis, t, use_fk, left_deep);

    out.push_str("-- Q1: compute primary delta\n");
    out.push_str("INSERT INTO #delta1\nSELECT *\nFROM\n");
    out.push_str(&from_clause_sql(layout, &plan, 1));
    out.push_str(";\n\n");

    out.push_str("-- Q2: apply primary delta\n");
    match op {
        UpdateOp::Insert => out.push_str(&format!(
            "INSERT INTO {view_name} SELECT * FROM #delta1;\n\n"
        )),
        UpdateOp::Delete => out.push_str(&format!(
            "DELETE FROM {view_name} WHERE view_key IN (SELECT view_key FROM #delta1);\n\n"
        )),
    }

    for (i, ind) in mgraph.indirect.iter().enumerate() {
        let term = &analysis.terms[ind.term];
        let label: String = term
            .tables
            .iter()
            .map(|x| {
                layout
                    .slot(x)
                    .name
                    .chars()
                    .next()
                    .unwrap_or('?')
                    .to_ascii_uppercase()
            })
            .collect();
        out.push_str(&format!("-- Q{}: update term {label}\n", i + 3));
        // Key columns of the term, used for the IN (...) subqueries.
        let keys: Vec<String> = term
            .tables
            .iter()
            .flat_map(|x| {
                let slot = layout.slot(x);
                slot.key_cols.iter().map(move |k| {
                    format!("{}.{}", slot.name, slot.schema.column(k - slot.offset).name)
                })
            })
            .collect();
        match op {
            UpdateOp::Insert => {
                out.push_str(&format!(
                    "DELETE FROM {view_name}\nWHERE {}\n  AND ({}) IN (SELECT {} FROM #delta1);\n\n",
                    term_pattern_sql(layout, term.tables),
                    keys.join(", "),
                    keys.join(", "),
                ));
            }
            UpdateOp::Delete => {
                out.push_str(&format!(
                    "INSERT INTO {view_name}\nSELECT DISTINCT {}.* FROM #delta1 d\nWHERE NOT EXISTS (SELECT 1 FROM {view_name} v WHERE ({}) = d.term_key);\n\n",
                    term.tables
                        .iter()
                        .map(|x| layout.slot(x).name.clone())
                        .collect::<Vec<_>>()
                        .join(", "),
                    keys.join(", "),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::fixtures::*;

    fn analysis() -> ViewAnalysis {
        let catalog = example1_catalog();
        analyze(&catalog, &oj_view_def()).unwrap()
    }

    #[test]
    fn pred_and_atom_rendering() {
        let a = analysis();
        let term = a
            .terms
            .iter()
            .find(|t| t.tables.len() == 3)
            .expect("full term");
        let sql = pred_sql(&a.layout, &term.pred);
        assert!(sql.contains("orders.o_orderkey = lineitem.l_orderkey"));
        assert!(sql.contains("part.p_partkey = lineitem.l_partkey"));
        assert_eq!(pred_sql(&a.layout, &Pred::true_()), "1=1");
    }

    #[test]
    fn term_pattern_mirrors_paper_q3_q4() {
        let a = analysis();
        let part = a.layout.table_id("part").unwrap();
        let sql = term_pattern_sql(&a.layout, TableSet::singleton(part));
        // The paper's Q4: "where c_custkey is null and o_orderkey is null
        // and l_orderkey is null and p_partkey in (...)" — our pattern
        // includes the NOT NULL side explicitly.
        assert!(sql.contains("part.p_partkey IS NOT NULL"));
        assert!(sql.contains("orders.o_orderkey IS NULL"));
        assert!(sql.contains("lineitem.l_orderkey IS NULL"));
    }

    #[test]
    fn lineitem_insert_script_has_q1_through_q4() {
        let a = analysis();
        let sql = maintenance_script(&a, "oj_view", "lineitem", UpdateOp::Insert, true, true);
        assert!(sql.contains("-- Q1: compute primary delta"));
        assert!(sql.contains("INSERT INTO #delta1"));
        assert!(sql.contains("delta_lineitem"));
        assert!(sql.contains("-- Q2: apply primary delta"));
        assert!(sql.contains("-- Q3: update term"));
        assert!(sql.contains("-- Q4: update term"));
        assert!(sql.contains("DELETE FROM oj_view"));
    }

    #[test]
    fn part_insert_script_collapses_to_view_insert() {
        let a = analysis();
        let sql = maintenance_script(&a, "oj_view", "part", UpdateOp::Insert, true, true);
        // FK fast path: the delta expression is just the delta scan, and
        // there are no Q3/Q4 statements.
        assert!(sql.contains("delta_part"));
        assert!(!sql.contains("Q3"));
        assert!(!sql.contains("JOIN"));
    }

    #[test]
    fn orders_script_is_a_noop_with_fk() {
        let a = analysis();
        let catalog = crate::fixtures::example1_catalog();
        // oj_view with an orders update IS affected (O term exists), so use
        // V3-like semantics via the lineitem⋈orders FK on a different view:
        // here just check the unaffected-table path.
        let _ = catalog;
        let sql = maintenance_script(&a, "oj_view", "nation", UpdateOp::Insert, true, true);
        assert!(sql.contains("does not reference"));
    }

    #[test]
    fn delete_script_uses_inverse_operations() {
        let a = analysis();
        let sql = maintenance_script(&a, "oj_view", "lineitem", UpdateOp::Delete, true, true);
        assert!(sql.contains("DELETE FROM oj_view WHERE view_key IN"));
        assert!(sql.contains("INSERT INTO oj_view\nSELECT DISTINCT"));
    }

    #[test]
    fn null_if_renders_as_comment_annotation() {
        // Updating part without FK knowledge leaves the bushy
        // `(L ⋈ O) ro C` right operand; left-deep conversion introduces the
        // λ/δ pair, which must surface in the SQL rendering.
        let catalog = crate::fixtures::v1_catalog();
        let a = analyze(&catalog, &crate::fixtures::v1_view_def()).unwrap();
        let t = a.layout.table_id("s").unwrap();
        let plan = a.primary_delta_plan(t, false, true);
        let sql = from_clause_sql(&a.layout, &plan, 0);
        assert!(sql.contains("λ") || !format!("{plan:?}").contains("NullIf"));
    }
}
