//! Errors for view definition and maintenance.

use std::fmt;

use ojv_analysis::PlanViolation;
use ojv_durability::DurabilityError;
use ojv_exec::ExecError;
use ojv_rel::RelError;
use ojv_storage::StorageError;

/// Errors raised by view creation, validation, and maintenance.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Underlying storage or catalog error.
    Storage(StorageError),
    /// Data-model error.
    Rel(RelError),
    /// Delta-expression execution error (e.g. a view layout referencing a
    /// table the catalog no longer has).
    Exec(ExecError),
    /// The view definition violates one of the paper's §2 restrictions or
    /// references unknown catalog objects.
    InvalidView { view: String, detail: String },
    /// A view with this name already exists in the database.
    DuplicateView { view: String },
    /// The named view does not exist.
    UnknownView { view: String },
    /// The static plan verifier found a compiled plan violating one of the
    /// paper's invariants (see `ojv-analysis`).
    Plan(PlanViolation),
    /// WAL / checkpoint / filesystem error from the durability layer.
    Durability(DurabilityError),
    /// A maintenance job panicked on a worker thread of the batch executor.
    /// The panic is caught at the job boundary — sibling views finish their
    /// jobs and the panic surfaces as an error instead of poisoning the
    /// whole process.
    MaintenancePanic { view: String, detail: String },
    /// A snapshot was requested at an LSN the registry can no longer (or
    /// not yet) serve: epoch reclamation already freed every version below
    /// `floor`.
    SnapshotUnavailable { requested: u64, floor: u64 },
    /// A durable write failed *after* the in-memory state was mutated, so
    /// RAM is ahead of the log and no longer reproducible by recovery; the
    /// database refuses further durable operations. Reopen from the log to
    /// get back to a consistent (pre-failure) state.
    Poisoned { detail: String },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Storage(e) => write!(f, "{e}"),
            CoreError::Rel(e) => write!(f, "{e}"),
            CoreError::Exec(e) => write!(f, "{e}"),
            CoreError::InvalidView { view, detail } => {
                write!(f, "invalid view {view}: {detail}")
            }
            CoreError::DuplicateView { view } => write!(f, "view {view} already exists"),
            CoreError::UnknownView { view } => write!(f, "unknown view {view}"),
            CoreError::Plan(v) => write!(f, "plan verification failed: {v}"),
            CoreError::MaintenancePanic { view, detail } => {
                write!(f, "maintenance of view {view} panicked: {detail}")
            }
            CoreError::Durability(e) => write!(f, "{e}"),
            CoreError::SnapshotUnavailable { requested, floor } => {
                write!(
                    f,
                    "snapshot at lsn {requested} unavailable: oldest retained version is {floor}"
                )
            }
            CoreError::Poisoned { detail } => {
                write!(
                    f,
                    "durable database poisoned (in-memory state is ahead of the log): {detail}; \
                     reopen from the log to recover"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<StorageError> for CoreError {
    fn from(e: StorageError) -> Self {
        CoreError::Storage(e)
    }
}

impl From<RelError> for CoreError {
    fn from(e: RelError) -> Self {
        CoreError::Rel(e)
    }
}

impl From<ExecError> for CoreError {
    fn from(e: ExecError) -> Self {
        CoreError::Exec(e)
    }
}

impl From<PlanViolation> for CoreError {
    fn from(v: PlanViolation) -> Self {
        CoreError::Plan(v)
    }
}

impl From<DurabilityError> for CoreError {
    fn from(e: DurabilityError) -> Self {
        CoreError::Durability(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
