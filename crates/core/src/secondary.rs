//! Computation of the secondary delta `ΔV^I` (paper §5).
//!
//! The secondary delta fixes up *indirectly affected* terms: orphaned tuples
//! that stop being orphans after an insertion (and must be deleted from the
//! view), or tuples that become orphans after a deletion (and must be
//! inserted). Two strategies are implemented:
//!
//! * **from the view** (§5.2) — the orphan test probes the maintained view
//!   itself, exploiting its unique key (an orphan of term `T_i` has a view
//!   key that is null everywhere outside `T_i`, so the probe is an index
//!   lookup — this is what the paper's Q3/Q4 statements do with V3's
//!   clustered index);
//! * **from base tables** (§5.3) — the orphan test anti-joins candidate
//!   tuples against each directly affected parent's "rest expression"
//!   `E'_{ip}`, built from base tables and the pre/post state of the updated
//!   table.

use ojv_algebra::{Expr, JoinKind, Pred, TableId, TableSet, Term};
use ojv_exec::{join_rows_expr, ExecCtx, ExecResult, ViewLayout};
use ojv_rel::{key_eq, key_of, Datum, FxHashSet, Row};

use crate::maintain::IndirectTermView;
use crate::materialize::ViewStore;

/// Static context shared by the secondary-delta computations of one
/// maintenance run.
pub struct SecondaryCtx<'a> {
    pub layout: &'a ViewLayout,
    pub terms: &'a [Term],
    /// The updated table.
    pub updated: TableId,
}

impl SecondaryCtx<'_> {
    fn parent_sources(&self, parents: &[usize]) -> Vec<TableSet> {
        parents.iter().map(|&k| self.terms[k].tables).collect()
    }

    /// `σ_{P_i}` — delta rows added to (or removed from) some directly
    /// affected parent: rows non-null on all of a parent's source tables.
    fn rows_matching_parents<'r>(
        &self,
        primary: &'r [Row],
        pard_sources: &[TableSet],
    ) -> impl Iterator<Item = &'r Row> + use<'r, '_> {
        let layout = self.layout;
        let pard: Vec<TableSet> = pard_sources.to_vec();
        primary.iter().filter(move |r| {
            let sources = layout.sources_of_row(r);
            pard.iter().any(|tk| tk.is_subset_of(sources))
        })
    }

    /// Project a wide row onto the term's tables (null out the rest).
    fn project_to(&self, tables: TableSet, row: &Row) -> Row {
        let mut out = row.clone();
        self.layout
            .null_out(self.layout.all_tables().difference(tables), &mut out);
        out
    }
}

/// §5.2, insertion case:
/// `∆D_i = σ_{nn(T_i)∧n(S_i)}(V + ∆V^D) ⋉_{eq(T_i)} σ_{P_i} ∆V^D`.
///
/// Returns the **view keys** of the orphan rows to delete. The orphan scan
/// is implemented as index probes: an orphan of term `T_i` has the unique
/// view key "`T_i` keys ++ nulls", which each qualifying delta row
/// determines completely.
pub fn from_view_insert(
    ctx: &SecondaryCtx<'_>,
    store: &ViewStore,
    ind: &IndirectTermView<'_>,
    primary: &[Row],
) -> Vec<Vec<Datum>> {
    let ti = ctx.terms[ind.term].tables;
    let pard_sources = ctx.parent_sources(ind.pard);
    let mut probes: FxHashSet<Vec<Datum>> = FxHashSet::default();
    let mut out = Vec::new();
    for row in ctx.rows_matching_parents(primary, &pard_sources) {
        let orphan_pattern = ctx.project_to(ti, row);
        let key = store.key_of_row(&orphan_pattern);
        if probes.insert(key.clone()) && store.contains(&key) {
            out.push(key);
        }
    }
    out
}

/// §5.2, deletion case:
/// `∆D_i = (δ π_{T_i.*} σ_{P_i} ∆V^D) ▷_{eq(T_i)} (V − ∆V^D)`.
///
/// Returns the new orphan rows (wide, `T_i` slots only) to insert into the
/// view. The anti join is one pass over the view.
pub fn from_view_delete(
    ctx: &SecondaryCtx<'_>,
    store: &ViewStore,
    ind: &IndirectTermView<'_>,
    primary: &[Row],
) -> Vec<Row> {
    let ti = ctx.terms[ind.term].tables;
    let ti_keys = ctx.layout.term_key_cols(ti);
    let pard_sources = ctx.parent_sources(ind.pard);

    // Candidate orphans: distinct T_i projections of delta rows that were
    // deleted from some directly affected parent.
    let mut candidates: Vec<Row> = Vec::new();
    let mut seen: FxHashSet<Vec<Datum>> = FxHashSet::default();
    for row in ctx.rows_matching_parents(primary, &pard_sources) {
        let key = key_of(row, &ti_keys);
        if seen.insert(key) {
            candidates.push(ctx.project_to(ti, row));
        }
    }
    if candidates.is_empty() {
        return candidates;
    }
    // Anti join against the view: a candidate still covered by any remaining
    // view row (necessarily of a superset term) is not an orphan. With a
    // term-key count index on the view (the paper's `V4_idx`), this is one
    // lookup per candidate; otherwise one pass over the view.
    if candidates
        .iter()
        .all(|r| store.count_by_key(&ti_keys, &key_of(r, &ti_keys)).is_some())
    {
        return candidates
            .into_iter()
            .filter(|r| {
                store
                    .count_by_key(&ti_keys, &key_of(r, &ti_keys))
                    .expect("index checked above")
                    == 0
            })
            .collect();
    }
    let candidate_keys: FxHashSet<Vec<Datum>> =
        candidates.iter().map(|r| key_of(r, &ti_keys)).collect();
    let mut covered: FxHashSet<Vec<Datum>> = FxHashSet::default();
    for row in store.rows() {
        let key = key_of(row, &ti_keys);
        if !key.iter().any(Datum::is_null) && candidate_keys.contains(&key) {
            covered.insert(key);
        }
    }
    candidates
        .into_iter()
        .filter(|r| !covered.contains(&key_of(r, &ti_keys)))
        .collect()
}

/// The paper's §9 future-work direction: "combine (parts of) the
/// computations for the different terms … by saving and reusing partial
/// results". This combined form of the §5.2 strategy classifies every
/// primary-delta row against *all* indirect terms in a single pass (instead
/// of one pass per term) and then resolves each term's orphan probes against
/// the view indexes as usual.
///
/// For insertions it returns, per term, the view keys of orphans to delete;
/// for deletions, the orphan rows to insert. Results are identical to
/// calling [`from_view_insert`]/[`from_view_delete`] per term.
pub fn from_view_combined(
    ctx: &SecondaryCtx<'_>,
    store: &ViewStore,
    inds: &[IndirectTermView<'_>],
    primary: &[Row],
    insert: bool,
) -> Vec<CombinedTermDelta> {
    struct TermState {
        ti: TableSet,
        ti_keys: Vec<usize>,
        pard_sources: Vec<TableSet>,
        seen: FxHashSet<Vec<Datum>>,
        candidates: Vec<Row>,
    }
    let mut states: Vec<TermState> = inds
        .iter()
        .map(|ind| {
            let ti = ctx.terms[ind.term].tables;
            TermState {
                ti,
                ti_keys: ctx.layout.term_key_cols(ti),
                pard_sources: ctx.parent_sources(ind.pard),
                seen: FxHashSet::default(),
                candidates: Vec::new(),
            }
        })
        .collect();

    // One shared pass over the primary delta.
    for row in primary {
        let sources = ctx.layout.sources_of_row(row);
        for st in states.iter_mut() {
            if !st.pard_sources.iter().any(|tk| tk.is_subset_of(sources)) {
                continue;
            }
            let key = key_of(row, &st.ti_keys);
            if st.seen.insert(key) {
                st.candidates.push(ctx.project_to(st.ti, row));
            }
        }
    }

    // Per-term orphan resolution against the view store. Terms arrive
    // supersets-first (see `MaintenanceGraph::build`); in the deletion case
    // a term's coverage check must also consult the orphans the *earlier*
    // (superset) terms are about to insert, since those keep covering their
    // sub-tuples.
    let mut pending_inserts: Vec<Row> = Vec::new();
    let mut out = Vec::with_capacity(states.len());
    for (st, ind) in states.into_iter().zip(inds) {
        if insert {
            let keys = st
                .candidates
                .iter()
                .map(|c| store.key_of_row(c))
                .filter(|k| store.contains(k))
                .collect();
            out.push(CombinedTermDelta {
                term: ind.term,
                delete_keys: keys,
                insert_rows: Vec::new(),
            });
        } else {
            let covered_by_pending: FxHashSet<Vec<Datum>> = pending_inserts
                .iter()
                .map(|r| key_of(r, &st.ti_keys))
                .filter(|k| !k.iter().any(Datum::is_null))
                .collect();
            let rows: Vec<Row> = st
                .candidates
                .into_iter()
                .filter(|c| {
                    let key = key_of(c, &st.ti_keys);
                    if covered_by_pending.contains(&key) {
                        return false;
                    }
                    match store.count_by_key(&st.ti_keys, &key) {
                        Some(n) => n == 0,
                        // No index: fall back to a scan.
                        None => !store.rows().iter().any(|r| key_eq(r, &st.ti_keys, &key)),
                    }
                })
                .collect();
            pending_inserts.extend(rows.iter().cloned());
            out.push(CombinedTermDelta {
                term: ind.term,
                delete_keys: Vec::new(),
                insert_rows: rows,
            });
        }
    }
    out
}

/// One indirect term's share of a combined secondary delta.
pub struct CombinedTermDelta {
    pub term: usize,
    /// Orphans to delete (insertion case) — view keys.
    pub delete_keys: Vec<Vec<Datum>>,
    /// Orphans to insert (deletion case) — wide rows.
    pub insert_rows: Vec<Row>,
}

/// §5.3: compute `∆D_i` from base tables, `ΔT`, and the primary delta.
///
/// `insert` selects between the insertion formula (anti joins against the
/// *old* state `T± ▷ ΔT`, returning prior orphans to delete) and the
/// deletion formula (anti joins against the *new* state `T±`, returning new
/// orphans to insert). Both share the candidate extraction
/// `δ π_{T_i.*} σ_{Q_i} ∆V^D`.
pub fn from_base(
    ctx: &SecondaryCtx<'_>,
    exec: &ExecCtx<'_>,
    ind: &IndirectTermView<'_>,
    primary: &[Row],
    insert: bool,
) -> ExecResult<Vec<Row>> {
    let ti = ctx.terms[ind.term].tables;
    let ti_keys = ctx.layout.term_key_cols(ti);

    // Q_i = nn(T_i) ∧ n(tables added by parents that are NOT directly
    // affected): a candidate covered by an unchanged parent term was not,
    // and does not become, an orphan.
    let unchanged_parent_tables: TableSet = ind
        .all_parents
        .iter()
        .filter(|p| !ind.pard.contains(p))
        .map(|&k| ctx.terms[k].tables.difference(ti))
        .fold(TableSet::empty(), TableSet::union);

    let mut candidates: Vec<Row> = Vec::new();
    let mut seen: FxHashSet<Vec<Datum>> = FxHashSet::default();
    for row in primary {
        let sources = ctx.layout.sources_of_row(row);
        if !ti.is_subset_of(sources) || !sources.intersect(unchanged_parent_tables).is_empty() {
            continue;
        }
        let key = key_of(row, &ti_keys);
        if seen.insert(key) {
            candidates.push(ctx.project_to(ti, row));
        }
    }

    // Anti join against every directly affected parent's rest expression,
    // evaluated as a candidate-driven semijoin chain (see
    // `anti_join_rest_expression`).
    for &k in ind.pard {
        if candidates.is_empty() {
            break;
        }
        candidates = anti_join_rest_expression(ctx, exec, ti, &ctx.terms[k], candidates, insert)?;
    }
    Ok(candidates)
}

/// Compute `candidates ▷_{q_ip} E'_{ip}` (§5.3) without materializing the
/// rest expression.
///
/// Evaluating `E'_{ip}` standalone joins base tables in full — exactly the
/// cost the paper criticizes GK for. A cost-aware optimizer instead drives
/// the probe from the (small) candidate set: we join the candidates through
/// the parent's tables along connecting conjuncts (index-nested-loop where
/// an index covers the equijoin columns, e.g. the FK secondary indexes),
/// then anti-filter the candidates by which term keys survived the chain.
/// The updated table's leaf is its *old* state for the insertion formula
/// (`T ▷ ΔT`, probed with delta-key exclusion) and its new state for the
/// deletion formula.
fn anti_join_rest_expression(
    ctx: &SecondaryCtx<'_>,
    exec: &ExecCtx<'_>,
    ti: TableSet,
    parent: &Term,
    candidates: Vec<Row>,
    insert: bool,
) -> ExecResult<Vec<Row>> {
    let t = ctx.updated;
    let ti_keys = ctx.layout.term_key_cols(ti);
    // Atoms of the parent's predicate not already satisfied within T_i.
    let mut atoms: Vec<ojv_algebra::Atom> = parent
        .pred
        .atoms()
        .iter()
        .filter(|a| !a.tables().is_subset_of(ti))
        .cloned()
        .collect();

    let mut rows = candidates.clone();
    let mut joined = ti;
    let mut remaining: Vec<TableId> = parent.tables.difference(ti).iter().collect();
    while !remaining.is_empty() && !rows.is_empty() {
        let pick = remaining
            .iter()
            .position(|&x| {
                atoms
                    .iter()
                    .any(|a| a.tables().contains(x) && a.tables().is_subset_of(joined.insert(x)))
            })
            .unwrap_or(0);
        let x = remaining.swap_remove(pick);
        let next = joined.insert(x);
        let (applicable, rest): (Vec<_>, Vec<_>) = atoms
            .into_iter()
            .partition(|a| a.tables().is_subset_of(next) && a.tables().contains(x));
        atoms = rest;
        let single_table: Vec<_>;
        let (leaf, join_pred) = if x == t && insert {
            // q(T)-only atoms filter the leaf; the rest drive the join.
            let (on_t, cross): (Vec<_>, Vec<_>) = applicable
                .into_iter()
                .partition(|a| a.tables().is_subset_of(TableSet::singleton(t)));
            single_table = on_t;
            let leaf = if single_table.is_empty() {
                Expr::OldState(t)
            } else {
                Expr::select(Pred::new(single_table.clone()), Expr::OldState(t))
            };
            (leaf, Pred::new(cross))
        } else {
            let (on_x, cross): (Vec<_>, Vec<_>) = applicable
                .into_iter()
                .partition(|a| a.tables().is_subset_of(TableSet::singleton(x)));
            single_table = on_x;
            let leaf = if single_table.is_empty() {
                Expr::Table(x)
            } else {
                Expr::select(Pred::new(single_table.clone()), Expr::Table(x))
            };
            (leaf, Pred::new(cross))
        };
        rows = join_rows_expr(exec, JoinKind::Inner, &join_pred, rows, joined, &leaf)?;
        joined = next;
    }
    debug_assert!(
        atoms.is_empty() || rows.is_empty(),
        "unplaced parent-term atoms"
    );
    let matched: FxHashSet<Vec<Datum>> = rows.iter().map(|r| key_of(r, &ti_keys)).collect();
    Ok(candidates
        .into_iter()
        .filter(|c| !matched.contains(&key_of(c, &ti_keys)))
        .collect())
}

/// Build the parent's rest expression `E'_{ip}` and the anti-join predicate
/// `q_{ip} = q(S_i, R_{ip}, T)` — the literal §5.3 formula.
///
/// [`from_base`] evaluates the same anti-semijoin through the candidate-
/// driven chain of `anti_join_rest_expression`; this builder is exposed
/// for inspection (plan printing, tests) and as the reference form.
///
/// The parent term is `σ_{p_k}(T_i × R_{ip} × T)`; its predicate conjuncts
/// are split by reference set: atoms within `T_i` are already satisfied by
/// the candidates; atoms touching `T_i` and the rest become the anti-join
/// predicate; everything else goes into the rest expression, which joins the
/// updated table's old (insert) or new (delete) state with the `R_{ip}`
/// tables.
pub fn rest_expression(
    ctx: &SecondaryCtx<'_>,
    ti: TableSet,
    parent: &Term,
    insert: bool,
) -> (Expr, Pred) {
    let t = ctx.updated;
    let rip = parent.tables.difference(ti).remove(t);
    let rip_t = rip.insert(t);

    let mut q_t: Vec<ojv_algebra::Atom> = Vec::new();
    let mut qip: Vec<ojv_algebra::Atom> = Vec::new();
    let mut rest: Vec<ojv_algebra::Atom> = Vec::new();
    for atom in parent.pred.atoms() {
        let tabs = atom.tables();
        if tabs.is_subset_of(ti) {
            // Within the candidate tuple — already satisfied.
        } else if !tabs.intersect(ti).is_empty() {
            // Connects T_i with the rest: the anti-join predicate.
            qip.push(atom.clone());
        } else if tabs.is_subset_of(TableSet::singleton(t)) {
            q_t.push(atom.clone());
        } else {
            debug_assert!(tabs.is_subset_of(rip_t));
            rest.push(atom.clone());
        }
    }

    // Leaf for the updated table: old state for the insertion formula, new
    // state for the deletion formula.
    let mut expr = if insert {
        Expr::OldState(t)
    } else {
        Expr::Table(t)
    };
    if !q_t.is_empty() {
        expr = Expr::select(Pred::new(q_t), expr);
    }

    // Greedily join in the R_{ip} tables along connecting predicates.
    let mut joined = TableSet::singleton(t);
    let mut remaining: Vec<TableId> = rip.iter().collect();
    while !remaining.is_empty() {
        let pick = remaining
            .iter()
            .position(|&x| {
                rest.iter()
                    .any(|a| a.tables().contains(x) && a.tables().is_subset_of(joined.insert(x)))
            })
            .unwrap_or(0);
        let x = remaining.swap_remove(pick);
        let next = joined.insert(x);
        let (applicable, leftover): (Vec<_>, Vec<_>) = rest
            .into_iter()
            .partition(|a| a.tables().is_subset_of(next) && a.tables().contains(x));
        rest = leftover;
        expr = Expr::inner(Pred::new(applicable), expr, Expr::Table(x));
        joined = next;
    }
    debug_assert!(rest.is_empty(), "unplaced rest-expression atoms");
    (expr, Pred::new(qip))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ojv_algebra::Atom;

    // End-to-end behaviour of the secondary strategies is covered by the
    // maintenance tests (crate::maintain) and the integration suite; here we
    // unit-test the rest-expression builder.

    #[test]
    fn rest_expression_for_v1_insert() {
        // V1, update T(=2), indirect term R(=0) with direct parent TR.
        // Parent pred = p(r,t). R_{ip} is empty, so E' is just old(T) and
        // q_ip = p(r,t).
        let mut c = crate::fixtures::v1_catalog();
        let _ = &mut c;
        let a = crate::analyze::analyze(&c, &crate::fixtures::v1_view_def()).unwrap();
        let t = a.layout.table_id("t").unwrap();
        let r = a.layout.table_id("r").unwrap();
        let ti = TableSet::singleton(r);
        let parent = a
            .terms
            .iter()
            .find(|x| x.tables == TableSet::from_iter([r, t]))
            .unwrap();
        let ctx = SecondaryCtx {
            layout: &a.layout,
            terms: &a.terms,
            updated: t,
        };
        let (eprime, qip) = rest_expression(&ctx, ti, parent, true);
        assert_eq!(eprime, Expr::OldState(t));
        assert_eq!(qip.atoms().len(), 1);
        assert!(matches!(qip.atoms()[0], Atom::Cols(..)));

        let (eprime_del, _) = rest_expression(&ctx, ti, parent, false);
        assert_eq!(eprime_del, Expr::Table(t));
    }

    #[test]
    fn rest_expression_with_extra_tables() {
        // Indirect term {R} with direct parent {T,U,R}: R_{ip} = {U}, the
        // rest expression joins old(T) with U on p(t,u).
        let c = crate::fixtures::v1_catalog();
        let a = crate::analyze::analyze(&c, &crate::fixtures::v1_view_def()).unwrap();
        let t = a.layout.table_id("t").unwrap();
        let u = a.layout.table_id("u").unwrap();
        let r = a.layout.table_id("r").unwrap();
        let parent = a
            .terms
            .iter()
            .find(|x| x.tables == TableSet::from_iter([r, t, u]))
            .unwrap();
        let ctx = SecondaryCtx {
            layout: &a.layout,
            terms: &a.terms,
            updated: t,
        };
        let (eprime, qip) = rest_expression(&ctx, TableSet::singleton(r), parent, true);
        match &eprime {
            Expr::Join {
                kind, left, right, ..
            } => {
                assert_eq!(*kind, JoinKind::Inner);
                assert_eq!(**left, Expr::OldState(t));
                assert_eq!(**right, Expr::Table(u));
            }
            other => panic!("expected join, got {other:?}"),
        }
        assert_eq!(qip.atoms().len(), 1);
    }
}
