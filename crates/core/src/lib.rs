//! Incremental maintenance of materialized outer-join views.
//!
//! This crate implements the maintenance procedure of Larson & Zhou,
//! *Efficient Maintenance of Materialized Outer-Join Views* (ICDE 2007), on
//! top of the workspace's storage (`ojv-storage`), algebra (`ojv-algebra`),
//! and execution (`ojv-exec`) substrates:
//!
//! * [`view_def`] — name-based SPOJ view definitions,
//! * [`analyze`] — resolution, normal form, subsumption graph, delta plans,
//! * [`materialize`] — initial materialization and view storage,
//! * [`compile`] — compiled physical maintenance plans, cached per view,
//! * [`maintain`] — the two-step primary/secondary maintenance procedure,
//! * [`batch`] — batched multi-view maintenance with cross-view sharing of
//!   common plan prefixes and a bounded worker pool,
//! * [`secondary`] — §5.2 (from-view) and §5.3 (from-base) strategies,
//! * [`agg_view`] — aggregated outer-join views (§3.3),
//! * [`baseline`] — Griffin–Kumar-style change propagation and full
//!   recompute, for the paper's experimental comparison,
//! * [`database`] — a small façade tying the catalog and views together,
//! * [`snapshot`] — LSN-versioned view images: consistent snapshot reads
//!   concurrent with maintenance, with epoch-based reclamation,
//! * [`durable`] — WAL + checkpoints + crash recovery replayed through the
//!   incremental engine.
//!
//! # Quick start
//!
//! ```
//! use ojv_core::prelude::*;
//! use ojv_core::fixtures;
//!
//! // Build the paper's Example 1 schema and view.
//! let mut catalog = fixtures::example1_catalog();
//! fixtures::populate_example1(&mut catalog, 10, 12);
//! let mut db = Database::new(catalog);
//! db.create_view(fixtures::oj_view_def()).unwrap();
//!
//! // Inserting lineitems incrementally maintains the view.
//! let reports = db
//!     .insert("lineitem", vec![fixtures::lineitem_row(3, 1, 2, 4, 42.0)])
//!     .unwrap();
//! assert_eq!(reports.len(), 1);
//! assert!(db.view("oj_view").unwrap().len() > 0);
//! ```

#![forbid(unsafe_code)]

pub mod agg_view;
pub mod analyze;
pub mod baseline;
pub mod batch;
pub mod compile;
pub mod database;
pub mod deferred;
pub mod durable;
pub mod error;
pub mod explain;
pub mod fixtures;
pub mod maintain;
pub mod materialize;
pub mod parser;
pub mod policy;
pub mod secondary;
pub mod shard;
pub mod shard_durable;
pub mod snapshot;
pub mod sql;
pub mod term_delta;
mod trace;
pub mod view_def;
pub mod view_match;

/// The commonly used types, for `use ojv_core::prelude::*`.
pub mod prelude {
    pub use crate::agg_view::{AggSpec, AggViewDef, MaterializedAggView};
    pub use crate::analyze::{analyze, ViewAnalysis};
    pub use crate::compile::{compile_count, CompiledMaintenancePlan, PlanCache, PlanConfig};
    pub use crate::database::Database;
    pub use crate::deferred::DeferredView;
    pub use crate::durable::{DurableDatabase, RecoveryReport};
    pub use crate::error::{CoreError, Result};
    pub use crate::explain::{explain_plan, render_exec_stats};
    pub use crate::maintain::{maintain, verify_against_recompute, MaintenanceReport};
    pub use crate::materialize::MaterializedView;
    pub use crate::parser::parse_view;
    pub use crate::policy::{MaintenancePolicy, SecondaryStrategy};
    pub use crate::shard::{RoutingSpec, ShardedDatabase, ShardedSnapshot};
    pub use crate::shard_durable::{ShardedDurableDatabase, ShardedRecoveryReport};
    pub use crate::snapshot::{
        delta_counts, CommitObserver, FanoutStats, Snapshot, SnapshotRegistry, SnapshotStats,
        SnapshotView, ViewOp,
    };
    pub use crate::view_def::{col_between, col_cmp, col_eq, NamedAtom, ViewDef, ViewExpr};
    pub use crate::view_match::{execute_match, match_view, ViewMatch};
    pub use ojv_algebra::{CmpOp, JoinKind};
    pub use ojv_durability::{DiskVfs, FsyncPolicy, MemVfs, Vfs};
    pub use ojv_exec::{ExecStatsSnapshot, ParallelSpec};
    pub use ojv_rel::{Datum, Relation, Row};
    pub use ojv_storage::{Catalog, Update, UpdateOp};
}
