//! The two-step incremental maintenance procedure (paper §3.2):
//! compute and apply the primary delta, then the secondary delta.

use std::time::{Duration, Instant};

use ojv_exec::{eval_expr, DeltaInput, ExecCtx, ExecStats, ExecStatsSnapshot};
use ojv_rel::Row;
use ojv_storage::{Catalog, Update, UpdateOp};

use crate::analyze::ViewAnalysis;
use crate::compile::{CompiledMaintenancePlan, PlanConfig};
use crate::error::Result;
use crate::materialize::MaterializedView;
use crate::policy::{MaintenancePolicy, SecondaryStrategy};
use crate::secondary::{self, SecondaryCtx};

/// An indirectly affected term with its parent sets — what the secondary
/// delta computations consume.
#[derive(Debug, Clone, Copy)]
pub struct IndirectTermView<'a> {
    /// Term index in the view's normal form.
    pub term: usize,
    /// Directly affected (minimal-superset) parents.
    pub pard: &'a [usize],
    /// All minimal-superset parents (for the `Q_i` null filter).
    pub all_parents: &'a [usize],
}

/// What one maintenance run did, with per-phase wall-clock timings — the
/// measurements behind the Figure 5 reproduction.
#[derive(Debug, Clone, Default)]
pub struct MaintenanceReport {
    pub view: String,
    pub table: String,
    /// Rows in the applied base-table update.
    pub update_rows: usize,
    /// True when the maintenance graph was empty (view untouched).
    pub noop: bool,
    pub direct_terms: usize,
    pub indirect_terms: usize,
    /// Rows in `ΔV^D`.
    pub primary_rows: usize,
    /// Rows deleted/inserted by the secondary step.
    pub secondary_rows: usize,
    /// Time to compute `ΔV^D`.
    pub primary_compute: Duration,
    /// Time to apply `ΔV^D` to the view store.
    pub primary_apply: Duration,
    /// Time to compute and apply `ΔV^I`.
    pub secondary_time: Duration,
    /// Per-operator executor counters (rows in/out, morsels, time) for the
    /// whole run — filter, join build/probe, index join, dedup, subsumption.
    pub exec: ExecStatsSnapshot,
    /// Static-verifier checks passed when this run's plan was *compiled*
    /// (0 when verification was off: release build without
    /// `MaintenancePolicy::verify_plans`). Cache hits report the checks of
    /// the original compilation.
    pub verified_checks: usize,
    /// Canonical fingerprint of the primary-delta plan this run executed
    /// (0 when there was no primary plan).
    pub plan_fingerprint: u64,
    /// In a batched run: how many views shared this run's primary delta
    /// evaluation (including this one). 0 for unshared/serial runs.
    pub shared_with: usize,
}

impl MaintenanceReport {
    pub fn total_time(&self) -> Duration {
        self.primary_compute + self.primary_apply + self.secondary_time
    }
}

/// Bring `view` up to date after `update` has been applied to the catalog.
///
/// Implements the procedure of §3.2: classify terms via the (possibly
/// FK-reduced) maintenance graph; compute and apply the primary delta; then
/// compute the secondary delta with the configured strategy and apply it
/// with the inverse operation.
///
/// The update-independent artifacts — maintenance graph, primary-delta plan,
/// §5.2 availability, static verification — come from the view's compiled
/// plan cache ([`crate::compile`]); only the delta arity check runs per
/// update.
pub fn maintain(
    view: &mut MaterializedView,
    catalog: &Catalog,
    update: &Update,
    policy: &MaintenancePolicy,
) -> Result<MaintenanceReport> {
    let mut report = MaintenanceReport {
        view: view.name().to_string(),
        table: update.table.clone(),
        update_rows: update.rows.len(),
        ..Default::default()
    };
    let Some(t) = view.analysis.layout.table_id(&update.table) else {
        report.noop = true;
        return Ok(report);
    };
    let compiled = view.compiled_plan(catalog, t, PlanConfig::of(policy))?;
    if compiled.noop {
        report.noop = true;
        return Ok(report);
    }
    // Cloned so the execution context can borrow the layout while the view
    // store is mutated; the analysis is small (terms, graph, layout with
    // shared schemas).
    let analysis = view.analysis.clone();
    // The one per-run check: the delta's arity must match the compiled
    // layout. Everything else was verified at compile time.
    ojv_analysis::verify_delta_arity(&analysis.layout, t, update.rows.schema().len())
        .map_err(crate::error::CoreError::Plan)?;

    let delta_input = DeltaInput {
        table: t,
        rows: &update.rows,
    };
    let stats = ExecStats::default();
    let exec = ExecCtx::with_delta(catalog, &analysis.layout, delta_input)
        .with_parallel(policy.parallel)
        .with_stats(&stats);

    // Step 1: primary delta (§4).
    let start = Instant::now();
    let primary: Vec<Row> = match &compiled.plan {
        None => Vec::new(),
        Some(plan) => eval_expr(&exec, plan)?,
    };
    let primary_compute = start.elapsed();

    apply_with_primary(
        view,
        &exec,
        update,
        policy,
        &analysis,
        &compiled,
        &primary,
        &mut report,
    )?;
    report.primary_compute = primary_compute;
    report.exec = stats.snapshot();
    Ok(report)
}

/// Apply an already-computed primary delta and run the secondary step —
/// everything in a maintenance run *after* `ΔV^D` evaluation. Factored out
/// so the batch layer can feed a shared primary delta into several views.
///
/// Fills every report field except `primary_compute` and `exec`, which
/// depend on how (and whether) the caller evaluated the primary.
#[allow(clippy::too_many_arguments)]
pub(crate) fn apply_with_primary(
    view: &mut MaterializedView,
    exec: &ExecCtx<'_>,
    update: &Update,
    policy: &MaintenancePolicy,
    analysis: &ViewAnalysis,
    compiled: &CompiledMaintenancePlan,
    primary: &[Row],
    report: &mut MaintenanceReport,
) -> Result<()> {
    let t = compiled.table;
    report.direct_terms = compiled.mgraph.direct.len();
    report.indirect_terms = compiled.indirect.len();
    report.verified_checks = compiled.verified_checks;
    report.plan_fingerprint = compiled.fingerprint;
    report.primary_rows = primary.len();

    let start = Instant::now();
    apply_primary(view, primary, update.op)?;
    report.primary_apply = start.elapsed();

    // Step 2: secondary delta (§5), applied with the inverse operation.
    let start = Instant::now();
    if !compiled.indirect.is_empty() && !primary.is_empty() {
        let sctx = SecondaryCtx {
            layout: &analysis.layout,
            terms: &analysis.terms,
            updated: t,
        };
        // §9 future work: one shared pass over ΔV^D for all indirect terms.
        // Like the per-term path below, this is only legal when every
        // indirect term passes the §5.2 availability condition (checked at
        // compile time as `combine_ok`); otherwise fall through to the
        // per-term loop and its base-table fallback.
        if policy.combine_secondary
            && resolve_strategy(policy.secondary, update.op) == SecondaryStrategy::FromView
            && compiled.combine_ok
        {
            let ind_views: Vec<IndirectTermView<'_>> = compiled
                .indirect
                .iter()
                .map(|ind| IndirectTermView {
                    term: ind.term,
                    pard: &ind.pard,
                    all_parents: &ind.all_parents,
                })
                .collect();
            let insert = update.op == UpdateOp::Insert;
            let deltas =
                secondary::from_view_combined(&sctx, view.store(), &ind_views, primary, insert);
            let name = view.name().to_string();
            for d in deltas {
                report.secondary_rows += d.delete_keys.len() + d.insert_rows.len();
                for key in d.delete_keys {
                    view.store_mut().delete(&key, &name)?;
                }
                for row in d.insert_rows {
                    view.store_mut().insert(row, &name)?;
                }
            }
            report.secondary_time = start.elapsed();
            return Ok(());
        }
        for ind in &compiled.indirect {
            let ind_view = IndirectTermView {
                term: ind.term,
                pard: &ind.pard,
                all_parents: &ind.all_parents,
            };
            let mut strategy = resolve_strategy(policy.secondary, update.op);
            // §5.2 column availability (resolved at compile time): "If a
            // view does not output the columns required by the expressions
            // above, then the expression cannot be used and ∆D_i has to be
            // computed using base tables."
            if strategy == SecondaryStrategy::FromView && !ind.from_view_ok {
                strategy = SecondaryStrategy::FromBase;
            }
            report.secondary_rows += match (strategy, update.op) {
                (SecondaryStrategy::FromView, UpdateOp::Insert) => {
                    let keys = secondary::from_view_insert(&sctx, view.store(), &ind_view, primary);
                    let name = view.name().to_string();
                    let n = keys.len();
                    for key in keys {
                        view.store_mut().delete(&key, &name)?;
                    }
                    n
                }
                (SecondaryStrategy::FromView, UpdateOp::Delete) => {
                    let rows = secondary::from_view_delete(&sctx, view.store(), &ind_view, primary);
                    let name = view.name().to_string();
                    let n = rows.len();
                    for row in rows {
                        view.store_mut().insert(row, &name)?;
                    }
                    n
                }
                (SecondaryStrategy::FromBase, op) => {
                    let insert = op == UpdateOp::Insert;
                    let rows = secondary::from_base(&sctx, exec, &ind_view, primary, insert)?;
                    let name = view.name().to_string();
                    let n = rows.len();
                    for row in rows {
                        if insert {
                            // Prior orphans uncovered by the insert: delete.
                            let key = view.store().key_of_row(&row);
                            view.store_mut().delete(&key, &name)?;
                        } else {
                            // New orphans created by the delete: insert.
                            view.store_mut().insert(row, &name)?;
                        }
                    }
                    n
                }
                (SecondaryStrategy::Auto, _) => unreachable!("resolved above"),
            };
        }
    }
    report.secondary_time = start.elapsed();
    Ok(())
}

/// `Auto` resolves to the view-based strategy (§5.2): with the view's
/// clustered key and term-key count indexes, both the insertion-case probes
/// and the deletion-case anti-joins are index lookups proportional to the
/// delta. The paper agrees — "when possible, it is usually cheaper to use
/// the view" — while §5.3's base-table strategy remains available for views
/// that cannot expose their terms (aggregated views) and for the ablation.
fn resolve_strategy(s: SecondaryStrategy, _op: UpdateOp) -> SecondaryStrategy {
    match s {
        SecondaryStrategy::Auto => SecondaryStrategy::FromView,
        other => other,
    }
}

fn apply_primary(view: &mut MaterializedView, primary: &[Row], op: UpdateOp) -> Result<()> {
    let name = view.name().to_string();
    match op {
        UpdateOp::Insert => {
            for row in primary {
                view.store_mut().insert(row.clone(), &name)?;
            }
        }
        UpdateOp::Delete => {
            for row in primary {
                let key = view.store().key_of_row(row);
                view.store_mut().delete(&key, &name)?;
            }
        }
    }
    Ok(())
}

/// Recompute the view from scratch and verify that the maintained contents
/// match — the correctness oracle used by tests.
pub fn verify_against_recompute(view: &MaterializedView, catalog: &Catalog) -> bool {
    let ctx = ExecCtx::new(catalog, &view.analysis.layout);
    let mut fresh = eval_expr(&ctx, &view.analysis.expr)
        .expect("recompute oracle: every view table is in the catalog");
    let mut have: Vec<Row> = view.wide_rows().to_vec();
    fresh.sort();
    have.sort();
    fresh == have
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::*;
    use crate::policy::MaintenancePolicy;
    use ojv_algebra::TableSet;
    use ojv_rel::Datum;

    fn policies() -> Vec<MaintenancePolicy> {
        vec![
            MaintenancePolicy::paper(),
            MaintenancePolicy::naive(),
            MaintenancePolicy {
                secondary: SecondaryStrategy::FromView,
                ..Default::default()
            },
            MaintenancePolicy {
                secondary: SecondaryStrategy::FromBase,
                ..Default::default()
            },
            MaintenancePolicy {
                use_fk: false,
                left_deep: true,
                secondary: SecondaryStrategy::FromView,
                ..Default::default()
            },
            MaintenancePolicy {
                use_fk: true,
                left_deep: false,
                secondary: SecondaryStrategy::FromBase,
                ..Default::default()
            },
            MaintenancePolicy {
                combine_secondary: true,
                ..Default::default()
            },
        ]
    }

    /// Example 1 end-to-end: inserting lineitems must add full rows and
    /// remove orphaned part/orders rows; every policy agrees with recompute.
    #[test]
    fn lineitem_insert_all_policies() {
        for policy in policies() {
            let mut c = example1_catalog();
            populate_example1(&mut c, 8, 9);
            let mut view = MaterializedView::create(&c, oj_view_def()).unwrap();
            // Order 3 is orphaned (multiple of 3); insert its first lineitem
            // referencing part 7, which only order 6's second line uses —
            // engineered below to make both an order and a part lose orphan
            // status.
            let up = c
                .insert("lineitem", vec![lineitem_row(3, 1, 2, 4, 42.0)])
                .unwrap();
            let report = maintain(&mut view, &c, &up, &policy).unwrap();
            assert!(!report.noop, "policy {policy:?}");
            assert_eq!(report.primary_rows, 1);
            assert!(
                verify_against_recompute(&view, &c),
                "policy {policy:?} diverged from recompute"
            );
        }
    }

    #[test]
    fn lineitem_delete_all_policies() {
        for policy in policies() {
            let mut c = example1_catalog();
            populate_example1(&mut c, 8, 9);
            let mut view = MaterializedView::create(&c, oj_view_def()).unwrap();
            // Delete order 2's only... order 2 has lines 1 and 2; delete
            // line 1 first (partial), then line 2 (order 2 becomes orphan).
            for ln in [1i64, 2] {
                let up = c
                    .delete("lineitem", &[vec![Datum::Int(2), Datum::Int(ln)]])
                    .unwrap();
                maintain(&mut view, &c, &up, &policy).unwrap();
                assert!(
                    verify_against_recompute(&view, &c),
                    "policy {policy:?} diverged after deleting line {ln}"
                );
            }
            // Order 2 must now appear as an orphan row.
            let o = view.analysis.layout.table_id("orders").unwrap();
            let orphan_orders = view
                .wide_rows()
                .iter()
                .filter(|r| {
                    view.analysis
                        .layout
                        .row_matches_term(TableSet::singleton(o), r)
                        && r[view.analysis.layout.slot(o).offset] == Datum::Int(2)
                })
                .count();
            assert_eq!(orphan_orders, 1, "policy {policy:?}");
        }
    }

    /// Example 1's headline: inserting parts or orders only touches the
    /// view with the new rows themselves (FK fast path), and the report
    /// shows no secondary work.
    #[test]
    fn part_insert_fast_path() {
        let mut c = example1_catalog();
        populate_example1(&mut c, 8, 9);
        let mut view = MaterializedView::create(&c, oj_view_def()).unwrap();
        let before = view.len();
        let up = c
            .insert("part", vec![part_row(100, "new part", 1.0)])
            .unwrap();
        let report = maintain(&mut view, &c, &up, &MaintenancePolicy::paper()).unwrap();
        assert_eq!(report.primary_rows, 1);
        assert_eq!(report.secondary_rows, 0);
        assert_eq!(report.indirect_terms, 0);
        assert_eq!(view.len(), before + 1);
        assert!(verify_against_recompute(&view, &c));
    }

    #[test]
    fn orders_insert_fast_path_and_delete() {
        let mut c = example1_catalog();
        populate_example1(&mut c, 8, 9);
        let mut view = MaterializedView::create(&c, oj_view_def()).unwrap();
        let up = c.insert("orders", vec![order_row(100, 5)]).unwrap();
        let report = maintain(&mut view, &c, &up, &MaintenancePolicy::paper()).unwrap();
        assert_eq!(report.primary_rows, 1);
        assert!(verify_against_recompute(&view, &c));
        // Deleting it again (it has no lineitems) removes the orphan row.
        let down = c.delete("orders", &[vec![Datum::Int(100)]]).unwrap();
        let report = maintain(&mut view, &c, &down, &MaintenancePolicy::paper()).unwrap();
        assert_eq!(report.primary_rows, 1);
        assert!(verify_against_recompute(&view, &c));
    }

    /// Without FK knowledge the same part insert must still be correct —
    /// just with more work (two direct terms instead of one).
    #[test]
    fn part_insert_without_fk_is_equivalent() {
        let mut c = example1_catalog();
        populate_example1(&mut c, 8, 9);
        let mut view = MaterializedView::create(&c, oj_view_def()).unwrap();
        let mut view2 = view.clone();
        let up = c.insert("part", vec![part_row(100, "p", 1.0)]).unwrap();
        maintain(&mut view, &c, &up, &MaintenancePolicy::paper()).unwrap();
        maintain(&mut view2, &c, &up, &MaintenancePolicy::naive()).unwrap();
        let mut a: Vec<Row> = view.wide_rows().to_vec();
        let mut b: Vec<Row> = view2.wide_rows().to_vec();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    /// An update to a table the view does not reference is a no-op.
    /// The §9 combined secondary computation must agree with the per-term
    /// form on both directions.
    #[test]
    fn combined_secondary_matches_per_term() {
        let mut c = example1_catalog();
        populate_example1(&mut c, 8, 9);
        let mut plain = MaterializedView::create(&c, oj_view_def()).unwrap();
        let mut combined = plain.clone();
        let per_term = MaintenancePolicy {
            secondary: SecondaryStrategy::FromView,
            ..Default::default()
        };
        let one_pass = MaintenancePolicy {
            secondary: SecondaryStrategy::FromView,
            combine_secondary: true,
            ..Default::default()
        };
        let up = c
            .insert("lineitem", vec![lineitem_row(3, 1, 2, 4, 42.0)])
            .unwrap();
        let a = maintain(&mut plain, &c, &up, &per_term).unwrap();
        let b = maintain(&mut combined, &c, &up, &one_pass).unwrap();
        assert_eq!(a.secondary_rows, b.secondary_rows);
        let down = c
            .delete("lineitem", &[vec![Datum::Int(3), Datum::Int(1)]])
            .unwrap();
        let a = maintain(&mut plain, &c, &down, &per_term).unwrap();
        let b = maintain(&mut combined, &c, &down, &one_pass).unwrap();
        assert_eq!(a.secondary_rows, b.secondary_rows);
        let mut x: Vec<Row> = plain.wide_rows().to_vec();
        let mut y: Vec<Row> = combined.wide_rows().to_vec();
        x.sort();
        y.sort();
        assert_eq!(x, y);
        assert!(verify_against_recompute(&combined, &c));
    }

    /// §5.2 column availability: a view whose output hides key columns must
    /// still maintain correctly — the per-term strategy silently falls back
    /// to base tables.
    #[test]
    fn projected_view_falls_back_to_base_tables() {
        let mut c = example1_catalog();
        populate_example1(&mut c, 8, 9);
        let def = oj_view_def().with_projection(vec![
            ("part", "p_partkey"),
            ("orders", "o_orderkey"),
            ("lineitem", "l_quantity"), // nullable: lineitem unavailable
        ]);
        let mut view = MaterializedView::create(&c, def).unwrap();
        assert!((0..view.analysis.terms.len()).all(|i| !view.analysis.from_view_available(i)));
        let policy = MaintenancePolicy {
            secondary: SecondaryStrategy::FromView,
            ..Default::default()
        };
        let up = c
            .insert("lineitem", vec![lineitem_row(3, 1, 2, 4, 42.0)])
            .unwrap();
        maintain(&mut view, &c, &up, &policy).unwrap();
        assert!(verify_against_recompute(&view, &c));
        let down = c
            .delete("lineitem", &[vec![Datum::Int(3), Datum::Int(1)]])
            .unwrap();
        maintain(&mut view, &c, &down, &policy).unwrap();
        assert!(verify_against_recompute(&view, &c));
    }

    /// The static verifier runs on every maintenance plan (opt-in flag set,
    /// and unconditionally in debug builds) and every plan the existing
    /// fixtures produce verifies clean.
    #[test]
    fn plans_verify_clean_and_report_checks() {
        let mut c = example1_catalog();
        populate_example1(&mut c, 8, 9);
        let mut view = MaterializedView::create(&c, oj_view_def()).unwrap();
        let policy = MaintenancePolicy {
            verify_plans: true,
            ..Default::default()
        };
        let up = c
            .insert("lineitem", vec![lineitem_row(3, 1, 2, 4, 42.0)])
            .unwrap();
        let report = maintain(&mut view, &c, &up, &policy).unwrap();
        assert!(
            report.verified_checks > 0,
            "verifier did not run: {report:?}"
        );
        assert!(verify_against_recompute(&view, &c));
    }

    #[test]
    fn unrelated_table_is_noop() {
        let mut c = example1_catalog();
        c.create_table(
            "other",
            vec![ojv_rel::Column::new(
                "other",
                "id",
                ojv_rel::DataType::Int,
                false,
            )],
            &["id"],
        )
        .unwrap();
        populate_example1(&mut c, 4, 4);
        let mut view = MaterializedView::create(&c, oj_view_def()).unwrap();
        let up = c.insert("other", vec![vec![Datum::Int(1)]]).unwrap();
        let report = maintain(&mut view, &c, &up, &MaintenancePolicy::paper()).unwrap();
        assert!(report.noop);
    }

    /// V1 (four tables, fo/lo mix): random-ish update sequences against all
    /// four tables, checked against recompute after every step.
    #[test]
    fn v1_update_sequences() {
        for policy in policies() {
            let mut c = v1_catalog();
            for (name, n) in [("r", 6i64), ("s", 5), ("t", 7), ("u", 4)] {
                let rows: Vec<Row> = (1..=n).map(|i| v1_row(i, i % 4, i)).collect();
                c.insert(name, rows).unwrap();
            }
            let mut view = MaterializedView::create(&c, v1_view_def()).unwrap();
            // Inserts into every table.
            for (name, id, jc) in [
                ("t", 100i64, 1i64),
                ("r", 101, 2),
                ("s", 102, 3),
                ("u", 103, 0),
            ] {
                let up = c.insert(name, vec![v1_row(id, jc, 0)]).unwrap();
                maintain(&mut view, &c, &up, &policy).unwrap();
                assert!(
                    verify_against_recompute(&view, &c),
                    "policy {policy:?} diverged after insert into {name}"
                );
            }
            // Deletes from every table.
            for (name, id) in [("t", 100i64), ("u", 2), ("s", 1), ("r", 3)] {
                let up = c.delete(name, &[vec![Datum::Int(id)]]).unwrap();
                maintain(&mut view, &c, &up, &policy).unwrap();
                assert!(
                    verify_against_recompute(&view, &c),
                    "policy {policy:?} diverged after delete from {name}"
                );
            }
        }
    }
}
